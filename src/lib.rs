//! # gcube — Fault-tolerant routing for Gaussian Cubes via Gaussian Trees
//!
//! A full reproduction of Loh & Zhang, *"A Fault-tolerant Routing Strategy
//! for Gaussian Cube Using Gaussian Tree"* (ICPP 2003), as a Rust workspace.
//!
//! This facade crate re-exports the public API of the four member crates:
//!
//! * [`topology`] — the Gaussian Cube `GC(n, M)`, Gaussian Tree `T_m`,
//!   binary hypercube `Q_n` and exchanged hypercube `EH(s,t)`, plus generic
//!   BFS/diameter/connectivity machinery.
//! * [`routing`] — the paper's algorithms: PC (tree path construction), CT
//!   (closed traversal), FFGCR (fault-free Gaussian Cube routing), FREH
//!   (fault-tolerant exchanged-hypercube routing) and FTGCR (the full
//!   fault-tolerant strategy), with the A/B/C fault taxonomy.
//! * [`sim`] — a cycle-driven network simulator reproducing the paper's
//!   latency/throughput evaluation (Figures 5–8).
//! * [`analysis`] — closed-form series and table rendering for Figures 2
//!   and 4.
//!
//! ## Quickstart
//!
//! ```
//! use gcube::topology::{GaussianCube, NodeId};
//! use gcube::routing::ffgcr;
//!
//! let gc = GaussianCube::new(8, 4).unwrap();
//! let route = ffgcr::route(&gc, NodeId(0b0000_0000), NodeId(0b1011_0101)).unwrap();
//! assert!(route.hops() > 0);
//! ```
//!
//! The README's fault-tolerant example, kept honest as a doctest:
//!
//! ```
//! use gcube::topology::{GaussianCube, NodeId};
//! use gcube::routing::{ffgcr, ftgcr, FaultSet};
//!
//! let gc = GaussianCube::new(10, 4)?;              // 1024 nodes, α = 2
//! let route = ffgcr::route(&gc, NodeId(0), NodeId(0b1011010110))?; // optimal
//!
//! let mut faults = FaultSet::new();
//! faults.add_node(NodeId(0b0000000110));           // a C-category node fault
//! let (ft_route, stats) = ftgcr::route(&gc, &faults, NodeId(0), NodeId(613))?;
//! assert!(ft_route.nodes().iter().all(|&v| !faults.is_node_faulty(v)));
//! # let _ = stats;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use gcube_analysis as analysis;
pub use gcube_routing as routing;
pub use gcube_sim as sim;
pub use gcube_topology as topology;
