//! Collective communication on a Gaussian Cube: multicast, broadcast and
//! gather — the primitives the paper's introduction credits the GC family
//! with supporting efficiently.
//!
//! ```sh
//! cargo run --example collective_communication
//! ```

use std::collections::BTreeSet;

use gcube::routing::collective::{
    binomial_broadcast_schedule, broadcast_tree, gather_schedule, independent_unicast_cost,
    multicast_walk,
};
use gcube::topology::{GaussianCube, NodeId, Topology};

fn main() {
    let gc = GaussianCube::new(10, 4).expect("valid parameters");
    println!("network: GC(10, 4) — {} nodes\n", gc.num_nodes());

    // ---- Multicast: one walk covering a destination set. -----------------
    let dests: BTreeSet<NodeId> = [37u64, 613, 1000, 1001, 1003, 128]
        .into_iter()
        .map(NodeId)
        .collect();
    let walk = multicast_walk(&gc, NodeId(0), &dests).unwrap();
    let indep = independent_unicast_cost(&gc, NodeId(0), &dests);
    println!("multicast from 0 to {} destinations:", dests.len());
    println!("  chained walk : {} hops", walk.hops());
    println!("  unicast sum  : {indep} hops");
    println!(
        "  saving       : {:.0}%",
        100.0 * (1.0 - walk.hops() as f64 / indep as f64)
    );

    // ---- Broadcast: spanning tree + single-port schedule. -----------------
    let tree = broadcast_tree(&gc, NodeId(0)).unwrap();
    println!("\nbroadcast from node 0:");
    println!("  BFS tree depth (all-port rounds) : {}", tree.max_depth());
    let schedule = binomial_broadcast_schedule(&gc, NodeId(0)).unwrap();
    println!("  single-port rounds               : {}", schedule.len());
    println!(
        "  messages in first three rounds   : {:?}",
        schedule.iter().take(3).map(Vec::len).collect::<Vec<_>>()
    );
    let total: usize = schedule.iter().map(Vec::len).sum();
    assert_eq!(
        total as u64,
        gc.num_nodes() - 1,
        "everyone informed exactly once"
    );

    // ---- Gather: leaves-to-root with single-port aggregation. -------------
    let rounds = gather_schedule(&gc, NodeId(0)).unwrap();
    println!("\ngather to node 0:");
    println!("  rounds                            : {}", rounds.len());
    let total: usize = rounds.iter().map(Vec::len).sum();
    println!("  total messages                    : {total}");
    assert_eq!(total as u64, gc.num_nodes() - 1);

    // How does dilution affect collective latency? Compare against M = 1.
    let dense = GaussianCube::new(10, 1).unwrap();
    let dense_rounds = binomial_broadcast_schedule(&dense, NodeId(0)).unwrap();
    println!(
        "\ndilution cost: broadcast takes {} rounds on GC(10,4) vs {} on the hypercube GC(10,1)",
        schedule.len(),
        dense_rounds.len()
    );
}
