//! Network simulation demo: the paper's §6 evaluation in miniature —
//! latency and throughput of `GC(n, M)` under Bernoulli traffic, fault-free
//! versus one faulty node.
//!
//! ```sh
//! cargo run --release --example network_simulation
//! ```

use gcube::sim::{FaultFreeGcr, FaultTolerantGcr, SimConfig, Simulator};

fn main() {
    println!("cycle-driven simulation (store-and-forward, eager readership)\n");
    println!(
        "{:>3} {:>3} {:>7} {:>12} {:>12} {:>11} {:>10}",
        "n", "M", "faults", "avg latency", "avg hops", "throughput", "delivered"
    );

    // Fault-free scaling: dimension up, latency up; throughput up.
    for (n, m) in [(6u32, 1u64), (6, 2), (6, 4), (8, 2), (10, 2)] {
        let cfg = SimConfig::new(n, m)
            .with_cycles(400, 5_000, 50)
            .with_rate(0.005);
        let metrics = Simulator::new(cfg, &FaultFreeGcr).session().run().metrics;
        println!(
            "{:>3} {:>3} {:>7} {:>12.3} {:>12.3} {:>11.4} {:>10}",
            n,
            m,
            0,
            metrics.avg_latency(),
            metrics.avg_hops(),
            metrics.throughput(),
            metrics.delivered
        );
        assert_eq!(
            metrics.delivered, metrics.injected,
            "fault-free: everything arrives"
        );
    }

    println!();

    // One faulty node (the paper's Figure 7/8 scenario): FTGCR still
    // delivers everything, at slightly higher latency.
    for n in [6u32, 8, 10] {
        let cfg = SimConfig::new(n, 2)
            .with_cycles(400, 5_000, 50)
            .with_rate(0.005)
            .with_faults(1);
        let sim = Simulator::new(cfg, &FaultTolerantGcr);
        let faulty_node = sim.faults().faulty_nodes().next().unwrap();
        let metrics = sim.session().run().metrics;
        println!(
            "{:>3} {:>3} {:>7} {:>12.3} {:>12.3} {:>11.4} {:>10}   (faulty node: {})",
            n,
            2,
            1,
            metrics.avg_latency(),
            metrics.avg_hops(),
            metrics.throughput(),
            metrics.delivered,
            faulty_node
        );
        assert_eq!(
            metrics.delivered, metrics.injected,
            "FTGCR: everything arrives"
        );
        assert_eq!(metrics.route_failures, 0);
    }

    println!("\n(run the full Figure 5-8 sweeps with `cargo run --release -p gcube-bench --bin all_figures`)");
}
