//! Quickstart: build a Gaussian Cube, inspect its structure, and route a
//! packet with the paper's fault-free algorithm.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gcube::routing::{ffgcr, verify};
use gcube::topology::props::degree_stats;
use gcube::topology::{GaussianCube, GaussianTree, NoFaults, NodeId, Topology};

fn main() {
    // GC(8, 4): 256 nodes, modulus M = 4 (α = 2).
    let gc = GaussianCube::new(8, 4).expect("valid parameters");
    let stats = degree_stats(&gc);
    println!(
        "GC(n=8, M=4): {} nodes, {} links",
        gc.num_nodes(),
        gc.num_links()
    );
    println!(
        "degrees: min {} / mean {:.2} / max {} (binary hypercube would be 8)",
        stats.min, stats.mean, stats.max
    );

    // The Gaussian Tree the cube projects onto.
    let tree = GaussianTree::new(gc.alpha()).unwrap();
    println!(
        "projection tree T_{} has {} nodes and diameter {}",
        gc.alpha(),
        tree.num_nodes(),
        tree.diameter()
    );

    // Route between two far-apart nodes.
    let s = NodeId(0b0000_0000);
    let d = NodeId(0b1011_0101);
    let plan = ffgcr::plan(&gc, s, d);
    println!(
        "\nrouting {} -> {}: tree walk {:?}, flips per class {:?}",
        s.to_binary(8),
        d.to_binary(8),
        plan.tree_walk.iter().map(|k| k.0).collect::<Vec<_>>(),
        plan.flips
    );

    let route = ffgcr::route(&gc, s, d).expect("fault-free routing always succeeds");
    route
        .validate(&gc, &NoFaults)
        .expect("route uses real links");
    println!("route ({} hops): {}", route.hops(), route);
    println!("optimal: FFGCR length always equals the BFS distance (tested exhaustively)");
    println!("simple path: {}", route.is_simple());
    assert_eq!(verify::revisit_count(&route), 0);
}
