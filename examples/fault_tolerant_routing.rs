//! Fault-tolerant routing demo: inject faults of each paper category (A, B,
//! C), check the Theorem-3/5 preconditions, and route around the damage
//! with FTGCR, reporting the detour overhead.
//!
//! ```sh
//! cargo run --example fault_tolerant_routing
//! ```

use gcube::routing::faults::{categorize, theorem3_precondition_guaranteed, theorem5_precondition};
use gcube::routing::{ffgcr, ftgcr, FaultSet};
use gcube::topology::{GaussianCube, LinkId, NodeId};

fn main() {
    let gc = GaussianCube::new(10, 4).expect("valid parameters");
    println!("network: GC(10, 4) — 1024 nodes, α = 2\n");

    // --- Scenario 1: A-category (high-dimension link) faults only. -------
    let mut faults_a = FaultSet::new();
    faults_a.add_link(LinkId::new(NodeId(0b10), 2)); // dim 2 ≥ α → A
    faults_a.add_link(LinkId::new(NodeId(0b1000011), 3)); // dim 3 ≥ α → A
    let counts = categorize(&gc, &faults_a);
    println!("scenario 1: {counts:?}");
    println!(
        "  Theorem 3 precondition (guaranteed bound): {}",
        theorem3_precondition_guaranteed(&gc, &faults_a)
    );
    demo_route(&gc, &faults_a, NodeId(0), NodeId(0b11_1111_1111));

    // --- Scenario 2: a faulty node (C-category). --------------------------
    let mut faults_c = FaultSet::new();
    faults_c.add_node(NodeId(0b0000_0110));
    let counts = categorize(&gc, &faults_c);
    println!("\nscenario 2: one faulty node — {counts:?}");
    println!(
        "  Theorem 5 precondition: {}",
        theorem5_precondition(&gc, &faults_c)
    );
    demo_route(&gc, &faults_c, NodeId(0), NodeId(0b10_0111_0110));

    // --- Scenario 3: mixed faults (B link + C node + A link). ------------
    let mut faults_mix = FaultSet::new();
    faults_mix.add_link(LinkId::new(NodeId(0b100), 0)); // dim 0 < α → B
    faults_mix.add_node(NodeId(0b11_0000_0011));
    faults_mix.add_link(LinkId::new(NodeId(0b10), 6)); // A
    let counts = categorize(&gc, &faults_mix);
    println!("\nscenario 3: mixed — {counts:?}");
    println!(
        "  Theorem 5 precondition: {}",
        theorem5_precondition(&gc, &faults_mix)
    );
    demo_route(&gc, &faults_mix, NodeId(1), NodeId(0b11_1100_1101));
}

fn demo_route(gc: &GaussianCube, faults: &FaultSet, s: NodeId, d: NodeId) {
    let optimal = ffgcr::route_len(gc, s, d);
    match ftgcr::route(gc, faults, s, d) {
        Ok((route, stats)) => {
            route
                .validate(gc, faults)
                .expect("route avoids every fault");
            println!(
                "  {} -> {}: {} hops (fault-free optimum {optimal}, detour +{})",
                s,
                d,
                route.hops(),
                route.hops() - optimal as usize
            );
            println!(
                "  crossings: {}, masked columns: {}, plan repairs: {} moves / {} bounces",
                stats.crossings, stats.masked_columns, stats.flip_moves, stats.bounces_inserted
            );
            println!("  route: {route}");
        }
        Err(e) => println!("  routing failed: {e}"),
    }
}
