//! Topology explorer: draw the Gaussian Graphs of Figure 1, walk through
//! the decomposition machinery (ending classes, `Dim` sets, embedded
//! subcubes), and reproduce the paper's Figure-3 closed-traversal example.
//!
//! ```sh
//! cargo run --example topology_explorer
//! ```

use std::collections::BTreeSet;

use gcube::routing::ct::{ct_walk, steiner_edges};
use gcube::routing::pc::pc_path;
use gcube::topology::classes::{dims, equivalent_class_count, subcube_pos};
use gcube::topology::{GaussianCube, GaussianTree, NodeId, Topology};

fn main() {
    // ---- Figure 1: Gaussian Graphs G_2 .. G_4 are trees. ----------------
    for m in 2..=4u32 {
        let t = GaussianTree::new(m).unwrap();
        println!(
            "G_{m} ({} nodes, {} edges — a tree):",
            t.num_nodes(),
            t.num_links()
        );
        for l in t.links() {
            let (a, b) = l.endpoints();
            println!(
                "  {} - {}   (dimension {})",
                a.to_binary(m),
                b.to_binary(m),
                l.dim
            );
        }
    }

    // ---- Figure 2, in miniature: the diameter series. --------------------
    print!("\nD(T_m) for m = 1..12:");
    for m in 1..=12u32 {
        print!(" {}", GaussianTree::new(m).unwrap().diameter());
    }
    println!();

    // ---- The decomposition of GC(10, 4). ---------------------------------
    let gc = GaussianCube::new(10, 4).unwrap();
    println!("\nGC(10, 4) decomposition (α = 2):");
    for k in 0..4u64 {
        let d = dims(gc.n(), gc.alpha(), k);
        println!(
            "  ending class EC({k}): Dim = {:?} → {} embedded Q_{} subcubes",
            d,
            equivalent_class_count(&gc, k),
            d.len()
        );
    }
    let p = NodeId(0b10_1101_0110);
    let pos = subcube_pos(&gc, p);
    println!(
        "  node {} lives in GEEC(k={}, t={}) at corner {:b}",
        p.to_binary(10),
        pos.k,
        pos.t,
        pos.coord
    );

    // ---- Figure 3: the CT branch-point example. ---------------------------
    // Root r, one trunk destination and two off-trunk destinations sharing
    // a branch point, as in the paper's sketch.
    let tree = GaussianTree::new(4).unwrap();
    let r = NodeId(0);
    let dests: BTreeSet<NodeId> = [NodeId(0b1011), NodeId(0b0110), NodeId(0b1111)]
        .into_iter()
        .collect();
    let walk = ct_walk(&tree, r, &dests);
    println!("\nCT closed traversal in T_4 from {} over {:?}:", r, dests);
    let rendered: Vec<String> = walk.iter().map(|n| n.to_binary(4)).collect();
    println!(
        "  walk ({} hops): {}",
        walk.len() - 1,
        rendered.join(" -> ")
    );
    let steiner = steiner_edges(&tree, r, &dests).len();
    println!(
        "  Steiner edges: {steiner} → optimal closed walk = {} hops ✓",
        2 * steiner
    );
    assert_eq!(walk.len() - 1, 2 * steiner);

    // And the trunk the walk was built on.
    let trunk = pc_path(&tree, r, NodeId(0b1111));
    let trunk_str: Vec<String> = trunk.iter().map(|n| n.to_binary(4)).collect();
    println!("  PC trunk to 1111: {}", trunk_str.join(" -> "));
}
