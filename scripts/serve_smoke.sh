#!/usr/bin/env bash
# Serve-smoke: the routing-as-a-service daemon must hand back per-session
# artifacts bitwise identical to the single-run CLI — including for a
# session that is snapshotted and rewound from its checkpoint mid-run.
#
# Flow:
#   1. start `gcube serve` on a Unix socket,
#   2. drive $SESSIONS concurrent seeded sessions through it, each on its
#      own `gcube serve --connect` client (session s1 additionally
#      snapshots at cycle 60 and restores onto itself before finishing),
#   3. replay every session as an equivalent `gcube run --threads 1`
#      invocation and gate trace + telemetry through `gcube analyze diff`
#      plus a strict byte comparison.
set -euo pipefail

BIN=${GCUBE_BIN:-target/release/gcube}
SESSIONS=${SESSIONS:-8}
WORK=$(mktemp -d)
SOCK="$WORK/gcube.sock"
DAEMON_PID=
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$BIN" serve --socket "$SOCK" --max-sessions 64 &
DAEMON_PID=$!
for _ in $(seq 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "serve-smoke: daemon socket never appeared" >&2; exit 1; }

# GC(10, 4) under static faults plus FTGCR — the same run shape the CLI
# comparison below re-executes. inject/drain/warmup mirror what
# `gcube run --cycles 120` derives (120 / 120*20 / 120/10).
open_line() {
  printf '{"op":"open","session":"%s","strategy":"ftgcr","config":{"n":10,"modulus":4,"rate":0.02,"inject_cycles":120,"drain_cycles":2400,"warmup_cycles":12,"seed":%d,"faults":1,"telemetry_interval":50}}\n' "$1" "$2"
}

client() {
  local id=$1 seed=$2
  {
    open_line "$id" "$seed"
    if [ "$id" = s1 ]; then
      printf '{"op":"step","session":"%s","cycles":60}\n' "$id"
      printf '{"op":"snapshot","session":"%s","path":"%s/%s.ck"}\n' "$id" "$WORK" "$id"
      printf '{"op":"restore","session":"%s","path":"%s/%s.ck"}\n' "$id" "$WORK" "$id"
    fi
    printf '{"op":"run","session":"%s"}\n' "$id"
    printf '{"op":"close","session":"%s","trace":"%s/%s.trace.jsonl","telemetry":"%s/%s.telemetry.jsonl"}\n' \
      "$id" "$WORK" "$id" "$WORK" "$id"
  } | "$BIN" serve --connect "$SOCK" > "$WORK/$id.replies.jsonl"
}

pids=()
for i in $(seq "$SESSIONS"); do
  client "s$i" $((1000 + i)) &
  pids+=($!)
done
for p in "${pids[@]}"; do wait "$p"; done

for i in $(seq "$SESSIONS"); do
  replies="$WORK/s$i.replies.jsonl"
  if grep -q '"error"' "$replies"; then
    echo "serve-smoke: error reply for session s$i:" >&2
    cat "$replies" >&2
    exit 1
  fi
done
grep -q '"rewound":true' "$WORK/s1.replies.jsonl" \
  || { echo "serve-smoke: s1 was never rewound from its checkpoint" >&2; exit 1; }

for i in $(seq "$SESSIONS"); do
  "$BIN" run 10 4 --rate 0.02 --cycles 120 --faults 1 --seed $((1000 + i)) \
    --strategy ftgcr --threads 1 --telemetry-interval 50 \
    --trace "$WORK/cli_s$i.trace.jsonl" \
    --telemetry "$WORK/cli_s$i.telemetry.jsonl" > /dev/null
  "$BIN" analyze diff "$WORK/cli_s$i.trace.jsonl" "$WORK/s$i.trace.jsonl"
  cmp "$WORK/cli_s$i.trace.jsonl" "$WORK/s$i.trace.jsonl"
  # Telemetry across a restore is suffix-only (DESIGN.md §16): the
  # rewound session's time series restarts at the checkpoint, so only
  # the uninterrupted sessions are gated on it. The trace — the
  # deterministic stream the replay verifier works from — must be
  # bitwise identical for every session, rewound or not.
  if [ "$i" != 1 ]; then
    "$BIN" analyze diff "$WORK/cli_s$i.telemetry.jsonl" "$WORK/s$i.telemetry.jsonl"
    cmp "$WORK/cli_s$i.telemetry.jsonl" "$WORK/s$i.telemetry.jsonl"
  fi
done

printf '{"op":"shutdown"}\n' | "$BIN" serve --connect "$SOCK"
wait "$DAEMON_PID"
DAEMON_PID=
echo "serve-smoke: $SESSIONS concurrent sessions bitwise-identical to the CLI (s1 rewound mid-run)"
