//! End-to-end property tests across the whole stack.

use proptest::prelude::*;

use gcube::routing::faults::theorem5_precondition;
use gcube::routing::{ffgcr, ftgcr, FaultSet};
use gcube::topology::{search, GaussianCube, NoFaults, NodeId, Topology};

fn arb_cube() -> impl Strategy<Value = GaussianCube> {
    (4u32..=11).prop_flat_map(|n| {
        (Just(n), 0u32..=3.min(n)).prop_map(|(n, a)| GaussianCube::from_alpha(n, a).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// FFGCR is optimal for random cubes and pairs (the projection lemma).
    #[test]
    fn ffgcr_is_optimal((gc, s, d) in arb_cube().prop_flat_map(|gc| {
        let n = gc.num_nodes();
        (Just(gc), 0..n, 0..n)
    })) {
        let (s, d) = (NodeId(s), NodeId(d));
        let route = ffgcr::route(&gc, s, d).unwrap();
        route.validate(&gc, &NoFaults).unwrap();
        prop_assert!(route.is_simple(), "fault-free optimal routes are simple paths");
        let bfs = search::distance(&gc, s, d, &NoFaults).unwrap();
        prop_assert_eq!(route.hops() as u32, bfs);
    }

    /// Under a random single node fault satisfying Theorem 5, FTGCR
    /// delivers every healthy pair with a valid, fault-avoiding route.
    #[test]
    fn ftgcr_survives_single_fault((gc, f, s, d) in arb_cube().prop_flat_map(|gc| {
        let n = gc.num_nodes();
        (Just(gc), 0..n, 0..n, 0..n)
    })) {
        let (fv, s, d) = (NodeId(f), NodeId(s), NodeId(d));
        prop_assume!(fv != s && fv != d);
        let mut faults = FaultSet::new();
        faults.add_node(fv);
        prop_assume!(theorem5_precondition(&gc, &faults));
        let (route, _) = ftgcr::route(&gc, &faults, s, d).unwrap();
        route.validate(&gc, &faults).unwrap();
        prop_assert!(route.nodes().iter().all(|&v| v != fv));
        // Bounded overhead versus the fault-free optimum.
        let opt = ffgcr::route_len(&gc, s, d) as usize;
        prop_assert!(route.hops() <= opt + 8, "hops {} opt {opt}", route.hops());
    }

    /// Route symmetry of costs: |route(s,d)| == |route(d,s)| in the
    /// fault-free setting (distances are symmetric).
    #[test]
    fn ffgcr_cost_symmetric((gc, s, d) in arb_cube().prop_flat_map(|gc| {
        let n = gc.num_nodes();
        (Just(gc), 0..n, 0..n)
    })) {
        let fwd = ffgcr::route_len(&gc, NodeId(s), NodeId(d));
        let bwd = ffgcr::route_len(&gc, NodeId(d), NodeId(s));
        prop_assert_eq!(fwd, bwd);
    }

    /// Triangle inequality of FFGCR costs (they are distances).
    #[test]
    fn ffgcr_cost_triangle((gc, a, b, c) in arb_cube().prop_flat_map(|gc| {
        let n = gc.num_nodes();
        (Just(gc), 0..n, 0..n, 0..n)
    })) {
        let ab = ffgcr::route_len(&gc, NodeId(a), NodeId(b));
        let bc = ffgcr::route_len(&gc, NodeId(b), NodeId(c));
        let ac = ffgcr::route_len(&gc, NodeId(a), NodeId(c));
        prop_assert!(ac <= ab + bc);
    }
}
