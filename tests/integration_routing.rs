//! Cross-crate integration tests: the routing pipeline against the topology
//! substrate's BFS oracle, across parameter ranges wider than any single
//! crate's unit tests.

use gcube::routing::faults::{theorem3_precondition_guaranteed, theorem5_precondition};
use gcube::routing::{ffgcr, freh, ftgcr, FaultSet};
use gcube::topology::{
    search, ExchangedHypercube, GaussianCube, LinkId, NoFaults, NodeId, Topology,
};

/// Deterministic xorshift for reproducible sampling.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn ffgcr_matches_bfs_across_the_family() {
    // The optimality identity across many (n, M) combinations on sampled
    // pairs — the paper family's headline invariant.
    let mut rng = Rng(0x5eed_cafe);
    for n in 4..=12u32 {
        for alpha in 0..=4.min(n) {
            let gc = GaussianCube::from_alpha(n, alpha).unwrap();
            for _ in 0..40 {
                let s = NodeId(rng.next() % gc.num_nodes());
                let d = NodeId(rng.next() % gc.num_nodes());
                let route = ffgcr::route(&gc, s, d).unwrap();
                route.validate(&gc, &NoFaults).unwrap();
                let bfs = search::distance(&gc, s, d, &NoFaults).unwrap();
                assert_eq!(
                    route.hops() as u32,
                    bfs,
                    "GC({n},2^{alpha}) {s}->{d}: FFGCR must be optimal"
                );
            }
        }
    }
}

#[test]
fn ftgcr_fault_free_is_ffgcr_everywhere() {
    let mut rng = Rng(0xfeed_beef);
    let empty = FaultSet::new();
    for (n, m) in [(9u32, 2u64), (10, 4), (11, 8), (12, 2)] {
        let gc = GaussianCube::new(n, m).unwrap();
        for _ in 0..30 {
            let s = NodeId(rng.next() % gc.num_nodes());
            let d = NodeId(rng.next() % gc.num_nodes());
            let (ft, stats) = ftgcr::route(&gc, &empty, s, d).unwrap();
            let ff = ffgcr::route(&gc, s, d).unwrap();
            assert_eq!(ft.hops(), ff.hops());
            assert!(!stats.bfs_fallback);
        }
    }
}

#[test]
fn single_node_fault_never_strands_packets() {
    // The Figure 7/8 premise at integration scale: a single faulty node in
    // GC(n, 2) leaves every healthy pair routable by FTGCR.
    let mut rng = Rng(0x0ddba11);
    for n in [8u32, 9, 10, 11] {
        let gc = GaussianCube::new(n, 2).unwrap();
        for _ in 0..4 {
            let mut faults = FaultSet::new();
            faults.add_node(NodeId(rng.next() % gc.num_nodes()));
            if !theorem5_precondition(&gc, &faults) {
                continue;
            }
            for _ in 0..60 {
                let s = NodeId(rng.next() % gc.num_nodes());
                let d = NodeId(rng.next() % gc.num_nodes());
                if faults.is_node_faulty(s) || faults.is_node_faulty(d) {
                    continue;
                }
                let (route, _) = ftgcr::route(&gc, &faults, s, d)
                    .unwrap_or_else(|e| panic!("GC({n},2) {s}->{d}: {e}"));
                route.validate(&gc, &faults).unwrap();
            }
        }
    }
}

#[test]
fn a_faults_cost_at_most_two_hops_each() {
    // Theorem-3 regime at integration scale: detour ≤ 2 hops per fault per
    // class visit (conservatively 4F), usually far less.
    let mut rng = Rng(0xa5a5_a5a5);
    for n in [9u32, 10] {
        let gc = GaussianCube::new(n, 4).unwrap();
        let mut tested = 0;
        for _ in 0..40 {
            let mut faults = FaultSet::new();
            for _ in 0..1 + rng.next() % 2 {
                let v = NodeId(rng.next() % gc.num_nodes());
                let high: Vec<u32> = gc
                    .link_dims(v)
                    .into_iter()
                    .filter(|&c| c >= gc.alpha())
                    .collect();
                if let Some(&dim) = high.first() {
                    faults.add_link(LinkId::new(v, dim));
                }
            }
            if faults.is_empty() || !theorem3_precondition_guaranteed(&gc, &faults) {
                continue;
            }
            tested += 1;
            for _ in 0..30 {
                let s = NodeId(rng.next() % gc.num_nodes());
                let d = NodeId(rng.next() % gc.num_nodes());
                let (route, _) = ftgcr::route(&gc, &faults, s, d).unwrap();
                route.validate(&gc, &faults).unwrap();
                let opt = ffgcr::route_len(&gc, s, d) as usize;
                assert!(
                    route.hops() <= opt + 4 * faults.len(),
                    "GC({n},4) {s}->{d}: {} vs opt {opt} with {} faults",
                    route.hops(),
                    faults.len()
                );
            }
        }
        assert!(tested >= 10, "not enough precondition-satisfying samples");
    }
}

#[test]
fn freh_and_ftgcr_agree_on_the_crossing_abstraction() {
    // The EH view of a tree-edge crossing is the same machine FREH runs on:
    // route in EH(s,t) and in the corresponding GC crossing block; both
    // must deliver under the same fault picture.
    let eh = ExchangedHypercube::new(3, 3).unwrap();
    let mut faults = FaultSet::new();
    faults.add_link(LinkId::new(NodeId(4), 0));
    faults.add_node(NodeId(0b0010101));
    let mut rng = Rng(0xc0ffee);
    for _ in 0..200 {
        let r = NodeId(rng.next() % eh.num_nodes());
        let d = NodeId(rng.next() % eh.num_nodes());
        if faults.is_node_faulty(r) || faults.is_node_faulty(d) {
            continue;
        }
        let reachable = search::distance(&eh, r, d, &faults).is_some();
        match freh::route(&eh, &faults, r, d) {
            Ok((route, _)) => {
                assert!(reachable);
                route.validate(&eh, &faults).unwrap();
            }
            Err(_) => assert!(!reachable),
        }
    }
}

#[test]
fn routes_stay_inside_the_topology() {
    // Paranoid end-to-end validation: every hop of every produced route is
    // a genuine GC link (Theorem 1 predicate), across all three route
    // producers.
    let gc = GaussianCube::new(9, 8).unwrap();
    let mut faults = FaultSet::new();
    faults.add_node(NodeId(77));
    let mut rng = Rng(0x7007);
    for _ in 0..100 {
        let s = NodeId(rng.next() % gc.num_nodes());
        let d = NodeId(rng.next() % gc.num_nodes());
        if faults.is_node_faulty(s) || faults.is_node_faulty(d) {
            continue;
        }
        let ff = ffgcr::route(&gc, s, d).unwrap();
        for w in ff.nodes().windows(2) {
            let dims = w[0].differing_dims(w[1]);
            assert_eq!(dims.len(), 1);
            assert!(gc.has_link(w[0], dims[0]));
        }
        if let Ok((ft, _)) = ftgcr::route(&gc, &faults, s, d) {
            ft.validate(&gc, &faults).unwrap();
        }
    }
}
