//! Integration tests for the simulator: miniature versions of the paper's
//! Figure 5–8 trends, asserted as *shapes* (who is higher, what grows).

use gcube::sim::{FaultFreeGcr, FaultTolerantGcr, SimConfig, Simulator};

fn cfg(n: u32, m: u64) -> SimConfig {
    SimConfig::new(n, m)
        .with_cycles(300, 4_000, 50)
        .with_rate(0.004)
}

#[test]
fn figure5_shape_latency_grows_with_dimension() {
    // Larger networks → longer paths → higher average latency.
    let lat: Vec<f64> = [6u32, 9, 12]
        .iter()
        .map(|&n| {
            Simulator::new(cfg(n, 2), &FaultFreeGcr)
                .session()
                .run()
                .metrics
                .avg_latency()
        })
        .collect();
    assert!(
        lat[1] > lat[0],
        "latency n=9 ({}) should exceed n=6 ({})",
        lat[1],
        lat[0]
    );
    assert!(
        lat[2] > lat[1],
        "latency n=12 ({}) should exceed n=9 ({})",
        lat[2],
        lat[1]
    );
}

#[test]
fn figure5_shape_latency_grows_with_modulus() {
    // Link dilution: larger M → sparser network → longer paths. The paper
    // notes the M effect dominates the dimension effect.
    let lat: Vec<f64> = [1u64, 2, 4]
        .iter()
        .map(|&m| {
            Simulator::new(cfg(9, m), &FaultFreeGcr)
                .session()
                .run()
                .metrics
                .avg_latency()
        })
        .collect();
    assert!(
        lat[1] > lat[0],
        "M=2 latency ({}) should exceed M=1 ({})",
        lat[1],
        lat[0]
    );
    assert!(
        lat[2] > lat[1],
        "M=4 latency ({}) should exceed M=2 ({})",
        lat[2],
        lat[1]
    );
}

#[test]
fn figure6_shape_throughput_grows_with_dimension() {
    // More nodes generating and carrying packets in parallel → higher
    // network throughput (packets per cycle).
    let thr: Vec<f64> = [6u32, 9, 12]
        .iter()
        .map(|&n| {
            Simulator::new(cfg(n, 2), &FaultFreeGcr)
                .session()
                .run()
                .metrics
                .throughput()
        })
        .collect();
    assert!(thr[1] > thr[0]);
    assert!(thr[2] > thr[1]);
    // log2 spacing is roughly the dimension increment (node count doubles
    // per dimension at fixed injection rate).
    let l0 = thr[0].log2();
    let l2 = thr[2].log2();
    assert!(
        (l2 - l0) > 3.0,
        "log2 throughput should gain >3 bits over 6 dims"
    );
}

#[test]
fn figure7_shape_fault_raises_latency() {
    // Averaged over seeds: one faulty node raises (never lowers) latency.
    let mean = |faults: usize| {
        (0..5u64)
            .map(|s| {
                let c = cfg(8, 2).with_seed(9000 + s).with_faults(faults);
                Simulator::new(c, &FaultTolerantGcr)
                    .session()
                    .run()
                    .metrics
                    .avg_latency()
            })
            .sum::<f64>()
            / 5.0
    };
    let healthy = mean(0);
    let faulty = mean(1);
    assert!(
        faulty >= healthy * 0.99,
        "one fault should not reduce latency: {healthy} -> {faulty}"
    );
}

#[test]
fn figure8_shape_fault_lowers_throughput_or_keeps_delivery() {
    // With one fault the same offered load must still be fully delivered
    // (FTGCR), so throughput changes only via longer routes; delivery ratio
    // stays 1.
    for seed in 0..3u64 {
        let c = cfg(8, 2).with_seed(7100 + seed).with_faults(1);
        let m = Simulator::new(c, &FaultTolerantGcr).session().run().metrics;
        assert_eq!(m.delivered, m.injected);
        assert_eq!(m.route_failures, 0);
        assert!((m.delivery_ratio() - 1.0).abs() < 1e-12);
    }
}

#[test]
fn uncongested_latency_tracks_mean_distance() {
    // At very low load, latency ≈ mean route length + 1-ish; verifies the
    // simulator's timing accounting end to end.
    let c = cfg(8, 2).with_rate(0.0005);
    let m = Simulator::new(c, &FaultFreeGcr).session().run().metrics;
    assert!(m.delivered > 0);
    assert!(m.avg_latency() >= m.avg_hops());
    assert!(m.avg_latency() <= m.avg_hops() * 1.25 + 1.0);
}

#[test]
fn deterministic_across_thread_counts() {
    use gcube::sim::run_sweep;
    let configs = vec![cfg(6, 2), cfg(7, 2), cfg(8, 4)];
    let serial = run_sweep(&configs, &FaultFreeGcr, 1);
    let parallel = run_sweep(&configs, &FaultFreeGcr, 8);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.metrics, b.metrics);
    }
}
