//! Integration tests for the distributed execution model: fault-status
//! exchange (paper claims 4–5) driving hop-by-hop FTGCR.

use gcube::routing::dftgcr::route_distributed;
use gcube::routing::faults::theorem5_precondition;
use gcube::routing::knowledge::exchange_rounds;
use gcube::routing::{ftgcr, FaultSet};
use gcube::topology::classes::dim_count;
use gcube::topology::{GaussianCube, LinkId, NodeId, Topology};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn exchange_rounds_within_paper_bound_across_family() {
    // Claim 4: at most ⌈n/2^α⌉ + 1 rounds, for several (n, α) and fault
    // shapes.
    let mut rng = Rng(0xeb0c);
    for (n, m) in [(8u32, 2u64), (9, 4), (10, 8)] {
        let gc = GaussianCube::new(n, m).unwrap();
        let bound = (0..m).map(|k| dim_count(n, gc.alpha(), k)).max().unwrap() + 1;
        for _ in 0..5 {
            let mut f = FaultSet::new();
            for _ in 0..1 + rng.next() % 3 {
                let v = NodeId(rng.next() % gc.num_nodes());
                if rng.next().is_multiple_of(2) {
                    f.add_node(v);
                } else {
                    let ds = gc.link_dims(v);
                    f.add_link(LinkId::new(v, ds[(rng.next() % ds.len() as u64) as usize]));
                }
            }
            let km = exchange_rounds(&gc, &f);
            assert!(
                km.rounds() <= bound,
                "GC({n},{m}): {} rounds > bound {bound}",
                km.rounds()
            );
            assert!(km.max_storage() <= f.len() + gc.n() as usize);
        }
    }
}

#[test]
fn distributed_and_omniscient_agree_on_delivery() {
    // Whenever the omniscient router delivers under a precondition-valid
    // fault set, so must the local-knowledge router, and its overhead stays
    // bounded.
    let gc = GaussianCube::new(9, 2).unwrap();
    let mut rng = Rng(0xd157);
    let mut compared = 0;
    for _ in 0..10 {
        let mut truth = FaultSet::new();
        truth.add_node(NodeId(rng.next() % gc.num_nodes()));
        if !theorem5_precondition(&gc, &truth) {
            continue;
        }
        let km = exchange_rounds(&gc, &truth);
        for _ in 0..25 {
            let s = NodeId(rng.next() % gc.num_nodes());
            let d = NodeId(rng.next() % gc.num_nodes());
            if truth.is_node_faulty(s) || truth.is_node_faulty(d) || s == d {
                continue;
            }
            let (omni, _) = ftgcr::route(&gc, &truth, s, d).unwrap();
            let (dist, stats) = route_distributed(&gc, &truth, &km, s, d).unwrap();
            dist.validate(&gc, &truth).unwrap();
            assert!(dist.hops() <= omni.hops() + 2 * gc.n() as usize);
            assert!(stats.header_items <= truth.len());
            compared += 1;
        }
    }
    assert!(compared > 50, "too few comparisons ({compared})");
}

#[test]
fn header_never_carries_more_than_total_faults() {
    // Claim 5 end-to-end: whatever the journey, the header holds at most
    // the global fault count of items.
    let gc = GaussianCube::new(8, 4).unwrap();
    let mut truth = FaultSet::new();
    truth.add_link(LinkId::new(NodeId(0b10), 2));
    truth.add_link(LinkId::new(NodeId(0b0110), 6));
    truth.add_node(NodeId(0b1001));
    let km = exchange_rounds(&gc, &truth);
    let mut rng = Rng(0x5ca1e);
    for _ in 0..80 {
        let s = NodeId(rng.next() % gc.num_nodes());
        let d = NodeId(rng.next() % gc.num_nodes());
        if truth.is_node_faulty(s) || truth.is_node_faulty(d) || s == d {
            continue;
        }
        if let Ok((r, stats)) = route_distributed(&gc, &truth, &km, s, d) {
            r.validate(&gc, &truth).unwrap();
            assert!(stats.header_items <= truth.len());
        }
    }
}
