//! Fault-tolerance metrics — the paper's §7 future work, implemented.
//!
//! The paper closes by calling for *"a new unified metric … to measure the
//! fault-tolerance ability of interconnection networks so that it is fair
//! despite their different routing algorithms and different methods of
//! fault categorization"*. This module provides two complementary metrics:
//!
//! * [`connectivity_robustness`] — **algorithm-independent**: the expected
//!   fraction of healthy node pairs that remain connected under `k` uniform
//!   random node faults (Monte Carlo). Comparable across *any* topologies
//!   because it depends only on the graph.
//! * [`algorithmic_robustness`] — **algorithm-specific**: the fraction of
//!   healthy pairs the FTGCR strategy actually delivers under the same
//!   fault model, plus how often the Theorem-5 precondition holds. The gap
//!   between the two metrics quantifies how much of the topology's
//!   intrinsic robustness the routing strategy realises.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gcube_routing::faults::theorem5_precondition;
use gcube_routing::{ftgcr, FaultSet};
use gcube_topology::{search, GaussianCube, NodeId, Topology};

/// Result of a connectivity robustness estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConnectivityRobustness {
    /// Faults injected per trial.
    pub k: usize,
    /// Trials run.
    pub trials: usize,
    /// Mean fraction of healthy ordered pairs still connected.
    pub pair_connectivity: f64,
    /// Fraction of trials in which the healthy subgraph stayed connected.
    pub fully_connected_ratio: f64,
}

/// Monte Carlo pairwise connectivity under `k` uniform random node faults.
///
/// Per trial: draw `k` distinct faulty nodes, BFS from a sample of healthy
/// sources, and measure the fraction of healthy nodes reached.
pub fn connectivity_robustness<T: Topology + ?Sized>(
    topo: &T,
    k: usize,
    trials: usize,
    seed: u64,
) -> ConnectivityRobustness {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = topo.num_nodes();
    let mut pair_sum = 0.0;
    let mut fully = 0usize;
    for _ in 0..trials {
        let faults = random_node_faults(n, k, &mut rng);
        let healthy_total = n - k as u64;
        // Sample up to 8 healthy sources for the pairwise estimate.
        let mut reached_fracs = Vec::new();
        let mut all_connected = true;
        let mut sources = 0;
        let mut v = rng.gen_range(0..n);
        while sources < 8.min(healthy_total as usize) {
            v = (v + 1) % n;
            if faults.is_node_faulty(NodeId(v)) {
                continue;
            }
            let dist = search::bfs_distances(topo, NodeId(v), &faults);
            let reached = (0..n)
                .filter(|&u| !faults.is_node_faulty(NodeId(u)) && dist[u as usize] != u32::MAX)
                .count() as u64;
            reached_fracs.push(reached as f64 / healthy_total as f64);
            if reached != healthy_total {
                all_connected = false;
            }
            sources += 1;
        }
        pair_sum += reached_fracs.iter().sum::<f64>() / reached_fracs.len() as f64;
        fully += usize::from(all_connected);
    }
    ConnectivityRobustness {
        k,
        trials,
        pair_connectivity: pair_sum / trials as f64,
        fully_connected_ratio: fully as f64 / trials as f64,
    }
}

/// Result of an algorithmic robustness estimate for FTGCR.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlgorithmicRobustness {
    /// Faults injected per trial.
    pub k: usize,
    /// Trials run.
    pub trials: usize,
    /// Fraction of sampled healthy pairs FTGCR delivered.
    pub delivery_ratio: f64,
    /// Fraction of trials whose fault set satisfied the Theorem-5
    /// precondition.
    pub precondition_ratio: f64,
    /// Mean detour (hops above the fault-free optimum) over delivered pairs.
    pub mean_detour: f64,
}

/// Monte Carlo FTGCR delivery under `k` uniform random node faults,
/// sampling `pairs_per_trial` healthy (s, d) pairs per fault set.
pub fn algorithmic_robustness(
    gc: &GaussianCube,
    k: usize,
    trials: usize,
    pairs_per_trial: usize,
    seed: u64,
) -> AlgorithmicRobustness {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa15e);
    let n = gc.num_nodes();
    let mut delivered = 0usize;
    let mut attempted = 0usize;
    let mut precond = 0usize;
    let mut detour_sum = 0u64;
    for _ in 0..trials {
        let faults = random_node_faults(n, k, &mut rng);
        precond += usize::from(theorem5_precondition(gc, &faults));
        for _ in 0..pairs_per_trial {
            let s = loop {
                let v = NodeId(rng.gen_range(0..n));
                if !faults.is_node_faulty(v) {
                    break v;
                }
            };
            let d = loop {
                let v = NodeId(rng.gen_range(0..n));
                if !faults.is_node_faulty(v) && v != s {
                    break v;
                }
            };
            attempted += 1;
            if let Ok((route, _)) = ftgcr::route(gc, &faults, s, d) {
                delivered += 1;
                let opt = gcube_routing::ffgcr::route_len(gc, s, d) as usize;
                detour_sum += (route.hops().saturating_sub(opt)) as u64;
            }
        }
    }
    AlgorithmicRobustness {
        k,
        trials,
        delivery_ratio: delivered as f64 / attempted.max(1) as f64,
        precondition_ratio: precond as f64 / trials.max(1) as f64,
        mean_detour: if delivered == 0 {
            0.0
        } else {
            detour_sum as f64 / delivered as f64
        },
    }
}

fn random_node_faults(n: u64, k: usize, rng: &mut StdRng) -> FaultSet {
    let mut faults = FaultSet::new();
    let mut placed = 0;
    while placed < k.min(n as usize / 2) {
        let v = NodeId(rng.gen_range(0..n));
        if !faults.is_node_faulty(v) {
            faults.add_node(v);
            placed += 1;
        }
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_topology::Hypercube;

    #[test]
    fn zero_faults_is_fully_connected() {
        let q = Hypercube::new(6).unwrap();
        let r = connectivity_robustness(&q, 0, 5, 1);
        assert_eq!(r.pair_connectivity, 1.0);
        assert_eq!(r.fully_connected_ratio, 1.0);
    }

    #[test]
    fn robustness_degrades_with_fault_count() {
        let gc = GaussianCube::new(8, 4).unwrap();
        let r1 = connectivity_robustness(&gc, 2, 20, 7);
        let r2 = connectivity_robustness(&gc, 24, 20, 7);
        assert!(r1.pair_connectivity >= r2.pair_connectivity);
        assert!(
            r1.pair_connectivity > 0.9,
            "2 faults in 256 nodes: {}",
            r1.pair_connectivity
        );
    }

    #[test]
    fn hypercube_more_robust_than_diluted_cube() {
        // The unified metric's headline comparison: at equal node count and
        // fault count, the denser network keeps more pairs connected.
        let dense = GaussianCube::new(8, 1).unwrap();
        let sparse = GaussianCube::new(8, 4).unwrap();
        let rd = connectivity_robustness(&dense, 16, 30, 11);
        let rs = connectivity_robustness(&sparse, 16, 30, 11);
        assert!(
            rd.pair_connectivity >= rs.pair_connectivity,
            "dense {} < sparse {}",
            rd.pair_connectivity,
            rs.pair_connectivity
        );
    }

    #[test]
    fn ftgcr_delivers_nearly_all_single_fault_pairs() {
        let gc = GaussianCube::new(8, 2).unwrap();
        let r = algorithmic_robustness(&gc, 1, 10, 20, 3);
        assert!(r.delivery_ratio > 0.95, "delivery {}", r.delivery_ratio);
        assert!(
            r.precondition_ratio > 0.9,
            "precondition {}",
            r.precondition_ratio
        );
        assert!(r.mean_detour < 4.0, "detour {}", r.mean_detour);
    }

    #[test]
    fn deterministic_in_seed() {
        let gc = GaussianCube::new(7, 2).unwrap();
        let a = connectivity_robustness(&gc, 3, 10, 42);
        let b = connectivity_robustness(&gc, 3, 10, 42);
        assert_eq!(a, b);
    }
}
