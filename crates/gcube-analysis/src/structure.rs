//! Topology structure statistics: the "interconnection density scales with
//! `M`" motivation of §1, quantified.

use gcube_topology::props::{degree_stats, node_availability};
use gcube_topology::{GaussianCube, Topology};

/// Structure summary for one `GC(n, M)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StructureRow {
    /// Dimension.
    pub n: u32,
    /// Modulus.
    pub modulus: u64,
    /// Nodes (`2^n`).
    pub nodes: u64,
    /// Undirected links.
    pub links: u64,
    /// Minimum degree.
    pub min_degree: u32,
    /// Maximum degree.
    pub max_degree: u32,
    /// Mean degree.
    pub mean_degree: f64,
    /// Network node availability (`min degree − 1`).
    pub availability: u32,
}

/// Compute the structure row for `GC(n, M)`.
pub fn structure_row(n: u32, modulus: u64) -> StructureRow {
    let gc = GaussianCube::new(n, modulus).expect("valid GC parameters");
    let ds = degree_stats(&gc);
    StructureRow {
        n,
        modulus,
        nodes: gc.num_nodes(),
        links: gc.num_links(),
        min_degree: ds.min,
        max_degree: ds.max,
        mean_degree: ds.mean,
        availability: node_availability(&gc),
    }
}

/// The density sweep used in the README/EXPERIMENTS discussion.
pub fn density_sweep(ns: &[u32], moduli: &[u64]) -> Vec<StructureRow> {
    let mut out = Vec::new();
    for &n in ns {
        for &m in moduli {
            out.push(structure_row(n, m));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_row() {
        let r = structure_row(6, 1);
        assert_eq!(r.links, 6 * 32);
        assert_eq!((r.min_degree, r.max_degree), (6, 6));
        assert_eq!(r.availability, 5);
    }

    #[test]
    fn density_decreases_with_modulus() {
        let rows = density_sweep(&[10], &[1, 2, 4, 8]);
        for w in rows.windows(2) {
            assert!(w[1].links <= w[0].links);
            assert!(w[1].mean_degree <= w[0].mean_degree);
        }
    }

    #[test]
    fn availability_is_low_for_diluted_cubes() {
        // The paper's §1 obstacle: availability stays small however large n
        // grows, once M ≥ 2.
        for n in [8u32, 10, 12] {
            let r = structure_row(n, 4);
            assert!(
                r.availability <= 4,
                "GC({n},4) availability {}",
                r.availability
            );
        }
    }
}
