//! Figure 2 — diameter of the Gaussian Tree `T_m` versus `m`.

use gcube_topology::GaussianTree;

/// One point of the Figure-2 series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiameterPoint {
    /// Tree order `m` (the "dimension" axis of the figure).
    pub m: u32,
    /// Exact diameter `D(T_m)`.
    pub diameter: u32,
    /// Node count `2^m`.
    pub nodes: u64,
}

/// Compute the exact diameter series for `m ∈ [1, max_m]` (double BFS per
/// tree — exact for trees).
pub fn series(max_m: u32) -> Vec<DiameterPoint> {
    (1..=max_m)
        .map(|m| {
            let t = GaussianTree::new(m).expect("m within width cap");
            DiameterPoint {
                m,
                diameter: t.diameter(),
                nodes: 1u64 << m,
            }
        })
        .collect()
}

/// The exact prefix of the series, pinned from an independent computation;
/// used by tests and recorded in EXPERIMENTS.md.
pub const KNOWN_PREFIX: [u32; 16] = [1, 3, 7, 11, 23, 27, 33, 37, 51, 55, 61, 65, 77, 81, 87, 91];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_matches_known_prefix() {
        let s = series(16);
        assert_eq!(s.len(), 16);
        for (i, p) in s.iter().enumerate() {
            assert_eq!(p.m, (i + 1) as u32);
            assert_eq!(p.diameter, KNOWN_PREFIX[i], "D(T_{})", p.m);
            assert_eq!(p.nodes, 1u64 << p.m);
        }
    }

    #[test]
    fn growth_is_monotone() {
        let s = series(14);
        for w in s.windows(2) {
            assert!(w[1].diameter > w[0].diameter);
        }
    }

    #[test]
    fn jumps_occur_after_powers_of_two() {
        // The structural signature: the biggest increments land at
        // m = 2^j + 1, where the new dimension-(2^j) edge attaches the fresh
        // copy far from the old path's midpoint.
        let s = series(16);
        let inc = |m: usize| s[m - 1].diameter - s[m - 2].diameter;
        assert!(inc(5) > inc(4));
        assert!(inc(9) > inc(8));
        assert!(inc(17.min(s.len())) >= inc(16.min(s.len() - 1)) || s.len() < 17);
    }
}
