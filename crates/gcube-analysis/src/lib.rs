//! Analytic series and result-table rendering for the paper's figures.
//!
//! * [`diameter`] — the Gaussian Tree diameter series of Figure 2;
//! * [`tolerance`] — the `log2 T(GC(α,n))` tolerable-fault series of
//!   Figure 4;
//! * [`structure`] — topology statistics tables (degrees, availability,
//!   link counts) that quantify the "interconnection density scales with
//!   `M`" motivation of §1;
//! * [`robustness`] — the unified fault-tolerance metrics the paper's §7
//!   future work calls for (connectivity vs. algorithmic robustness under
//!   random faults);
//! * [`forensics`] — offline analysis of recorded run artifacts
//!   (per-packet timelines, fault-impact attribution, congestion
//!   hot-spots, profile breakdowns, deterministic A/B diffing) behind
//!   `gcube analyze`;
//! * [`tables`] — plain-text/CSV rendering shared by the `gcube-bench`
//!   figure binaries.

pub mod diameter;
pub mod forensics;
pub mod robustness;
pub mod structure;
pub mod tables;
pub mod tolerance;
