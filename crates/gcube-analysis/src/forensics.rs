//! Offline trace forensics: everything `gcube analyze` knows how to do
//! with a recorded artifact.
//!
//! A JSONL trace is a complete flight record — every inject, hop,
//! stale-view discovery, reroute, drop, delivery, health transition and
//! tree repair, in deterministic engine order. This module turns that
//! stream back into answers:
//!
//! * [`RunForensics`] — one pass over the events building per-packet
//!   records, per-fault impact attribution (which blocked node cost how
//!   many reroutes, drops and wasted hops), and link/node congestion
//!   counts;
//! * [`render_profile`] — the phase/imbalance breakdown tables of a
//!   profiler artifact ([`gcube_sim::ProfileCollector`]'s JSONL export);
//! * [`diff_deterministic`] — the A/B regression gate: strip the
//!   `report_only` wall-clock lines, validate the provenance headers,
//!   and compare what must be bitwise identical.
//!
//! Attribution leans on an engine invariant: a recovery begins with a
//! `StaleView` event naming the blocked next hop, and the packet's
//! verdict (`Reroute` or `Drop`) lands at the same cycle. Grouping by
//! the blocked node therefore reconstructs "what did this fault cost"
//! without the engine ever writing a fault ledger into the trace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use gcube_sim::{ArtifactMeta, DropCause, TraceEvent, TraceEventKind};
use gcube_topology::NodeId;

/// How a packet's story ended within the recorded window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketOutcome {
    /// Delivered at `cycle` after `latency` cycles and `hops` links.
    Delivered {
        /// Delivery cycle.
        cycle: u64,
        /// Injection-to-delivery cycles.
        latency: u64,
        /// Links traversed.
        hops: u64,
    },
    /// Dropped at `cycle`.
    Dropped {
        /// Drop cycle.
        cycle: u64,
        /// Why.
        cause: DropCause,
    },
    /// Still in flight when the record ends.
    InFlight,
}

/// Per-packet aggregate reconstructed from the stream.
#[derive(Clone, Copy, Debug)]
pub struct PacketRecord {
    /// Packet id (injection order).
    pub id: u64,
    /// Injection cycle (absent if the record starts mid-flight).
    pub injected_at: Option<u64>,
    /// Source node.
    pub src: Option<NodeId>,
    /// Destination node.
    pub dst: Option<NodeId>,
    /// Length of the injection-time plan.
    pub planned_hops: u64,
    /// Hops actually taken.
    pub hops: u64,
    /// Blocked-next-hop discoveries.
    pub stale_views: u64,
    /// Successful replans.
    pub reroutes: u64,
    /// Final disposition.
    pub outcome: PacketOutcome,
}

/// What one blocked node cost the run: every recovery that started with
/// a `StaleView` naming it, attributed in full.
#[derive(Clone, Copy, Debug)]
pub struct FaultImpact {
    /// The node packets found unreachable.
    pub blocked: NodeId,
    /// First cycle a packet hit it.
    pub first_cycle: u64,
    /// Last cycle a packet hit it.
    pub last_cycle: u64,
    /// Blocked-next-hop discoveries.
    pub stale_views: u64,
    /// Recoveries that replanned successfully.
    pub reroutes: u64,
    /// Recoveries that ended in a drop.
    pub drops: u64,
    /// Hops already spent by the packets this fault killed.
    pub hops_wasted: u64,
    /// Distinct packets affected.
    pub packets: u64,
}

/// One pass over a recorded trace: per-packet records, per-fault impact
/// attribution, congestion counts, and network-event totals.
pub struct RunForensics<'a> {
    events: &'a [TraceEvent],
    packets: BTreeMap<u64, PacketRecord>,
    faults: BTreeMap<u64, FaultImpact>,
    fault_packets: BTreeMap<u64, std::collections::BTreeSet<u64>>,
    /// Directed link loads: `(from, to) -> hops carried`.
    links: BTreeMap<(u64, u64), u64>,
    /// Transit arrivals per node (hop events landing there).
    nodes: BTreeMap<u64, u64>,
    health_transitions: u64,
    tree_regrafts: u64,
    tree_rebuilds: u64,
    first_cycle: u64,
    last_cycle: u64,
}

impl<'a> RunForensics<'a> {
    /// Build the forensic indexes from a recorded stream (engine order).
    pub fn from_events(events: &'a [TraceEvent]) -> RunForensics<'a> {
        let mut f = RunForensics {
            events,
            packets: BTreeMap::new(),
            faults: BTreeMap::new(),
            fault_packets: BTreeMap::new(),
            links: BTreeMap::new(),
            nodes: BTreeMap::new(),
            health_transitions: 0,
            tree_regrafts: 0,
            tree_rebuilds: 0,
            first_cycle: events.first().map_or(0, |e| e.cycle),
            last_cycle: events.last().map_or(0, |e| e.cycle),
        };
        // The recovery protocol emits StaleView then the same packet's
        // verdict within the same cycle; this remembers the last
        // discovery per packet so the verdict can be attributed.
        let mut pending: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // packet -> (cycle, blocked)
        for e in events {
            let rec = f.packets.entry(e.packet).or_insert(PacketRecord {
                id: e.packet,
                injected_at: None,
                src: None,
                dst: None,
                planned_hops: 0,
                hops: 0,
                stale_views: 0,
                reroutes: 0,
                outcome: PacketOutcome::InFlight,
            });
            match e.kind {
                TraceEventKind::Inject { dst, planned_hops } => {
                    rec.injected_at = Some(e.cycle);
                    rec.src = Some(e.node);
                    rec.dst = Some(dst);
                    rec.planned_hops = planned_hops;
                }
                TraceEventKind::Hop { from } => {
                    rec.hops += 1;
                    *f.links.entry((from.0, e.node.0)).or_insert(0) += 1;
                    *f.nodes.entry(e.node.0).or_insert(0) += 1;
                }
                TraceEventKind::StaleView { blocked } => {
                    rec.stale_views += 1;
                    pending.insert(e.packet, (e.cycle, blocked.0));
                    let imp = f.faults.entry(blocked.0).or_insert(FaultImpact {
                        blocked,
                        first_cycle: e.cycle,
                        last_cycle: e.cycle,
                        stale_views: 0,
                        reroutes: 0,
                        drops: 0,
                        hops_wasted: 0,
                        packets: 0,
                    });
                    imp.stale_views += 1;
                    imp.last_cycle = e.cycle;
                    f.fault_packets
                        .entry(blocked.0)
                        .or_default()
                        .insert(e.packet);
                }
                TraceEventKind::Reroute { .. } => {
                    rec.reroutes += 1;
                    if let Some(&(cycle, blocked)) = pending.get(&e.packet) {
                        if cycle == e.cycle {
                            f.faults.get_mut(&blocked).expect("seen").reroutes += 1;
                        }
                    }
                }
                TraceEventKind::Drop { cause } => {
                    rec.outcome = PacketOutcome::Dropped {
                        cycle: e.cycle,
                        cause,
                    };
                    if let Some((cycle, blocked)) = pending.remove(&e.packet) {
                        if cycle == e.cycle {
                            let imp = f.faults.get_mut(&blocked).expect("seen");
                            imp.drops += 1;
                            imp.hops_wasted += rec.hops;
                        }
                    }
                }
                TraceEventKind::Deliver { latency, hops } => {
                    rec.outcome = PacketOutcome::Delivered {
                        cycle: e.cycle,
                        latency,
                        hops,
                    };
                    pending.remove(&e.packet);
                }
                TraceEventKind::Health { .. } => {
                    f.health_transitions += 1;
                    f.packets.remove(&e.packet); // network event, not a packet
                }
                TraceEventKind::TreeSwitch { .. } => {}
                TraceEventKind::TreeRepair { rebuilt, .. } => {
                    if rebuilt {
                        f.tree_rebuilds += 1;
                    } else {
                        f.tree_regrafts += 1;
                    }
                    f.packets.remove(&e.packet); // network event, not a packet
                }
            }
        }
        for (blocked, set) in &f.fault_packets {
            f.faults.get_mut(blocked).expect("seen").packets = set.len() as u64;
        }
        f
    }

    /// Per-packet records, ordered by packet id.
    pub fn packets(&self) -> impl Iterator<Item = &PacketRecord> {
        self.packets.values()
    }

    /// One packet's record.
    pub fn packet(&self, id: u64) -> Option<&PacketRecord> {
        self.packets.get(&id)
    }

    /// Per-fault impact records, ordered by blocked node.
    pub fn fault_impacts(&self) -> impl Iterator<Item = &FaultImpact> {
        self.faults.values()
    }

    /// The `k` most-loaded directed links, busiest first (ties broken by
    /// link id for deterministic output).
    pub fn top_links(&self, k: usize) -> Vec<((u64, u64), u64)> {
        let mut v: Vec<_> = self.links.iter().map(|(&l, &c)| (l, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// The `k` busiest transit nodes, busiest first.
    pub fn top_nodes(&self, k: usize) -> Vec<(u64, u64)> {
        let mut v: Vec<_> = self.nodes.iter().map(|(&n, &c)| (n, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Render one packet's full timeline, event by event.
    pub fn timeline(&self, id: u64) -> String {
        let mut out = String::new();
        let Some(rec) = self.packets.get(&id) else {
            let _ = writeln!(out, "packet {id}: not in this trace");
            return out;
        };
        let _ = writeln!(
            out,
            "packet {id}: {} -> {}, planned {} hops",
            rec.src.map_or_else(|| "?".into(), |v| v.to_string()),
            rec.dst.map_or_else(|| "?".into(), |v| v.to_string()),
            rec.planned_hops
        );
        for e in self.events.iter().filter(|e| e.packet == id) {
            let what = match e.kind {
                TraceEventKind::Inject { dst, planned_hops } => {
                    format!("inject -> {dst} ({planned_hops} hops planned)")
                }
                TraceEventKind::Hop { from } => format!("hop {from} -> {}", e.node),
                TraceEventKind::StaleView { blocked } => {
                    format!("stale view: next hop {blocked} is blocked")
                }
                TraceEventKind::Reroute { budget_left } => {
                    format!("reroute ({budget_left} budget left)")
                }
                TraceEventKind::Drop { cause } => format!("DROP ({})", cause.as_str()),
                TraceEventKind::Deliver { latency, hops } => {
                    format!("DELIVER ({latency} cycles, {hops} hops)")
                }
                // Network-scoped kinds never carry a real packet id.
                _ => continue,
            };
            let _ = writeln!(out, "  cycle {:>6}  {what}", e.cycle);
        }
        let verdict = match rec.outcome {
            PacketOutcome::Delivered { latency, hops, .. } => format!(
                "delivered: {latency} cycles, {hops} hops ({} over plan), {} reroutes",
                hops.saturating_sub(rec.planned_hops),
                rec.reroutes
            ),
            PacketOutcome::Dropped { cycle, cause } => format!(
                "dropped at cycle {cycle} ({}): {} hops wasted, {} reroutes spent",
                cause.as_str(),
                rec.hops,
                rec.reroutes
            ),
            PacketOutcome::InFlight => "still in flight when the record ends".to_string(),
        };
        let _ = writeln!(out, "  => {verdict}");
        out
    }

    /// Render the run overview: packet totals and network events.
    pub fn summary(&self) -> String {
        let (mut delivered, mut dropped, mut in_flight) = (0u64, 0u64, 0u64);
        let (mut reroutes, mut stale) = (0u64, 0u64);
        for p in self.packets.values() {
            match p.outcome {
                PacketOutcome::Delivered { .. } => delivered += 1,
                PacketOutcome::Dropped { .. } => dropped += 1,
                PacketOutcome::InFlight => in_flight += 1,
            }
            reroutes += p.reroutes;
            stale += p.stale_views;
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "events {}  cycles {}..{}",
            self.events.len(),
            self.first_cycle,
            self.last_cycle
        );
        let _ = writeln!(
            out,
            "packets {}  delivered {delivered}  dropped {dropped}  in-flight {in_flight}",
            self.packets.len()
        );
        let _ = writeln!(
            out,
            "recoveries: {stale} stale views, {reroutes} reroutes, {} distinct blocked nodes",
            self.faults.len()
        );
        let _ = writeln!(
            out,
            "network: {} health transitions, {} tree re-grafts, {} rebuilds",
            self.health_transitions, self.tree_regrafts, self.tree_rebuilds
        );
        out
    }

    /// Render the per-fault impact table, costliest first (drops, then
    /// reroutes). "Cost" is everything attributable to that blocked
    /// node: discoveries, verdicts, and the hops its drops wasted.
    pub fn fault_impact_table(&self, top: usize) -> String {
        let mut impacts: Vec<&FaultImpact> = self.faults.values().collect();
        impacts.sort_by(|a, b| {
            (b.drops, b.reroutes, b.stale_views)
                .cmp(&(a.drops, a.reroutes, a.stale_views))
                .then(a.blocked.0.cmp(&b.blocked.0))
        });
        let mut out = String::new();
        if impacts.is_empty() {
            let _ = writeln!(out, "no recoveries recorded: every planned hop was live");
            return out;
        }
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>14}",
            "blocked", "packets", "stale", "reroutes", "drops", "hops lost", "cycles"
        );
        for i in impacts.iter().take(top) {
            let _ = writeln!(
                out,
                "{:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>6}..{:<6}",
                i.blocked.0,
                i.packets,
                i.stale_views,
                i.reroutes,
                i.drops,
                i.hops_wasted,
                i.first_cycle,
                i.last_cycle
            );
        }
        if impacts.len() > top {
            let _ = writeln!(out, "... {} more", impacts.len() - top);
        }
        out
    }

    /// Render the congestion hot-spot tables.
    pub fn congestion_table(&self, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "top directed links (hops carried):");
        for ((from, to), c) in self.top_links(top) {
            let _ = writeln!(out, "  {from:>6} -> {to:<6} {c:>8}");
        }
        let _ = writeln!(out, "top transit nodes (hop arrivals):");
        for (n, c) in self.top_nodes(top) {
            let _ = writeln!(out, "  {n:>6}           {c:>8}");
        }
        out
    }
}

/// Pull an integer field out of one flat JSONL line.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let idx = line.find(&pat)? + pat.len();
    let rest = &line[idx..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Pull a string field out of one flat JSONL line.
fn json_str<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let pat = format!("\"{key}\":\"");
    let idx = line.find(&pat)? + pat.len();
    let rest = &line[idx..];
    Some(&rest[..rest.find('"')?])
}

/// Render the phase/imbalance breakdown of a profiler JSONL artifact
/// ([`gcube_sim::ProfileCollector::to_jsonl`]'s output, header
/// included). Works on the deterministic stream alone; the wall-clock
/// sections appear only when the artifact carries `report_only` lines.
pub fn render_profile(text: &str) -> Result<String, String> {
    let mut out = String::new();
    let mut rows = 0u64;
    let mut phases: Vec<(String, u64)> = Vec::new();
    let mut shards: Vec<String> = Vec::new();
    let mut worst: Option<(u64, u64)> = None; // (imbalance_milli, cycle)
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        if let Some(parsed) = ArtifactMeta::parse(line) {
            let m = parsed?;
            let _ = writeln!(
                out,
                "provenance: {} artifact, GC({}, {}), seed {}, {} threads, {}",
                m.kind, m.n, m.modulus, m.seed, m.threads, m.strategy
            );
            continue;
        }
        if json_u64(line, "summary").is_none() && line.starts_with("{\"report_only\"") {
            if let Some(p) = json_str(line, "phase") {
                phases.push((p.to_string(), json_u64(line, "nanos").unwrap_or(0)));
            } else if let Some(s) = json_u64(line, "shard") {
                let barrier = json_u64(line, "barrier_nanos").unwrap_or(0);
                let run = json_u64(line, "run_nanos").unwrap_or(0);
                shards.push(format!(
                    "  shard {s}: {} cycles, {} steal units ({} reqs), \
                     {}+{} moves (self+out), barrier {:.1}% of {:.3}ms",
                    json_u64(line, "cycles").unwrap_or(0),
                    json_u64(line, "steal_units").unwrap_or(0),
                    json_u64(line, "planned_reqs").unwrap_or(0),
                    json_u64(line, "moves_self").unwrap_or(0),
                    json_u64(line, "moves_out").unwrap_or(0),
                    if run == 0 {
                        0.0
                    } else {
                        100.0 * barrier as f64 / run as f64
                    },
                    run as f64 / 1e6,
                ));
            }
            continue;
        }
        if line.starts_with("{\"summary\"") {
            let _ = writeln!(
                out,
                "cycles {}  injected {}  moved {}  max in-flight {}",
                json_u64(line, "cycles").unwrap_or(0),
                json_u64(line, "injected").unwrap_or(0),
                json_u64(line, "moved").unwrap_or(0),
                json_u64(line, "max_in_flight").unwrap_or(0),
            );
            let _ = writeln!(
                out,
                "imbalance: avg {:.3}  max {:.3}  (1.000 = perfectly balanced)",
                json_u64(line, "imbalance_avg_milli").unwrap_or(0) as f64 / 1000.0,
                json_u64(line, "imbalance_max_milli").unwrap_or(0) as f64 / 1000.0,
            );
            continue;
        }
        // A deterministic sample row (anything else is unrecognised).
        let Some(cycle) = json_u64(line, "cycle") else {
            continue;
        };
        rows += 1;
        let imb = json_u64(line, "imbalance_milli").unwrap_or(0);
        if worst.is_none_or(|(w, _)| imb > w) {
            worst = Some((imb, cycle));
        }
    }
    let _ = writeln!(out, "sample windows: {rows}");
    if let Some((imb, cycle)) = worst {
        let _ = writeln!(
            out,
            "worst window: imbalance {:.3} ending at cycle {cycle}",
            imb as f64 / 1000.0
        );
    }
    if !phases.is_empty() {
        let total: u64 = phases.iter().map(|&(_, n)| n).sum();
        let _ = writeln!(out, "--- phase split (wall clock, report-only) ---");
        for (p, n) in &phases {
            let _ = writeln!(
                out,
                "  {p:<14} {:>10.3}ms  {:>5.1}%",
                *n as f64 / 1e6,
                if total == 0 {
                    0.0
                } else {
                    100.0 * *n as f64 / total as f64
                }
            );
        }
    }
    if !shards.is_empty() {
        let _ = writeln!(out, "--- per-shard split (report-only) ---");
        for s in &shards {
            let _ = writeln!(out, "{s}");
        }
    }
    if rows == 0 && phases.is_empty() {
        return Err("no profile lines recognised — is this a profile artifact?".into());
    }
    Ok(out)
}

/// The A/B regression gate's verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffOutcome {
    /// Whether the deterministic streams are bitwise identical.
    pub identical: bool,
    /// Human-readable detail (counts, or the first divergence).
    pub detail: String,
}

/// Compare the deterministic content of two JSONL artifacts — the A/B
/// regression gate. Provenance headers are validated for compatibility
/// (same kind, cube, seed and strategy; thread counts may differ — that
/// is the point), then `report_only` wall-clock lines are stripped and
/// the rest must match line for line.
pub fn diff_deterministic(a_text: &str, b_text: &str) -> Result<DiffOutcome, String> {
    let split = |text: &str| -> Result<(Option<ArtifactMeta>, Vec<String>), String> {
        let mut meta = None;
        let mut lines = Vec::new();
        for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
            if let Some(parsed) = ArtifactMeta::parse(line) {
                if meta.is_some() || !lines.is_empty() {
                    return Err("meta header must be the first line".into());
                }
                meta = Some(parsed?);
                continue;
            }
            if line.starts_with("{\"report_only\"") {
                continue;
            }
            lines.push(line.to_string());
        }
        Ok((meta, lines))
    };
    let (meta_a, lines_a) = split(a_text).map_err(|e| format!("artifact A: {e}"))?;
    let (meta_b, lines_b) = split(b_text).map_err(|e| format!("artifact B: {e}"))?;
    if let (Some(a), Some(b)) = (&meta_a, &meta_b) {
        a.check_compatible(b)
            .map_err(|e| format!("artifacts are not comparable: {e}"))?;
    }
    let threads = |m: &Option<ArtifactMeta>| {
        m.as_ref()
            .map_or_else(|| "?".to_string(), |m| m.threads.to_string())
    };
    for (i, (a, b)) in lines_a.iter().zip(lines_b.iter()).enumerate() {
        if a != b {
            return Ok(DiffOutcome {
                identical: false,
                detail: format!(
                    "DIVERGED at deterministic line {}:\n  A (threads {}): {a}\n  B (threads {}): {b}",
                    i + 1,
                    threads(&meta_a),
                    threads(&meta_b)
                ),
            });
        }
    }
    if lines_a.len() != lines_b.len() {
        return Ok(DiffOutcome {
            identical: false,
            detail: format!(
                "DIVERGED: A has {} deterministic lines, B has {}",
                lines_a.len(),
                lines_b.len()
            ),
        });
    }
    Ok(DiffOutcome {
        identical: true,
        detail: format!(
            "identical: {} deterministic lines match (threads {} vs {})",
            lines_a.len(),
            threads(&meta_a),
            threads(&meta_b)
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_sim::trace::NETWORK_EVENT_PACKET;

    fn ev(cycle: u64, packet: u64, node: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            packet,
            node: NodeId(node),
            kind,
        }
    }

    /// A two-packet story: packet 0 hits a blocked node, reroutes and
    /// delivers; packet 1 hits the same node and is dropped.
    fn sample() -> Vec<TraceEvent> {
        vec![
            ev(
                0,
                0,
                1,
                TraceEventKind::Inject {
                    dst: NodeId(6),
                    planned_hops: 2,
                },
            ),
            ev(
                0,
                1,
                2,
                TraceEventKind::Inject {
                    dst: NodeId(6),
                    planned_hops: 2,
                },
            ),
            ev(1, 0, 3, TraceEventKind::Hop { from: NodeId(1) }),
            ev(1, 1, 3, TraceEventKind::Hop { from: NodeId(2) }),
            ev(2, 0, 3, TraceEventKind::StaleView { blocked: NodeId(7) }),
            ev(2, 0, 3, TraceEventKind::Reroute { budget_left: 1 }),
            ev(2, 1, 3, TraceEventKind::StaleView { blocked: NodeId(7) }),
            ev(
                2,
                1,
                3,
                TraceEventKind::Drop {
                    cause: DropCause::Unrecoverable,
                },
            ),
            ev(3, 0, 6, TraceEventKind::Hop { from: NodeId(3) }),
            ev(
                3,
                0,
                6,
                TraceEventKind::Deliver {
                    latency: 3,
                    hops: 2,
                },
            ),
            ev(
                4,
                NETWORK_EVENT_PACKET,
                4,
                TraceEventKind::TreeRepair {
                    regrafted: 1,
                    reattached: 3,
                    lost: 0,
                    rebuilt: false,
                },
            ),
        ]
    }

    #[test]
    fn packet_records_reconstruct_outcomes() {
        let events = sample();
        let f = RunForensics::from_events(&events);
        assert_eq!(f.packets().count(), 2, "network events are not packets");
        let p0 = f.packet(0).unwrap();
        assert_eq!(p0.hops, 2);
        assert_eq!(p0.reroutes, 1);
        assert!(matches!(
            p0.outcome,
            PacketOutcome::Delivered {
                latency: 3,
                hops: 2,
                ..
            }
        ));
        let p1 = f.packet(1).unwrap();
        assert!(matches!(
            p1.outcome,
            PacketOutcome::Dropped {
                cycle: 2,
                cause: DropCause::Unrecoverable
            }
        ));
        let tl = f.timeline(0);
        assert!(tl.contains("stale view"), "{tl}");
        assert!(tl.contains("DELIVER"), "{tl}");
        assert!(f.timeline(99).contains("not in this trace"));
    }

    #[test]
    fn fault_impact_attributes_verdicts_to_the_blocked_node() {
        let events = sample();
        let f = RunForensics::from_events(&events);
        let impacts: Vec<_> = f.fault_impacts().collect();
        assert_eq!(impacts.len(), 1);
        let i = impacts[0];
        assert_eq!(i.blocked, NodeId(7));
        assert_eq!((i.stale_views, i.reroutes, i.drops), (2, 1, 1));
        assert_eq!(i.packets, 2);
        assert_eq!(i.hops_wasted, 1, "packet 1 had taken one hop when dropped");
        let table = f.fault_impact_table(10);
        assert!(table.contains('7'), "{table}");
    }

    #[test]
    fn congestion_counts_directed_links() {
        let events = sample();
        let f = RunForensics::from_events(&events);
        let links = f.top_links(10);
        assert_eq!(links[0].1, 1);
        assert_eq!(
            f.top_nodes(1),
            vec![(3, 2)],
            "both packets transited node 3"
        );
        assert_eq!(f.summary().lines().count(), 4);
    }

    #[test]
    fn diff_gate_ignores_report_only_but_not_data() {
        let a = "{\"cycle\":1,\"injected\":5}\n{\"report_only\":true,\"phase\":\"planning\",\"nanos\":10}\n";
        let b = "{\"cycle\":1,\"injected\":5}\n{\"report_only\":true,\"phase\":\"planning\",\"nanos\":99}\n";
        let d = diff_deterministic(a, b).unwrap();
        assert!(d.identical, "{}", d.detail);
        let c = "{\"cycle\":1,\"injected\":6}\n";
        let d = diff_deterministic(a, c).unwrap();
        assert!(!d.identical);
        assert!(d.detail.contains("line 1"), "{}", d.detail);
        let short = diff_deterministic(a, "").unwrap();
        assert!(!short.identical);
    }

    #[test]
    fn diff_gate_validates_provenance() {
        let meta = |threads: u64, seed: u64| {
            format!(
                "{{\"meta\":\"profile\",\"format\":1,\"n\":6,\"modulus\":2,\"seed\":{seed},\
                 \"threads\":{threads},\"strategy\":\"ftgcr\"}}"
            )
        };
        let a = format!("{}\n{{\"cycle\":1}}\n", meta(1, 42));
        let b = format!("{}\n{{\"cycle\":1}}\n", meta(4, 42));
        let d = diff_deterministic(&a, &b).unwrap();
        assert!(d.identical, "thread counts may differ: {}", d.detail);
        assert!(d.detail.contains("1 vs 4"), "{}", d.detail);
        let c = format!("{}\n{{\"cycle\":1}}\n", meta(4, 43));
        assert!(diff_deterministic(&a, &c).is_err(), "seed mismatch");
    }

    #[test]
    fn profile_rendering_reads_the_collector_export() {
        let text = "\
{\"meta\":\"profile\",\"format\":1,\"n\":6,\"modulus\":2,\"seed\":42,\"threads\":4,\"strategy\":\"ftgcr\"}
{\"cycle\":49,\"injected\":10,\"moved\":30,\"in_flight\":4,\"queued_total\":4,\"queued_max\":2,\"occupied_total\":4,\"imbalance_milli\":2000,\"cache_hits\":0,\"cache_misses\":0,\"cache_entries\":0}
{\"summary\":true,\"cycles\":50,\"injected\":10,\"moved\":30,\"max_in_flight\":4,\"imbalance_avg_milli\":1500,\"imbalance_max_milli\":2000,\"dropped_samples\":0,\"moved_log2\":[0,1],\"in_flight_log2\":[0,1]}
{\"report_only\":true,\"phase\":\"planning\",\"nanos\":1000000}
{\"report_only\":true,\"shard\":0,\"cycles\":50,\"steal_units\":9,\"planned_reqs\":10,\"moves_self\":20,\"moves_out\":10,\"events_out\":0,\"barrier_nanos\":500000,\"run_nanos\":2000000}
";
        let r = render_profile(text).unwrap();
        assert!(r.contains("provenance: profile artifact"), "{r}");
        assert!(r.contains("imbalance: avg 1.500  max 2.000"), "{r}");
        assert!(r.contains("planning"), "{r}");
        assert!(r.contains("shard 0"), "{r}");
        assert!(r.contains("barrier 25.0%"), "{r}");
        assert!(render_profile("not json\n").is_err());
    }
}
