//! Figure 4 — `log2 T(GC(α, n))`: tolerable faulty links versus dimension.

use gcube_routing::faults::{max_tolerable_faults_guaranteed, max_tolerable_faults_paper};

/// One point of the Figure-4 series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TolerancePoint {
    /// Network dimension `n`.
    pub n: u32,
    /// `α = log2 M`.
    pub alpha: u32,
    /// The paper's `T(GC)` count.
    pub t_paper: u64,
    /// `log2` of the paper count (the figure's y-axis).
    pub log2_t_paper: f64,
    /// The strictly guaranteed count (DESIGN.md deviation note).
    pub t_guaranteed: u64,
}

/// The Figure-4 sweep: `α ∈ [1, 4]`, `n ∈ [α+2, max_n]` (the paper plots
/// `n < 25`).
pub fn series(max_n: u32) -> Vec<TolerancePoint> {
    let mut out = Vec::new();
    for alpha in 1..=4u32 {
        for n in (alpha + 2)..=max_n {
            let t_paper = max_tolerable_faults_paper(n, alpha);
            out.push(TolerancePoint {
                n,
                alpha,
                t_paper,
                log2_t_paper: if t_paper > 0 {
                    (t_paper as f64).log2()
                } else {
                    f64::NEG_INFINITY
                },
                t_guaranteed: max_tolerable_faults_guaranteed(n, alpha),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_figure4() {
        // log2 T grows roughly linearly in n, and larger α tolerates fewer
        // faults at equal n (denser dilution).
        let s = series(24);
        for alpha in 1..=4u32 {
            let line: Vec<&TolerancePoint> = s.iter().filter(|p| p.alpha == alpha).collect();
            for w in line.windows(2) {
                assert!(w[1].t_paper >= w[0].t_paper, "monotone in n");
            }
            // Roughly linear in log-space: mean increment within [0.4, 1.3]
            // bits per dimension over the plotted range (larger α lines are
            // shorter and a little steeper).
            let first = line.first().unwrap();
            let last = line.last().unwrap();
            let slope = (last.log2_t_paper - first.log2_t_paper) / f64::from(last.n - first.n);
            assert!(
                (0.4..=1.3).contains(&slope),
                "α={alpha} slope {slope} outside the expected band"
            );
        }
        // Measured property (recorded in EXPERIMENTS.md): the α-lines CROSS.
        // T counts (subcubes × per-subcube tolerance); larger α means more,
        // smaller subcubes, which wins for large n: at n = 24 the α = 2 line
        // is far above α = 1, while at small n the ordering differs.
        let at = |n: u32, alpha: u32| {
            s.iter()
                .find(|p| p.n == n && p.alpha == alpha)
                .unwrap()
                .t_paper
        };
        assert!(at(24, 2) > at(24, 1));
        assert!(at(10, 2) > at(10, 4));
    }

    #[test]
    fn guaranteed_below_paper() {
        for p in series(24) {
            assert!(p.t_guaranteed <= p.t_paper);
        }
    }

    #[test]
    fn hand_checked_point() {
        // From the routing crate's hand count: T_paper(GC(8, 4)) = 128.
        let p = series(24)
            .into_iter()
            .find(|p| p.n == 8 && p.alpha == 2)
            .unwrap();
        assert_eq!(p.t_paper, 128);
        assert_eq!(p.log2_t_paper, 7.0);
        assert_eq!(p.t_guaranteed, 32);
    }
}
