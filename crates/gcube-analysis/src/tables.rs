//! Plain-text and CSV table rendering for the figure binaries.
//!
//! No third-party serialisation: the benches print aligned text to stdout
//! and write CSV files under `results/` with `std` alone.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the header arity.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned text (right-aligned numeric style).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = width[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (no quoting needed for our numeric content; commas in
    /// cells are rejected).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            assert!(!c.contains(','), "CSV cells must not contain commas");
            c.to_string()
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV rendering to a file, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Format a float with fixed decimals, rendering non-finite values as "-".
pub fn num(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["n", "value"]);
        t.row(["6", "1.50"]).row(["14", "12.25"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("n") && lines[0].contains("value"));
        assert!(lines[2].ends_with("1.50"));
        assert!(lines[3].ends_with("12.25"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        Table::new(["a"]).row(["1", "2"]);
    }

    #[test]
    fn csv_file_write() {
        let dir = std::env::temp_dir().join("gcube_table_test");
        let path = dir.join("t.csv");
        let mut t = Table::new(["x"]);
        t.row(["9"]);
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n9\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn num_formatting() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(f64::NEG_INFINITY, 2), "-");
        assert_eq!(num(f64::NAN, 1), "-");
    }
}
