//! Performance trajectory of the routing hot path, written to
//! `BENCH_routing.json` (workspace root, `GCUBE_RESULTS_DIR`-aware).
//!
//! Measures with plain wall-clock timers (no Criterion harness) so it can
//! run in CI and leave a machine-readable record:
//!
//! * route-planning throughput at `n = 12`, uncached vs plan-cached FFGCR
//!   (the ISSUE's ≥2x criterion) and FTGCR under a small fault set;
//! * the plan-cache hit rate over the measured pair stream;
//! * full-engine cycles per second at `n ∈ {10, 12, 14}` with the cached
//!   strategy.

use std::fmt::Write as _;
use std::time::Instant;

use gcube_bench::{quick, results_dir};
use gcube_routing::{ffgcr, ftgcr, FaultSet, PlanCache};
use gcube_sim::{CachedFfgcr, MemorySink, NullSink, SimConfig, Simulator, TelemetryCollector};
use gcube_topology::{GaussianCube, LinkId, NodeId};

/// Deterministic pair stream covering many ending-class combinations.
fn pair(n: u32, i: u64) -> (NodeId, NodeId) {
    let mask = (1u64 << n) - 1;
    let x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (NodeId(x & mask), NodeId((x >> 21) & mask))
}

struct RoutePlanning {
    pairs: u64,
    uncached_per_sec: f64,
    cached_per_sec: f64,
    speedup: f64,
    cache_hit_rate: f64,
}

fn measure_route_planning(n: u32, pairs: u64, faulty: bool) -> RoutePlanning {
    let gc = GaussianCube::new(n, 4).unwrap();
    let mut faults = FaultSet::new();
    if faulty {
        faults.add_node(NodeId(77));
        faults.add_link(LinkId::new(NodeId(1 << (n - 1)), 0));
    }

    let t0 = Instant::now();
    for i in 0..pairs {
        let (s, d) = pair(n, i + 1);
        if faulty {
            let _ = std::hint::black_box(ftgcr::route(&gc, &faults, s, d));
        } else {
            std::hint::black_box(ffgcr::route(&gc, s, d).unwrap());
        }
    }
    let uncached = t0.elapsed().as_secs_f64();

    let cache = PlanCache::new(&gc);
    let t1 = Instant::now();
    for i in 0..pairs {
        let (s, d) = pair(n, i + 1);
        if faulty {
            let _ = std::hint::black_box(ftgcr::route_cached(&gc, &faults, s, d, &cache));
        } else {
            std::hint::black_box(ffgcr::route_cached(&gc, s, d, &cache).unwrap());
        }
    }
    let cached = t1.elapsed().as_secs_f64();

    let stats = cache.stats();
    RoutePlanning {
        pairs,
        uncached_per_sec: pairs as f64 / uncached,
        cached_per_sec: pairs as f64 / cached,
        speedup: uncached / cached,
        cache_hit_rate: stats.hit_rate(),
    }
}

struct EnginePoint {
    n: u32,
    cycles: u64,
    cycles_per_sec: f64,
}

fn measure_engine(n: u32, inject: u64) -> EnginePoint {
    let algo = CachedFfgcr::new();
    let cfg = SimConfig::new(n, 4)
        .with_cycles(inject, inject * 10, 0)
        .with_rate(0.005);
    let t0 = Instant::now();
    let m = Simulator::new(cfg, &algo).run();
    let elapsed = t0.elapsed().as_secs_f64();
    EnginePoint {
        n,
        cycles: m.cycles,
        cycles_per_sec: m.cycles as f64 / elapsed,
    }
}

struct TracingCost {
    n: u32,
    untraced_cycles_per_sec: f64,
    traced_cycles_per_sec: f64,
    events: u64,
    overhead_ratio: f64,
}

/// Cost of the flight recorder: the same workload through the zero-cost
/// `NullSink` path (`run_report`) and through a recording `MemorySink`.
/// The untraced figure is the one that must stay within noise of the
/// committed `BENCH_routing.json` engine numbers.
fn measure_tracing(n: u32, inject: u64) -> TracingCost {
    let algo = CachedFfgcr::new();
    let cfg = || {
        SimConfig::new(n, 4)
            .with_cycles(inject, inject * 10, 0)
            .with_rate(0.005)
    };
    // Warm the plan cache so neither side pays first-run planning.
    Simulator::new(cfg(), &algo).run();

    let t0 = Instant::now();
    let m = Simulator::new(cfg(), &algo).run_report().metrics;
    let untraced = t0.elapsed().as_secs_f64();

    let mut sink = MemorySink::new();
    let t1 = Instant::now();
    Simulator::new(cfg(), &algo).run_traced(&mut sink);
    let traced = t1.elapsed().as_secs_f64();

    TracingCost {
        n,
        untraced_cycles_per_sec: m.cycles as f64 / untraced,
        traced_cycles_per_sec: m.cycles as f64 / traced,
        events: sink.events().len() as u64,
        overhead_ratio: traced / untraced,
    }
}

struct TelemetryCost {
    n: u32,
    off_cycles_per_sec: f64,
    on_cycles_per_sec: f64,
    samples: u64,
    overhead_ratio: f64,
}

/// Cost of the telemetry collector: the same workload through the bare
/// report path and through `run_instrumented` with a live collector
/// sampling every 50 cycles. The off figure shares the engine numbers'
/// noise budget; the on figure is what `--telemetry` costs.
fn measure_telemetry(n: u32, inject: u64) -> TelemetryCost {
    let algo = CachedFfgcr::new();
    let cfg = || {
        SimConfig::new(n, 4)
            .with_cycles(inject, inject * 10, 0)
            .with_rate(0.005)
            .with_telemetry_interval(50)
    };
    // Warm the plan cache so neither side pays first-run planning.
    Simulator::new(cfg(), &algo).run();

    let t0 = Instant::now();
    let m = Simulator::new(cfg(), &algo).run_report().metrics;
    let off = t0.elapsed().as_secs_f64();

    let sim = Simulator::new(cfg(), &algo);
    let mut telem = TelemetryCollector::new(sim.cube(), 50);
    let t1 = Instant::now();
    sim.run_instrumented(&mut NullSink, &mut telem);
    let on = t1.elapsed().as_secs_f64();

    TelemetryCost {
        n,
        off_cycles_per_sec: m.cycles as f64 / off,
        on_cycles_per_sec: m.cycles as f64 / on,
        samples: telem.samples().count() as u64,
        overhead_ratio: on / off,
    }
}

fn json_route(out: &mut String, key: &str, r: &RoutePlanning) {
    let _ = write!(
        out,
        "  \"{key}\": {{\n    \"pairs\": {},\n    \"uncached_routes_per_sec\": {:.0},\n    \"cached_routes_per_sec\": {:.0},\n    \"speedup\": {:.2},\n    \"cache_hit_rate\": {:.4}\n  }}",
        r.pairs, r.uncached_per_sec, r.cached_per_sec, r.speedup, r.cache_hit_rate
    );
}

fn main() {
    let pairs: u64 = if quick() { 20_000 } else { 100_000 };
    let n = 12u32;

    println!("route planning on GC({n}, 4), {pairs} pairs per mode\n");
    let ff = measure_route_planning(n, pairs, false);
    println!(
        "  FFGCR  uncached {:>10.0}/s  cached {:>10.0}/s  speedup {:.2}x  hit rate {:.2}%",
        ff.uncached_per_sec,
        ff.cached_per_sec,
        ff.speedup,
        100.0 * ff.cache_hit_rate
    );
    let ft = measure_route_planning(n, pairs, true);
    println!(
        "  FTGCR  uncached {:>10.0}/s  cached {:>10.0}/s  speedup {:.2}x  hit rate {:.2}%",
        ft.uncached_per_sec,
        ft.cached_per_sec,
        ft.speedup,
        100.0 * ft.cache_hit_rate
    );

    let inject = if quick() { 30 } else { 100 };
    println!("\nfull engine, cached FFGCR, {inject} inject cycles");
    let engine: Vec<EnginePoint> = [10u32, 12, 14]
        .iter()
        .map(|&n| {
            let p = measure_engine(n, inject);
            println!(
                "  n={:<2}  {:>6} cycles  {:>10.0} cycles/s",
                p.n, p.cycles, p.cycles_per_sec
            );
            p
        })
        .collect();

    let tracing = measure_tracing(12, inject);
    println!(
        "\ntracing cost, n=12: off {:>10.0} cycles/s  on {:>10.0} cycles/s  \
         ({} events, {:.2}x)",
        tracing.untraced_cycles_per_sec,
        tracing.traced_cycles_per_sec,
        tracing.events,
        tracing.overhead_ratio
    );

    let telemetry = measure_telemetry(12, inject);
    println!(
        "telemetry cost, n=12: off {:>10.0} cycles/s  on {:>10.0} cycles/s  \
         ({} samples, {:.2}x)",
        telemetry.off_cycles_per_sec,
        telemetry.on_cycles_per_sec,
        telemetry.samples,
        telemetry.overhead_ratio
    );

    // Hand-rolled JSON: the workspace has no serde, and the schema is flat.
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"bench_trajectory\",");
    let _ = writeln!(out, "  \"cube\": \"GC({n}, 4)\",");
    let _ = writeln!(out, "  \"quick\": {},", quick());
    json_route(&mut out, "ffgcr", &ff);
    out.push_str(",\n");
    json_route(&mut out, "ftgcr_two_faults", &ft);
    out.push_str(",\n  \"engine_cached_ffgcr\": [\n");
    for (i, p) in engine.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"n\": {}, \"cycles\": {}, \"cycles_per_sec\": {:.0}}}{}",
            p.n,
            p.cycles,
            p.cycles_per_sec,
            if i + 1 < engine.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = write!(
        out,
        "  \"tracing\": {{\n    \"n\": {},\n    \"untraced_cycles_per_sec\": {:.0},\n    \"traced_cycles_per_sec\": {:.0},\n    \"events\": {},\n    \"overhead_ratio\": {:.3}\n  }},\n",
        tracing.n,
        tracing.untraced_cycles_per_sec,
        tracing.traced_cycles_per_sec,
        tracing.events,
        tracing.overhead_ratio
    );
    let _ = write!(
        out,
        "  \"telemetry\": {{\n    \"n\": {},\n    \"off_cycles_per_sec\": {:.0},\n    \"on_cycles_per_sec\": {:.0},\n    \"samples\": {},\n    \"overhead_ratio\": {:.3}\n  }}\n}}\n",
        telemetry.n,
        telemetry.off_cycles_per_sec,
        telemetry.on_cycles_per_sec,
        telemetry.samples,
        telemetry.overhead_ratio
    );

    let dir = results_dir();
    let path = dir
        .parent()
        .map(|ws| ws.join("BENCH_routing.json"))
        .unwrap_or_else(|| dir.join("BENCH_routing.json"));
    std::fs::write(&path, &out).expect("write BENCH_routing.json");
    println!("\nwrote {}", path.display());

    assert!(
        ff.speedup >= 2.0,
        "ISSUE acceptance: cached FFGCR planning must be >= 2x at n = 12, got {:.2}x",
        ff.speedup
    );
}
