//! Performance trajectory of the routing hot path, written to
//! `BENCH_routing.json` (workspace root, `GCUBE_RESULTS_DIR`-aware).
//!
//! Measures with plain wall-clock timers (no Criterion harness) so it can
//! run in CI and leave a machine-readable record:
//!
//! * route-planning throughput at `n = 12`, uncached vs plan-cached FFGCR
//!   (the ISSUE's ≥2x criterion) and FTGCR under a small fault set;
//! * the plan-cache hit rate over the measured pair stream;
//! * full-engine cycles per second at `n ∈ {10, 12, 14}` with the cached
//!   strategy.

use std::fmt::Write as _;
use std::time::Instant;

use gcube_bench::{
    collective_churn_sweep, collective_scenario_config, quick, results_dir, survival_churn_sweep,
    survival_head_to_head, survival_rates, survival_ratio, COLLECTIVE_FAULT_CYCLE,
    SURVIVAL_CLUSTER_FAULTS,
};
use gcube_routing::{ffgcr, ftgcr, FaultSet, PlanCache};
use gcube_sim::{
    CachedFfgcr, CachedFtgcr, FaultTolerantGcr, MemorySink, MultiTreeStrategy, ProfileCollector,
    SimConfig, Simulator, TelemetryCollector,
};
use gcube_topology::{GaussianCube, LinkId, NodeId};

/// Deterministic pair stream covering many ending-class combinations.
fn pair(n: u32, i: u64) -> (NodeId, NodeId) {
    let mask = (1u64 << n) - 1;
    let x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (NodeId(x & mask), NodeId((x >> 21) & mask))
}

struct RoutePlanning {
    pairs: u64,
    uncached_per_sec: f64,
    cached_per_sec: f64,
    speedup: f64,
    cache_hit_rate: f64,
}

fn measure_route_planning(n: u32, pairs: u64, faulty: bool) -> RoutePlanning {
    let gc = GaussianCube::new(n, 4).unwrap();
    let mut faults = FaultSet::new();
    if faulty {
        faults.add_node(NodeId(77));
        faults.add_link(LinkId::new(NodeId(1 << (n - 1)), 0));
    }

    let t0 = Instant::now();
    for i in 0..pairs {
        let (s, d) = pair(n, i + 1);
        if faulty {
            let _ = std::hint::black_box(ftgcr::route(&gc, &faults, s, d));
        } else {
            std::hint::black_box(ffgcr::route(&gc, s, d).unwrap());
        }
    }
    let uncached = t0.elapsed().as_secs_f64();

    let cache = PlanCache::new(&gc);
    let t1 = Instant::now();
    for i in 0..pairs {
        let (s, d) = pair(n, i + 1);
        if faulty {
            let _ = std::hint::black_box(ftgcr::route_cached(&gc, &faults, s, d, &cache));
        } else {
            std::hint::black_box(ffgcr::route_cached(&gc, s, d, &cache).unwrap());
        }
    }
    let cached = t1.elapsed().as_secs_f64();

    let stats = cache.stats();
    RoutePlanning {
        pairs,
        uncached_per_sec: pairs as f64 / uncached,
        cached_per_sec: pairs as f64 / cached,
        speedup: uncached / cached,
        cache_hit_rate: stats.hit_rate(),
    }
}

struct EnginePoint {
    n: u32,
    cycles: u64,
    cycles_per_sec: f64,
}

fn measure_engine(n: u32, inject: u64) -> EnginePoint {
    let algo = CachedFfgcr::new();
    let cfg = SimConfig::new(n, 4)
        .with_cycles(inject, inject * 10, 0)
        .with_rate(0.005);
    let t0 = Instant::now();
    let m = Simulator::new(cfg, &algo).session().run().metrics;
    let elapsed = t0.elapsed().as_secs_f64();
    EnginePoint {
        n,
        cycles: m.cycles,
        cycles_per_sec: m.cycles as f64 / elapsed,
    }
}

/// Median of an odd-or-even handful of wall times; robust against one
/// stray scheduler hiccup where a mean is not.
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Measure two modes of the same workload fairly: warm both once
/// (unmeasured), then alternate A,B,A,B,… and take each mode's median.
/// The previous run-all-A-then-all-B order systematically credited B
/// with warmer caches and a trained branch predictor — it once reported
/// telemetry *on* as faster than off (`overhead_ratio` 0.863).
fn interleaved_secs(reps: usize, mut run_a: impl FnMut(), mut run_b: impl FnMut()) -> (f64, f64) {
    run_a();
    run_b();
    let mut a = Vec::with_capacity(reps);
    let mut b = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        run_a();
        a.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        run_b();
        b.push(t.elapsed().as_secs_f64());
    }
    (median(&mut a), median(&mut b))
}

struct TracingCost {
    n: u32,
    untraced_cycles_per_sec: f64,
    traced_cycles_per_sec: f64,
    events: u64,
    overhead_ratio: f64,
}

/// Cost of the flight recorder: the same workload through the zero-cost
/// no-sink session and through a recording `MemorySink`, interleaved.
/// The untraced figure is the one that must stay within noise of the
/// committed `BENCH_routing.json` engine numbers.
fn measure_tracing(n: u32, inject: u64, reps: usize) -> TracingCost {
    let algo = CachedFfgcr::new();
    let cfg = || {
        SimConfig::new(n, 4)
            .with_cycles(inject, inject * 10, 0)
            .with_rate(0.005)
    };
    let mut cycles = 0u64;
    let mut events = 0u64;
    let (untraced, traced) = interleaved_secs(
        reps,
        || {
            cycles = Simulator::new(cfg(), &algo).session().run().metrics.cycles;
        },
        || {
            let mut sink = MemorySink::new();
            Simulator::new(cfg(), &algo)
                .session()
                .trace(&mut sink)
                .run();
            events = sink.events().len() as u64;
        },
    );

    TracingCost {
        n,
        untraced_cycles_per_sec: cycles as f64 / untraced,
        traced_cycles_per_sec: cycles as f64 / traced,
        events,
        overhead_ratio: traced / untraced,
    }
}

struct TelemetryCost {
    n: u32,
    off_cycles_per_sec: f64,
    on_cycles_per_sec: f64,
    samples: u64,
    overhead_ratio: f64,
}

/// Cost of the telemetry collector: the same workload through the bare
/// session and with a live collector attached sampling every 50 cycles,
/// interleaved. The off figure shares the engine numbers' noise budget;
/// the on figure is what `--telemetry` costs.
fn measure_telemetry(n: u32, inject: u64, reps: usize) -> TelemetryCost {
    let algo = CachedFfgcr::new();
    let cfg = || {
        SimConfig::new(n, 4)
            .with_cycles(inject, inject * 10, 0)
            .with_rate(0.005)
            .with_telemetry_interval(50)
    };
    let mut cycles = 0u64;
    let mut samples = 0u64;
    let (off, on) = interleaved_secs(
        reps,
        || {
            cycles = Simulator::new(cfg(), &algo).session().run().metrics.cycles;
        },
        || {
            let sim = Simulator::new(cfg(), &algo);
            let mut telem = TelemetryCollector::new(sim.cube(), 50);
            sim.session().telemetry(&mut telem).run();
            samples = telem.samples().count() as u64;
        },
    );

    TelemetryCost {
        n,
        off_cycles_per_sec: cycles as f64 / off,
        on_cycles_per_sec: cycles as f64 / on,
        samples,
        overhead_ratio: on / off,
    }
}

struct ProfilerCost {
    n: u32,
    off_cycles_per_sec: f64,
    on_cycles_per_sec: f64,
    samples: u64,
    overhead_ratio: f64,
}

/// Cost of the profiler: the same workload through the bare session
/// (the `NullProfiler` monomorphisation — the off path that must stay
/// free) and with a `ProfileCollector` attached sampling every 50
/// cycles, interleaved. The profiler turns the phase timers on, so the
/// on figure bounds what `--profile` costs.
fn measure_profiler(n: u32, inject: u64, reps: usize) -> ProfilerCost {
    let algo = CachedFfgcr::new();
    let cfg = || {
        SimConfig::new(n, 4)
            .with_cycles(inject, inject * 10, 0)
            .with_rate(0.005)
            .with_telemetry_interval(50)
    };
    let mut cycles = 0u64;
    let mut samples = 0u64;
    let (off, on) = interleaved_secs(
        reps,
        || {
            cycles = Simulator::new(cfg(), &algo).session().run().metrics.cycles;
        },
        || {
            let sim = Simulator::new(cfg(), &algo);
            let mut prof = ProfileCollector::new(1 << sim.cube().alpha(), 50);
            sim.session().profile(&mut prof).run();
            samples = prof.samples().count() as u64;
        },
    );

    ProfilerCost {
        n,
        off_cycles_per_sec: cycles as f64 / off,
        on_cycles_per_sec: cycles as f64 / on,
        samples,
        overhead_ratio: on / off,
    }
}

const PARALLEL_THREADS: [usize; 3] = [1, 2, 4];

struct ParallelSpeedup {
    cycles: u64,
    /// Raw wall seconds per thread count — the primary record; ratios
    /// are derived, so a suspicious speedup can be audited from the raw
    /// clock readings.
    wall_secs: [f64; 3],
    /// `cycles/sec` at 1, 2 and 4 threads (same config, same seed — the
    /// shard engine's results are bitwise identical, only the clock moves).
    cycles_per_sec: [f64; 3],
    /// Cores the host actually grants; wall-clock speedup is bounded by it.
    host_cores: usize,
}

impl ParallelSpeedup {
    fn speedup(&self, i: usize) -> f64 {
        self.cycles_per_sec[i] / self.cycles_per_sec[0]
    }

    fn speedup_4x(&self) -> f64 {
        self.speedup(2)
    }
}

/// Shard-engine scaling on `GC(10, 4)`: a planning-heavy workload —
/// uncached FTGCR under static faults at high load — run at 1, 2 and 4
/// threads, best-of-`reps` per thread count with a warmup pass first.
/// Planning is stolen across all threads at ending-class granularity,
/// so the dominant cost parallelises up to the 4 ending classes.
fn measure_parallel(inject: u64, reps: usize) -> ParallelSpeedup {
    let algo = FaultTolerantGcr;
    let cfg = SimConfig::new(10, 4)
        .with_cycles(inject, inject * 10, 0)
        .with_rate(0.3)
        .with_faults(2)
        .with_seed(0xbe9c);
    let mut cycles = 0;
    let mut wall_secs = [0.0f64; 3];
    // Warmup: page in the code and the allocator before any clock runs.
    Simulator::new(cfg.clone(), &algo).session().run();
    for (i, threads) in PARALLEL_THREADS.into_iter().enumerate() {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let sim = Simulator::new(cfg.clone(), &algo);
            let t0 = Instant::now();
            let m = sim.session().threads(threads).run().metrics;
            best = best.min(t0.elapsed().as_secs_f64());
            cycles = m.cycles;
        }
        wall_secs[i] = best;
    }
    let mut cycles_per_sec = [0.0f64; 3];
    for i in 0..3 {
        cycles_per_sec[i] = cycles as f64 / wall_secs[i];
    }
    ParallelSpeedup {
        cycles,
        wall_secs,
        cycles_per_sec,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

struct MillionNode {
    n: u32,
    nodes: u64,
    cycles: u64,
    injected: u64,
    delivered: u64,
    wall_secs: f64,
    cycles_per_sec: f64,
}

/// A completed million-node run: `GC(20, 4)` end to end through the
/// engine. The `GaussianCube` handle is two integers, the SoA queues are
/// bitsets plus flat arrays, and the occupancy scan touches only words
/// with live packets — so a 2^20-node network is a routine workload, not
/// a stress test. Trickle injection keeps the packet population small
/// while every hop still crosses the full 20-dimension address space.
fn measure_million_node(inject: u64) -> MillionNode {
    let algo = CachedFfgcr::new();
    let cfg = SimConfig::new(20, 4)
        .with_cycles(inject, inject * 10, 0)
        .with_rate(0.0002);
    let sim = Simulator::new(cfg, &algo);
    let t0 = Instant::now();
    let m = sim.session().run().metrics;
    let wall_secs = t0.elapsed().as_secs_f64();
    MillionNode {
        n: 20,
        nodes: m.nodes,
        cycles: m.cycles,
        injected: m.injected_total,
        delivered: m.delivered_total,
        wall_secs,
        cycles_per_sec: m.cycles as f64 / wall_secs,
    }
}

struct Survival {
    clustered_faults: usize,
    ftgcr_clustered: f64,
    multitree_clustered: f64,
    tree_switches: u64,
    tree_exhausted: u64,
    rates: [f64; 3],
    ftgcr_drop: [f64; 3],
    multitree_drop: [f64; 3],
}

/// The ISSUE's survival record: delivery past the Theorem-3 budget on the
/// canonical clustered scenario, plus drop ratio vs fault-arrival rate
/// for both strategies (identical configs and seeds, so the curves
/// differ only by the router).
fn measure_survival() -> Survival {
    let h = survival_head_to_head();
    let drop_of = |p: &gcube_sim::ChurnPoint| 1.0 - survival_ratio(&p.report.metrics);
    let ftgcr_runs = survival_churn_sweep(&CachedFtgcr::new());
    let multitree_runs = survival_churn_sweep(&MultiTreeStrategy::new(2));
    let mut ftgcr_drop = [0.0f64; 3];
    let mut multitree_drop = [0.0f64; 3];
    for i in 0..3 {
        ftgcr_drop[i] = drop_of(&ftgcr_runs[i]);
        multitree_drop[i] = drop_of(&multitree_runs[i]);
    }
    Survival {
        clustered_faults: h.faults,
        ftgcr_clustered: survival_ratio(&h.ftgcr.report.metrics),
        multitree_clustered: survival_ratio(&h.multitree.report.metrics),
        tree_switches: h.multitree.report.metrics.tree_switches,
        tree_exhausted: h.multitree.report.metrics.tree_exhausted,
        rates: survival_rates(),
        ftgcr_drop,
        multitree_drop,
    }
}

struct CollectiveCoverage {
    ops: u64,
    injected: u64,
    delivered: u64,
    coverage: f64,
    /// Aggregate coverage of operations launched *after* the clustered
    /// burst — the number the re-graft has to defend. (Waves already in
    /// flight when the burst lands are beyond any tree repair; they dent
    /// the overall figure only.)
    post_fault_coverage: f64,
    /// Worst single post-fault operation.
    post_fault_min_coverage: f64,
    regrafts: u64,
    rebuilds: u64,
    lost_nodes: u64,
    rates: [f64; 3],
    churn_coverage: [f64; 3],
}

/// The collective acceptance scenario: broadcast over the repaired tree
/// on the canonical clustered fault set, plus coverage vs fault-arrival
/// rate under transient churn.
fn measure_collective() -> CollectiveCoverage {
    let run = gcube_sim::run_churn_sweep(&[collective_scenario_config()], &CachedFtgcr::new(), 1)
        .remove(0);
    let m = run.report.metrics;
    let post_fault: Vec<_> = run
        .report
        .collectives
        .iter()
        .filter(|s| s.started >= COLLECTIVE_FAULT_CYCLE)
        .collect();
    let (exp, dlv) = post_fault
        .iter()
        .fold((0u64, 0u64), |(e, d), s| (e + s.expected, d + s.delivered));
    let post_fault_coverage = if exp == 0 {
        1.0
    } else {
        dlv as f64 / exp as f64
    };
    let post_fault_min_coverage = post_fault
        .iter()
        .map(|s| s.coverage())
        .fold(1.0f64, f64::min);
    let churn = collective_churn_sweep(&CachedFtgcr::new());
    let mut churn_coverage = [0.0f64; 3];
    for i in 0..3 {
        churn_coverage[i] = churn[i].report.metrics.collective_coverage();
    }
    CollectiveCoverage {
        ops: m.collective_ops,
        injected: m.collective_injected,
        delivered: m.collective_delivered,
        coverage: m.collective_coverage(),
        post_fault_coverage,
        post_fault_min_coverage,
        regrafts: m.tree_regrafts,
        rebuilds: m.tree_rebuilds,
        lost_nodes: m.tree_lost_nodes,
        rates: survival_rates(),
        churn_coverage,
    }
}

fn json_route(out: &mut String, key: &str, r: &RoutePlanning) {
    let _ = write!(
        out,
        "  \"{key}\": {{\n    \"pairs\": {},\n    \"uncached_routes_per_sec\": {:.0},\n    \"cached_routes_per_sec\": {:.0},\n    \"speedup\": {:.2},\n    \"cache_hit_rate\": {:.4}\n  }}",
        r.pairs, r.uncached_per_sec, r.cached_per_sec, r.speedup, r.cache_hit_rate
    );
}

fn main() {
    let pairs: u64 = if quick() { 20_000 } else { 100_000 };
    let n = 12u32;

    println!("route planning on GC({n}, 4), {pairs} pairs per mode\n");
    let ff = measure_route_planning(n, pairs, false);
    println!(
        "  FFGCR  uncached {:>10.0}/s  cached {:>10.0}/s  speedup {:.2}x  hit rate {:.2}%",
        ff.uncached_per_sec,
        ff.cached_per_sec,
        ff.speedup,
        100.0 * ff.cache_hit_rate
    );
    let ft = measure_route_planning(n, pairs, true);
    println!(
        "  FTGCR  uncached {:>10.0}/s  cached {:>10.0}/s  speedup {:.2}x  hit rate {:.2}%",
        ft.uncached_per_sec,
        ft.cached_per_sec,
        ft.speedup,
        100.0 * ft.cache_hit_rate
    );

    let inject = if quick() { 30 } else { 100 };
    println!("\nfull engine, cached FFGCR, {inject} inject cycles");
    let engine: Vec<EnginePoint> = [10u32, 12, 14]
        .iter()
        .map(|&n| {
            let p = measure_engine(n, inject);
            println!(
                "  n={:<2}  {:>6} cycles  {:>10.0} cycles/s",
                p.n, p.cycles, p.cycles_per_sec
            );
            p
        })
        .collect();

    let reps = if quick() { 2 } else { 3 };
    let tracing = measure_tracing(12, inject, reps);
    println!(
        "\ntracing cost, n=12: off {:>10.0} cycles/s  on {:>10.0} cycles/s  \
         ({} events, {:.2}x, median of {reps} interleaved)",
        tracing.untraced_cycles_per_sec,
        tracing.traced_cycles_per_sec,
        tracing.events,
        tracing.overhead_ratio
    );

    let telemetry = measure_telemetry(12, inject, reps);
    println!(
        "telemetry cost, n=12: off {:>10.0} cycles/s  on {:>10.0} cycles/s  \
         ({} samples, {:.2}x, median of {reps} interleaved)",
        telemetry.off_cycles_per_sec,
        telemetry.on_cycles_per_sec,
        telemetry.samples,
        telemetry.overhead_ratio
    );

    let profiler = measure_profiler(12, inject, reps);
    println!(
        "profiler cost, n=12: off {:>10.0} cycles/s  on {:>10.0} cycles/s  \
         ({} windows, {:.2}x, median of {reps} interleaved)",
        profiler.off_cycles_per_sec,
        profiler.on_cycles_per_sec,
        profiler.samples,
        profiler.overhead_ratio
    );

    let parallel = measure_parallel(if quick() { 40 } else { 120 }, reps);
    println!(
        "\nshard engine, GC(10, 4), uncached FTGCR under faults ({} cycles):",
        parallel.cycles
    );
    for (i, threads) in PARALLEL_THREADS.into_iter().enumerate() {
        println!(
            "  threads={threads}  {:>8.4}s wall  {:>10.0} cycles/s{}",
            parallel.wall_secs[i],
            parallel.cycles_per_sec[i],
            if i == 0 {
                String::new()
            } else {
                format!("  ({:.2}x)", parallel.speedup(i))
            }
        );
    }
    // A parallel run slower than sequential is a defect on every host —
    // even one core should only cost barrier overhead, not a slowdown.
    // Warn loudly always; the hard assert below fires where 4 threads
    // can genuinely run in parallel.
    for (i, threads) in PARALLEL_THREADS.into_iter().enumerate().skip(1) {
        if parallel.speedup(i) < 1.0 {
            eprintln!(
                "WARNING: shard engine SLOWDOWN at {threads} threads: {:.2}x \
                 ({:.4}s vs {:.4}s sequential) on a {}-core host",
                parallel.speedup(i),
                parallel.wall_secs[i],
                parallel.wall_secs[0],
                parallel.host_cores
            );
        }
    }

    let million = measure_million_node(if quick() { 10 } else { 25 });
    println!(
        "\nmillion-node run, GC(20, 4) ({} nodes), cached FFGCR trickle:",
        million.nodes
    );
    println!(
        "  {} cycles in {:.2}s  ({:.0} cycles/s, {} injected, {} delivered)",
        million.cycles,
        million.wall_secs,
        million.cycles_per_sec,
        million.injected,
        million.delivered
    );

    let survival = measure_survival();
    println!(
        "\nsurvival past the Theorem-3 budget, GC(8, 2), {} clustered faults:",
        survival.clustered_faults
    );
    println!(
        "  clustered  ftgcr {:.4}  multitree {:.4}  ({} switches, {} fallbacks)",
        survival.ftgcr_clustered,
        survival.multitree_clustered,
        survival.tree_switches,
        survival.tree_exhausted
    );
    for (i, p) in survival.rates.iter().enumerate() {
        println!(
            "  churn p={:.2}  drop ratio  ftgcr {:.4}  multitree {:.4}",
            p, survival.ftgcr_drop[i], survival.multitree_drop[i]
        );
    }

    let coll = measure_collective();
    println!(
        "\ncollective broadcast, GC(8, 2), {SURVIVAL_CLUSTER_FAULTS} clustered A-links at cycle {COLLECTIVE_FAULT_CYCLE}:"
    );
    println!(
        "  {} ops  {}/{} wave packets delivered  coverage {:.4} \
         (post-fault {:.4}, min {:.4})",
        coll.ops,
        coll.delivered,
        coll.injected,
        coll.coverage,
        coll.post_fault_coverage,
        coll.post_fault_min_coverage
    );
    println!(
        "  repairs: {} re-grafts, {} rebuilds, {} nodes lost",
        coll.regrafts, coll.rebuilds, coll.lost_nodes
    );
    for (i, p) in coll.rates.iter().enumerate() {
        println!(
            "  churn p={:.2}  broadcast coverage {:.4}",
            p, coll.churn_coverage[i]
        );
    }

    // Hand-rolled JSON: the workspace has no serde, and the schema is flat.
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"bench_trajectory\",");
    let _ = writeln!(out, "  \"cube\": \"GC({n}, 4)\",");
    let _ = writeln!(out, "  \"quick\": {},", quick());
    json_route(&mut out, "ffgcr", &ff);
    out.push_str(",\n");
    json_route(&mut out, "ftgcr_two_faults", &ft);
    out.push_str(",\n  \"engine_cached_ffgcr\": [\n");
    for (i, p) in engine.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"n\": {}, \"cycles\": {}, \"cycles_per_sec\": {:.0}}}{}",
            p.n,
            p.cycles,
            p.cycles_per_sec,
            if i + 1 < engine.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = write!(
        out,
        "  \"tracing\": {{\n    \"n\": {},\n    \"untraced_cycles_per_sec\": {:.0},\n    \"traced_cycles_per_sec\": {:.0},\n    \"events\": {},\n    \"overhead_ratio\": {:.3}\n  }},\n",
        tracing.n,
        tracing.untraced_cycles_per_sec,
        tracing.traced_cycles_per_sec,
        tracing.events,
        tracing.overhead_ratio
    );
    let _ = write!(
        out,
        "  \"telemetry\": {{\n    \"n\": {},\n    \"off_cycles_per_sec\": {:.0},\n    \"on_cycles_per_sec\": {:.0},\n    \"samples\": {},\n    \"overhead_ratio\": {:.3}\n  }},\n",
        telemetry.n,
        telemetry.off_cycles_per_sec,
        telemetry.on_cycles_per_sec,
        telemetry.samples,
        telemetry.overhead_ratio
    );
    let _ = write!(
        out,
        "  \"profile_overhead\": {{\n    \"n\": {},\n    \"off_cycles_per_sec\": {:.0},\n    \"on_cycles_per_sec\": {:.0},\n    \"samples\": {},\n    \"overhead_ratio\": {:.3}\n  }},\n",
        profiler.n,
        profiler.off_cycles_per_sec,
        profiler.on_cycles_per_sec,
        profiler.samples,
        profiler.overhead_ratio
    );
    let _ = write!(
        out,
        "  \"parallel_speedup\": {{\n    \"cube\": \"GC(10, 4)\",\n    \"workload\": \"uncached FTGCR, 2 static faults, rate 0.3\",\n    \"cycles\": {},\n    \"host_cores\": {},\n    \"wall_secs_1_thread\": {:.4},\n    \"wall_secs_2_threads\": {:.4},\n    \"wall_secs_4_threads\": {:.4},\n    \"cycles_per_sec_1_thread\": {:.0},\n    \"cycles_per_sec_2_threads\": {:.0},\n    \"cycles_per_sec_4_threads\": {:.0},\n    \"speedup_2x\": {:.2},\n    \"speedup_4x\": {:.2}\n  }},\n",
        parallel.cycles,
        parallel.host_cores,
        parallel.wall_secs[0],
        parallel.wall_secs[1],
        parallel.wall_secs[2],
        parallel.cycles_per_sec[0],
        parallel.cycles_per_sec[1],
        parallel.cycles_per_sec[2],
        parallel.speedup(1),
        parallel.speedup_4x()
    );
    let _ = write!(
        out,
        "  \"million_node\": {{\n    \"cube\": \"GC({}, 4)\",\n    \"nodes\": {},\n    \"cycles\": {},\n    \"injected\": {},\n    \"delivered\": {},\n    \"wall_secs\": {:.3},\n    \"cycles_per_sec\": {:.0}\n  }},\n",
        million.n,
        million.nodes,
        million.cycles,
        million.injected,
        million.delivered,
        million.wall_secs,
        million.cycles_per_sec
    );
    let _ = write!(
        out,
        "  \"multitree_survival\": {{\n    \"cube\": \"GC(8, 2)\",\n    \"clustered_faults\": {},\n    \"ftgcr_survival_ratio\": {:.4},\n    \"multitree_survival_ratio\": {:.4},\n    \"tree_switches\": {},\n    \"tree_exhausted\": {},\n    \"churn\": [\n",
        survival.clustered_faults,
        survival.ftgcr_clustered,
        survival.multitree_clustered,
        survival.tree_switches,
        survival.tree_exhausted
    );
    for (i, p) in survival.rates.iter().enumerate() {
        let _ = writeln!(
            out,
            "      {{\"fault_rate\": {:.2}, \"ftgcr_drop_ratio\": {:.4}, \"multitree_drop_ratio\": {:.4}}}{}",
            p,
            survival.ftgcr_drop[i],
            survival.multitree_drop[i],
            if i + 1 < survival.rates.len() { "," } else { "" }
        );
    }
    out.push_str("    ]\n  },\n");
    let _ = write!(
        out,
        "  \"collective_coverage\": {{\n    \"cube\": \"GC(8, 2)\",\n    \"op\": \"broadcast\",\n    \"clustered_faults\": {},\n    \"fault_cycle\": {},\n    \"ops\": {},\n    \"injected\": {},\n    \"delivered\": {},\n    \"coverage\": {:.4},\n    \"post_fault_coverage\": {:.4},\n    \"post_fault_min_coverage\": {:.4},\n    \"tree_regrafts\": {},\n    \"tree_rebuilds\": {},\n    \"tree_lost_nodes\": {},\n    \"churn\": [\n",
        SURVIVAL_CLUSTER_FAULTS,
        COLLECTIVE_FAULT_CYCLE,
        coll.ops,
        coll.injected,
        coll.delivered,
        coll.coverage,
        coll.post_fault_coverage,
        coll.post_fault_min_coverage,
        coll.regrafts,
        coll.rebuilds,
        coll.lost_nodes
    );
    for (i, p) in coll.rates.iter().enumerate() {
        let _ = writeln!(
            out,
            "      {{\"fault_rate\": {:.2}, \"coverage\": {:.4}}}{}",
            p,
            coll.churn_coverage[i],
            if i + 1 < coll.rates.len() { "," } else { "" }
        );
    }
    out.push_str("    ]\n  }\n}\n");

    let dir = results_dir();
    let path = dir
        .parent()
        .map(|ws| ws.join("BENCH_routing.json"))
        .unwrap_or_else(|| dir.join("BENCH_routing.json"));
    std::fs::write(&path, &out).expect("write BENCH_routing.json");
    println!("\nwrote {}", path.display());

    assert!(
        survival.multitree_clustered > survival.ftgcr_clustered,
        "ISSUE acceptance: multitree must deliver strictly more than FTGCR on the \
         canonical over-budget clustered scenario, got {:.4} vs {:.4}",
        survival.multitree_clustered,
        survival.ftgcr_clustered
    );
    assert!(
        ff.speedup >= 2.0,
        "ISSUE acceptance: cached FFGCR planning must be >= 2x at n = 12, got {:.2}x",
        ff.speedup
    );
    assert!(
        coll.post_fault_coverage >= 0.99 && coll.post_fault_min_coverage >= 0.99,
        "ISSUE acceptance: re-rooting repair must restore >= 99% broadcast coverage \
         on the clustered scenario, got {:.4} post-fault ({:.4} worst op)",
        coll.post_fault_coverage,
        coll.post_fault_min_coverage
    );
    assert!(
        coll.regrafts > 0 && coll.rebuilds == 0,
        "ISSUE acceptance: the clustered link burst must be repaired by re-grafting, \
         not full rebuilds, got {} re-grafts / {} rebuilds",
        coll.regrafts,
        coll.rebuilds
    );
    assert!(
        million.delivered > 0 && million.nodes == 1 << 20,
        "ISSUE acceptance: the GC(20, 4) run must complete with deliveries, got {} \
         deliveries over {} nodes",
        million.delivered,
        million.nodes
    );
    // Wall-clock *scaling* is bounded by the cores the host grants; the
    // ratio targets are only enforceable where 4 threads can actually run
    // in parallel (the recorded host_cores field says which case this
    // was). A slowdown, however, is never acceptable: on >= 4 cores the
    // run aborts, elsewhere the loud warning above already fired.
    if parallel.host_cores >= 4 {
        assert!(
            parallel.speedup_4x() >= 1.0,
            "shard engine REGRESSION: 4 threads slower than 1 ({:.2}x) on a \
             {}-core host",
            parallel.speedup_4x(),
            parallel.host_cores
        );
        if parallel.speedup_4x() >= 3.0 {
            println!(
                "parallel target met: {:.2}x at 4 threads (target 3.0x)",
                parallel.speedup_4x()
            );
        } else {
            eprintln!(
                "WARNING: shard engine below the 3.0x @ 4 threads target: {:.2}x \
                 on a {}-core host",
                parallel.speedup_4x(),
                parallel.host_cores
            );
        }
    } else {
        println!(
            "note: host grants {} core(s); the 3.0x @ 4 threads target is \
             enforced on hosts with >= 4 cores",
            parallel.host_cores
        );
    }
}
