//! Beyond the paper: graceful degradation under fault *churn*.
//!
//! The paper evaluates FTGCR against faults frozen before injection
//! starts. This binary measures the regime the fault model actually
//! motivates — components failing (and auto-repairing) *while packets are
//! in flight*, with routing knowledge converging at the paper's claim-4
//! exchange bound. It writes two CSVs:
//!
//! - `churn_degradation.csv` — one row per fault-arrival rate: delivery
//!   ratio, drop breakdown, re-route volume, detour cost, latency, and
//!   stale-knowledge exposure;
//! - `churn_windows.csv` — the per-window delivery time series of the
//!   highest-churn run, showing dips at fault events and recovery after
//!   reconvergence.

use gcube_analysis::tables::{num, Table};
use gcube_bench::{churn_rates, churn_sweep, results_dir};

fn main() {
    let points = churn_sweep();
    let rates = churn_rates();
    assert_eq!(points.len(), rates.len());

    let mut table = Table::new([
        "churn_rate",
        "fault_events",
        "delivery_ratio",
        "drop_ratio",
        "completion_ratio",
        "ttl_expired",
        "dropped_stranded",
        "dropped_unrecoverable",
        "suppressed_injections",
        "rerouted_packets",
        "detour_hops",
        "avg_latency",
        "latency_p50",
        "latency_p95",
        "latency_p99",
        "latency_max",
        "stale_cycles",
        "reconvergences",
        "health_transitions",
        "final_health",
        "final_faults",
        "thm3_headroom",
    ]);
    let pctl = |v: Option<u64>| v.map_or_else(|| "-".into(), |x| x.to_string());
    for (rate, p) in rates.iter().zip(&points) {
        let m = p.report.metrics;
        table.row([
            num(*rate, 3),
            m.fault_events.to_string(),
            num(m.delivery_ratio(), 4),
            num(m.drop_ratio(), 4),
            num(m.completion_ratio(), 4),
            m.ttl_expired.to_string(),
            m.dropped_stranded.to_string(),
            m.dropped_unrecoverable.to_string(),
            m.suppressed_injections.to_string(),
            m.rerouted_packets.to_string(),
            m.rerouted_hops.to_string(),
            num(m.avg_latency(), 3),
            pctl(m.latency_hist.p50()),
            pctl(m.latency_hist.p95()),
            pctl(m.latency_hist.p99()),
            m.latency_hist.max().to_string(),
            m.stale_cycles.to_string(),
            m.reconvergences.to_string(),
            m.health_transitions.to_string(),
            p.report.budget.state.as_str().to_string(),
            p.report.budget.total.to_string(),
            p.report.budget.headroom_paper().to_string(),
        ]);
    }
    println!("Degradation under churn (GC(9,2), FTGCR, transient faults, paper-delay knowledge)\n");
    print!("{}", table.render());
    let path = results_dir().join("churn_degradation.csv");
    table.write_csv(&path).expect("write CSV");
    println!("\nwrote {}", path.display());

    // Time series of the most hostile run: the shape of each dip-and-recover.
    let worst = points.last().expect("sweep is non-empty");
    let mut windows = Table::new(["start", "end", "injected", "delivered", "dropped", "ratio"]);
    for w in &worst.report.windows {
        windows.row([
            w.start.to_string(),
            w.end.to_string(),
            w.injected.to_string(),
            w.delivered.to_string(),
            w.dropped.to_string(),
            num(w.delivery_ratio(), 4),
        ]);
    }
    println!(
        "\nDelivery windows at churn rate {} ({} fault events)\n",
        rates.last().unwrap(),
        worst.report.metrics.fault_events
    );
    print!("{}", windows.render());
    let path = results_dir().join("churn_windows.csv");
    windows.write_csv(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
