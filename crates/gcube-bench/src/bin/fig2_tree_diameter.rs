//! Figure 2 — diameter of the Gaussian Tree `T_m` versus `m`.

use gcube_analysis::diameter::series;
use gcube_analysis::tables::Table;
use gcube_bench::results_dir;

fn main() {
    let max_m: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    let s = series(max_m.min(20));
    let mut table = Table::new(["m", "nodes", "diameter"]);
    for p in &s {
        table.row([p.m.to_string(), p.nodes.to_string(), p.diameter.to_string()]);
    }
    println!("Figure 2 — D(T_m) vs m (exact, double BFS)\n");
    print!("{}", table.render());
    let path = results_dir().join("fig2_tree_diameter.csv");
    table.write_csv(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
