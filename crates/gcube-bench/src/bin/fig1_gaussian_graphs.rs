//! Figure 1 — the topologies of the Gaussian Graphs `G_2`, `G_3`, `G_4`.
//!
//! Prints each graph's edge list (grouped by spanning dimension) and
//! verifies the tree property (Theorem 2) on the fly.

use gcube_analysis::tables::Table;
use gcube_bench::results_dir;
use gcube_topology::{GaussianTree, NoFaults, NodeId, Topology};

fn main() {
    let mut csv = Table::new(["m", "dim", "lo", "hi"]);
    for m in 2..=4u32 {
        let t = GaussianTree::new(m).expect("small m");
        println!("G_{m}: {} nodes, {} edges", t.num_nodes(), t.num_links());
        assert!(gcube_topology::search::is_connected(&t, &NoFaults));
        assert_eq!(
            t.num_links(),
            t.num_nodes() - 1,
            "Theorem 2: G_{m} is a tree"
        );
        for dim in 0..m {
            let edges: Vec<String> = t
                .links()
                .into_iter()
                .filter(|l| l.dim == dim)
                .map(|l| {
                    let (a, b) = l.endpoints();
                    csv.row([
                        m.to_string(),
                        dim.to_string(),
                        a.0.to_string(),
                        b.0.to_string(),
                    ]);
                    format!("({} - {})", a.to_binary(m), b.to_binary(m))
                })
                .collect();
            println!("  dim {dim} ({} edges): {}", edges.len(), edges.join(" "));
        }
        // Show each node's degree for the drawing.
        let degs: Vec<String> = (0..t.num_nodes())
            .map(|v| format!("{}:{}", v, t.degree(NodeId(v))))
            .collect();
        println!("  degrees: {}\n", degs.join(" "));
    }
    let path = results_dir().join("fig1_gaussian_graphs.csv");
    csv.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
}
