//! Unified fault-tolerance metric sweep (the paper's §7 future work):
//! connectivity robustness vs. FTGCR's algorithmic robustness under `k`
//! uniform random node faults, across the modulus family.

use gcube_analysis::robustness::{algorithmic_robustness, connectivity_robustness};
use gcube_analysis::tables::{num, Table};
use gcube_bench::results_dir;
use gcube_topology::GaussianCube;

fn main() {
    let n = 8u32;
    let trials = 30;
    let mut table = Table::new([
        "M",
        "k_faults",
        "pair_connectivity",
        "fully_connected",
        "ftgcr_delivery",
        "precondition_ok",
        "mean_detour",
    ]);
    println!("Unified robustness metrics on GC({n}, M), {trials} trials per point\n");
    for &m in &[1u64, 2, 4] {
        let gc = GaussianCube::new(n, m).unwrap();
        for &k in &[1usize, 2, 4, 8, 16] {
            let conn = connectivity_robustness(&gc, k, trials, 0xb0b + m);
            let alg = algorithmic_robustness(&gc, k, trials, 12, 0xa1 ^ m);
            table.row([
                m.to_string(),
                k.to_string(),
                num(conn.pair_connectivity, 4),
                num(conn.fully_connected_ratio, 3),
                num(alg.delivery_ratio, 4),
                num(alg.precondition_ratio, 3),
                num(alg.mean_detour, 3),
            ]);
        }
    }
    print!("{}", table.render());
    let path = results_dir().join("robustness.csv");
    table.write_csv(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
