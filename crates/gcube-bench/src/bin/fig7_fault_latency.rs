//! Figure 7 — the influence of one faulty node on average latency:
//! `GC(n, 2)`, `n ∈ [5, 13]`, FTGCR, no-fault vs one faulty node.

use gcube_analysis::tables::{num, Table};
use gcube_bench::{fault_impact_sweep, results_dir};

fn main() {
    let (healthy, faulty) = fault_impact_sweep();
    let mut table = Table::new([
        "n",
        "latency_no_fault",
        "latency_one_fault",
        "hops_no_fault",
        "hops_one_fault",
    ]);
    for (h, f) in healthy.iter().zip(&faulty) {
        assert_eq!(h.config.n, f.config.n);
        table.row([
            h.config.n.to_string(),
            num(h.metrics.avg_latency(), 3),
            num(f.metrics.avg_latency(), 3),
            num(h.metrics.avg_hops(), 3),
            num(f.metrics.avg_hops(), 3),
        ]);
    }
    println!("Figure 7 — fault influence on average latency (GC(n,2), FTGCR)\n");
    print!("{}", table.render());
    let path = results_dir().join("fig7_fault_latency.csv");
    table.write_csv(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
