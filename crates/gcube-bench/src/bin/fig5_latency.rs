//! Figure 5 — average latency versus dimension in fault-free `GC(n, M)`,
//! `n ∈ [6, 14]`, `M ∈ {1, 2, 4}`, FFGCR routing.

use gcube_analysis::tables::{num, Table};
use gcube_bench::{fault_free_sweep, results_dir};

fn main() {
    let points = fault_free_sweep();
    let mut table = Table::new([
        "n",
        "M",
        "avg_latency_cycles",
        "avg_hops",
        "delivered",
        "injected",
    ]);
    for p in &points {
        table.row([
            p.config.n.to_string(),
            p.config.modulus.to_string(),
            num(p.metrics.avg_latency(), 3),
            num(p.metrics.avg_hops(), 3),
            p.metrics.delivered.to_string(),
            p.metrics.injected.to_string(),
        ]);
    }
    println!("Figure 5 — average latency vs dimension (fault-free, FFGCR)\n");
    print!("{}", table.render());
    let path = results_dir().join("fig5_latency.csv");
    table.write_csv(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
