//! Ablation: the classic saturation curve — average latency versus offered
//! load — for `GC(8, 2)` under FFGCR, across traffic patterns. Quantifies
//! where the paper's chosen operating point (low load, uniform traffic)
//! sits relative to network saturation, and how adversarial permutations
//! shift the knee.

use gcube_analysis::tables::{num, Table};
use gcube_bench::{results_dir, threads};
use gcube_sim::traffic::TrafficPattern;
use gcube_sim::{run_sweep, FaultFreeGcr, SimConfig};

fn main() {
    let rates = [0.001f64, 0.003, 0.01, 0.03, 0.06, 0.1, 0.15];
    let patterns = [
        ("uniform", TrafficPattern::Uniform),
        ("complement", TrafficPattern::BitComplement),
        ("reversal", TrafficPattern::BitReversal),
        ("transpose", TrafficPattern::Transpose),
    ];
    let mut table = Table::new([
        "pattern",
        "rate",
        "avg_latency",
        "avg_hops",
        "throughput",
        "delivered",
        "undrained",
    ]);
    for (name, pat) in patterns {
        let configs: Vec<SimConfig> = rates
            .iter()
            .map(|&r| {
                SimConfig::new(8, 2)
                    .with_cycles(400, 6_000, 50)
                    .with_rate(r)
                    .with_pattern(pat)
                    .with_seed(0x5a7 + (r * 1e6) as u64)
            })
            .collect();
        let points = run_sweep(&configs, &FaultFreeGcr, threads());
        for p in &points {
            table.row([
                name.to_string(),
                num(p.config.injection_rate, 3),
                num(p.metrics.avg_latency(), 2),
                num(p.metrics.avg_hops(), 2),
                num(p.metrics.throughput(), 4),
                p.metrics.delivered.to_string(),
                p.metrics.in_flight_at_end.to_string(),
            ]);
        }
    }
    println!("Saturation ablation — GC(8,2), FFGCR\n");
    print!("{}", table.render());
    let path = results_dir().join("ablation_saturation.csv");
    table.write_csv(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
