//! Figure 4 — `log2 T(GC(α, n))` versus dimension, `α ∈ {1, 2, 3, 4}`.

use gcube_analysis::tables::{num, Table};
use gcube_analysis::tolerance::series;
use gcube_bench::results_dir;

fn main() {
    let max_n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);
    let s = series(max_n.min(30));
    let mut table = Table::new(["n", "alpha", "T_paper", "log2_T", "T_guaranteed"]);
    for p in &s {
        table.row([
            p.n.to_string(),
            p.alpha.to_string(),
            p.t_paper.to_string(),
            num(p.log2_t_paper, 3),
            p.t_guaranteed.to_string(),
        ]);
    }
    println!("Figure 4 — log2 T(GC(α,n)) vs n (tolerable faulty links)\n");
    print!("{}", table.render());
    let path = results_dir().join("fig4_max_faults.csv");
    table.write_csv(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
