//! Figure 6 — `log2` throughput versus dimension in fault-free `GC(n, M)`,
//! same sweep as Figure 5.

use gcube_analysis::tables::{num, Table};
use gcube_bench::{fault_free_sweep, log2_cell, results_dir};

fn main() {
    let points = fault_free_sweep();
    let mut table = Table::new(["n", "M", "throughput_pkts_per_cycle", "log2_throughput"]);
    for p in &points {
        table.row([
            p.config.n.to_string(),
            p.config.modulus.to_string(),
            num(p.metrics.throughput(), 4),
            log2_cell(p.metrics.log2_throughput()),
        ]);
    }
    println!("Figure 6 — log2 throughput vs dimension (fault-free, FFGCR)\n");
    print!("{}", table.render());
    let path = results_dir().join("fig6_throughput.csv");
    table.write_csv(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
