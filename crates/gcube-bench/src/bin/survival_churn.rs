//! Survival past the Theorem-3 budget: FTGCR vs multitree, head to head.
//!
//! Two experiments, two CSVs:
//!
//! - `survival_clustered.csv` — the canonical over-budget clustered
//!   scenario (20 A-links packed into one `GC(8,2)` subcube, the PR-4
//!   `bound_exceeded` level) under both strategies. FTGCR refuses
//!   connected pairs here; multitree keeps delivering by switching trees.
//!   The binary *asserts* the strict multitree win, so running it is the
//!   survival-regression gate.
//! - `survival_churn.csv` — drop ratio vs fault-arrival rate
//!   `p ∈ {0.02, 0.05, 0.10}` (transient Bernoulli churn, paper-delay
//!   knowledge) for both strategies on identical seeds.
//!
//! Both CSVs carry the tree-switch columns, so diffing two runs checks
//! determinism of the whole multitree path.

use gcube_analysis::tables::{num, Table};
use gcube_bench::{
    results_dir, survival_churn_sweep, survival_head_to_head, survival_rates, survival_ratio,
};
use gcube_sim::{CachedFtgcr, ChurnPoint, MultiTreeStrategy};

fn row(table: &mut Table, label: &str, rate: f64, p: &ChurnPoint) {
    let m = &p.report.metrics;
    let intact = p.report.tree_health.as_ref().map_or_else(
        || "-".to_string(),
        |ts| ts.iter().filter(|t| t.clean).count().to_string(),
    );
    table.row([
        label.to_string(),
        num(rate, 3),
        m.injected.to_string(),
        m.delivered.to_string(),
        m.dropped.to_string(),
        m.route_failures.to_string(),
        num(survival_ratio(m), 4),
        num(m.drop_ratio(), 4),
        m.tree_switches.to_string(),
        m.tree_exhausted.to_string(),
        intact,
        p.report.budget.state.as_str().to_string(),
    ]);
}

const COLUMNS: [&str; 12] = [
    "strategy",
    "fault_rate",
    "injected",
    "delivered",
    "dropped",
    "route_failures",
    "survival_ratio",
    "drop_ratio",
    "tree_switches",
    "tree_exhausted",
    "trees_intact",
    "budget_state",
];

fn main() {
    // Canonical clustered scenario: the survival-regression gate.
    let h = survival_head_to_head();
    let mut clustered = Table::new(COLUMNS);
    row(&mut clustered, h.ftgcr.algorithm, 0.0, &h.ftgcr);
    row(&mut clustered, h.multitree.algorithm, 0.0, &h.multitree);
    println!(
        "Canonical over-budget clustered scenario: {} faults in one GC(8,2) subcube\n",
        h.faults
    );
    print!("{}", clustered.render());
    let path = results_dir().join("survival_clustered.csv");
    clustered.write_csv(&path).expect("write CSV");
    println!("\nwrote {}", path.display());

    let ft = survival_ratio(&h.ftgcr.report.metrics);
    let mt = survival_ratio(&h.multitree.report.metrics);
    assert_eq!(
        h.ftgcr.report.budget.state.as_str(),
        "bound_exceeded",
        "the canonical scenario must bust the Theorem-3 budget"
    );
    assert!(
        mt > ft,
        "survival regression: multitree must deliver strictly more than FTGCR \
         past the budget, got {mt:.4} vs {ft:.4}"
    );
    println!("\nsurvival: multitree {mt:.4} > ftgcr {ft:.4} under bound_exceeded — OK\n");

    // Drop ratio vs fault-arrival rate, both strategies, identical seeds.
    let ftgcr_runs = survival_churn_sweep(&CachedFtgcr::new());
    let multitree_runs = survival_churn_sweep(&MultiTreeStrategy::new(2));
    let mut churn = Table::new(COLUMNS);
    for (rate, p) in survival_rates().iter().zip(&ftgcr_runs) {
        row(&mut churn, p.algorithm, *rate, p);
    }
    for (rate, p) in survival_rates().iter().zip(&multitree_runs) {
        row(&mut churn, p.algorithm, *rate, p);
    }
    println!("Drop ratio vs fault rate (GC(8,2), transient churn, paper-delay knowledge)\n");
    print!("{}", churn.render());
    let path = results_dir().join("survival_churn.csv");
    churn.write_csv(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
