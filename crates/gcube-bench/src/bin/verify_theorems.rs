//! Exhaustive verification of the paper's theorems on release-built,
//! larger-than-unit-test instances. Prints a pass/fail report; exits
//! non-zero on any failure. This is the "trust but verify" artifact for
//! reviewers:
//!
//! 1. Theorem 1 (link characterisation) — exhaustive over `GC(n ≤ 12, ·)`.
//! 2. Theorem 2 (Gaussian graphs are trees) — `m ≤ 18`.
//! 3. FFGCR optimality — exhaustive all-pairs on `GC(10, 2)`, `GC(10, 4)`,
//!    `GC(9, 8)` against BFS.
//! 4. Theorem 5 delivery — every single node fault in `GC(9, 2)`, sampled
//!    pairs, route validity and fault avoidance.
//! 5. Theorem 4 (FREH) delivery over every 1- and 2-fault placement in
//!    `EH(3,3)` satisfying the precondition (sampled pairs).

use std::collections::HashSet;
use std::process::ExitCode;

use gcube_routing::faults::theorem5_precondition;
use gcube_routing::{ffgcr, freh, ftgcr, FaultSet};
use gcube_topology::gaussian_cube::link_by_congruence;
use gcube_topology::{
    search, ExchangedHypercube, GaussianCube, GaussianTree, LinkId, NoFaults, NodeId, Topology,
};

struct Report {
    failures: u32,
}

impl Report {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        if ok {
            println!("[PASS] {name}: {detail}");
        } else {
            println!("[FAIL] {name}: {detail}");
            self.failures += 1;
        }
    }
}

fn main() -> ExitCode {
    let mut report = Report { failures: 0 };

    // 1. Theorem 1.
    let mut pairs_checked = 0u64;
    let mut t1_ok = true;
    for n in 1..=12u32 {
        for alpha in 0..=n.min(5) {
            let gc = GaussianCube::from_alpha(n, alpha).unwrap();
            for v in 0..gc.num_nodes() {
                for c in 0..n {
                    if gc.has_link(NodeId(v), c)
                        != link_by_congruence(n, gc.modulus(), NodeId(v), c)
                    {
                        t1_ok = false;
                    }
                    pairs_checked += 1;
                }
            }
        }
    }
    report.check(
        "theorem1",
        t1_ok,
        format!("{pairs_checked} (node, dim) pairs"),
    );

    // 2. Theorem 2.
    let mut t2_ok = true;
    for m in 1..=18u32 {
        let t = GaussianTree::new(m).unwrap();
        if !search::is_connected(&t, &NoFaults) || t.num_links() != t.num_nodes() - 1 {
            t2_ok = false;
        }
    }
    report.check("theorem2", t2_ok, "G_m is a tree for m <= 18".into());

    // 3. FFGCR optimality, exhaustive all-pairs.
    for (n, m) in [(10u32, 2u64), (10, 4), (9, 8)] {
        let gc = GaussianCube::new(n, m).unwrap();
        let mut ok = true;
        let mut pairs = 0u64;
        for s in 0..gc.num_nodes() {
            let dist = search::bfs_distances(&gc, NodeId(s), &NoFaults);
            for d in 0..gc.num_nodes() {
                let r = ffgcr::route(&gc, NodeId(s), NodeId(d)).unwrap();
                if r.hops() as u32 != dist[d as usize] || r.validate(&gc, &NoFaults).is_err() {
                    ok = false;
                }
                pairs += 1;
            }
        }
        report.check(
            "ffgcr_optimal",
            ok,
            format!("GC({n},{m}): {pairs} pairs == BFS distance"),
        );
    }

    // 4. Theorem 5 with every single node fault in GC(9, 2).
    {
        let gc = GaussianCube::new(9, 2).unwrap();
        let mut ok = true;
        let mut routed = 0u64;
        let mut skipped = 0u64;
        for fv in 0..gc.num_nodes() {
            let mut faults = FaultSet::new();
            faults.add_node(NodeId(fv));
            if !theorem5_precondition(&gc, &faults) {
                skipped += 1;
                continue;
            }
            for s in (0..gc.num_nodes()).step_by(7) {
                if s == fv {
                    continue;
                }
                for d in (0..gc.num_nodes()).step_by(11) {
                    if d == fv {
                        continue;
                    }
                    match ftgcr::route(&gc, &faults, NodeId(s), NodeId(d)) {
                        Ok((r, _)) => {
                            if r.validate(&gc, &faults).is_err() || r.nodes().contains(&NodeId(fv))
                            {
                                ok = false;
                            }
                            routed += 1;
                        }
                        Err(_) => ok = false,
                    }
                }
            }
        }
        report.check(
            "theorem5_single_fault",
            ok,
            format!("GC(9,2): {routed} routes over all {} fault positions ({skipped} positions outside precondition)", 1u64 << 9),
        );
    }

    // 5. FREH over all 1- and 2-fault node placements in EH(3,3).
    {
        let eh = ExchangedHypercube::new(3, 3).unwrap();
        let mut ok = true;
        let mut routed = 0u64;
        let mut sets = 0u64;
        let nn = eh.num_nodes();
        let try_set = |faults: &FaultSet, ok: &mut bool, routed: &mut u64| {
            for r in (0..nn).step_by(5) {
                if faults.is_node_faulty(NodeId(r)) {
                    continue;
                }
                for d in (0..nn).step_by(7) {
                    if faults.is_node_faulty(NodeId(d)) {
                        continue;
                    }
                    match freh::route(&eh, faults, NodeId(r), NodeId(d)) {
                        Ok((route, _)) => {
                            if route.validate(&eh, faults).is_err() {
                                *ok = false;
                            }
                            *routed += 1;
                        }
                        Err(_) => {
                            // Acceptable only if genuinely disconnected.
                            if search::distance(&eh, NodeId(r), NodeId(d), faults).is_some() {
                                *ok = false;
                            }
                        }
                    }
                }
            }
        };
        // Precondition: F_t + F' < t etc. Enumerate placements that satisfy it.
        let precondition = |f: &FaultSet| -> bool {
            let mut fs = 0;
            let mut ft = 0;
            for v in f.faulty_nodes() {
                if eh.class_bit(v) {
                    ft += 1;
                } else {
                    fs += 1;
                }
            }
            fs < eh.s() && ft < eh.t()
        };
        for a in 0..nn {
            let mut f1 = FaultSet::new();
            f1.add_node(NodeId(a));
            if precondition(&f1) {
                sets += 1;
                try_set(&f1, &mut ok, &mut routed);
            }
            for b in (a + 1..nn).step_by(3) {
                let mut f2 = f1.clone();
                f2.add_node(NodeId(b));
                if precondition(&f2) {
                    sets += 1;
                    try_set(&f2, &mut ok, &mut routed);
                }
            }
        }
        report.check(
            "theorem4_freh",
            ok,
            format!("EH(3,3): {routed} routes over {sets} fault sets"),
        );
    }

    // 6. Crossing-fault tolerance: every single faulty link in EH(2,2),
    //    all pairs — delivery whenever connected.
    {
        let eh = ExchangedHypercube::new(2, 2).unwrap();
        let mut ok = true;
        let mut routed = 0u64;
        let links: HashSet<LinkId> = eh.links().into_iter().collect();
        for l in links {
            let mut f = FaultSet::new();
            f.add_link(l);
            for r in 0..eh.num_nodes() {
                for d in 0..eh.num_nodes() {
                    match freh::route(&eh, &f, NodeId(r), NodeId(d)) {
                        Ok((route, _)) => {
                            if route.validate(&eh, &f).is_err() {
                                ok = false;
                            }
                            routed += 1;
                        }
                        Err(_) => {
                            if search::distance(&eh, NodeId(r), NodeId(d), &f).is_some() {
                                ok = false;
                            }
                        }
                    }
                }
            }
        }
        report.check(
            "freh_single_link_fault",
            ok,
            format!("EH(2,2): {routed} routes over every link fault"),
        );
    }

    println!();
    if report.failures == 0 {
        println!("all theorem checks passed");
        ExitCode::SUCCESS
    } else {
        println!("{} CHECK(S) FAILED", report.failures);
        ExitCode::FAILURE
    }
}
