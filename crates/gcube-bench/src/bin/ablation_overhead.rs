//! Ablation: FTGCR's detour overhead versus the omniscient optimum.
//!
//! For `GC(9, 2)` with `k` random node faults (precondition-satisfying
//! draws), compare three routers on sampled healthy pairs:
//!
//! * masked BFS — the omniscient optimum under the faults;
//! * FTGCR — the paper's strategy (global fault view);
//! * distributed FTGCR — hop-by-hop under the paper's local-knowledge model.
//!
//! Reports mean/max extra hops over the fault-free optimum for each, i.e.
//! how much of the overhead is intrinsic (BFS row) and how much each
//! strategy adds on top.

use gcube_analysis::tables::{num, Table};
use gcube_bench::results_dir;
use gcube_routing::dftgcr::route_distributed;
use gcube_routing::faults::theorem5_precondition;
use gcube_routing::knowledge::exchange_rounds;
use gcube_routing::{ffgcr, ftgcr, FaultSet};
use gcube_topology::{search, GaussianCube, NodeId, Topology};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[derive(Default)]
struct Acc {
    sum: u64,
    max: u64,
    n: u64,
}
impl Acc {
    fn push(&mut self, v: u64) {
        self.sum += v;
        self.max = self.max.max(v);
        self.n += 1;
    }
    fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }
}

fn main() {
    let gc = GaussianCube::new(9, 2).unwrap();
    let mut table = Table::new([
        "k_faults",
        "pairs",
        "bfs_mean_extra",
        "bfs_max_extra",
        "ftgcr_mean_extra",
        "ftgcr_max_extra",
        "dftgcr_mean_extra",
        "dftgcr_max_extra",
    ]);
    let mut rng = Rng(0x0eadbeef);
    for k in [1usize, 2, 3] {
        let (mut bfs, mut omni, mut dist) = (Acc::default(), Acc::default(), Acc::default());
        let mut trials = 0;
        while trials < 20 {
            let mut truth = FaultSet::new();
            while truth.len() < k {
                truth.add_node(NodeId(rng.next() % gc.num_nodes()));
            }
            if !theorem5_precondition(&gc, &truth) {
                continue;
            }
            trials += 1;
            let km = exchange_rounds(&gc, &truth);
            for _ in 0..60 {
                let s = NodeId(rng.next() % gc.num_nodes());
                let d = NodeId(rng.next() % gc.num_nodes());
                if truth.is_node_faulty(s) || truth.is_node_faulty(d) || s == d {
                    continue;
                }
                let opt_ff = ffgcr::route_len(&gc, s, d) as u64;
                let Some(masked) = search::distance(&gc, s, d, &truth) else {
                    continue;
                };
                bfs.push(u64::from(masked) - opt_ff.min(u64::from(masked)));
                if let Ok((r, _)) = ftgcr::route(&gc, &truth, s, d) {
                    omni.push(r.hops() as u64 - opt_ff.min(r.hops() as u64));
                }
                if let Ok((r, _)) = route_distributed(&gc, &truth, &km, s, d) {
                    dist.push(r.hops() as u64 - opt_ff.min(r.hops() as u64));
                }
            }
        }
        table.row([
            k.to_string(),
            bfs.n.to_string(),
            num(bfs.mean(), 3),
            bfs.max.to_string(),
            num(omni.mean(), 3),
            omni.max.to_string(),
            num(dist.mean(), 3),
            dist.max.to_string(),
        ]);
    }
    println!("Detour-overhead ablation — GC(9,2), k random node faults\n");
    print!("{}", table.render());
    let path = results_dir().join("ablation_overhead.csv");
    table.write_csv(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
