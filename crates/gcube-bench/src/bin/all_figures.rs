//! Regenerate every paper figure in one run, writing `results/*.csv` and a
//! combined summary to stdout. `GCUBE_QUICK=1` shrinks the simulations for
//! smoke runs.

use gcube_analysis::tables::{num, Table};
use gcube_analysis::{diameter, structure, tolerance};
use gcube_bench::{
    churn_rates, churn_sweep, fault_free_sweep, fault_impact_sweep, log2_cell, results_dir,
    theorem3_budget_sweep,
};
use gcube_topology::{GaussianTree, Topology};

fn main() {
    let dir = results_dir();
    println!("== Gaussian Cube reproduction: all figures ==");
    println!("results dir: {}\n", dir.display());

    // Figure 1: Gaussian graph edge lists.
    let mut fig1 = Table::new(["m", "dim", "lo", "hi"]);
    for m in 2..=4u32 {
        let t = GaussianTree::new(m).unwrap();
        for l in t.links() {
            let (a, b) = l.endpoints();
            fig1.row([
                m.to_string(),
                l.dim.to_string(),
                a.0.to_string(),
                b.0.to_string(),
            ]);
        }
    }
    fig1.write_csv(&dir.join("fig1_gaussian_graphs.csv"))
        .unwrap();
    println!("[fig1] G_2..G_4 edge lists: {} edges total", fig1.len());

    // Figure 2: tree diameters.
    let mut fig2 = Table::new(["m", "nodes", "diameter"]);
    for p in diameter::series(16) {
        fig2.row([p.m.to_string(), p.nodes.to_string(), p.diameter.to_string()]);
    }
    fig2.write_csv(&dir.join("fig2_tree_diameter.csv")).unwrap();
    println!("[fig2] D(T_m) for m in 1..=16");

    // Figure 4: tolerable faults.
    let mut fig4 = Table::new(["n", "alpha", "T_paper", "log2_T", "T_guaranteed"]);
    for p in tolerance::series(24) {
        fig4.row([
            p.n.to_string(),
            p.alpha.to_string(),
            p.t_paper.to_string(),
            num(p.log2_t_paper, 3),
            p.t_guaranteed.to_string(),
        ]);
    }
    fig4.write_csv(&dir.join("fig4_max_faults.csv")).unwrap();
    println!("[fig4] log2 T(GC(α,n)) for α in 1..=4, n ≤ 24");

    // Structure table (supporting §1 density discussion).
    let mut st = Table::new([
        "n", "M", "nodes", "links", "min_deg", "max_deg", "mean_deg", "avail",
    ]);
    for r in structure::density_sweep(&[6, 8, 10, 12], &[1, 2, 4, 8]) {
        st.row([
            r.n.to_string(),
            r.modulus.to_string(),
            r.nodes.to_string(),
            r.links.to_string(),
            r.min_degree.to_string(),
            r.max_degree.to_string(),
            num(r.mean_degree, 2),
            r.availability.to_string(),
        ]);
    }
    st.write_csv(&dir.join("structure_density.csv")).unwrap();
    println!("[structure] density sweep written");

    // Figures 5 & 6: fault-free latency / throughput sweep.
    println!("[fig5/6] running fault-free sweep (n=6..14, M=1,2,4)…");
    let points = fault_free_sweep();
    let mut fig5 = Table::new(["n", "M", "avg_latency_cycles", "avg_hops"]);
    let mut fig6 = Table::new(["n", "M", "throughput_pkts_per_cycle", "log2_throughput"]);
    for p in &points {
        fig5.row([
            p.config.n.to_string(),
            p.config.modulus.to_string(),
            num(p.metrics.avg_latency(), 3),
            num(p.metrics.avg_hops(), 3),
        ]);
        fig6.row([
            p.config.n.to_string(),
            p.config.modulus.to_string(),
            num(p.metrics.throughput(), 4),
            log2_cell(p.metrics.log2_throughput()),
        ]);
    }
    fig5.write_csv(&dir.join("fig5_latency.csv")).unwrap();
    fig6.write_csv(&dir.join("fig6_throughput.csv")).unwrap();
    print!("{}", fig5.render());

    // Figures 7 & 8: fault impact sweep.
    println!("[fig7/8] running fault-impact sweep (GC(n,2), n=5..13)…");
    let (healthy, faulty) = fault_impact_sweep();
    let mut fig7 = Table::new(["n", "latency_no_fault", "latency_one_fault"]);
    let mut fig8 = Table::new(["n", "log2_throughput_no_fault", "log2_throughput_one_fault"]);
    for (h, f) in healthy.iter().zip(&faulty) {
        fig7.row([
            h.config.n.to_string(),
            num(h.metrics.avg_latency(), 3),
            num(f.metrics.avg_latency(), 3),
        ]);
        fig8.row([
            h.config.n.to_string(),
            log2_cell(h.metrics.log2_throughput()),
            log2_cell(f.metrics.log2_throughput()),
        ]);
    }
    fig7.write_csv(&dir.join("fig7_fault_latency.csv")).unwrap();
    fig8.write_csv(&dir.join("fig8_fault_throughput.csv"))
        .unwrap();
    print!("{}", fig7.render());
    print!("{}", fig8.render());

    // Beyond the paper: degradation under dynamic fault churn.
    println!("[churn] running degradation-under-churn sweep (GC(9,2))…");
    let churn = churn_sweep();
    let mut ct = Table::new([
        "churn_rate",
        "fault_events",
        "delivery_ratio",
        "completion_ratio",
        "rerouted_packets",
        "latency_p50",
        "latency_p95",
        "latency_p99",
    ]);
    let pctl = |v: Option<u64>| v.map_or_else(|| "-".into(), |x| x.to_string());
    for (rate, p) in churn_rates().iter().zip(&churn) {
        let m = p.report.metrics;
        ct.row([
            num(*rate, 3),
            m.fault_events.to_string(),
            num(m.delivery_ratio(), 4),
            num(m.completion_ratio(), 4),
            m.rerouted_packets.to_string(),
            pctl(m.latency_hist.p50()),
            pctl(m.latency_hist.p95()),
            pctl(m.latency_hist.p99()),
        ]);
    }
    ct.write_csv(&dir.join("churn_degradation_summary.csv"))
        .unwrap();
    print!("{}", ct.render());

    // Beyond the paper: observed tolerated faults vs the Theorem 3 budget.
    // A-category link faults only — spread placement respects the
    // per-subcube allowance (precondition holds all the way to T(GC)),
    // clustered placement overloads one subcube with far fewer faults.
    println!("[thm3] checking observed tolerance against the Theorem 3 budget (GC(8,2))…");
    let check = theorem3_budget_sweep();
    let mut bt = Table::new([
        "placement",
        "faults",
        "T_paper",
        "health",
        "precondition",
        "delivery_ratio",
        "route_failures",
        "ttl_drops",
        "rerouted_packets",
    ]);
    for p in &check.points {
        let b = &p.point.report.budget;
        let m = p.point.report.metrics;
        bt.row([
            p.placement.to_string(),
            p.faults.to_string(),
            check.t_paper.to_string(),
            b.state.as_str().to_string(),
            b.precondition_paper.to_string(),
            num(m.delivery_ratio(), 4),
            (m.dropped_stranded + m.dropped_unrecoverable).to_string(),
            m.ttl_expired.to_string(),
            m.rerouted_packets.to_string(),
        ]);
        // The monitor's classification is exactly the precondition check.
        assert_eq!(
            b.state == gcube_routing::faults::HealthState::BoundExceeded,
            !b.precondition_paper
        );
    }
    bt.write_csv(&dir.join("thm3_budget.csv")).unwrap();
    print!("{}", bt.render());

    println!("\nall figures written to {}", dir.display());
}
