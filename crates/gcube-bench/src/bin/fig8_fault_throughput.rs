//! Figure 8 — the influence of one faulty node on throughput:
//! `GC(n, 2)`, `n ∈ [5, 13]`, FTGCR, no-fault vs one faulty node.

use gcube_analysis::tables::{num, Table};
use gcube_bench::{fault_impact_sweep, log2_cell, results_dir};

fn main() {
    let (healthy, faulty) = fault_impact_sweep();
    let mut table = Table::new([
        "n",
        "log2_throughput_no_fault",
        "log2_throughput_one_fault",
        "throughput_no_fault",
        "throughput_one_fault",
    ]);
    for (h, f) in healthy.iter().zip(&faulty) {
        assert_eq!(h.config.n, f.config.n);
        table.row([
            h.config.n.to_string(),
            log2_cell(h.metrics.log2_throughput()),
            log2_cell(f.metrics.log2_throughput()),
            num(h.metrics.throughput(), 4),
            num(f.metrics.throughput(), 4),
        ]);
    }
    println!("Figure 8 — fault influence on throughput (GC(n,2), FTGCR)\n");
    print!("{}", table.render());
    let path = results_dir().join("fig8_fault_throughput.csv");
    table.write_csv(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
