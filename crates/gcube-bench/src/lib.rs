//! Shared plumbing for the figure-regeneration binaries (`src/bin/fig*.rs`)
//! and the Criterion micro-benchmarks (`benches/`).
//!
//! Every figure of the paper's evaluation maps to one binary:
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig1_gaussian_graphs`  | Fig. 1 — topologies of `G_2, G_3, G_4` |
//! | `fig2_tree_diameter`    | Fig. 2 — `D(T_m)` vs `m` |
//! | `fig4_max_faults`       | Fig. 4 — `log2 T(GC(α,n))` vs `n` |
//! | `fig5_latency`          | Fig. 5 — avg latency vs `n`, `M ∈ {1,2,4}` |
//! | `fig6_throughput`       | Fig. 6 — log2 throughput vs `n` |
//! | `fig7_fault_latency`    | Fig. 7 — latency, no-fault vs one fault |
//! | `fig8_fault_throughput` | Fig. 8 — throughput, no-fault vs one fault |
//! | `churn_degradation`     | beyond the paper: delivery under fault churn |
//! | `all_figures`           | runs everything, writes `results/*.csv` |
//!
//! (Figure 3 is a worked example of the CT algorithm; it is reproduced by
//! `examples/topology_explorer.rs` rather than a measurement binary.)

use std::path::PathBuf;

use gcube_sim::{
    run_churn_sweep, run_sweep, CategoryMix, ChurnPoint, FaultFreeGcr, FaultKind, FaultSchedule,
    FaultTolerantGcr, KnowledgeModel, RoutingAlgorithm, SimConfig, SweepPoint,
};

/// Format an optional `log2` value for a table cell (`n/a` when the
/// underlying quantity was zero and the logarithm is undefined).
pub fn log2_cell(v: Option<f64>) -> String {
    v.map_or_else(|| "n/a".to_string(), |x| gcube_analysis::tables::num(x, 3))
}

/// Where the figure binaries drop their CSVs (`results/` at the workspace
/// root, overridable with `GCUBE_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("GCUBE_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // Walk up from the crate dir to the workspace root.
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    here.parent()
        .and_then(|p| p.parent())
        .map(|ws| ws.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Number of sweep worker threads (respects `GCUBE_THREADS`).
pub fn threads() -> usize {
    std::env::var("GCUBE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()))
}

/// Simulation scale knob: `GCUBE_QUICK=1` shrinks cycle counts ~5x for CI.
pub fn quick() -> bool {
    std::env::var("GCUBE_QUICK").is_ok_and(|v| v == "1")
}

/// The Figure 5/6 sweep: fault-free `GC(n, M)`, `n ∈ [6, 14]`,
/// `M ∈ {1, 2, 4}`, FFGCR.
pub fn fault_free_sweep() -> Vec<SweepPoint> {
    let (inject, drain, warmup) = if quick() {
        (120, 2_000, 20)
    } else {
        (600, 10_000, 100)
    };
    let mut configs = Vec::new();
    for &m in &[1u64, 2, 4] {
        for n in 6..=14u32 {
            configs.push(
                SimConfig::new(n, m)
                    .with_cycles(inject, drain, warmup)
                    .with_rate(0.005)
                    .with_seed(0xf15_0000 + u64::from(n) * 16 + m),
            );
        }
    }
    run_sweep(&configs, &FaultFreeGcr, threads())
}

/// The Figure 7/8 sweep: `GC(n, 2)`, `n ∈ [5, 13]`, FTGCR, zero vs one
/// faulty node.
pub fn fault_impact_sweep() -> (Vec<SweepPoint>, Vec<SweepPoint>) {
    let (inject, drain, warmup) = if quick() {
        (120, 2_000, 20)
    } else {
        (600, 10_000, 100)
    };
    let mk = |faults: usize| -> Vec<SimConfig> {
        (5..=13u32)
            .map(|n| {
                SimConfig::new(n, 2)
                    .with_cycles(inject, drain, warmup)
                    .with_rate(0.005)
                    .with_faults(faults)
                    .with_seed(0xf78_0000 + u64::from(n))
            })
            .collect()
    };
    let healthy = run_sweep(&mk(0), &FaultTolerantGcr, threads());
    let faulty = run_sweep(&mk(1), &FaultTolerantGcr, threads());
    (healthy, faulty)
}

/// The degradation-under-churn sweep: `GC(9, 2)`, FTGCR with online
/// recovery, transient faults arriving at increasing Bernoulli rates under
/// the paper-delay knowledge model. Returns one [`ChurnPoint`] per churn
/// rate, in increasing-rate order.
pub fn churn_sweep() -> Vec<ChurnPoint> {
    let (inject, drain) = if quick() {
        (400, 4_000)
    } else {
        (2_000, 10_000)
    };
    let configs: Vec<SimConfig> = churn_rates()
        .into_iter()
        .map(|churn| {
            SimConfig::new(9, 2)
                .with_cycles(inject, drain, 0)
                .with_rate(0.01)
                .with_seed(0xc09_0000)
                .with_knowledge(KnowledgeModel::PaperDelay)
                .with_window(inject / 10)
                .with_schedule(if churn == 0.0 {
                    FaultSchedule::None
                } else {
                    FaultSchedule::Bernoulli {
                        rate: churn,
                        kind: FaultKind::Transient { repair_after: 200 },
                        mix: CategoryMix::default(),
                        node_fraction: 0.5,
                    }
                })
        })
        .collect();
    run_churn_sweep(&configs, &FaultTolerantGcr, threads())
}

/// The churn arrival rates used by [`churn_sweep`], aligned with its
/// output order.
pub fn churn_rates() -> [f64; 6] {
    [0.0, 0.002, 0.005, 0.01, 0.02, 0.05]
}

/// Convenience: run one algorithm over one config (used by benches).
pub fn run_one(config: SimConfig, algorithm: &dyn RoutingAlgorithm) -> SweepPoint {
    let mut v = run_sweep(std::slice::from_ref(&config), algorithm, 1);
    v.remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_resolves() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }

    #[test]
    fn threads_positive() {
        assert!(threads() >= 1);
    }
}
