//! Shared plumbing for the figure-regeneration binaries (`src/bin/fig*.rs`)
//! and the Criterion micro-benchmarks (`benches/`).
//!
//! Every figure of the paper's evaluation maps to one binary:
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig1_gaussian_graphs`  | Fig. 1 — topologies of `G_2, G_3, G_4` |
//! | `fig2_tree_diameter`    | Fig. 2 — `D(T_m)` vs `m` |
//! | `fig4_max_faults`       | Fig. 4 — `log2 T(GC(α,n))` vs `n` |
//! | `fig5_latency`          | Fig. 5 — avg latency vs `n`, `M ∈ {1,2,4}` |
//! | `fig6_throughput`       | Fig. 6 — log2 throughput vs `n` |
//! | `fig7_fault_latency`    | Fig. 7 — latency, no-fault vs one fault |
//! | `fig8_fault_throughput` | Fig. 8 — throughput, no-fault vs one fault |
//! | `churn_degradation`     | beyond the paper: delivery under fault churn |
//! | `all_figures`           | runs everything, writes `results/*.csv` |
//!
//! (Figure 3 is a worked example of the CT algorithm; it is reproduced by
//! `examples/topology_explorer.rs` rather than a measurement binary.)

use std::collections::BTreeMap;
use std::path::PathBuf;

use gcube_sim::{
    run_churn_sweep, run_sweep, CachedFtgcr, CategoryMix, ChurnPoint, CollectiveOp, FaultFreeGcr,
    FaultKind, FaultSchedule, FaultTarget, FaultTolerantGcr, KnowledgeModel, Metrics,
    MultiTreeStrategy, RoutingAlgorithm, SimConfig, SweepPoint, TimedFault,
};
use gcube_topology::classes::{n_bound_paper, subcube_pos};
use gcube_topology::{GaussianCube, LinkId, NodeId, Topology};

/// Format an optional `log2` value for a table cell (`n/a` when the
/// underlying quantity was zero and the logarithm is undefined).
pub fn log2_cell(v: Option<f64>) -> String {
    v.map_or_else(|| "n/a".to_string(), |x| gcube_analysis::tables::num(x, 3))
}

/// Where the figure binaries drop their CSVs (`results/` at the workspace
/// root, overridable with `GCUBE_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("GCUBE_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // Walk up from the crate dir to the workspace root.
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    here.parent()
        .and_then(|p| p.parent())
        .map(|ws| ws.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Number of sweep worker threads (respects `GCUBE_THREADS`).
pub fn threads() -> usize {
    std::env::var("GCUBE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()))
}

/// Simulation scale knob: `GCUBE_QUICK=1` shrinks cycle counts ~5x for CI.
pub fn quick() -> bool {
    std::env::var("GCUBE_QUICK").is_ok_and(|v| v == "1")
}

/// The Figure 5/6 sweep: fault-free `GC(n, M)`, `n ∈ [6, 14]`,
/// `M ∈ {1, 2, 4}`, FFGCR.
pub fn fault_free_sweep() -> Vec<SweepPoint> {
    let (inject, drain, warmup) = if quick() {
        (120, 2_000, 20)
    } else {
        (600, 10_000, 100)
    };
    let mut configs = Vec::new();
    for &m in &[1u64, 2, 4] {
        for n in 6..=14u32 {
            configs.push(
                SimConfig::new(n, m)
                    .with_cycles(inject, drain, warmup)
                    .with_rate(0.005)
                    .with_seed(0xf15_0000 + u64::from(n) * 16 + m),
            );
        }
    }
    run_sweep(&configs, &FaultFreeGcr, threads())
}

/// The Figure 7/8 sweep: `GC(n, 2)`, `n ∈ [5, 13]`, FTGCR, zero vs one
/// faulty node.
pub fn fault_impact_sweep() -> (Vec<SweepPoint>, Vec<SweepPoint>) {
    let (inject, drain, warmup) = if quick() {
        (120, 2_000, 20)
    } else {
        (600, 10_000, 100)
    };
    let mk = |faults: usize| -> Vec<SimConfig> {
        (5..=13u32)
            .map(|n| {
                SimConfig::new(n, 2)
                    .with_cycles(inject, drain, warmup)
                    .with_rate(0.005)
                    .with_faults(faults)
                    .with_seed(0xf78_0000 + u64::from(n))
            })
            .collect()
    };
    let healthy = run_sweep(&mk(0), &FaultTolerantGcr, threads());
    let faulty = run_sweep(&mk(1), &FaultTolerantGcr, threads());
    (healthy, faulty)
}

/// The degradation-under-churn sweep: `GC(9, 2)`, FTGCR with online
/// recovery, transient faults arriving at increasing Bernoulli rates under
/// the paper-delay knowledge model. Returns one [`ChurnPoint`] per churn
/// rate, in increasing-rate order.
pub fn churn_sweep() -> Vec<ChurnPoint> {
    let (inject, drain) = if quick() {
        (400, 4_000)
    } else {
        (2_000, 10_000)
    };
    let configs: Vec<SimConfig> = churn_rates()
        .into_iter()
        .map(|churn| {
            SimConfig::new(9, 2)
                .with_cycles(inject, drain, 0)
                .with_rate(0.01)
                .with_seed(0xc09_0000)
                .with_knowledge(KnowledgeModel::PaperDelay)
                .with_window(inject / 10)
                .with_schedule(if churn == 0.0 {
                    FaultSchedule::None
                } else {
                    FaultSchedule::Bernoulli {
                        rate: churn,
                        kind: FaultKind::Transient { repair_after: 200 },
                        mix: CategoryMix::default(),
                        node_fraction: 0.5,
                    }
                })
        })
        .collect();
    run_churn_sweep(&configs, &FaultTolerantGcr, threads())
}

/// The churn arrival rates used by [`churn_sweep`], aligned with its
/// output order.
pub fn churn_rates() -> [f64; 6] {
    [0.0, 0.002, 0.005, 0.01, 0.02, 0.05]
}

/// One load level of [`theorem3_budget_sweep`]: a scripted A-category
/// link-fault set injected at cycle 0, with the run it produced.
pub struct BudgetPoint {
    /// `"spread"` (≤ `N(α,k) − 1` faults per subcube, precondition holds)
    /// or `"clustered"` (one subcube overloaded past its allowance).
    pub placement: &'static str,
    /// Number of A-category link faults injected.
    pub faults: usize,
    /// The simulated run, including its final [`gcube_routing::faults::FaultBudget`].
    pub point: ChurnPoint,
}

/// Output of [`theorem3_budget_sweep`]: the Theorem 3 budget `T(GC)` and
/// the measured load levels.
pub struct BudgetCheck {
    /// The cube simulated.
    pub n: u32,
    /// Its modulus.
    pub modulus: u64,
    /// `T(GC) = Σ_k (N(α,k) − 1) · 2^(n−α−|Dim(α,k)|)`.
    pub t_paper: u64,
    /// One entry per load level, spread levels first.
    pub points: Vec<BudgetPoint>,
}

/// Every A-category link of `gc` (dimension ≥ α), grouped by the GEEC
/// subcube Theorem 3 charges it to, in deterministic order.
pub fn a_links_by_subcube(gc: &GaussianCube) -> BTreeMap<(u64, u64), Vec<LinkId>> {
    let mut by_subcube: BTreeMap<(u64, u64), Vec<LinkId>> = BTreeMap::new();
    for p in 0..gc.num_nodes() {
        let node = NodeId(p);
        for dim in gc.alpha()..gc.n() {
            // Count each link once, at its bit-clear endpoint. Flipping a
            // dimension in `Dim(α, k)` stays inside the subcube, so both
            // endpoints charge the same `(k, t)`.
            if !node.bit(dim) && gc.has_link(node, dim) {
                let pos = subcube_pos(gc, node);
                by_subcube
                    .entry((pos.k, pos.t))
                    .or_default()
                    .push(LinkId::new(node, dim));
            }
        }
    }
    by_subcube
}

/// The canonical *over-budget clustered* fault set: `count` A-category
/// links packed into the best-provisioned GEEC subcube of `gc`, clamped
/// so the subcube's Theorem-3 allowance `N(α,k) − 1` is always exceeded
/// (the precondition fails even though the total is far below `T(GC)`).
/// This is the placement where the budget monitor reports
/// `bound_exceeded` and plain FTGCR starts refusing connected pairs.
pub fn clustered_fault_links(gc: &GaussianCube, count: usize) -> Vec<LinkId> {
    let by_subcube = a_links_by_subcube(gc);
    let ((k, _t), cluster) = by_subcube
        .iter()
        .max_by_key(|(_, links)| links.len())
        .expect("cube has A-category links");
    let allowance = n_bound_paper(gc.n(), gc.alpha(), *k).saturating_sub(1) as usize;
    let take = count.clamp(allowance + 1, cluster.len());
    cluster[..take].to_vec()
}

/// Measure *observed* fault tolerance against the Theorem 3 budget on
/// `GC(8, 2)`.
///
/// Two placement disciplines, both injecting only A-category link faults
/// (the kind the theorem budgets) at cycle 0 under oracle knowledge:
///
/// - **spread** — faults are dealt round-robin across GEEC subcubes, never
///   exceeding the per-subcube allowance `N(α,k) − 1`, so the Theorem 3
///   precondition holds at every prefix. Levels at ¼, ½, ¾ and the full
///   budget `T(GC)`; FTGCR should deliver everything at all of them.
/// - **clustered** — the same *count* of faults as the smallest spread
///   level, but packed into a single subcube past its allowance. The
///   precondition fails (the monitor reports `bound_exceeded`) even though
///   the total is far below `T(GC)` — the bound is per-subcube, not global.
pub fn theorem3_budget_sweep() -> BudgetCheck {
    let (n, modulus) = (8u32, 2u64);
    let gc = GaussianCube::new(n, modulus).expect("valid shape");
    let alpha = gc.alpha();
    let by_subcube = a_links_by_subcube(&gc);

    // Deal links across subcubes layer by layer: after `l` complete layers
    // every subcube holds `min(l, N(α,k) − 1)` faults, so every prefix of
    // `spread` satisfies the precondition and the full list realises T(GC).
    let mut spread: Vec<LinkId> = Vec::new();
    let mut layer = 0usize;
    loop {
        let before = spread.len();
        for ((k, _t), links) in &by_subcube {
            let allowance = n_bound_paper(n, alpha, *k).saturating_sub(1) as usize;
            if layer < allowance {
                if let Some(l) = links.get(layer) {
                    spread.push(*l);
                }
            }
        }
        if spread.len() == before {
            break;
        }
        layer += 1;
    }
    let t_paper = gcube_routing::faults::max_tolerable_faults_paper(n, alpha);
    assert_eq!(
        spread.len() as u64,
        t_paper,
        "spread placement must realise the full Theorem 3 budget"
    );

    let quarter = (spread.len() / 4).max(1);
    let mut levels: Vec<(&'static str, Vec<LinkId>)> = [1, 2, 3, 4]
        .iter()
        .map(|q| ("spread", spread[..(quarter * q).min(spread.len())].to_vec()))
        .collect();

    // Clustered: overload the best-provisioned subcube with the same count
    // as the smallest spread level (its links alone exceed its allowance).
    levels.push(("clustered", clustered_fault_links(&gc, quarter)));

    let (inject, drain) = if quick() {
        (200, 2_000)
    } else {
        (1_000, 8_000)
    };
    let configs: Vec<SimConfig> = levels
        .iter()
        .map(|(_, links)| {
            SimConfig::new(n, modulus)
                .with_cycles(inject, drain, 0)
                .with_rate(0.01)
                .with_seed(0x7e3_0000)
                .with_schedule(FaultSchedule::Scripted(
                    links
                        .iter()
                        .map(|&l| TimedFault {
                            cycle: 0,
                            target: FaultTarget::Link(l),
                            kind: FaultKind::Permanent,
                        })
                        .collect(),
                ))
        })
        .collect();
    let runs = run_churn_sweep(&configs, &FaultTolerantGcr, threads());
    let points = levels
        .into_iter()
        .zip(runs)
        .map(|((placement, links), point)| BudgetPoint {
            placement,
            faults: links.len(),
            point,
        })
        .collect();
    BudgetCheck {
        n,
        modulus,
        t_paper,
        points,
    }
}

/// Fault count of the canonical over-budget clustered scenario on
/// `GC(8, 2)`: a quarter of `T(GC) = 80`, packed into one subcube — the
/// load level where the Theorem-3 monitor reports `bound_exceeded`.
pub const SURVIVAL_CLUSTER_FAULTS: usize = 20;

/// Delivery ratio counting *refused* packets against the router:
/// `delivered / (delivered + dropped + route_failures)`. The stock
/// [`Metrics::delivery_ratio`] excludes planning failures, which is
/// exactly where FTGCR loses packets past the Theorem-3 budget — this
/// survival metric charges them.
pub fn survival_ratio(m: &Metrics) -> f64 {
    let resolved = m.delivered + m.dropped + m.route_failures;
    if resolved == 0 {
        1.0
    } else {
        m.delivered as f64 / resolved as f64
    }
}

/// The canonical over-budget clustered scenario as a run config:
/// `GC(8, 2)` with [`SURVIVAL_CLUSTER_FAULTS`] clustered A-links failed
/// at cycle 0, oracle knowledge (the loss is structural, not staleness).
pub fn survival_scenario_config() -> SimConfig {
    let gc = GaussianCube::new(8, 2).expect("valid shape");
    let links = clustered_fault_links(&gc, SURVIVAL_CLUSTER_FAULTS);
    assert_eq!(links.len(), SURVIVAL_CLUSTER_FAULTS);
    let (inject, drain) = if quick() {
        (400, 4_000)
    } else {
        (1_500, 10_000)
    };
    SimConfig::new(8, 2)
        .with_cycles(inject, drain, 0)
        .with_rate(0.02)
        .with_seed(0x5a1_0000)
        .with_window(inject / 10)
        .with_schedule(FaultSchedule::Scripted(
            links
                .into_iter()
                .map(|l| TimedFault {
                    cycle: 0,
                    target: FaultTarget::Link(l),
                    kind: FaultKind::Permanent,
                })
                .collect(),
        ))
}

/// The canonical scenario, head to head: FTGCR vs multitree (k = 2) on
/// the identical config and seed. The acceptance claim is
/// `survival_ratio(multitree) > survival_ratio(ftgcr)` with the monitor
/// reporting `bound_exceeded` — multitree keeps delivering where FTGCR
/// refuses pairs.
pub struct SurvivalHeadToHead {
    /// Clustered faults injected ([`SURVIVAL_CLUSTER_FAULTS`]).
    pub faults: usize,
    /// The FTGCR run.
    pub ftgcr: ChurnPoint,
    /// The multitree (k = 2) run.
    pub multitree: ChurnPoint,
}

/// Run [`survival_scenario_config`] under both strategies.
pub fn survival_head_to_head() -> SurvivalHeadToHead {
    let cfg = [survival_scenario_config()];
    let ftgcr = run_churn_sweep(&cfg, &CachedFtgcr::new(), 1).remove(0);
    let multitree = run_churn_sweep(&cfg, &MultiTreeStrategy::new(2), 1).remove(0);
    SurvivalHeadToHead {
        faults: SURVIVAL_CLUSTER_FAULTS,
        ftgcr,
        multitree,
    }
}

/// Fault-arrival rates of the survival churn sweep, aligned with
/// [`survival_churn_sweep`]'s output order.
pub fn survival_rates() -> [f64; 3] {
    [0.02, 0.05, 0.10]
}

/// Drop-ratio-vs-fault-rate sweep on `GC(8, 2)`: transient Bernoulli
/// churn at each of [`survival_rates`] under paper-delay knowledge. Run
/// once per strategy; each call uses identical configs and seeds so the
/// two curves differ only by the router.
pub fn survival_churn_sweep(algorithm: &dyn RoutingAlgorithm) -> Vec<ChurnPoint> {
    let (inject, drain) = if quick() {
        (300, 3_000)
    } else {
        (1_200, 8_000)
    };
    let configs: Vec<SimConfig> = survival_rates()
        .into_iter()
        .map(|p| {
            SimConfig::new(8, 2)
                .with_cycles(inject, drain, 0)
                .with_rate(0.01)
                .with_seed(0x5a2_0000)
                .with_knowledge(KnowledgeModel::PaperDelay)
                .with_window(inject / 10)
                .with_schedule(FaultSchedule::Bernoulli {
                    rate: p,
                    kind: FaultKind::Transient { repair_after: 150 },
                    mix: CategoryMix::default(),
                    node_fraction: 0.5,
                })
        })
        .collect();
    run_churn_sweep(&configs, algorithm, threads())
}

/// Cycles between collective operations in the canonical collective
/// scenario ([`collective_scenario_config`]).
pub const COLLECTIVE_INTERVAL: u64 = 50;

/// Cycle the clustered fault burst lands in [`collective_scenario_config`]:
/// late enough that both ending classes of `GC(8, 2)` have established
/// their broadcast trees (two operations each), so the burst forces a
/// *repair* of a cached tree rather than a cold build.
pub const COLLECTIVE_FAULT_CYCLE: u64 = 4 * COLLECTIVE_INTERVAL;

/// The canonical clustered scenario with the periodic broadcast
/// collective riding on top: every root class establishes its tree
/// first, then [`SURVIVAL_CLUSTER_FAULTS`] A-links fail at once inside
/// one GEEC subcube. Link faults never kill a root, so every subsequent
/// operation must recover by subtree re-grafting — a full rebuild here
/// is a repair-path regression, and lost coverage means the re-graft
/// failed to reattach reachable nodes.
pub fn collective_scenario_config() -> SimConfig {
    let gc = GaussianCube::new(8, 2).expect("valid shape");
    let links = clustered_fault_links(&gc, SURVIVAL_CLUSTER_FAULTS);
    assert_eq!(links.len(), SURVIVAL_CLUSTER_FAULTS);
    let (inject, drain) = if quick() {
        (600, 5_000)
    } else {
        (1_500, 10_000)
    };
    SimConfig::new(8, 2)
        .with_cycles(inject, drain, 0)
        .with_rate(0.01)
        .with_seed(0x5a3_0000)
        .with_window(inject / 10)
        .with_collective(CollectiveOp::Broadcast)
        .with_collective_interval(COLLECTIVE_INTERVAL)
        .with_schedule(FaultSchedule::Scripted(
            links
                .into_iter()
                .map(|l| TimedFault {
                    cycle: COLLECTIVE_FAULT_CYCLE,
                    target: FaultTarget::Link(l),
                    kind: FaultKind::Permanent,
                })
                .collect(),
        ))
}

/// Coverage-vs-fault-rate sweep: the broadcast collective under transient
/// Bernoulli churn at each of [`survival_rates`], identical configs and
/// seeds to [`survival_churn_sweep`] apart from the collective class, so
/// the coverage curve isolates what churn costs the tree traffic.
pub fn collective_churn_sweep(algorithm: &dyn RoutingAlgorithm) -> Vec<ChurnPoint> {
    let (inject, drain) = if quick() {
        (300, 3_000)
    } else {
        (1_200, 8_000)
    };
    let configs: Vec<SimConfig> = survival_rates()
        .into_iter()
        .map(|p| {
            SimConfig::new(8, 2)
                .with_cycles(inject, drain, 0)
                .with_rate(0.01)
                .with_seed(0x5a2_0000)
                .with_knowledge(KnowledgeModel::PaperDelay)
                .with_window(inject / 10)
                .with_collective(CollectiveOp::Broadcast)
                .with_collective_interval(COLLECTIVE_INTERVAL)
                .with_schedule(FaultSchedule::Bernoulli {
                    rate: p,
                    kind: FaultKind::Transient { repair_after: 150 },
                    mix: CategoryMix::default(),
                    node_fraction: 0.5,
                })
        })
        .collect();
    run_churn_sweep(&configs, algorithm, threads())
}

/// Convenience: run one algorithm over one config (used by benches).
pub fn run_one(config: SimConfig, algorithm: &dyn RoutingAlgorithm) -> SweepPoint {
    let mut v = run_sweep(std::slice::from_ref(&config), algorithm, 1);
    v.remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_resolves() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }

    #[test]
    fn threads_positive() {
        assert!(threads() >= 1);
    }

    /// The clustered placement always busts its subcube's allowance, and
    /// the canonical count on `GC(8, 2)` is the PR-4 `bound_exceeded`
    /// level: 20 faults, a quarter of `T(GC) = 80`.
    #[test]
    fn clustered_links_exceed_their_allowance() {
        let gc = GaussianCube::new(8, 2).unwrap();
        let links = clustered_fault_links(&gc, SURVIVAL_CLUSTER_FAULTS);
        assert_eq!(links.len(), SURVIVAL_CLUSTER_FAULTS);
        let pos = subcube_pos(&gc, links[0].endpoints().0);
        for l in &links {
            let p = subcube_pos(&gc, l.endpoints().0);
            assert_eq!((p.k, p.t), (pos.k, pos.t), "all faults in one subcube");
        }
        let allowance = n_bound_paper(gc.n(), gc.alpha(), pos.k).saturating_sub(1) as usize;
        assert!(links.len() > allowance, "placement must be over budget");
    }

    /// ISSUE acceptance: on the canonical over-budget clustered scenario,
    /// multitree (k = 2) delivers strictly more than FTGCR, which is
    /// refusing connected pairs while the monitor reports bound_exceeded.
    #[test]
    fn multitree_survives_the_clustered_over_budget_scenario() {
        let h = survival_head_to_head();
        let ft = &h.ftgcr.report;
        let mt = &h.multitree.report;
        assert_eq!(
            ft.budget.state,
            gcube_routing::faults::HealthState::BoundExceeded,
            "the canonical scenario must bust the Theorem-3 budget"
        );
        assert!(
            ft.metrics.route_failures > 0,
            "FTGCR must be refusing pairs here"
        );
        let (ft_ratio, mt_ratio) = (survival_ratio(&ft.metrics), survival_ratio(&mt.metrics));
        assert!(
            mt_ratio > ft_ratio,
            "multitree must beat FTGCR past the budget: {mt_ratio:.4} vs {ft_ratio:.4}"
        );
        assert!(
            mt.metrics.tree_switches > 0,
            "survival must come from tree switching"
        );
        assert!(mt.tree_health.is_some(), "multitree reports tree health");
    }

    /// Each GEEC subcube of `GC(n, 2^α)` is a `|Dim(α,k)|`-dimensional
    /// hypercube, so it holds `|Dim| · 2^(|Dim|−1)` A-category links —
    /// comfortably above the `N(α,k) − 1` allowance the spread placement
    /// draws from it.
    #[test]
    fn a_links_group_into_full_subcubes() {
        for n in 5..=8u32 {
            let gc = GaussianCube::new(n, 2).unwrap();
            for ((k, _t), links) in &a_links_by_subcube(&gc) {
                let d = gcube_topology::classes::dim_count(n, gc.alpha(), *k) as usize;
                assert!(d >= 1);
                assert_eq!(links.len(), d << (d - 1), "GC({n},2) subcube k={k}");
                assert!(links.len() >= n_bound_paper(n, gc.alpha(), *k) as usize);
            }
        }
    }
}
