//! Criterion micro-benchmarks for the routing algorithms: PC, CT, FFGCR,
//! FTGCR, FREH and the hypercube substrate. These quantify the paper's §1
//! complexity claims (plan computation is `O((n/2^α)² log)`‑ish, message
//! overhead `O(n)`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;

use gcube_routing::hypercube_ft::{route_adaptive, safety_levels, VirtualCube};
use gcube_routing::{ct, faults::FaultSet, ffgcr, freh, ftgcr, pc};
use gcube_topology::{ExchangedHypercube, GaussianCube, GaussianTree, LinkId, NodeId};

fn bench_pc(c: &mut Criterion) {
    let mut g = c.benchmark_group("pc_path");
    for m in [4u32, 8, 12, 16] {
        let tree = GaussianTree::new(m).unwrap();
        let s = NodeId(0);
        let d = NodeId((1u64 << m) - 1);
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| pc::pc_path(&tree, black_box(s), black_box(d)))
        });
    }
    g.finish();
}

fn bench_ct(c: &mut Criterion) {
    let mut g = c.benchmark_group("ct_walk");
    for m in [4u32, 6, 8] {
        let tree = GaussianTree::new(m).unwrap();
        let dests: BTreeSet<NodeId> = (0..(1u64 << m)).step_by(3).map(NodeId).collect();
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| ct::ct_walk(&tree, black_box(NodeId(0)), black_box(&dests)))
        });
    }
    g.finish();
}

fn bench_ffgcr(c: &mut Criterion) {
    let mut g = c.benchmark_group("ffgcr_route");
    for (n, m) in [(10u32, 2u64), (12, 4), (14, 4), (16, 8)] {
        let gc = GaussianCube::new(n, m).unwrap();
        let s = NodeId(0);
        let d = NodeId(gc_last(n));
        g.bench_with_input(BenchmarkId::new("gc", format!("n{n}_m{m}")), &n, |b, _| {
            b.iter(|| ffgcr::route(&gc, black_box(s), black_box(d)).unwrap())
        });
    }
    g.finish();
}

fn gc_last(n: u32) -> u64 {
    (1u64 << n) - 1
}

fn bench_ftgcr(c: &mut Criterion) {
    let mut g = c.benchmark_group("ftgcr_route");
    for (n, m, fault_count) in [(10u32, 2u64, 0usize), (10, 2, 2), (12, 4, 2), (14, 4, 2)] {
        let gc = GaussianCube::new(n, m).unwrap();
        let mut f = FaultSet::new();
        // Deterministic A-category faults away from the endpoints.
        for i in 0..fault_count {
            let v = NodeId((37 + 101 * i as u64) % gc_last(n));
            if let Some(&dim) = gcube_topology::Topology::link_dims(&gc, v)
                .iter()
                .find(|&&dim| dim >= gc.alpha())
            {
                f.add_link(LinkId::new(v, dim));
            }
        }
        let s = NodeId(0);
        let d = NodeId(gc_last(n));
        g.bench_with_input(
            BenchmarkId::new("gc", format!("n{n}_m{m}_f{fault_count}")),
            &n,
            |b, _| b.iter(|| ftgcr::route(&gc, black_box(&f), black_box(s), black_box(d)).unwrap()),
        );
    }
    g.finish();
}

fn bench_freh(c: &mut Criterion) {
    let mut g = c.benchmark_group("freh_route");
    for (s_dim, t_dim) in [(3u32, 3u32), (4, 4), (5, 5)] {
        let eh = ExchangedHypercube::new(s_dim, t_dim).unwrap();
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(2), 0));
        let r = NodeId(0);
        let d = NodeId((1u64 << (s_dim + t_dim + 1)) - 1);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("s{s_dim}_t{t_dim}")),
            &s_dim,
            |b, _| b.iter(|| freh::route(&eh, black_box(&f), black_box(r), black_box(d)).unwrap()),
        );
    }
    g.finish();
}

fn bench_hypercube_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("hypercube_substrate");
    for n in [6u32, 8, 10] {
        let mut cube = VirtualCube::plain(n);
        cube.set_link_fault(0, 0);
        cube.set_node_fault(5);
        g.bench_with_input(BenchmarkId::new("safety_levels", n), &n, |b, _| {
            b.iter(|| safety_levels(black_box(&cube)))
        });
        g.bench_with_input(BenchmarkId::new("route_adaptive", n), &n, |b, _| {
            b.iter(|| route_adaptive(black_box(&cube), 1, (1 << n) - 1).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_pc,
    bench_ct,
    bench_ffgcr,
    bench_ftgcr,
    bench_freh,
    bench_hypercube_substrate
);
criterion_main!(benches);
