//! Criterion benchmarks for the ending-class plan cache: walk hit vs miss
//! cost, and cached vs uncached route-planning throughput (the ISSUE's
//! ≥2x criterion at `n = 12`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use gcube_routing::{ffgcr, ftgcr, FaultSet, PlanCache};
use gcube_topology::{GaussianCube, LinkId, NodeId};

/// Deterministic pair stream covering many ending-class combinations.
fn pair(n: u32, i: u64) -> (NodeId, NodeId) {
    let mask = (1u64 << n) - 1;
    let x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (NodeId(x & mask), NodeId((x >> 21) & mask))
}

fn bench_walk_hit_miss(c: &mut Criterion) {
    let gc = GaussianCube::new(12, 4).unwrap();
    let (s, d) = (NodeId(0), NodeId((1 << 12) - 1));
    let mut g = c.benchmark_group("plan_cache");
    // Miss: a fresh cache pays one tree walk + table build.
    g.bench_function("route_miss", |b| {
        b.iter(|| {
            let cache = PlanCache::new(&gc);
            black_box(cache.route(&gc, s, d).unwrap())
        })
    });
    // Hit: the same pair served from the warm cache.
    let cache = PlanCache::new(&gc);
    cache.route(&gc, s, d).unwrap();
    g.bench_function("route_hit", |b| {
        b.iter(|| black_box(cache.route(&gc, black_box(s), black_box(d)).unwrap()))
    });
    g.finish();
}

fn bench_route_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("route_throughput");
    for n in [10u32, 12, 14] {
        let gc = GaussianCube::new(n, 4).unwrap();
        g.bench_with_input(BenchmarkId::new("ffgcr_uncached", n), &n, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let (s, d) = pair(n, i);
                black_box(ffgcr::route(&gc, s, d).unwrap())
            })
        });
        let cache = PlanCache::new(&gc);
        g.bench_with_input(BenchmarkId::new("ffgcr_cached", n), &n, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let (s, d) = pair(n, i);
                black_box(ffgcr::route_cached(&gc, s, d, &cache).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_ftgcr_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("route_throughput_faulty");
    let n = 12u32;
    let gc = GaussianCube::new(n, 4).unwrap();
    let mut faults = FaultSet::new();
    faults.add_node(NodeId(77));
    faults.add_link(LinkId::new(NodeId(2048), 0));
    g.bench_function("ftgcr_uncached", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let (s, d) = pair(n, i);
            black_box(ftgcr::route(&gc, &faults, s, d))
        })
    });
    let cache = PlanCache::new(&gc);
    g.bench_function("ftgcr_cached", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let (s, d) = pair(n, i);
            black_box(ftgcr::route_cached(&gc, &faults, s, d, &cache))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_walk_hit_miss,
    bench_route_throughput,
    bench_ftgcr_throughput
);
criterion_main!(benches);
