//! Criterion benchmarks for the topology substrate: neighbour generation,
//! BFS, tree diameters — the primitives everything else leans on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use gcube_topology::{search, GaussianCube, GaussianTree, NoFaults, NodeId, Topology};

fn bench_neighbors(c: &mut Criterion) {
    let mut g = c.benchmark_group("neighbors");
    for (n, m) in [(12u32, 1u64), (12, 4), (16, 4), (20, 8)] {
        let gc = GaussianCube::new(n, m).unwrap();
        g.bench_with_input(BenchmarkId::new("gc", format!("n{n}_m{m}")), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for v in (0..gc.num_nodes()).step_by(97) {
                    acc += gc.neighbors(black_box(NodeId(v))).len() as u64;
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("bfs");
    g.sample_size(20);
    for (n, m) in [(12u32, 2u64), (14, 2), (16, 4)] {
        let gc = GaussianCube::new(n, m).unwrap();
        g.bench_with_input(BenchmarkId::new("gc", format!("n{n}_m{m}")), &n, |b, _| {
            b.iter(|| search::bfs_distances(&gc, black_box(NodeId(0)), &NoFaults))
        });
    }
    g.finish();
}

fn bench_tree_diameter(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_diameter");
    g.sample_size(10);
    for m in [12u32, 14, 16] {
        let t = GaussianTree::new(m).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(&t).diameter())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_neighbors, bench_bfs, bench_tree_diameter);
criterion_main!(benches);
