//! Criterion benchmarks for the collective primitives: multicast walk
//! construction, broadcast tree/schedule building, gather scheduling.

use std::collections::BTreeSet;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use gcube_routing::collective::{
    binomial_broadcast_schedule, broadcast_tree, gather_schedule, multicast_walk,
};
use gcube_topology::{GaussianCube, NodeId};

fn bench_multicast(c: &mut Criterion) {
    let mut g = c.benchmark_group("multicast_walk");
    for (n, m, fanout) in [(8u32, 2u64, 8usize), (10, 2, 16), (10, 4, 16)] {
        let gc = GaussianCube::new(n, m).unwrap();
        let dests: BTreeSet<NodeId> = (1..gc_limit(n))
            .step_by(gc_limit(n) as usize / fanout)
            .map(NodeId)
            .collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}_d{}", dests.len())),
            &n,
            |b, _| b.iter(|| multicast_walk(&gc, black_box(NodeId(0)), black_box(&dests)).unwrap()),
        );
    }
    g.finish();
}

fn gc_limit(n: u32) -> u64 {
    1u64 << n
}

fn bench_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("broadcast");
    g.sample_size(20);
    for (n, m) in [(8u32, 2u64), (10, 2), (12, 4)] {
        let gc = GaussianCube::new(n, m).unwrap();
        g.bench_with_input(
            BenchmarkId::new("tree", format!("n{n}_m{m}")),
            &n,
            |b, _| b.iter(|| broadcast_tree(&gc, black_box(NodeId(0))).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("schedule", format!("n{n}_m{m}")),
            &n,
            |b, _| b.iter(|| binomial_broadcast_schedule(&gc, black_box(NodeId(0))).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("gather", format!("n{n}_m{m}")),
            &n,
            |b, _| b.iter(|| gather_schedule(&gc, black_box(NodeId(0))).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_multicast, bench_broadcast);
criterion_main!(benches);
