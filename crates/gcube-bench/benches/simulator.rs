//! Criterion benchmarks for the cycle-driven simulator: cost per simulated
//! cycle and end-to-end mini sweeps (the engine behind Figures 5–8).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use gcube_sim::{
    CachedFfgcr, FaultFreeGcr, FaultTolerantGcr, MemorySink, SimConfig, Simulator,
    TelemetryCollector,
};

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_run");
    g.sample_size(10);
    for n in [6u32, 8, 10] {
        let cfg = SimConfig::new(n, 2)
            .with_cycles(100, 1_000, 10)
            .with_rate(0.01);
        g.bench_with_input(BenchmarkId::new("ffgcr", n), &cfg, |b, cfg| {
            b.iter(|| {
                Simulator::new(black_box(cfg.clone()), &FaultFreeGcr)
                    .session()
                    .run()
                    .metrics
            })
        });
    }
    for n in [6u32, 8] {
        let cfg = SimConfig::new(n, 2)
            .with_cycles(100, 1_000, 10)
            .with_rate(0.01)
            .with_faults(1);
        g.bench_with_input(BenchmarkId::new("ftgcr_one_fault", n), &cfg, |b, cfg| {
            b.iter(|| {
                Simulator::new(black_box(cfg.clone()), &FaultTolerantGcr)
                    .session()
                    .run()
                    .metrics
            })
        });
    }
    g.finish();
}

fn bench_route_computation_rate(c: &mut Criterion) {
    // Measures pure route-computation throughput at the injection path.
    use gcube_routing::{ffgcr, FaultSet};
    use gcube_topology::{GaussianCube, NodeId};
    let mut g = c.benchmark_group("route_computation");
    for n in [8u32, 12, 14] {
        let gc = GaussianCube::new(n, 2).unwrap();
        let _f = FaultSet::new();
        g.bench_with_input(BenchmarkId::new("ffgcr_all_dims", n), &n, |b, _| {
            let d = NodeId((1u64 << n) - 1);
            b.iter(|| ffgcr::route(&gc, black_box(NodeId(0)), black_box(d)).unwrap())
        });
    }
    g.finish();
}

fn bench_engine_cached(c: &mut Criterion) {
    // Full-engine cycles at scale with the plan-cached strategy: the
    // allocation-free forwarding loop plus amortised planning.
    let mut g = c.benchmark_group("engine_cached");
    g.sample_size(10);
    let algo = CachedFfgcr::new();
    for n in [10u32, 12, 14, 16] {
        let cfg = SimConfig::new(n, 4)
            .with_cycles(50, 500, 0)
            .with_rate(0.005);
        g.bench_with_input(BenchmarkId::new("cached_ffgcr", n), &cfg, |b, cfg| {
            b.iter(|| {
                Simulator::new(black_box(cfg.clone()), &algo)
                    .session()
                    .run()
                    .metrics
            })
        });
    }
    g.finish();
}

fn bench_tracing(c: &mut Criterion) {
    // The flight recorder must cost nothing when off: a bare session goes
    // through the monomorphised NullSink path, which compiles event
    // construction out. `traced` bounds the cost of recording every event
    // into memory.
    let mut g = c.benchmark_group("tracing");
    g.sample_size(10);
    let algo = CachedFfgcr::new();
    let cfg = SimConfig::new(10, 4)
        .with_cycles(50, 500, 0)
        .with_rate(0.005);
    g.bench_with_input(BenchmarkId::new("off_null_sink", 10), &cfg, |b, cfg| {
        b.iter(|| {
            Simulator::new(black_box(cfg.clone()), &algo)
                .session()
                .run()
        })
    });
    g.bench_with_input(BenchmarkId::new("on_memory_sink", 10), &cfg, |b, cfg| {
        b.iter(|| {
            let mut sink = MemorySink::new();
            let r = Simulator::new(black_box(cfg.clone()), &algo)
                .session()
                .trace(&mut sink)
                .run();
            black_box((r, sink.events().len()))
        })
    });
    g.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    // Telemetry must also cost nothing when off: a bare session stays on the
    // monomorphised NullTelemetry path (the allocation-free guarantee the
    // ISSUE demands). `on_collector` bounds the per-cycle sampling cost
    // with a live ring-buffered collector at a 50-cycle interval.
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(10);
    let algo = CachedFfgcr::new();
    let cfg = SimConfig::new(10, 4)
        .with_cycles(50, 500, 0)
        .with_rate(0.005)
        .with_telemetry_interval(50);
    g.bench_with_input(BenchmarkId::new("off_null", 10), &cfg, |b, cfg| {
        b.iter(|| {
            Simulator::new(black_box(cfg.clone()), &algo)
                .session()
                .run()
        })
    });
    g.bench_with_input(BenchmarkId::new("on_collector", 10), &cfg, |b, cfg| {
        b.iter(|| {
            let sim = Simulator::new(black_box(cfg.clone()), &algo);
            let mut telem = TelemetryCollector::new(sim.cube(), 50);
            let r = sim.session().telemetry(&mut telem).run();
            black_box((r, telem.samples().count()))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_route_computation_rate,
    bench_engine_cached,
    bench_tracing,
    bench_telemetry
);
criterion_main!(benches);
