//! The paper's fault model: fault sets, the A/B/C taxonomy (Definitions
//! 3–5), the per-subcube tolerance bound `N(α,k)` and aggregate bound
//! `T(GC)` (Theorem 3 / Figure 4), and the Theorem-5 precondition over
//! exchanged-hypercube crossings.
//!
//! * **A-category** — a *link* fault in a dimension `c ≥ α`. Such faults
//!   only perturb routing *inside* a `GEEC(α,k,t)` subcube.
//! * **B-category** — an error whose failed links all lie in dimensions
//!   `< α`: either a link fault with `c < α`, or a node fault at a node with
//!   no incident link in any dimension `≥ α`.
//! * **C-category** — a node fault that breaks links on both sides of `α`.
//!
//! B and C faults can block a Gaussian-tree edge crossing; Theorem 5 bounds
//! how many the strategy absorbs by viewing each crossing neighbourhood as
//! an exchanged hypercube.

use std::collections::HashSet;

use gcube_topology::classes::{dim_count, dims, n_bound_paper, subcube_pos};
use gcube_topology::{GaussianCube, GaussianTree, LinkId, LinkMask, NodeId, Topology};

/// A set of faulty nodes and faulty links.
///
/// Per the simulator's assumption (3), a faulty node makes all of its
/// incident links faulty; [`FaultSet::is_link_usable`] accounts for that.
///
/// The set carries a [`generation`](FaultSet::generation) change stamp so
/// observers (the simulator's routing view) can detect "nothing changed
/// since I last looked" without comparing the whole set. Equality ignores
/// the stamp: two sets are equal iff their faults are.
#[derive(Clone, Debug, Default)]
pub struct FaultSet {
    nodes: HashSet<NodeId>,
    links: HashSet<LinkId>,
    generation: u64,
}

impl PartialEq for FaultSet {
    fn eq(&self, other: &FaultSet) -> bool {
        self.nodes == other.nodes && self.links == other.links
    }
}

impl Eq for FaultSet {}

impl FaultSet {
    /// An empty (fault-free) set.
    pub fn new() -> FaultSet {
        FaultSet::default()
    }

    /// Mark a node faulty.
    pub fn add_node(&mut self, n: NodeId) {
        if self.nodes.insert(n) {
            self.generation += 1;
        }
    }

    /// Mark a link faulty.
    pub fn add_link(&mut self, l: LinkId) {
        if self.links.insert(l) {
            self.generation += 1;
        }
    }

    /// Repair a node: it participates in routing again. Returns whether the
    /// node was faulty. Links that were *explicitly* marked faulty stay
    /// faulty — only the implicit "faulty endpoint kills the link" effect
    /// is lifted.
    pub fn remove_node(&mut self, n: NodeId) -> bool {
        let removed = self.nodes.remove(&n);
        if removed {
            self.generation += 1;
        }
        removed
    }

    /// Repair an explicitly faulty link. Returns whether it was marked.
    /// The link may still be unusable if an endpoint is a faulty node.
    pub fn remove_link(&mut self, l: LinkId) -> bool {
        let removed = self.links.remove(&l);
        if removed {
            self.generation += 1;
        }
        removed
    }

    /// The change stamp: bumped on every *effective* mutation (inserting a
    /// fault already present, or removing one that is absent, leaves it
    /// untouched). [`FaultSet::sync_from`] adopts the source's stamp, so
    /// the value is a change detector, not a monotone counter.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Make `self` an exact copy of `other` — contents and generation —
    /// reusing `self`'s hash-table allocations instead of cloning.
    ///
    /// After the call `self.generation() == other.generation()`; a consumer
    /// that records the pair of stamps at sync time can skip future syncs
    /// while both stamps are unchanged.
    pub fn sync_from(&mut self, other: &FaultSet) {
        self.nodes.clear();
        self.nodes.extend(other.nodes.iter().copied());
        self.links.clear();
        self.links.extend(other.links.iter().copied());
        self.generation = other.generation;
    }

    /// Whether the node itself is faulty.
    #[inline]
    pub fn is_node_faulty(&self, n: NodeId) -> bool {
        self.nodes.contains(&n)
    }

    /// Whether the link itself was marked faulty (endpoint faults *not*
    /// considered; see [`FaultSet::is_link_usable`]).
    #[inline]
    pub fn is_link_faulty(&self, l: LinkId) -> bool {
        self.links.contains(&l)
    }

    /// Whether a packet may traverse this link: the link is healthy and so
    /// are both endpoints.
    pub fn is_link_usable(&self, l: LinkId) -> bool {
        let (a, b) = l.endpoints();
        !self.links.contains(&l) && !self.nodes.contains(&a) && !self.nodes.contains(&b)
    }

    /// Faulty nodes, in arbitrary order.
    pub fn faulty_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Explicitly faulty links (not counting links killed by node faults).
    pub fn faulty_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.links.iter().copied()
    }

    /// Total number of faulty components (nodes + explicit links).
    pub fn len(&self) -> usize {
        self.nodes.len() + self.links.len()
    }

    /// Whether the set is empty (fault-free network).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.links.is_empty()
    }
}

impl LinkMask for FaultSet {
    #[inline]
    fn node_ok(&self, node: NodeId) -> bool {
        !self.nodes.contains(&node)
    }
    #[inline]
    fn link_ok(&self, link: LinkId) -> bool {
        !self.links.contains(&link)
    }
}

/// The paper's fault taxonomy (Definitions 3–5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultCategory {
    /// Link fault in a dimension `≥ α`.
    A,
    /// All incurred link failures lie in dimensions `< α`.
    B,
    /// Node fault breaking links in dimensions both `< α` and `≥ α`.
    C,
}

/// Classify a faulty link (Definition 3/4): A iff its dimension is `≥ α`.
pub fn link_category(gc: &GaussianCube, l: LinkId) -> FaultCategory {
    if l.dim >= gc.alpha() {
        FaultCategory::A
    } else {
        FaultCategory::B
    }
}

/// Classify a faulty node (Definition 4/5): C iff it owns a link in a
/// dimension `≥ α` (it always owns the dimension-0 link, so it also breaks
/// links `< α`); otherwise B.
pub fn node_category(gc: &GaussianCube, n: NodeId) -> FaultCategory {
    let has_high = (gc.alpha()..gc.n()).any(|c| gc.has_link(n, c));
    if has_high {
        FaultCategory::C
    } else {
        FaultCategory::B
    }
}

/// Counts of faults by category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CategoryCounts {
    /// A-category (high-dimension link) faults.
    pub a: usize,
    /// B-category faults.
    pub b: usize,
    /// C-category (node) faults.
    pub c: usize,
}

/// Categorise every fault in the set.
pub fn categorize(gc: &GaussianCube, faults: &FaultSet) -> CategoryCounts {
    let mut counts = CategoryCounts::default();
    for l in faults.faulty_links() {
        match link_category(gc, l) {
            FaultCategory::A => counts.a += 1,
            _ => counts.b += 1,
        }
    }
    for n in faults.faulty_nodes() {
        match node_category(gc, n) {
            FaultCategory::C => counts.c += 1,
            _ => counts.b += 1,
        }
    }
    counts
}

/// Whether the fault set contains only A-category faults (Theorem 3's
/// standing assumption).
pub fn only_a_category(gc: &GaussianCube, faults: &FaultSet) -> bool {
    faults.faulty_nodes().next().is_none()
        && faults
            .faulty_links()
            .all(|l| link_category(gc, l) == FaultCategory::A)
}

/// Number of faulty components charged to the subcube `GEEC(α, k, t)`:
/// faulty member nodes plus faulty links among the subcube's dimensions.
pub fn faults_in_geec(gc: &GaussianCube, faults: &FaultSet, k: u64, t: u64) -> usize {
    let mut count = 0;
    for n in faults.faulty_nodes() {
        let pos = subcube_pos(gc, n);
        if pos.k == k && pos.t == t {
            count += 1;
        }
    }
    let dim_set = dims(gc.n(), gc.alpha(), k);
    for l in faults.faulty_links() {
        if dim_set.contains(&l.dim) {
            let pos = subcube_pos(gc, l.lo);
            if pos.k == k && pos.t == t {
                count += 1;
            }
        }
    }
    count
}

/// Theorem 3 precondition (with the paper's bound): only A-category faults,
/// and every `GEEC(α,k,t)` holds fewer than `N(α,k)` of them.
pub fn theorem3_precondition_paper(gc: &GaussianCube, faults: &FaultSet) -> bool {
    theorem3_precondition_inner(gc, faults, |k| n_bound_paper(gc.n(), gc.alpha(), k))
}

/// Theorem 3 precondition with the *guaranteed* bound (DESIGN.md §3): fewer
/// than `|Dim(α,k)|` faults per subcube, the link connectivity of the
/// embedded hypercube. This is what the test-suite enforces.
pub fn theorem3_precondition_guaranteed(gc: &GaussianCube, faults: &FaultSet) -> bool {
    theorem3_precondition_inner(gc, faults, |k| dim_count(gc.n(), gc.alpha(), k))
}

fn theorem3_precondition_inner(
    gc: &GaussianCube,
    faults: &FaultSet,
    bound: impl Fn(u64) -> u32,
) -> bool {
    if !only_a_category(gc, faults) {
        return false;
    }
    // Only subcubes actually containing faults need checking.
    let mut checked: HashSet<(u64, u64)> = HashSet::new();
    for l in faults.faulty_links() {
        let pos = subcube_pos(gc, l.lo);
        if checked.insert((pos.k, pos.t)) {
            let b = bound(pos.k);
            if faults_in_geec(gc, faults, pos.k, pos.t) as u32 >= b.max(1) {
                return false;
            }
        }
    }
    true
}

/// The paper's tolerable-fault aggregate (Theorem 3 / Figure 4):
/// `T(GC) = Σ_k (N(α,k) − 1) · #subcubes(k)` — each of the `2^(n−α−|Dim|)`
/// subcubes of class `k` can absorb `N(α,k) − 1 = |Dim(α,k)|` link faults.
pub fn max_tolerable_faults_paper(n: u32, alpha: u32) -> u64 {
    let mut total = 0u64;
    for k in 0..(1u64 << alpha) {
        let d = dim_count(n, alpha, k);
        let per = u64::from(n_bound_paper(n, alpha, k).saturating_sub(1));
        let subcubes = 1u64 << (n - alpha - d);
        total += per * subcubes;
    }
    total
}

/// The strictly guaranteed variant: `|Dim(α,k)| − 1` faults per subcube
/// (below the embedded cube's link connectivity).
pub fn max_tolerable_faults_guaranteed(n: u32, alpha: u32) -> u64 {
    let mut total = 0u64;
    for k in 0..(1u64 << alpha) {
        let d = dim_count(n, alpha, k);
        let per = u64::from(d.saturating_sub(1));
        let subcubes = 1u64 << (n - alpha - d);
        total += per * subcubes;
    }
    total
}

/// Fault counts around one Gaussian-tree edge crossing `(p, q)` restricted
/// to the `k̃`-indexed exchanged-hypercube block `G(p, q, k̃)` (paper §5):
/// `e_s` in the class-`p` side, `e_t` in the class-`q` side, and `e'`
/// faulty crossing links not incident to an already-faulty node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrossingFaults {
    /// Faulty components in the class-`p` cubes of the block.
    pub e_s: usize,
    /// Faulty components in the class-`q` cubes of the block.
    pub e_t: usize,
    /// Faulty crossing (dimension `c₀ < α`) links with healthy endpoints.
    pub e_cross: usize,
}

/// The block index `k̃` of a node relative to a tree edge `(p,q)`: the
/// packed bits of all dimensions outside `[0,α) ∪ Dim(p) ∪ Dim(q)`.
pub fn crossing_block_index(gc: &GaussianCube, p_class: u64, q_class: u64, node: NodeId) -> u64 {
    let (n, alpha) = (gc.n(), gc.alpha());
    let dp = dims(n, alpha, p_class);
    let dq = dims(n, alpha, q_class);
    let mut idx = 0u64;
    let mut bit = 0;
    for c in alpha..n {
        if !dp.contains(&c) && !dq.contains(&c) {
            if node.bit(c) {
                idx |= 1 << bit;
            }
            bit += 1;
        }
    }
    idx
}

/// Count the crossing-relevant faults for tree edge `(p, q)` within block
/// `k̃` (Theorem 5's `e_s`, `e_t`, `e'`).
pub fn crossing_faults(
    gc: &GaussianCube,
    faults: &FaultSet,
    p_class: u64,
    q_class: u64,
    block: u64,
) -> CrossingFaults {
    let alpha = gc.alpha();
    let tree = GaussianTree::new(alpha).expect("alpha within cap");
    let c0 = tree
        .edge_dim(NodeId(p_class), NodeId(q_class))
        .expect("(p,q) must be a tree edge");
    let dp = dims(gc.n(), alpha, p_class);
    let dq = dims(gc.n(), alpha, q_class);
    let mut out = CrossingFaults::default();
    let in_block = |n: NodeId| crossing_block_index(gc, p_class, q_class, n) == block;
    for n in faults.faulty_nodes() {
        let k = gc.ending_class(n);
        if in_block(n) {
            if k == p_class {
                out.e_s += 1;
            } else if k == q_class {
                out.e_t += 1;
            }
        }
    }
    for l in faults.faulty_links() {
        let (a, b) = l.endpoints();
        if !in_block(a) {
            continue;
        }
        let ka = gc.ending_class(a);
        if l.dim == c0 && (ka == p_class || ka == q_class) {
            if !faults.is_node_faulty(a) && !faults.is_node_faulty(b) {
                out.e_cross += 1;
            }
        } else if ka == p_class && dp.contains(&l.dim) {
            out.e_s += 1;
        } else if ka == q_class && dq.contains(&l.dim) {
            out.e_t += 1;
        }
    }
    out
}

/// Theorem 5 precondition: for every tree edge `(p, q)` and every block
/// `k̃`: `e_s + e' < |Dim(p)|` and `e_t + e' < |Dim(q)|`.
pub fn theorem5_precondition(gc: &GaussianCube, faults: &FaultSet) -> bool {
    let (n, alpha) = (gc.n(), gc.alpha());
    let tree = GaussianTree::new(alpha).expect("alpha within cap");
    for edge in tree.links() {
        let (p, q) = edge.endpoints();
        let dp = dim_count(n, alpha, p.0);
        let dq = dim_count(n, alpha, q.0);
        let free = dp + dq;
        let blocks = 1u64 << (n - alpha - free);
        for block in 0..blocks {
            let cf = crossing_faults(gc, faults, p.0, q.0, block);
            // A zero-dimensional side cannot detour at all, so it tolerates
            // zero faults (hence the `.max(1)` floor on the strict bound).
            if (cf.e_s + cf.e_cross) as u32 >= dp.max(1)
                || (cf.e_t + cf.e_cross) as u32 >= dq.max(1)
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gc84() -> GaussianCube {
        GaussianCube::new(8, 4).unwrap()
    }

    #[test]
    fn fault_set_basics() {
        let mut f = FaultSet::new();
        assert!(f.is_empty());
        f.add_node(NodeId(3));
        f.add_link(LinkId::new(NodeId(0), 0));
        assert_eq!(f.len(), 2);
        assert!(f.is_node_faulty(NodeId(3)));
        assert!(!f.is_node_faulty(NodeId(4)));
        assert!(f.is_link_faulty(LinkId::new(NodeId(1), 0)));
        // Link incident to a faulty node is unusable even if not marked.
        f.add_node(NodeId(8));
        assert!(!f.is_link_usable(LinkId::new(NodeId(8), 0)));
        assert!(f.is_link_usable(LinkId::new(NodeId(16), 4)));
    }

    #[test]
    fn generation_tracks_effective_mutations_only() {
        let mut f = FaultSet::new();
        assert_eq!(f.generation(), 0);
        f.add_node(NodeId(3));
        assert_eq!(f.generation(), 1);
        f.add_node(NodeId(3)); // already present: no change
        assert_eq!(f.generation(), 1);
        f.add_link(LinkId::new(NodeId(0), 0));
        assert_eq!(f.generation(), 2);
        assert!(!f.remove_node(NodeId(99))); // absent: no change
        assert_eq!(f.generation(), 2);
        assert!(f.remove_node(NodeId(3)));
        assert_eq!(f.generation(), 3);
        assert!(f.remove_link(LinkId::new(NodeId(0), 0)));
        assert_eq!(f.generation(), 4);
    }

    #[test]
    fn equality_ignores_generation() {
        let mut a = FaultSet::new();
        a.add_node(NodeId(1));
        let mut b = FaultSet::new();
        b.add_node(NodeId(2));
        b.remove_node(NodeId(2));
        b.add_node(NodeId(1));
        assert_ne!(a.generation(), b.generation());
        assert_eq!(a, b, "same faults must compare equal despite stamps");
    }

    #[test]
    fn sync_from_copies_contents_and_stamp() {
        let mut truth = FaultSet::new();
        truth.add_node(NodeId(7));
        truth.add_link(LinkId::new(NodeId(2), 1));
        let mut view = FaultSet::new();
        view.add_node(NodeId(42)); // stale local observation
        view.sync_from(&truth);
        assert_eq!(view, truth);
        assert_eq!(view.generation(), truth.generation());
        assert!(!view.is_node_faulty(NodeId(42)));
        // Repairs propagate too (the clear-and-extend path).
        truth.remove_node(NodeId(7));
        view.sync_from(&truth);
        assert_eq!(view, truth);
        assert!(!view.is_node_faulty(NodeId(7)));
    }

    #[test]
    fn link_categories_split_at_alpha() {
        let gc = gc84(); // α = 2
        assert_eq!(
            link_category(&gc, LinkId::new(NodeId(0), 0)),
            FaultCategory::B
        );
        assert_eq!(
            link_category(&gc, LinkId::new(NodeId(1), 1)),
            FaultCategory::B
        );
        assert_eq!(
            link_category(&gc, LinkId::new(NodeId(2), 2)),
            FaultCategory::A
        );
        assert_eq!(
            link_category(&gc, LinkId::new(NodeId(0), 4)),
            FaultCategory::A
        );
    }

    #[test]
    fn node_categories_follow_dim_sets() {
        let gc = gc84(); // α = 2; Dim(0)={4}, Dim(1)={5}, Dim(2)={2,6}, Dim(3)={3,7}
                         // Every class of GC(8,4) has at least one high dimension, so every
                         // node fault is C-category.
        for v in 0..gc.num_nodes() {
            assert_eq!(node_category(&gc, NodeId(v)), FaultCategory::C);
        }
        // In GC(3, 4) (α = 2, dims {2} only): only class-2 nodes own a high
        // link; other node faults are B-category.
        let small = GaussianCube::new(3, 4).unwrap();
        assert_eq!(node_category(&small, NodeId(0b000)), FaultCategory::B);
        assert_eq!(node_category(&small, NodeId(0b001)), FaultCategory::B);
        assert_eq!(node_category(&small, NodeId(0b010)), FaultCategory::C);
        assert_eq!(node_category(&small, NodeId(0b011)), FaultCategory::B);
    }

    #[test]
    fn categorize_counts() {
        let gc = gc84();
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(0), 4)); // A
        f.add_link(LinkId::new(NodeId(0), 0)); // B
        f.add_node(NodeId(5)); // C
        let c = categorize(&gc, &f);
        assert_eq!(c, CategoryCounts { a: 1, b: 1, c: 1 });
        assert!(!only_a_category(&gc, &f));
        let mut fa = FaultSet::new();
        fa.add_link(LinkId::new(NodeId(0), 4));
        assert!(only_a_category(&gc, &fa));
    }

    #[test]
    fn faults_in_geec_counts_members_only() {
        let gc = gc84();
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(0), 4)); // class 0, dim 4
        let pos = subcube_pos(&gc, NodeId(0));
        assert_eq!(faults_in_geec(&gc, &f, pos.k, pos.t), 1);
        assert_eq!(faults_in_geec(&gc, &f, pos.k, pos.t + 1), 0);
        // A tree-link (dim < α) fault is charged to no GEEC.
        let mut fb = FaultSet::new();
        fb.add_link(LinkId::new(NodeId(0), 0));
        assert_eq!(faults_in_geec(&gc, &fb, pos.k, pos.t), 0);
    }

    #[test]
    fn theorem3_preconditions() {
        let gc = GaussianCube::new(10, 4).unwrap(); // Dim(2)={2,6}, |Dim|=2
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(0b0000000010), 2));
        assert!(theorem3_precondition_guaranteed(&gc, &f));
        assert!(theorem3_precondition_paper(&gc, &f));
        // Two A faults in the same GEEC: guaranteed bound fails, paper bound
        // (< N = 3) still holds.
        f.add_link(LinkId::new(NodeId(0b0000000010), 6));
        assert!(!theorem3_precondition_guaranteed(&gc, &f));
        assert!(theorem3_precondition_paper(&gc, &f));
        // Any node fault voids Theorem 3 entirely.
        let mut fnode = FaultSet::new();
        fnode.add_node(NodeId(0));
        assert!(!theorem3_precondition_paper(&gc, &fnode));
    }

    #[test]
    fn tolerable_fault_counts_grow_with_n() {
        for alpha in 1..=4u32 {
            let mut prev = 0;
            for n in (alpha + 2)..=24 {
                let t = max_tolerable_faults_paper(n, alpha);
                assert!(t >= prev, "T must be monotone in n (α={alpha}, n={n})");
                assert!(
                    max_tolerable_faults_guaranteed(n, alpha) <= t,
                    "guaranteed bound cannot exceed the paper bound"
                );
                prev = t;
            }
        }
    }

    #[test]
    fn tolerable_faults_match_hand_count() {
        // GC(8, 4): Dim sizes per class = [1, 1, 2, 2]; subcubes per class =
        // 2^(6-|Dim|). Paper bound: Σ |Dim| · 2^(6-|Dim|)
        //   = 1·32 + 1·32 + 2·16 + 2·16 = 128.
        assert_eq!(max_tolerable_faults_paper(8, 2), 128);
        // Guaranteed: Σ (|Dim|-1)·2^(6-|Dim|) = 0 + 0 + 16 + 16 = 32.
        assert_eq!(max_tolerable_faults_guaranteed(8, 2), 32);
    }

    #[test]
    fn crossing_faults_empty_without_faults() {
        let gc = GaussianCube::new(8, 8).unwrap();
        let tree = GaussianTree::new(3).unwrap();
        for edge in tree.links() {
            let (p, q) = edge.endpoints();
            let cf = crossing_faults(&gc, &FaultSet::new(), p.0, q.0, 0);
            assert_eq!(cf, CrossingFaults::default());
        }
    }

    #[test]
    fn crossing_faults_classify_sides() {
        // GC(10, 4), α=2: tree edge (2, 3) via dim 0. Dim(2)={2,6},
        // Dim(3)={3,7}. No other high dims outside the union ∪{2,3,6,7} in
        // [2,9]: {4,5,8,9} remain → 4 block bits.
        let gc = GaussianCube::new(10, 4).unwrap();
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(0b10), 2)); // class-2 side, block 0
        f.add_link(LinkId::new(NodeId(0b11), 3)); // class-3 side, block 0
        f.add_link(LinkId::new(NodeId(0b10), 0)); // crossing link 2<->3
        let cf = crossing_faults(&gc, &f, 2, 3, 0);
        assert_eq!(
            cf,
            CrossingFaults {
                e_s: 1,
                e_t: 1,
                e_cross: 1
            }
        );
        // Same faults seen from a different block: nothing.
        let cf1 = crossing_faults(&gc, &f, 2, 3, 1);
        assert_eq!(cf1, CrossingFaults::default());
    }

    #[test]
    fn theorem5_trivially_true_without_faults() {
        let gc = GaussianCube::new(9, 4).unwrap();
        assert!(theorem5_precondition(&gc, &FaultSet::new()));
    }

    #[test]
    fn theorem5_detects_saturated_crossing() {
        // GC(10, 4): two A faults inside one class-2 subcube saturate
        // e_s + e' < |Dim(2)| = 2 for the (2,3) crossing.
        let gc = GaussianCube::new(10, 4).unwrap();
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(0b10), 2));
        f.add_link(LinkId::new(NodeId(0b10), 6));
        assert!(!theorem5_precondition(&gc, &f));
        let mut f1 = FaultSet::new();
        f1.add_link(LinkId::new(NodeId(0b10), 2));
        assert!(theorem5_precondition(&gc, &f1));
    }
}
