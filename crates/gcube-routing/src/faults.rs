//! The paper's fault model: fault sets, the A/B/C taxonomy (Definitions
//! 3–5), the per-subcube tolerance bound `N(α,k)` and aggregate bound
//! `T(GC)` (Theorem 3 / Figure 4), and the Theorem-5 precondition over
//! exchanged-hypercube crossings.
//!
//! * **A-category** — a *link* fault in a dimension `c ≥ α`. Such faults
//!   only perturb routing *inside* a `GEEC(α,k,t)` subcube.
//! * **B-category** — an error whose failed links all lie in dimensions
//!   `< α`: either a link fault with `c < α`, or a node fault at a node with
//!   no incident link in any dimension `≥ α`.
//! * **C-category** — a node fault that breaks links on both sides of `α`.
//!
//! B and C faults can block a Gaussian-tree edge crossing; Theorem 5 bounds
//! how many the strategy absorbs by viewing each crossing neighbourhood as
//! an exchanged hypercube.

use std::collections::{BTreeSet, HashSet};
use std::fmt;

use gcube_topology::classes::{dim_count, dims, n_bound_paper, subcube_pos};
use gcube_topology::{GaussianCube, GaussianTree, LinkId, LinkMask, NodeId, Topology};

/// A set of faulty nodes and faulty links.
///
/// Per the simulator's assumption (3), a faulty node makes all of its
/// incident links faulty; [`FaultSet::is_link_usable`] accounts for that.
///
/// The set carries a [`generation`](FaultSet::generation) change stamp so
/// observers (the simulator's routing view) can detect "nothing changed
/// since I last looked" without comparing the whole set. Equality ignores
/// the stamp: two sets are equal iff their faults are.
#[derive(Clone, Debug, Default)]
pub struct FaultSet {
    nodes: HashSet<NodeId>,
    links: HashSet<LinkId>,
    generation: u64,
}

impl PartialEq for FaultSet {
    fn eq(&self, other: &FaultSet) -> bool {
        self.nodes == other.nodes && self.links == other.links
    }
}

impl Eq for FaultSet {}

impl FaultSet {
    /// An empty (fault-free) set.
    pub fn new() -> FaultSet {
        FaultSet::default()
    }

    /// Rebuild a set from explicit contents plus a recorded change stamp —
    /// the inverse of iterating [`FaultSet::faulty_nodes`] /
    /// [`FaultSet::faulty_links`] and reading
    /// [`FaultSet::generation`]. Checkpoint restore needs the stamp
    /// preserved exactly: consumers cache it to skip redundant syncs, so a
    /// reset stamp would desynchronise their skip logic.
    pub fn from_parts(
        nodes: impl IntoIterator<Item = NodeId>,
        links: impl IntoIterator<Item = LinkId>,
        generation: u64,
    ) -> FaultSet {
        FaultSet {
            nodes: nodes.into_iter().collect(),
            links: links.into_iter().collect(),
            generation,
        }
    }

    /// Mark a node faulty.
    pub fn add_node(&mut self, n: NodeId) {
        if self.nodes.insert(n) {
            self.generation += 1;
        }
    }

    /// Mark a link faulty.
    pub fn add_link(&mut self, l: LinkId) {
        if self.links.insert(l) {
            self.generation += 1;
        }
    }

    /// Repair a node: it participates in routing again. Returns whether the
    /// node was faulty. Links that were *explicitly* marked faulty stay
    /// faulty — only the implicit "faulty endpoint kills the link" effect
    /// is lifted.
    pub fn remove_node(&mut self, n: NodeId) -> bool {
        let removed = self.nodes.remove(&n);
        if removed {
            self.generation += 1;
        }
        removed
    }

    /// Repair an explicitly faulty link. Returns whether it was marked.
    /// The link may still be unusable if an endpoint is a faulty node.
    pub fn remove_link(&mut self, l: LinkId) -> bool {
        let removed = self.links.remove(&l);
        if removed {
            self.generation += 1;
        }
        removed
    }

    /// The change stamp: bumped on every *effective* mutation (inserting a
    /// fault already present, or removing one that is absent, leaves it
    /// untouched). [`FaultSet::sync_from`] adopts the source's stamp, so
    /// the value is a change detector, not a monotone counter.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Make `self` an exact copy of `other` — contents and generation —
    /// reusing `self`'s hash-table allocations instead of cloning.
    ///
    /// After the call `self.generation() == other.generation()`; a consumer
    /// that records the pair of stamps at sync time can skip future syncs
    /// while both stamps are unchanged.
    pub fn sync_from(&mut self, other: &FaultSet) {
        self.nodes.clear();
        self.nodes.extend(other.nodes.iter().copied());
        self.links.clear();
        self.links.extend(other.links.iter().copied());
        self.generation = other.generation;
    }

    /// Whether the node itself is faulty.
    #[inline]
    pub fn is_node_faulty(&self, n: NodeId) -> bool {
        self.nodes.contains(&n)
    }

    /// Whether the link itself was marked faulty (endpoint faults *not*
    /// considered; see [`FaultSet::is_link_usable`]).
    #[inline]
    pub fn is_link_faulty(&self, l: LinkId) -> bool {
        self.links.contains(&l)
    }

    /// Whether a packet may traverse this link: the link is healthy and so
    /// are both endpoints.
    pub fn is_link_usable(&self, l: LinkId) -> bool {
        let (a, b) = l.endpoints();
        !self.links.contains(&l) && !self.nodes.contains(&a) && !self.nodes.contains(&b)
    }

    /// Faulty nodes, in arbitrary order.
    pub fn faulty_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Explicitly faulty links (not counting links killed by node faults).
    pub fn faulty_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.links.iter().copied()
    }

    /// Total number of faulty components (nodes + explicit links).
    pub fn len(&self) -> usize {
        self.nodes.len() + self.links.len()
    }

    /// Whether the set is empty (fault-free network).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.links.is_empty()
    }
}

impl LinkMask for FaultSet {
    #[inline]
    fn node_ok(&self, node: NodeId) -> bool {
        !self.nodes.contains(&node)
    }
    #[inline]
    fn link_ok(&self, link: LinkId) -> bool {
        !self.links.contains(&link)
    }
}

/// The paper's fault taxonomy (Definitions 3–5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultCategory {
    /// Link fault in a dimension `≥ α`.
    A,
    /// All incurred link failures lie in dimensions `< α`.
    B,
    /// Node fault breaking links in dimensions both `< α` and `≥ α`.
    C,
}

/// Classify a faulty link (Definition 3/4): A iff its dimension is `≥ α`.
pub fn link_category(gc: &GaussianCube, l: LinkId) -> FaultCategory {
    if l.dim >= gc.alpha() {
        FaultCategory::A
    } else {
        FaultCategory::B
    }
}

/// Classify a faulty node (Definition 4/5): C iff it owns a link in a
/// dimension `≥ α` (it always owns the dimension-0 link, so it also breaks
/// links `< α`); otherwise B.
pub fn node_category(gc: &GaussianCube, n: NodeId) -> FaultCategory {
    let has_high = (gc.alpha()..gc.n()).any(|c| gc.has_link(n, c));
    if has_high {
        FaultCategory::C
    } else {
        FaultCategory::B
    }
}

/// Counts of faults by category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CategoryCounts {
    /// A-category (high-dimension link) faults.
    pub a: usize,
    /// B-category faults.
    pub b: usize,
    /// C-category (node) faults.
    pub c: usize,
}

/// Categorise every fault in the set.
pub fn categorize(gc: &GaussianCube, faults: &FaultSet) -> CategoryCounts {
    let mut counts = CategoryCounts::default();
    for l in faults.faulty_links() {
        match link_category(gc, l) {
            FaultCategory::A => counts.a += 1,
            _ => counts.b += 1,
        }
    }
    for n in faults.faulty_nodes() {
        match node_category(gc, n) {
            FaultCategory::C => counts.c += 1,
            _ => counts.b += 1,
        }
    }
    counts
}

/// Whether the fault set contains only A-category faults (Theorem 3's
/// standing assumption).
pub fn only_a_category(gc: &GaussianCube, faults: &FaultSet) -> bool {
    faults.faulty_nodes().next().is_none()
        && faults
            .faulty_links()
            .all(|l| link_category(gc, l) == FaultCategory::A)
}

/// Number of faulty components charged to the subcube `GEEC(α, k, t)`:
/// faulty member nodes plus faulty links among the subcube's dimensions.
pub fn faults_in_geec(gc: &GaussianCube, faults: &FaultSet, k: u64, t: u64) -> usize {
    let mut count = 0;
    for n in faults.faulty_nodes() {
        let pos = subcube_pos(gc, n);
        if pos.k == k && pos.t == t {
            count += 1;
        }
    }
    let dim_set = dims(gc.n(), gc.alpha(), k);
    for l in faults.faulty_links() {
        if dim_set.contains(&l.dim) {
            let pos = subcube_pos(gc, l.lo);
            if pos.k == k && pos.t == t {
                count += 1;
            }
        }
    }
    count
}

/// Theorem 3 precondition (with the paper's bound): only A-category faults,
/// and every `GEEC(α,k,t)` holds fewer than `N(α,k)` of them.
pub fn theorem3_precondition_paper(gc: &GaussianCube, faults: &FaultSet) -> bool {
    theorem3_precondition_inner(gc, faults, |k| n_bound_paper(gc.n(), gc.alpha(), k))
}

/// Theorem 3 precondition with the *guaranteed* bound (DESIGN.md §3): fewer
/// than `|Dim(α,k)|` faults per subcube, the link connectivity of the
/// embedded hypercube. This is what the test-suite enforces.
pub fn theorem3_precondition_guaranteed(gc: &GaussianCube, faults: &FaultSet) -> bool {
    theorem3_precondition_inner(gc, faults, |k| dim_count(gc.n(), gc.alpha(), k))
}

fn theorem3_precondition_inner(
    gc: &GaussianCube,
    faults: &FaultSet,
    bound: impl Fn(u64) -> u32,
) -> bool {
    if !only_a_category(gc, faults) {
        return false;
    }
    // Only subcubes actually containing faults need checking.
    let mut checked: HashSet<(u64, u64)> = HashSet::new();
    for l in faults.faulty_links() {
        let pos = subcube_pos(gc, l.lo);
        if checked.insert((pos.k, pos.t)) {
            let b = bound(pos.k);
            if faults_in_geec(gc, faults, pos.k, pos.t) as u32 >= b.max(1) {
                return false;
            }
        }
    }
    true
}

/// The paper's tolerable-fault aggregate (Theorem 3 / Figure 4):
/// `T(GC) = Σ_k (N(α,k) − 1) · #subcubes(k)` — each of the `2^(n−α−|Dim|)`
/// subcubes of class `k` can absorb `N(α,k) − 1 = |Dim(α,k)|` link faults.
pub fn max_tolerable_faults_paper(n: u32, alpha: u32) -> u64 {
    let mut total = 0u64;
    for k in 0..(1u64 << alpha) {
        let d = dim_count(n, alpha, k);
        let per = u64::from(n_bound_paper(n, alpha, k).saturating_sub(1));
        let subcubes = 1u64 << (n - alpha - d);
        total += per * subcubes;
    }
    total
}

/// The strictly guaranteed variant: `|Dim(α,k)| − 1` faults per subcube
/// (below the embedded cube's link connectivity).
pub fn max_tolerable_faults_guaranteed(n: u32, alpha: u32) -> u64 {
    let mut total = 0u64;
    for k in 0..(1u64 << alpha) {
        let d = dim_count(n, alpha, k);
        let per = u64::from(d.saturating_sub(1));
        let subcubes = 1u64 << (n - alpha - d);
        total += per * subcubes;
    }
    total
}

/// Network health relative to the Theorem 3 fault budget.
///
/// The three states form a strict ladder keyed to the paper's guarantee:
///
/// * [`HealthState::Healthy`] — no live faults at all;
/// * [`HealthState::Degraded`] — faults are present but the Theorem 3
///   precondition still holds ([`theorem3_precondition_paper`]): routing
///   remains *guaranteed*, only budget has been consumed;
/// * [`HealthState::BoundExceeded`] — the precondition is violated (a
///   non-A-category fault, or a subcube at/over its `N(α,k)` bound):
///   delivery is best-effort from here on.
///
/// By construction `BoundExceeded` holds **iff**
/// `!theorem3_precondition_paper` on a non-empty set — the property the
/// simulator's fault-budget monitor is tested against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// No live faults.
    #[default]
    Healthy,
    /// Faults within the Theorem 3 budget: guarantees intact.
    Degraded,
    /// Theorem 3 precondition violated: guarantees void.
    BoundExceeded,
}

impl HealthState {
    /// Stable lower-snake name used in trace/telemetry exports.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::BoundExceeded => "bound_exceeded",
        }
    }

    /// Inverse of [`HealthState::as_str`]. An `Option` (not the std
    /// `FromStr`) to match the JSONL-parsing call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<HealthState> {
        match s {
            "healthy" => Some(HealthState::Healthy),
            "degraded" => Some(HealthState::Degraded),
            "bound_exceeded" => Some(HealthState::BoundExceeded),
            _ => None,
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Classify a live fault set onto the health ladder (see [`HealthState`]).
pub fn health_state(gc: &GaussianCube, faults: &FaultSet) -> HealthState {
    if faults.is_empty() {
        HealthState::Healthy
    } else if theorem3_precondition_paper(gc, faults) {
        HealthState::Degraded
    } else {
        HealthState::BoundExceeded
    }
}

/// Fault load of one `GEEC(α, k, t)` subcube against its Theorem 3 bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubcubeLoad {
    /// Ending class of the subcube.
    pub k: u64,
    /// Subcube index within the class.
    pub t: u64,
    /// Faulty components charged to the subcube ([`faults_in_geec`]).
    pub faults: u32,
    /// The paper's per-subcube bound `N(α,k)` (tolerates `N − 1` faults).
    pub bound_paper: u32,
    /// The guaranteed bound `|Dim(α,k)|` (tolerates `|Dim| − 1` faults).
    pub bound_guaranteed: u32,
}

impl SubcubeLoad {
    /// Fill fraction against the paper bound: `faults / (N(α,k) − 1)`.
    /// `> 1.0` means the subcube is over budget (`inf` for a zero budget).
    pub fn fill_paper(&self) -> f64 {
        let budget = self.bound_paper.saturating_sub(1);
        if budget == 0 {
            if self.faults == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            f64::from(self.faults) / f64::from(budget)
        }
    }
}

/// A live snapshot of the network's standing against Theorem 3: category
/// census, aggregate headroom, the per-subcube loads, and the resulting
/// [`HealthState`]. Built by [`fault_budget`]; consumed by the simulator's
/// fault-budget monitor and the CLI health report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultBudget {
    /// Faults by category.
    pub counts: CategoryCounts,
    /// Total live faulty components (nodes + explicit links).
    pub total: u64,
    /// Aggregate tolerance `T(GC)`, paper bound.
    pub t_paper: u64,
    /// Aggregate tolerance, guaranteed bound.
    pub t_guaranteed: u64,
    /// Whether [`theorem3_precondition_paper`] holds.
    pub precondition_paper: bool,
    /// Whether [`theorem3_precondition_guaranteed`] holds.
    pub precondition_guaranteed: bool,
    /// Every subcube charged at least one fault, sorted by `(k, t)` so the
    /// snapshot is deterministic regardless of fault-set iteration order.
    pub loaded_subcubes: Vec<SubcubeLoad>,
    /// The resulting health classification ([`health_state`]).
    pub state: HealthState,
}

impl FaultBudget {
    /// Faults the paper bound still tolerates (saturating at zero).
    pub fn headroom_paper(&self) -> u64 {
        self.t_paper.saturating_sub(self.total)
    }

    /// Faults the guaranteed bound still tolerates (saturating at zero).
    pub fn headroom_guaranteed(&self) -> u64 {
        self.t_guaranteed.saturating_sub(self.total)
    }

    /// The subcube closest to (or furthest past) its paper budget.
    pub fn worst_subcube(&self) -> Option<&SubcubeLoad> {
        self.loaded_subcubes
            .iter()
            .max_by(|a, b| a.fill_paper().total_cmp(&b.fill_paper()))
    }
}

/// Take the live budget snapshot: classify every fault, charge each to its
/// subcube, and compare against `N(α,k)` and `T(GC)`.
pub fn fault_budget(gc: &GaussianCube, faults: &FaultSet) -> FaultBudget {
    // BTreeSet: the per-subcube listing must not depend on HashSet
    // iteration order (the snapshot is part of the deterministic report).
    let mut positions: BTreeSet<(u64, u64)> = BTreeSet::new();
    for l in faults.faulty_links() {
        let pos = subcube_pos(gc, l.lo);
        positions.insert((pos.k, pos.t));
    }
    for n in faults.faulty_nodes() {
        let pos = subcube_pos(gc, n);
        positions.insert((pos.k, pos.t));
    }
    let loaded_subcubes: Vec<SubcubeLoad> = positions
        .into_iter()
        .filter_map(|(k, t)| {
            let charged = faults_in_geec(gc, faults, k, t) as u32;
            (charged > 0).then(|| SubcubeLoad {
                k,
                t,
                faults: charged,
                bound_paper: n_bound_paper(gc.n(), gc.alpha(), k),
                bound_guaranteed: dim_count(gc.n(), gc.alpha(), k),
            })
        })
        .collect();
    FaultBudget {
        counts: categorize(gc, faults),
        total: faults.len() as u64,
        t_paper: max_tolerable_faults_paper(gc.n(), gc.alpha()),
        t_guaranteed: max_tolerable_faults_guaranteed(gc.n(), gc.alpha()),
        precondition_paper: theorem3_precondition_paper(gc, faults),
        precondition_guaranteed: theorem3_precondition_guaranteed(gc, faults),
        loaded_subcubes,
        state: health_state(gc, faults),
    }
}

/// Fault counts around one Gaussian-tree edge crossing `(p, q)` restricted
/// to the `k̃`-indexed exchanged-hypercube block `G(p, q, k̃)` (paper §5):
/// `e_s` in the class-`p` side, `e_t` in the class-`q` side, and `e'`
/// faulty crossing links not incident to an already-faulty node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrossingFaults {
    /// Faulty components in the class-`p` cubes of the block.
    pub e_s: usize,
    /// Faulty components in the class-`q` cubes of the block.
    pub e_t: usize,
    /// Faulty crossing (dimension `c₀ < α`) links with healthy endpoints.
    pub e_cross: usize,
}

/// The block index `k̃` of a node relative to a tree edge `(p,q)`: the
/// packed bits of all dimensions outside `[0,α) ∪ Dim(p) ∪ Dim(q)`.
pub fn crossing_block_index(gc: &GaussianCube, p_class: u64, q_class: u64, node: NodeId) -> u64 {
    let (n, alpha) = (gc.n(), gc.alpha());
    let dp = dims(n, alpha, p_class);
    let dq = dims(n, alpha, q_class);
    let mut idx = 0u64;
    let mut bit = 0;
    for c in alpha..n {
        if !dp.contains(&c) && !dq.contains(&c) {
            if node.bit(c) {
                idx |= 1 << bit;
            }
            bit += 1;
        }
    }
    idx
}

/// Count the crossing-relevant faults for tree edge `(p, q)` within block
/// `k̃` (Theorem 5's `e_s`, `e_t`, `e'`).
pub fn crossing_faults(
    gc: &GaussianCube,
    faults: &FaultSet,
    p_class: u64,
    q_class: u64,
    block: u64,
) -> CrossingFaults {
    let alpha = gc.alpha();
    let tree = GaussianTree::new(alpha).expect("alpha within cap");
    let c0 = tree
        .edge_dim(NodeId(p_class), NodeId(q_class))
        .expect("(p,q) must be a tree edge");
    let dp = dims(gc.n(), alpha, p_class);
    let dq = dims(gc.n(), alpha, q_class);
    let mut out = CrossingFaults::default();
    let in_block = |n: NodeId| crossing_block_index(gc, p_class, q_class, n) == block;
    for n in faults.faulty_nodes() {
        let k = gc.ending_class(n);
        if in_block(n) {
            if k == p_class {
                out.e_s += 1;
            } else if k == q_class {
                out.e_t += 1;
            }
        }
    }
    for l in faults.faulty_links() {
        let (a, b) = l.endpoints();
        if !in_block(a) {
            continue;
        }
        let ka = gc.ending_class(a);
        if l.dim == c0 && (ka == p_class || ka == q_class) {
            if !faults.is_node_faulty(a) && !faults.is_node_faulty(b) {
                out.e_cross += 1;
            }
        } else if ka == p_class && dp.contains(&l.dim) {
            out.e_s += 1;
        } else if ka == q_class && dq.contains(&l.dim) {
            out.e_t += 1;
        }
    }
    out
}

/// Theorem 5 precondition: for every tree edge `(p, q)` and every block
/// `k̃`: `e_s + e' < |Dim(p)|` and `e_t + e' < |Dim(q)|`.
pub fn theorem5_precondition(gc: &GaussianCube, faults: &FaultSet) -> bool {
    let (n, alpha) = (gc.n(), gc.alpha());
    let tree = GaussianTree::new(alpha).expect("alpha within cap");
    for edge in tree.links() {
        let (p, q) = edge.endpoints();
        let dp = dim_count(n, alpha, p.0);
        let dq = dim_count(n, alpha, q.0);
        let free = dp + dq;
        let blocks = 1u64 << (n - alpha - free);
        for block in 0..blocks {
            let cf = crossing_faults(gc, faults, p.0, q.0, block);
            // A zero-dimensional side cannot detour at all, so it tolerates
            // zero faults (hence the `.max(1)` floor on the strict bound).
            if (cf.e_s + cf.e_cross) as u32 >= dp.max(1)
                || (cf.e_t + cf.e_cross) as u32 >= dq.max(1)
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gc84() -> GaussianCube {
        GaussianCube::new(8, 4).unwrap()
    }

    #[test]
    fn fault_set_basics() {
        let mut f = FaultSet::new();
        assert!(f.is_empty());
        f.add_node(NodeId(3));
        f.add_link(LinkId::new(NodeId(0), 0));
        assert_eq!(f.len(), 2);
        assert!(f.is_node_faulty(NodeId(3)));
        assert!(!f.is_node_faulty(NodeId(4)));
        assert!(f.is_link_faulty(LinkId::new(NodeId(1), 0)));
        // Link incident to a faulty node is unusable even if not marked.
        f.add_node(NodeId(8));
        assert!(!f.is_link_usable(LinkId::new(NodeId(8), 0)));
        assert!(f.is_link_usable(LinkId::new(NodeId(16), 4)));
    }

    #[test]
    fn generation_tracks_effective_mutations_only() {
        let mut f = FaultSet::new();
        assert_eq!(f.generation(), 0);
        f.add_node(NodeId(3));
        assert_eq!(f.generation(), 1);
        f.add_node(NodeId(3)); // already present: no change
        assert_eq!(f.generation(), 1);
        f.add_link(LinkId::new(NodeId(0), 0));
        assert_eq!(f.generation(), 2);
        assert!(!f.remove_node(NodeId(99))); // absent: no change
        assert_eq!(f.generation(), 2);
        assert!(f.remove_node(NodeId(3)));
        assert_eq!(f.generation(), 3);
        assert!(f.remove_link(LinkId::new(NodeId(0), 0)));
        assert_eq!(f.generation(), 4);
    }

    #[test]
    fn equality_ignores_generation() {
        let mut a = FaultSet::new();
        a.add_node(NodeId(1));
        let mut b = FaultSet::new();
        b.add_node(NodeId(2));
        b.remove_node(NodeId(2));
        b.add_node(NodeId(1));
        assert_ne!(a.generation(), b.generation());
        assert_eq!(a, b, "same faults must compare equal despite stamps");
    }

    #[test]
    fn sync_from_copies_contents_and_stamp() {
        let mut truth = FaultSet::new();
        truth.add_node(NodeId(7));
        truth.add_link(LinkId::new(NodeId(2), 1));
        let mut view = FaultSet::new();
        view.add_node(NodeId(42)); // stale local observation
        view.sync_from(&truth);
        assert_eq!(view, truth);
        assert_eq!(view.generation(), truth.generation());
        assert!(!view.is_node_faulty(NodeId(42)));
        // Repairs propagate too (the clear-and-extend path).
        truth.remove_node(NodeId(7));
        view.sync_from(&truth);
        assert_eq!(view, truth);
        assert!(!view.is_node_faulty(NodeId(7)));
    }

    #[test]
    fn link_categories_split_at_alpha() {
        let gc = gc84(); // α = 2
        assert_eq!(
            link_category(&gc, LinkId::new(NodeId(0), 0)),
            FaultCategory::B
        );
        assert_eq!(
            link_category(&gc, LinkId::new(NodeId(1), 1)),
            FaultCategory::B
        );
        assert_eq!(
            link_category(&gc, LinkId::new(NodeId(2), 2)),
            FaultCategory::A
        );
        assert_eq!(
            link_category(&gc, LinkId::new(NodeId(0), 4)),
            FaultCategory::A
        );
    }

    #[test]
    fn node_categories_follow_dim_sets() {
        let gc = gc84(); // α = 2; Dim(0)={4}, Dim(1)={5}, Dim(2)={2,6}, Dim(3)={3,7}
                         // Every class of GC(8,4) has at least one high dimension, so every
                         // node fault is C-category.
        for v in 0..gc.num_nodes() {
            assert_eq!(node_category(&gc, NodeId(v)), FaultCategory::C);
        }
        // In GC(3, 4) (α = 2, dims {2} only): only class-2 nodes own a high
        // link; other node faults are B-category.
        let small = GaussianCube::new(3, 4).unwrap();
        assert_eq!(node_category(&small, NodeId(0b000)), FaultCategory::B);
        assert_eq!(node_category(&small, NodeId(0b001)), FaultCategory::B);
        assert_eq!(node_category(&small, NodeId(0b010)), FaultCategory::C);
        assert_eq!(node_category(&small, NodeId(0b011)), FaultCategory::B);
    }

    #[test]
    fn categorize_counts() {
        let gc = gc84();
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(0), 4)); // A
        f.add_link(LinkId::new(NodeId(0), 0)); // B
        f.add_node(NodeId(5)); // C
        let c = categorize(&gc, &f);
        assert_eq!(c, CategoryCounts { a: 1, b: 1, c: 1 });
        assert!(!only_a_category(&gc, &f));
        let mut fa = FaultSet::new();
        fa.add_link(LinkId::new(NodeId(0), 4));
        assert!(only_a_category(&gc, &fa));
    }

    #[test]
    fn faults_in_geec_counts_members_only() {
        let gc = gc84();
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(0), 4)); // class 0, dim 4
        let pos = subcube_pos(&gc, NodeId(0));
        assert_eq!(faults_in_geec(&gc, &f, pos.k, pos.t), 1);
        assert_eq!(faults_in_geec(&gc, &f, pos.k, pos.t + 1), 0);
        // A tree-link (dim < α) fault is charged to no GEEC.
        let mut fb = FaultSet::new();
        fb.add_link(LinkId::new(NodeId(0), 0));
        assert_eq!(faults_in_geec(&gc, &fb, pos.k, pos.t), 0);
    }

    #[test]
    fn theorem3_preconditions() {
        let gc = GaussianCube::new(10, 4).unwrap(); // Dim(2)={2,6}, |Dim|=2
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(0b0000000010), 2));
        assert!(theorem3_precondition_guaranteed(&gc, &f));
        assert!(theorem3_precondition_paper(&gc, &f));
        // Two A faults in the same GEEC: guaranteed bound fails, paper bound
        // (< N = 3) still holds.
        f.add_link(LinkId::new(NodeId(0b0000000010), 6));
        assert!(!theorem3_precondition_guaranteed(&gc, &f));
        assert!(theorem3_precondition_paper(&gc, &f));
        // Any node fault voids Theorem 3 entirely.
        let mut fnode = FaultSet::new();
        fnode.add_node(NodeId(0));
        assert!(!theorem3_precondition_paper(&gc, &fnode));
    }

    #[test]
    fn link_fault_exactly_at_alpha_is_a_category() {
        // The A/B boundary is dim ≥ α, inclusive: a link in dimension
        // exactly α is already a high (A-category) link.
        let gc = gc84(); // α = 2
        let at_alpha = LinkId::new(NodeId(0b10), gc.alpha());
        assert_eq!(link_category(&gc, at_alpha), FaultCategory::A);
        let below = LinkId::new(NodeId(0b01), gc.alpha() - 1);
        assert_eq!(link_category(&gc, below), FaultCategory::B);
        // And the budget snapshot charges it to its GEEC like any A fault.
        let mut f = FaultSet::new();
        f.add_link(at_alpha);
        let b = fault_budget(&gc, &f);
        assert_eq!(b.counts, CategoryCounts { a: 1, b: 0, c: 0 });
        assert_eq!(b.loaded_subcubes.len(), 1);
        assert_eq!(b.loaded_subcubes[0].faults, 1);
        assert_eq!(b.state, HealthState::Degraded);
    }

    #[test]
    fn c_category_node_straddling_alpha_voids_the_bound() {
        // A C-category node owns links on both sides of α; killing it
        // kills tree links too, so Theorem 3's A-only premise fails no
        // matter how much aggregate headroom remains.
        let gc = gc84();
        let node = NodeId(5); // class 1, owns dim 5 ≥ α and dims 0,1 < α
        assert_eq!(node_category(&gc, node), FaultCategory::C);
        let mut f = FaultSet::new();
        f.add_node(node);
        let b = fault_budget(&gc, &f);
        assert_eq!(b.counts, CategoryCounts { a: 0, b: 0, c: 1 });
        assert!(!b.precondition_paper);
        assert!(!b.precondition_guaranteed);
        assert_eq!(b.state, HealthState::BoundExceeded);
        assert!(b.headroom_paper() > 0, "headroom is not the issue here");
        // The node is still charged to its subcube in the load listing.
        assert_eq!(b.loaded_subcubes.len(), 1);
        let pos = subcube_pos(&gc, node);
        assert_eq!(
            (b.loaded_subcubes[0].k, b.loaded_subcubes[0].t),
            (pos.k, pos.t)
        );
    }

    #[test]
    fn empty_fault_set_is_healthy_with_full_headroom() {
        let gc = gc84();
        let f = FaultSet::new();
        assert_eq!(health_state(&gc, &f), HealthState::Healthy);
        let b = fault_budget(&gc, &f);
        assert_eq!(b.state, HealthState::Healthy);
        assert_eq!(b.total, 0);
        assert_eq!(b.counts, CategoryCounts::default());
        assert!(b.loaded_subcubes.is_empty());
        assert!(b.worst_subcube().is_none());
        assert!(b.precondition_paper && b.precondition_guaranteed);
        assert_eq!(b.headroom_paper(), max_tolerable_faults_paper(8, 2));
        assert_eq!(
            b.headroom_guaranteed(),
            max_tolerable_faults_guaranteed(8, 2)
        );
    }

    #[test]
    fn bound_exceeded_iff_precondition_fails() {
        // The health ladder is definitionally tied to the Theorem 3
        // checker; sweep a mix of fault sets and assert the iff.
        let gc = GaussianCube::new(10, 4).unwrap();
        let mut sets: Vec<FaultSet> = Vec::new();
        sets.push(FaultSet::new());
        for (node, dim) in [(0b10u64, 2u32), (0b10, 6), (0b11, 3), (0, 0), (1, 1)] {
            let mut f = sets.last().unwrap().clone();
            f.add_link(LinkId::new(NodeId(node), dim));
            sets.push(f);
        }
        let mut with_node = FaultSet::new();
        with_node.add_node(NodeId(6));
        sets.push(with_node);
        for f in &sets {
            let b = fault_budget(&gc, f);
            assert_eq!(
                b.state == HealthState::BoundExceeded,
                !theorem3_precondition_paper(&gc, f),
                "state {:?} vs precondition for {} faults",
                b.state,
                f.len()
            );
            assert_eq!(b.state == HealthState::Healthy, f.is_empty());
        }
    }

    #[test]
    fn budget_snapshot_is_deterministic_across_insertion_orders() {
        let gc = GaussianCube::new(10, 4).unwrap();
        let faults = [
            LinkId::new(NodeId(0b10), 2),
            LinkId::new(NodeId(0b0110), 6),
            LinkId::new(NodeId(0b11), 3),
            LinkId::new(NodeId(0b1011), 7),
        ];
        let mut fwd = FaultSet::new();
        for l in faults {
            fwd.add_link(l);
        }
        let mut rev = FaultSet::new();
        for l in faults.iter().rev() {
            rev.add_link(*l);
        }
        let a = fault_budget(&gc, &fwd);
        let b = fault_budget(&gc, &rev);
        assert_eq!(a, b);
        // Sorted by (k, t): iteration order of the HashSet must not leak.
        let keys: Vec<(u64, u64)> = a.loaded_subcubes.iter().map(|s| (s.k, s.t)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn health_state_names_round_trip() {
        for s in [
            HealthState::Healthy,
            HealthState::Degraded,
            HealthState::BoundExceeded,
        ] {
            assert_eq!(HealthState::from_str(s.as_str()), Some(s));
        }
        assert_eq!(HealthState::from_str("sparkling"), None);
    }

    #[test]
    fn tolerable_fault_counts_grow_with_n() {
        for alpha in 1..=4u32 {
            let mut prev = 0;
            for n in (alpha + 2)..=24 {
                let t = max_tolerable_faults_paper(n, alpha);
                assert!(t >= prev, "T must be monotone in n (α={alpha}, n={n})");
                assert!(
                    max_tolerable_faults_guaranteed(n, alpha) <= t,
                    "guaranteed bound cannot exceed the paper bound"
                );
                prev = t;
            }
        }
    }

    #[test]
    fn tolerable_faults_match_hand_count() {
        // GC(8, 4): Dim sizes per class = [1, 1, 2, 2]; subcubes per class =
        // 2^(6-|Dim|). Paper bound: Σ |Dim| · 2^(6-|Dim|)
        //   = 1·32 + 1·32 + 2·16 + 2·16 = 128.
        assert_eq!(max_tolerable_faults_paper(8, 2), 128);
        // Guaranteed: Σ (|Dim|-1)·2^(6-|Dim|) = 0 + 0 + 16 + 16 = 32.
        assert_eq!(max_tolerable_faults_guaranteed(8, 2), 32);
    }

    #[test]
    fn crossing_faults_empty_without_faults() {
        let gc = GaussianCube::new(8, 8).unwrap();
        let tree = GaussianTree::new(3).unwrap();
        for edge in tree.links() {
            let (p, q) = edge.endpoints();
            let cf = crossing_faults(&gc, &FaultSet::new(), p.0, q.0, 0);
            assert_eq!(cf, CrossingFaults::default());
        }
    }

    #[test]
    fn crossing_faults_classify_sides() {
        // GC(10, 4), α=2: tree edge (2, 3) via dim 0. Dim(2)={2,6},
        // Dim(3)={3,7}. No other high dims outside the union ∪{2,3,6,7} in
        // [2,9]: {4,5,8,9} remain → 4 block bits.
        let gc = GaussianCube::new(10, 4).unwrap();
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(0b10), 2)); // class-2 side, block 0
        f.add_link(LinkId::new(NodeId(0b11), 3)); // class-3 side, block 0
        f.add_link(LinkId::new(NodeId(0b10), 0)); // crossing link 2<->3
        let cf = crossing_faults(&gc, &f, 2, 3, 0);
        assert_eq!(
            cf,
            CrossingFaults {
                e_s: 1,
                e_t: 1,
                e_cross: 1
            }
        );
        // Same faults seen from a different block: nothing.
        let cf1 = crossing_faults(&gc, &f, 2, 3, 1);
        assert_eq!(cf1, CrossingFaults::default());
    }

    #[test]
    fn theorem5_trivially_true_without_faults() {
        let gc = GaussianCube::new(9, 4).unwrap();
        assert!(theorem5_precondition(&gc, &FaultSet::new()));
    }

    #[test]
    fn theorem5_detects_saturated_crossing() {
        // GC(10, 4): two A faults inside one class-2 subcube saturate
        // e_s + e' < |Dim(2)| = 2 for the (2,3) crossing.
        let gc = GaussianCube::new(10, 4).unwrap();
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(0b10), 2));
        f.add_link(LinkId::new(NodeId(0b10), 6));
        assert!(!theorem5_precondition(&gc, &f));
        let mut f1 = FaultSet::new();
        f1.add_link(LinkId::new(NodeId(0b10), 2));
        assert!(theorem5_precondition(&gc, &f1));
    }
}
