//! Routing algorithms from *"A Fault-tolerant Routing Strategy for Gaussian
//! Cube Using Gaussian Tree"* (Loh & Zhang, ICPP 2003).
//!
//! The paper's pipeline, crate-module by crate-module:
//!
//! 1. [`pc`] — **Algorithm 1 (PC)**: optimal path construction in the
//!    Gaussian Tree `T_m`.
//! 2. [`ct`] — **Algorithm 2 (CT / FindBP)**: optimal closed traversal of a
//!    destination set in a tree (the multi-drop walk FFGCR uses for ending
//!    classes that lie off the main path).
//! 3. [`ffgcr`] — **Algorithm 3 (FFGCR)**: fault-free routing in
//!    `GC(n, 2^α)` by projecting onto `T_α`; provably optimal (equal to BFS
//!    distance — property-tested).
//! 4. [`faults`] — the A/B/C fault taxonomy (Definitions 3–5), precondition
//!    checkers for Theorems 3 and 5, and the tolerable-fault counts behind
//!    Figure 4.
//! 5. [`hypercube_ft`] — the fault-tolerant binary-hypercube substrate
//!    (safety levels in the style of Wu [5], adaptive spare-dimension routing
//!    in the style of Lan [6]) that Theorem 3 delegates to, generalised to
//!    the *virtual* cubes `GEEC(α,k,t)` embedded in a Gaussian Cube.
//! 6. [`freh`] — **Algorithm 4 (FREH)**: fault-tolerant, livelock-free
//!    routing in the Exchanged Hypercube `EH(s,t)` (Theorem 4).
//! 7. [`ftgcr`] — the full fault-tolerant Gaussian Cube strategy
//!    (Theorem 5): FFGCR's plan, with A faults absorbed by `hypercube_ft`
//!    inside each subcube and B/C faults on tree crossings absorbed by
//!    FREH-style bouncing.
//! 8. [`verify`] — route validation, hop-bound accounting, a
//!    channel-dependency-graph (Dally–Seitz) deadlock analysis tool, and a
//!    virtual-channel assignment that restores wormhole deadlock freedom.
//!
//! Beyond the §5 pipeline:
//!
//! * [`plan_cache`] — the ending-class plan cache: Theorem 2 makes the
//!   tree walk a function of `(EC(s), EC(d), required classes)` alone, so
//!   per-packet planning memoises down to a lookup plus an XOR replay;
//! * [`knowledge`] — the distributed fault-status exchange protocol behind
//!   the paper's claims 4–5 (rounds of neighbour exchange, bounded
//!   per-node fault lists);
//! * [`dftgcr`] — FTGCR executed hop by hop under that *local* knowledge
//!   model, with the packet header carrying at most `F` learned faults;
//! * [`collective`] — the multicast / broadcast / gather primitives the
//!   introduction credits the GC family with (§1, refs [1][7]).

pub mod collective;
pub mod ct;
pub mod dftgcr;
pub mod faults;
pub mod ffgcr;
pub mod freh;
pub mod ftgcr;
pub mod hypercube_ft;
pub mod knowledge;
pub mod multitree;
pub mod pc;
pub mod plan_cache;
pub mod route;
pub mod verify;

pub use collective::{BroadcastTree, RepairOutcome};
pub use faults::{fault_budget, FaultBudget, FaultCategory, FaultSet, HealthState, SubcubeLoad};
pub use multitree::{MultiTreeAtlas, MultiTreeError, TreeChoice, TreeHealth};
pub use plan_cache::{CacheStats, CachedWalk, PlanCache, TreeCacheStats, TreeSnapshot};
pub use route::{Route, RoutingError};
