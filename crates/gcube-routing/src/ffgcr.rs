//! Algorithm 3 — Fault-Free Gaussian Cube Routing (FFGCR).
//!
//! FFGCR routes from `s` to `d` in `GC(n, 2^α)` by projecting onto the
//! Gaussian Tree `T_α`:
//!
//! 1. every differing dimension `c ≥ α` can only be flipped at a node of
//!    ending class `c mod 2^α` — so the route's tree projection must visit
//!    the class set `S`;
//! 2. plan the optimal tree walk from `s mod 2^α` to `d mod 2^α` covering
//!    `S`: trunk = PC path, off-trunk classes reached by CT side trips at
//!    their FindBP branch points;
//! 3. realise the walk in GC: each tree edge is one GC hop in a dimension
//!    `< α` (always available — every class member owns the link), and on
//!    first arrival at class `k` flip all pending dimensions `≡ k (mod 2^α)`.
//!
//! **Optimality.** Any GC route projects to a tree walk covering `S`
//! (dimension-`<α` hops are exactly tree edges; dimension-`≥α` hops are tree
//! self-loops), so `dist(s,d) = optimal-walk-length + |P|`. FFGCR achieves
//! both terms, hence equals the BFS distance — verified exhaustively and by
//! property tests.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use gcube_topology::classes::flips_by_class;
use gcube_topology::{GaussianCube, GaussianTree, NodeId, Topology};

use crate::ct::{ct_walk, find_bp};
use crate::pc::pc_path;
use crate::plan_cache::PlanCache;
use crate::route::{Route, RoutingError};

/// The source-computable plan behind an FFGCR route (paper §4: "for each
/// source and destination pair in a tree, there is a set of nodes which the
/// packet must cover … which can be calculated at the source").
#[derive(Clone, Debug)]
pub struct Plan {
    /// The tree walk (sequence of ending classes), trunk plus side trips.
    pub tree_walk: Vec<NodeId>,
    /// Dimensions `≥ α` to flip, grouped by the ending class that owns them.
    pub flips: BTreeMap<u64, Vec<u32>>,
}

impl Plan {
    /// Total route length this plan will realise.
    pub fn hops(&self) -> usize {
        self.tree_walk.len() - 1 + self.flips.values().map(Vec::len).sum::<usize>()
    }
}

/// An optimal tree walk from `s` to `d` covering `required`, built the
/// FFGCR way: PC trunk + CT side trips at FindBP branch points.
pub fn tree_walk_covering(
    tree: &GaussianTree,
    s: NodeId,
    d: NodeId,
    required: &BTreeSet<NodeId>,
) -> Vec<NodeId> {
    let trunk = pc_path(tree, s, d);
    let l_set: HashSet<NodeId> = trunk.iter().copied().collect();
    let mut branches: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for &req in required {
        if !l_set.contains(&req) {
            let b = find_bp(tree, &|v| l_set.contains(&v), s, req);
            branches.entry(b).or_default().insert(req);
        }
    }
    let mut walk = Vec::with_capacity(trunk.len());
    for &node in trunk.iter() {
        walk.push(node);
        if let Some(side) = branches.get(&node) {
            let sub = ct_walk(tree, node, side);
            walk.extend_from_slice(&sub[1..]);
        }
    }
    walk
}

/// Compute the FFGCR plan for `(s, d)`.
pub fn plan(gc: &GaussianCube, s: NodeId, d: NodeId) -> Plan {
    let alpha = gc.alpha();
    let tree = GaussianTree::new(alpha).expect("alpha within width cap");
    let flips: BTreeMap<u64, Vec<u32>> = flips_by_class(gc, s, d).into_iter().collect();
    let required: BTreeSet<NodeId> = flips.keys().map(|&k| NodeId(k)).collect();
    let ts = NodeId(gc.ending_class(s));
    let td = NodeId(gc.ending_class(d));
    let tree_walk = tree_walk_covering(&tree, ts, td, &required);
    Plan { tree_walk, flips }
}

/// Route from `s` to `d` in a fault-free `GC(n, 2^α)` (Algorithm 3).
///
/// Returns an optimal route (length = BFS distance).
pub fn route(gc: &GaussianCube, s: NodeId, d: NodeId) -> Result<Route, RoutingError> {
    if !gc.contains(s) {
        return Err(RoutingError::OutOfRange(s));
    }
    if !gc.contains(d) {
        return Err(RoutingError::OutOfRange(d));
    }
    let p = plan(gc, s, d);
    realize(gc, s, d, &p)
}

/// FFGCR served from a [`PlanCache`]: the identical node sequence to
/// [`route`] (property-tested), with the tree walk memoised by
/// `(EC(s), EC(d), required-class mask)` and realised as an XOR replay.
pub fn route_cached(
    gc: &GaussianCube,
    s: NodeId,
    d: NodeId,
    cache: &PlanCache,
) -> Result<Route, RoutingError> {
    debug_assert!(cache.matches(gc), "cache must be built for this cube");
    cache.route(gc, s, d)
}

/// Turn a plan into the concrete GC node sequence.
fn realize(gc: &GaussianCube, s: NodeId, d: NodeId, plan: &Plan) -> Result<Route, RoutingError> {
    let alpha = gc.alpha();
    let tree = GaussianTree::new(alpha).expect("alpha within width cap");
    let mut nodes = Vec::with_capacity(plan.hops() + 1);
    let mut cur = s;
    nodes.push(cur);
    let mut flipped: HashSet<u64> = HashSet::new();
    for (i, &k) in plan.tree_walk.iter().enumerate() {
        if i > 0 {
            let prev = plan.tree_walk[i - 1];
            let c = tree
                .edge_dim(prev, k)
                .expect("plan walk follows tree edges");
            debug_assert!(
                gc.has_link(cur, c),
                "tree-edge link must exist at every member"
            );
            cur = cur.flip(c);
            nodes.push(cur);
        }
        if flipped.insert(k.0) {
            if let Some(dims) = plan.flips.get(&k.0) {
                for &c in dims {
                    debug_assert!(gc.has_link(cur, c), "flip dim {c} must exist in class {k}");
                    cur = cur.flip(c);
                    nodes.push(cur);
                }
            }
        }
    }
    debug_assert_eq!(cur, d, "plan realisation must land on the destination");
    if cur != d {
        return Err(RoutingError::Unreachable { from: s, to: d });
    }
    Ok(Route::new(nodes))
}

/// The length FFGCR will produce for `(s, d)` — the GC distance — without
/// materialising the route.
pub fn route_len(gc: &GaussianCube, s: NodeId, d: NodeId) -> u32 {
    plan(gc, s, d).hops() as u32
}

/// The GC distance `dist(s, d)`, route-free: the optimal covering tree
/// walk's length plus the number of pending high dimensions. Identical to
/// [`route_len`] (property-tested) without allocating the per-class flip
/// schedule, so greedy searches (e.g. [`crate::collective::multicast_walk`])
/// can rank candidates without planning each one twice.
pub fn distance(gc: &GaussianCube, s: NodeId, d: NodeId) -> u32 {
    let alpha = gc.alpha();
    let tree = GaussianTree::new(alpha).expect("alpha within width cap");
    let high = (s.0 ^ d.0) >> alpha << alpha;
    let mut required = BTreeSet::new();
    let mut pending = high;
    while pending != 0 {
        let c = u64::from(pending.trailing_zeros());
        pending &= pending - 1;
        required.insert(NodeId(c & ((1u64 << alpha) - 1)));
    }
    let ts = NodeId(gc.ending_class(s));
    let td = NodeId(gc.ending_class(d));
    let walk = tree_walk_covering(&tree, ts, td, &required);
    (walk.len() - 1) as u32 + high.count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_topology::search;
    use gcube_topology::NoFaults;

    #[test]
    fn trivial_routes() {
        let gc = GaussianCube::new(8, 4).unwrap();
        let r = route(&gc, NodeId(5), NodeId(5)).unwrap();
        assert_eq!(r.hops(), 0);
        let r = route(&gc, NodeId(4), NodeId(5)).unwrap();
        assert_eq!(r.hops(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let gc = GaussianCube::new(4, 2).unwrap();
        assert!(route(&gc, NodeId(16), NodeId(0)).is_err());
        assert!(route(&gc, NodeId(0), NodeId(99)).is_err());
    }

    #[test]
    fn routes_are_valid_gc_paths() {
        let gc = GaussianCube::new(9, 4).unwrap();
        for s in (0..512u64).step_by(37) {
            for d in (0..512u64).step_by(29) {
                let r = route(&gc, NodeId(s), NodeId(d)).unwrap();
                r.validate(&gc, &NoFaults).unwrap();
                assert_eq!(r.source(), NodeId(s));
                assert_eq!(r.dest(), NodeId(d));
            }
        }
    }

    #[test]
    fn exhaustive_optimality_small_cubes() {
        // The headline property: FFGCR length == BFS distance for EVERY pair.
        for (n, m) in [(6u32, 1u64), (6, 2), (6, 4), (7, 8), (8, 4), (5, 16)] {
            let gc = GaussianCube::new(n, m).unwrap();
            for s in 0..gc.num_nodes() {
                let dist = search::bfs_distances(&gc, NodeId(s), &NoFaults);
                for d in 0..gc.num_nodes() {
                    let r = route(&gc, NodeId(s), NodeId(d)).unwrap();
                    r.validate(&gc, &NoFaults).unwrap();
                    assert_eq!(
                        r.hops() as u32,
                        dist[d as usize],
                        "suboptimal FFGCR in GC({n},{m}) for {s}->{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn m1_routes_are_hamming_length() {
        // α = 0 degenerates to hypercube routing: the tree is a single node
        // and every dimension is flipped "in place".
        let gc = GaussianCube::new(10, 1).unwrap();
        for (s, d) in [(0u64, 1023u64), (37, 512), (999, 999), (123, 321)] {
            let r = route(&gc, NodeId(s), NodeId(d)).unwrap();
            assert_eq!(r.hops() as u32, NodeId(s).hamming(NodeId(d)));
        }
    }

    #[test]
    fn plan_hops_match_route_hops() {
        let gc = GaussianCube::new(10, 8).unwrap();
        for (s, d) in [(0u64, 1023u64), (81, 700), (512, 513)] {
            let p = plan(&gc, NodeId(s), NodeId(d));
            let r = route(&gc, NodeId(s), NodeId(d)).unwrap();
            assert_eq!(p.hops(), r.hops());
            assert_eq!(route_len(&gc, NodeId(s), NodeId(d)) as usize, r.hops());
        }
    }

    #[test]
    fn walk_covering_visits_required() {
        let tree = GaussianTree::new(4).unwrap();
        let required: BTreeSet<_> = [NodeId(9), NodeId(6), NodeId(15)].into_iter().collect();
        let walk = tree_walk_covering(&tree, NodeId(0), NodeId(5), &required);
        assert_eq!(walk[0], NodeId(0));
        assert_eq!(*walk.last().unwrap(), NodeId(5));
        let visited: HashSet<_> = walk.iter().copied().collect();
        for r in &required {
            assert!(visited.contains(r));
        }
        for w in walk.windows(2) {
            assert!(tree.edge_dim(w[0], w[1]).is_some());
        }
    }

    #[test]
    fn distance_equals_route_len_exhaustively() {
        for (n, m) in [(6u32, 1u64), (6, 2), (6, 4), (7, 8), (5, 16)] {
            let gc = GaussianCube::new(n, m).unwrap();
            for s in 0..gc.num_nodes() {
                for d in 0..gc.num_nodes() {
                    assert_eq!(
                        distance(&gc, NodeId(s), NodeId(d)),
                        route_len(&gc, NodeId(s), NodeId(d)),
                        "GC({n},{m}) {s}->{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn message_overhead_is_linear() {
        // §1 claim 1: message overhead O(n) — the plan carries one tree walk
        // (≤ 2·|T_α| nodes) and at most n flip dimensions.
        let gc = GaussianCube::new(14, 4).unwrap();
        let p = plan(&gc, NodeId(0), NodeId((1 << 14) - 1));
        let alpha_nodes = 1usize << gc.alpha();
        assert!(p.tree_walk.len() <= 2 * alpha_nodes);
        assert!(p.flips.values().map(Vec::len).sum::<usize>() <= 14);
    }
}
