//! Algorithm 2 — Closed-Traverse (CT) and FindBP in the Gaussian Tree.
//!
//! CT starts at a node `r`, visits every member of a destination set `D`,
//! and returns to `r`. Its walk is optimal — every edge of the Steiner tree
//! of `{r} ∪ D` is traversed exactly twice — because it never backtracks to
//! a parent while destinations remain in the subtree (the paper's
//! optimality principle).
//!
//! `FindBP(L, r, dᵢ)` locates the *branch point*: the node of the already
//! chosen trunk path `L` at which the walk must fork to reach `dᵢ`. The
//! paper computes it by the same leftmost-bit recursion as PC, without
//! materialising the path `r → dᵢ`; [`find_bp`] mirrors that, and
//! [`branch_point_reference`] provides the brute-force oracle (the deepest
//! node of `L` on the tree path `r → dᵢ`) the tests compare against.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use gcube_topology::{GaussianTree, LinkId, NodeId};

use crate::pc::pc_path;

/// FindBP (paper, §4): the node of trunk `L` (a tree path starting at `r`)
/// where the route towards `d` leaves `L`.
///
/// `on_l` must answer membership in `L` (the paper's `CheckIn`). The paper
/// only invokes FindBP for destinations **not covered by `L`** (on-trunk
/// destinations need no branch point); callers must respect that contract.
pub fn find_bp(
    tree: &GaussianTree,
    on_l: &impl Fn(NodeId) -> bool,
    r: NodeId,
    d: NodeId,
) -> NodeId {
    debug_assert!(on_l(r), "FindBP requires r ∈ L");
    let Some(c) = r.leftmost_differing_dim(d) else {
        return r; // d == r
    };
    if c == 0 {
        // r and d are neighbours; the fork happens at r itself.
        return r;
    }
    // The unique dim-c edge the path r → d must cross (cf. PC).
    let upper = (r.0 >> (c + 1)) << (c + 1);
    let w0 = NodeId(upper | u64::from(c));
    let w1 = w0.flip(c);
    let (v1, v2) = if r.bit(c) { (w1, w0) } else { (w0, w1) };
    debug_assert_eq!(tree.edge_dim(v1, v2), Some(c));
    match (on_l(v1), on_l(v2)) {
        (true, false) => v1,
        (true, true) => find_bp(tree, on_l, v2, d),
        (false, false) => find_bp(tree, on_l, r, v1),
        // The paper notes this case is impossible: L is a path from r, so it
        // cannot contain v2 without passing v1.
        (false, true) => unreachable!("L contains v2 without v1 — L is not a path from r"),
    }
}

/// Brute-force branch point: the last node of the tree path `r → d` that
/// still lies on `L`. Used as the testing oracle for [`find_bp`].
pub fn branch_point_reference(
    tree: &GaussianTree,
    l_set: &HashSet<NodeId>,
    r: NodeId,
    d: NodeId,
) -> NodeId {
    let path = pc_path(tree, r, d);
    *path
        .iter()
        .take_while(|n| l_set.contains(n))
        .last()
        .expect("r itself is on L")
}

/// Closed-Traverse: a walk starting and ending at `r` that visits every node
/// in `dests`. Optimal: exactly `2 × |Steiner(r ∪ dests)|` hops.
///
/// Deterministic variant of the paper's algorithm: the trunk destination is
/// the *farthest* member of `dests` (the paper picks one at random; any
/// choice yields an optimal walk, and determinism keeps tests and the
/// simulator reproducible).
pub fn ct_walk(tree: &GaussianTree, r: NodeId, dests: &BTreeSet<NodeId>) -> Vec<NodeId> {
    let mut walk = vec![r];
    let mut remaining: BTreeSet<NodeId> = dests.iter().copied().filter(|&d| d != r).collect();
    if remaining.is_empty() {
        return walk;
    }
    // Trunk: path to the farthest destination.
    let d0 = *remaining
        .iter()
        .max_by_key(|&&d| pc_path(tree, r, d).len())
        .expect("non-empty");
    remaining.remove(&d0);
    let trunk = pc_path(tree, r, d0);
    let l_set: HashSet<NodeId> = trunk.iter().copied().collect();

    // Branch table B(·): destinations that fork off each trunk node.
    let mut branches: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for d in remaining {
        if !l_set.contains(&d) {
            let b = find_bp(tree, &|v| l_set.contains(&v), r, d);
            branches.entry(b).or_default().insert(d);
        }
        // Destinations already on the trunk are covered by walking it.
    }

    // Walk the trunk out, taking closed side trips at branch points …
    for (i, &node) in trunk.iter().enumerate() {
        if i > 0 {
            walk.push(node);
        }
        if let Some(side) = branches.get(&node) {
            let sub = ct_walk(tree, node, side);
            walk.extend_from_slice(&sub[1..]);
        }
    }
    // … then return along the trunk.
    for &node in trunk.iter().rev().skip(1) {
        walk.push(node);
    }
    walk
}

/// The edge set of the Steiner tree of `{r} ∪ dests` in `tree`: the union of
/// the tree-path edges from `r` to each destination. (In a tree this union
/// *is* the minimal connecting subtree.)
pub fn steiner_edges(tree: &GaussianTree, r: NodeId, dests: &BTreeSet<NodeId>) -> HashSet<LinkId> {
    let mut edges = HashSet::new();
    for &d in dests {
        let p = pc_path(tree, r, d);
        for w in p.windows(2) {
            let dim = tree.edge_dim(w[0], w[1]).expect("tree path hop");
            edges.insert(LinkId::new(w[0], dim));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_topology::Topology;

    fn check_walk(tree: &GaussianTree, r: NodeId, dests: &BTreeSet<NodeId>) {
        let walk = ct_walk(tree, r, dests);
        assert_eq!(walk[0], r, "walk starts at r");
        assert_eq!(*walk.last().unwrap(), r, "walk returns to r");
        for w in walk.windows(2) {
            assert!(
                tree.edge_dim(w[0], w[1]).is_some(),
                "invalid hop {} -> {}",
                w[0],
                w[1]
            );
        }
        let visited: HashSet<NodeId> = walk.iter().copied().collect();
        for d in dests {
            assert!(visited.contains(d), "walk misses destination {d}");
        }
        // Optimality: 2 × Steiner edges.
        let steiner = steiner_edges(tree, r, dests);
        assert_eq!(
            walk.len() - 1,
            2 * steiner.len(),
            "walk is not optimal for r={r}, dests={dests:?}"
        );
    }

    #[test]
    fn empty_destination_set() {
        let t = GaussianTree::new(4).unwrap();
        assert_eq!(ct_walk(&t, NodeId(3), &BTreeSet::new()), vec![NodeId(3)]);
        let only_r: BTreeSet<_> = [NodeId(3)].into_iter().collect();
        assert_eq!(ct_walk(&t, NodeId(3), &only_r), vec![NodeId(3)]);
    }

    #[test]
    fn single_destination_walk_is_out_and_back() {
        let t = GaussianTree::new(4).unwrap();
        let d: BTreeSet<_> = [NodeId(0b1011)].into_iter().collect();
        let walk = ct_walk(&t, NodeId(0), &d);
        let dist = t.dist(NodeId(0), NodeId(0b1011)) as usize;
        assert_eq!(walk.len() - 1, 2 * dist);
        check_walk(&t, NodeId(0), &d);
    }

    #[test]
    fn exhaustive_pairs_and_triples_small_tree() {
        let t = GaussianTree::new(4).unwrap();
        for r in 0..16u64 {
            for a in 0..16u64 {
                for b in (a..16u64).step_by(3) {
                    let dests: BTreeSet<_> = [NodeId(a), NodeId(b)].into_iter().collect();
                    check_walk(&t, NodeId(r), &dests);
                }
            }
        }
    }

    #[test]
    fn larger_destination_sets() {
        let t = GaussianTree::new(6).unwrap();
        let cases: Vec<BTreeSet<NodeId>> = vec![
            (0..8u64).map(NodeId).collect(),
            (0..64u64).step_by(5).map(NodeId).collect(),
            [63u64, 1, 32, 17].into_iter().map(NodeId).collect(),
            (0..64u64).map(NodeId).collect(), // visit every node
        ];
        for dests in cases {
            check_walk(&t, NodeId(0), &dests);
            check_walk(&t, NodeId(21), &dests);
        }
    }

    #[test]
    fn find_bp_matches_reference_exhaustively() {
        let t = GaussianTree::new(5).unwrap();
        for r in (0..32u64).step_by(3) {
            for d0 in 0..32u64 {
                let trunk = pc_path(&t, NodeId(r), NodeId(d0));
                let l_set: HashSet<NodeId> = trunk.iter().copied().collect();
                for d in 0..32u64 {
                    if l_set.contains(&NodeId(d)) {
                        continue; // FindBP's contract: d is off-trunk
                    }
                    let got = find_bp(&t, &|v| l_set.contains(&v), NodeId(r), NodeId(d));
                    let want = branch_point_reference(&t, &l_set, NodeId(r), NodeId(d));
                    assert_eq!(got, want, "r={r} d0={d0} d={d}");
                }
            }
        }
    }

    #[test]
    fn branch_point_lies_on_path_to_destination() {
        // The branch point is always on the tree path r → d (it is where the
        // walk leaves the trunk).
        let t = GaussianTree::new(5).unwrap();
        let trunk = pc_path(&t, NodeId(0), NodeId(21));
        let l_set: HashSet<NodeId> = trunk.iter().copied().collect();
        for d in 0..32u64 {
            if l_set.contains(&NodeId(d)) {
                continue;
            }
            let bp = find_bp(&t, &|v| l_set.contains(&v), NodeId(0), NodeId(d));
            assert!(l_set.contains(&bp));
            assert!(pc_path(&t, NodeId(0), NodeId(d)).contains(&bp));
        }
    }

    #[test]
    fn steiner_edges_of_full_tree() {
        let t = GaussianTree::new(4).unwrap();
        let all: BTreeSet<_> = (0..16u64).map(NodeId).collect();
        // Steiner tree spanning every node = the whole tree: 15 edges.
        assert_eq!(
            steiner_edges(&t, NodeId(0), &all).len() as u64,
            t.num_nodes() - 1
        );
    }
}
