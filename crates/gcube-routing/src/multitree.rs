//! Multipath routing over independent spanning trees — survival beyond the
//! Theorem-3 fault budget.
//!
//! FTGCR ([`crate::ftgcr`]) is provably live only while the fault set stays
//! inside the Theorem-3 allowance `N(α,k) − 1` per subcube. Once a fault
//! burst lands past that budget (the `BoundExceeded` health state), FTGCR's
//! plan repair starts refusing pairs even though the underlying graph is
//! still connected. This module adds the classical independent-spanning-tree
//! escape hatch, in the style of Itai–Rodeh multitree routing and the
//! completely-independent-spanning-tree constructions studied for the dense
//! Gaussian family (see PAPERS.md):
//!
//! 1. **Construction** ([`MultiTreeAtlas::build`]). For each ending class
//!    `c ∈ EC(α)` we root a bundle of `k = 2` spanning trees at the class
//!    representative `NodeId(c)` and derive them from one Even–Tarjan
//!    *st-numbering* of `GC(n, M)` (computed with the dimension-ascending
//!    neighbour order, so tree 0 leans on the always-present dimension-0
//!    links exactly like the Gaussian Tree `T_α` projection). Tree 0 parents
//!    every node to a lower-numbered neighbour, tree 1 to a higher-numbered
//!    neighbour (with `t` parented to the root across the st-edge); by the
//!    st-property the two root paths of any node are internally
//!    node-disjoint *and* edge-disjoint. [`validate_independence`] checks
//!    exactly that, exhaustively.
//! 2. **Translation.** Theorem 2's ending-class structure makes `x ↦ x ⊕ z`
//!    a `GC` automorphism whenever `z ≡ 0 (mod 2^α)`, so one bundle per
//!    ending class serves *every* destination: to reach `d`, walk the bundle
//!    of class `d mod 2^α` from `s ⊕ z` to its root and XOR the whole path
//!    by `z = d` with the low `α` bits cleared.
//! 3. **Routing** ([`MultiTreeAtlas::route`]). The start tree is picked by a
//!    deterministic flow hash of `(s, d)` — load spreads across trees — and
//!    on meeting a faulty link/node the router *switches* to the next tree
//!    (at most `k` attempts). When every tree is blocked it falls back to
//!    FTGCR (cached via [`PlanCache`] when one is supplied), so inside the
//!    Theorem-3 budget nothing is ever lost relative to FTGCR.
//! 4. **Fault screen.** Per tree the atlas keeps the edge signature set
//!    `{(low α bits, dim)}` — translation preserves both coordinates, so a
//!    faulty link can only ever block a tree whose signature set contains
//!    the fault's signature. The screen summary is memoised per
//!    [`FaultSet::generation`] stamp and invalidated on every bump; a
//!    signature-clean tree is walked without per-hop fault checks, and the
//!    same summary feeds the `--health-report` tree-intactness block.
//!
//! See DESIGN.md §12 for the construction proof sketch and the switch-rule
//! semantics.

use std::collections::HashSet;
use std::fmt;
use std::sync::Mutex;

use gcube_topology::{GaussianCube, LinkId, NodeId, Topology};

use crate::faults::FaultSet;
use crate::ftgcr;
use crate::plan_cache::PlanCache;
use crate::route::{Route, RoutingError};

/// Largest tree count the construction supports. The Even–Tarjan
/// st-numbering yields exactly two independent trees on a biconnected
/// graph; wider bundles need the CIST machinery of the dense-Gaussian
/// papers and are out of scope here.
pub const MAX_TREES: usize = 2;

/// Why an atlas could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultiTreeError {
    /// Tree count outside `1..=MAX_TREES`.
    BadTreeCount(usize),
    /// The cube (or the shape reachable from some class root) is not
    /// biconnected, so no st-numbering — and no independent tree pair —
    /// exists.
    NotBiconnected {
        /// The class root whose st-numbering failed.
        root: NodeId,
    },
}

impl fmt::Display for MultiTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiTreeError::BadTreeCount(k) => {
                write!(f, "tree count {k} outside 1..={MAX_TREES}")
            }
            MultiTreeError::NotBiconnected { root } => {
                write!(f, "GC shape is not biconnected (st-numbering failed at root {root}); independent spanning trees do not exist")
            }
        }
    }
}

impl std::error::Error for MultiTreeError {}

/// Which tree carried a plan, and what it cost to find it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeChoice {
    /// Index of the tree the returned route follows (the flow-hash start
    /// tree when `exhausted` — no tree carried the route then).
    pub tree: u32,
    /// Trees tried and rejected before this plan (0 = first choice clean).
    pub switches: u32,
    /// Every tree was blocked and the route came from the FTGCR fallback.
    pub exhausted: bool,
}

/// One spanning tree as a parent-pointer forest (root points to itself).
#[derive(Clone, Debug)]
struct Tree {
    parent: Vec<u32>,
    depth: Vec<u32>,
}

/// The tree bundle rooted at one ending-class representative.
#[derive(Clone, Debug)]
struct TreeBundle {
    root: NodeId,
    trees: Vec<Tree>,
}

/// Per-tree health summary against one fault set (see the fault screen in
/// the module docs). `clean` is conservative: a clean tree is guaranteed
/// untouched by the current fault set for *every* destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeHealth {
    /// Tree index within the bundle.
    pub tree: u32,
    /// No faulty component can lie on this tree under any translation.
    pub clean: bool,
    /// Faulty links whose `(low-α-bits, dim)` signature matches a tree edge.
    pub matching_fault_links: u64,
    /// Faulty nodes (these threaten every spanning tree).
    pub fault_nodes: u64,
}

#[derive(Debug, Default)]
struct ScreenCache {
    generation: Option<u64>,
    health: Vec<TreeHealth>,
}

/// `k` independent spanning-tree bundles, one per ending class, plus the
/// fault screen. Build once per topology (like [`PlanCache`], the parent
/// arrays are keyed purely by shape); the screen summary re-derives itself
/// whenever [`FaultSet::generation`] moves.
#[derive(Debug)]
pub struct MultiTreeAtlas {
    n: u32,
    modulus: u64,
    alpha: u32,
    k: usize,
    bundles: Vec<TreeBundle>,
    /// Union over bundles of each tree's edge signatures `(low α bits, dim)`.
    signatures: Vec<HashSet<(u64, u32)>>,
    max_depth: u32,
    screen: Mutex<ScreenCache>,
}

impl MultiTreeAtlas {
    /// Build `k` independent spanning trees per ending class of `gc`.
    pub fn build(gc: &GaussianCube, k: usize) -> Result<MultiTreeAtlas, MultiTreeError> {
        if k == 0 || k > MAX_TREES {
            return Err(MultiTreeError::BadTreeCount(k));
        }
        let classes = gc.modulus();
        let mut bundles = Vec::with_capacity(classes as usize);
        let mut signatures = vec![HashSet::new(); k];
        let mut max_depth = 0;
        for c in 0..classes {
            let bundle = build_bundle(gc, NodeId(c), k)?;
            for (t, tree) in bundle.trees.iter().enumerate() {
                for (v, &p) in tree.parent.iter().enumerate() {
                    if v as u32 == p {
                        continue;
                    }
                    let (a, b) = (NodeId(v as u64), NodeId(p as u64));
                    let dim = a.differing_dims(b)[0];
                    let lo = LinkId::new(a, dim).lo;
                    signatures[t].insert((lo.low_bits(gc.alpha()), dim));
                    max_depth = max_depth.max(tree.depth[v]);
                }
            }
            bundles.push(bundle);
        }
        Ok(MultiTreeAtlas {
            n: gc.n(),
            modulus: gc.modulus(),
            alpha: gc.alpha(),
            k,
            bundles,
            signatures,
            max_depth,
            screen: Mutex::new(ScreenCache::default()),
        })
    }

    /// Number of trees per bundle.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Deepest node across all trees and bundles — an upper bound on any
    /// tree route's hop count (compare against the simulator TTL).
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Whether this atlas was built for `gc`'s shape.
    pub fn matches(&self, gc: &GaussianCube) -> bool {
        self.n == gc.n() && self.modulus == gc.modulus()
    }

    /// The tree path `s → d` through tree `tree`, ignoring faults.
    /// `None` when the endpoints coincide with a degenerate walk (never for
    /// distinct in-range nodes).
    pub fn tree_path(&self, tree: usize, s: NodeId, d: NodeId) -> Vec<NodeId> {
        let (bundle, z) = self.bundle_for(d);
        walk(bundle, tree, s, d, z, None).expect("unchecked walk cannot be blocked")
    }

    fn bundle_for(&self, d: NodeId) -> (&TreeBundle, u64) {
        let c = d.low_bits(self.alpha);
        let z = d.0 ^ c;
        (&self.bundles[c as usize], z)
    }

    /// Per-tree health against `faults`, memoised by generation stamp.
    ///
    /// The summary is recomputed whenever `faults.generation()` differs
    /// from the stamped value — the "invalidate on fault-generation bump"
    /// half of the plan-cache contract (the parent arrays themselves are
    /// fault-independent and never invalidate).
    pub fn tree_health(&self, faults: &FaultSet) -> Vec<TreeHealth> {
        let mut cache = self.screen.lock().expect("screen lock poisoned");
        if cache.generation != Some(faults.generation()) {
            cache.health = self.compute_health(faults);
            cache.generation = Some(faults.generation());
        }
        cache.health.clone()
    }

    fn compute_health(&self, faults: &FaultSet) -> Vec<TreeHealth> {
        let fault_nodes = faults.faulty_nodes().count() as u64;
        (0..self.k)
            .map(|t| {
                let matching = faults
                    .faulty_links()
                    .filter(|l| self.signatures[t].contains(&(l.lo.low_bits(self.alpha), l.dim)))
                    .count() as u64;
                TreeHealth {
                    tree: t as u32,
                    clean: matching == 0 && fault_nodes == 0,
                    matching_fault_links: matching,
                    fault_nodes,
                }
            })
            .collect()
    }

    /// Route `s → d` under `faults`: try trees in flow-hash order, switch
    /// on the first faulty component, fall back to FTGCR when all `k`
    /// trees are blocked. `cache` serves the fallback's plan stage.
    pub fn route(
        &self,
        gc: &GaussianCube,
        faults: &FaultSet,
        s: NodeId,
        d: NodeId,
        cache: Option<&PlanCache>,
    ) -> Result<(Route, TreeChoice), RoutingError> {
        debug_assert!(self.matches(gc), "atlas shape mismatch");
        if !gc.contains(s) {
            return Err(RoutingError::OutOfRange(s));
        }
        if !gc.contains(d) {
            return Err(RoutingError::OutOfRange(d));
        }
        if faults.is_node_faulty(s) {
            return Err(RoutingError::SourceFaulty(s));
        }
        if faults.is_node_faulty(d) {
            return Err(RoutingError::DestFaulty(d));
        }
        let start = start_tree(self.k, s, d);
        if s == d {
            let choice = TreeChoice {
                tree: start,
                switches: 0,
                exhausted: false,
            };
            return Ok((Route::new(vec![s]), choice));
        }
        let health = self.tree_health(faults);
        let (bundle, z) = self.bundle_for(d);
        for i in 0..self.k as u32 {
            let tree = (start + i) % self.k as u32;
            // Signature-clean trees skip the per-hop fault checks: no
            // faulty component can map onto them under any translation.
            let screen = if health[tree as usize].clean {
                None
            } else {
                Some(faults)
            };
            if let Some(nodes) = walk(bundle, tree as usize, s, d, z, screen) {
                let choice = TreeChoice {
                    tree,
                    switches: i,
                    exhausted: false,
                };
                return Ok((Route::new(nodes), choice));
            }
        }
        let fallback = match cache {
            Some(c) => ftgcr::route_cached(gc, faults, s, d, c),
            None => ftgcr::route(gc, faults, s, d),
        };
        fallback.map(|(route, _)| {
            let choice = TreeChoice {
                tree: start,
                switches: self.k as u32,
                exhausted: true,
            };
            (route, choice)
        })
    }
}

/// Deterministic flow hash picking the first tree to try for `(s, d)`:
/// a pure function of the pair, so sequential and sharded runs (and every
/// replay) agree, while distinct flows spread across the bundle.
pub fn start_tree(k: usize, s: NodeId, d: NodeId) -> u32 {
    let mut x =
        s.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(d.0.wrapping_mul(0xC2B2_AE3D_27D4_EB4F).rotate_left(17));
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 29;
    (x % k.max(1) as u64) as u32
}

/// Walk tree `tree` of `bundle` from `s` to `d` (root ⊕ `z`), translating
/// by `z`. With `faults` set, abandon the walk (return `None`) at the
/// first faulty node or unusable link.
fn walk(
    bundle: &TreeBundle,
    tree: usize,
    s: NodeId,
    d: NodeId,
    z: u64,
    faults: Option<&FaultSet>,
) -> Option<Vec<NodeId>> {
    let t = &bundle.trees[tree];
    let mut base = (s.0 ^ z) as usize;
    let mut nodes = Vec::with_capacity(t.depth[base] as usize + 1);
    nodes.push(s);
    while NodeId(base as u64 ^ z) != d {
        let p = t.parent[base] as usize;
        debug_assert_ne!(p, base, "hit the root before the destination");
        let from = NodeId(base as u64 ^ z);
        let to = NodeId(p as u64 ^ z);
        if let Some(f) = faults {
            let dim = from.differing_dims(to)[0];
            if !f.is_link_usable(LinkId::new(from, dim)) || f.is_node_faulty(to) {
                return None;
            }
        }
        nodes.push(to);
        base = p;
    }
    Some(nodes)
}

/// Check that `atlas` really holds pairwise-independent spanning trees of
/// `gc`: every parent edge is a real link, every tree spans, and for every
/// node the `k` root paths are internally node-disjoint and edge-disjoint.
pub fn validate_independence(gc: &GaussianCube, atlas: &MultiTreeAtlas) -> Result<(), String> {
    if !atlas.matches(gc) {
        return Err("atlas shape mismatch".into());
    }
    for bundle in &atlas.bundles {
        let root = bundle.root;
        for (t, tree) in bundle.trees.iter().enumerate() {
            // Every edge is a real link and every chain reaches the root.
            for v in 0..gc.num_nodes() {
                let node = NodeId(v);
                if node == root {
                    if tree.parent[v as usize] as u64 != v {
                        return Err(format!("tree {t} of root {root}: root not self-parented"));
                    }
                    continue;
                }
                let p = NodeId(tree.parent[v as usize] as u64);
                let dims = node.differing_dims(p);
                if dims.len() != 1 || !gc.has_link(node, dims[0]) {
                    return Err(format!(
                        "tree {t} of root {root}: parent edge {node} -> {p} is not a GC link"
                    ));
                }
                if tree.depth[v as usize] != tree.depth[p.0 as usize] + 1 {
                    return Err(format!("tree {t} of root {root}: depth mismatch at {node}"));
                }
            }
        }
        // Pairwise independence of root paths.
        for v in 0..gc.num_nodes() {
            let node = NodeId(v);
            if node == root {
                continue;
            }
            let paths: Vec<Vec<NodeId>> = (0..bundle.trees.len())
                .map(|t| walk(bundle, t, node, root, 0, None).expect("unchecked walk"))
                .collect();
            for a in 0..paths.len() {
                for b in a + 1..paths.len() {
                    let interior =
                        |p: &[NodeId]| p[1..p.len() - 1].iter().copied().collect::<HashSet<_>>();
                    let (ia, ib) = (interior(&paths[a]), interior(&paths[b]));
                    if let Some(x) = ia.intersection(&ib).next() {
                        return Err(format!(
                            "root {root}, node {node}: trees {a}/{b} share internal node {x}"
                        ));
                    }
                    let edges = |p: &[NodeId]| {
                        p.windows(2)
                            .map(|w| LinkId::new(w[0], w[0].differing_dims(w[1])[0]))
                            .collect::<HashSet<_>>()
                    };
                    if let Some(e) = edges(&paths[a]).intersection(&edges(&paths[b])).next() {
                        return Err(format!(
                            "root {root}, node {node}: trees {a}/{b} share edge {e}"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Build the `k`-tree bundle rooted at `root` from one st-numbering.
fn build_bundle(gc: &GaussianCube, root: NodeId, k: usize) -> Result<TreeBundle, MultiTreeError> {
    let n = gc.num_nodes() as usize;
    let s = root;
    // Dimension 0 is linked everywhere, so the st-edge always exists.
    let t = root.flip(0);
    let num = st_numbering(gc, s, t).ok_or(MultiTreeError::NotBiconnected { root })?;
    let mut by_num = vec![0usize; n];
    for (v, &nm) in num.iter().enumerate() {
        by_num[nm as usize] = v;
    }
    let mut trees = Vec::with_capacity(k);

    // Tree 0: parent to a lower-numbered neighbour (paths descend to s).
    // Minimising (depth, number) keeps routes short and deterministic. The
    // top vertex t avoids the st-edge so the two root paths of t stay
    // edge-disjoint; its remaining neighbours are all lower-numbered.
    let mut parent = vec![u32::MAX; n];
    let mut depth = vec![u32::MAX; n];
    parent[s.0 as usize] = s.0 as u32;
    depth[s.0 as usize] = 0;
    for &v in by_num.iter().skip(1) {
        let node = NodeId(v as u64);
        let ban_st_edge = node == t;
        let best = gc
            .neighbors(node)
            .into_iter()
            .filter(|u| num[u.0 as usize] < num[v])
            .filter(|u| !(ban_st_edge && *u == s))
            .min_by_key(|u| (depth[u.0 as usize], num[u.0 as usize]))
            .ok_or(MultiTreeError::NotBiconnected { root })?;
        parent[v] = best.0 as u32;
        depth[v] = depth[best.0 as usize] + 1;
    }
    trees.push(Tree { parent, depth });

    if k > 1 {
        // Tree 1: parent to a higher-numbered neighbour; t crosses the
        // st-edge to s (paths ascend to t, then the st-edge closes them).
        let mut parent = vec![u32::MAX; n];
        let mut depth = vec![u32::MAX; n];
        parent[s.0 as usize] = s.0 as u32;
        depth[s.0 as usize] = 0;
        parent[t.0 as usize] = s.0 as u32;
        depth[t.0 as usize] = 1;
        for &v in by_num.iter().rev().skip(1) {
            if v == s.0 as usize || v == t.0 as usize {
                continue;
            }
            let node = NodeId(v as u64);
            let best = gc
                .neighbors(node)
                .into_iter()
                .filter(|u| num[u.0 as usize] > num[v])
                .min_by_key(|u| (depth[u.0 as usize], num[u.0 as usize]))
                .ok_or(MultiTreeError::NotBiconnected { root })?;
            parent[v] = best.0 as u32;
            depth[v] = depth[best.0 as usize] + 1;
        }
        trees.push(Tree { parent, depth });
    }
    Ok(TreeBundle { root, trees })
}

/// Even–Tarjan st-numbering of `gc` with `num[s] = 0`, `num[t] = N − 1`
/// (Tarjan's streamlined sign-list formulation). Returns `None` when the
/// graph is not biconnected. The result is verified against the
/// st-property before being returned, so a `Some` is always a genuine
/// st-numbering.
fn st_numbering(gc: &GaussianCube, s: NodeId, t: NodeId) -> Option<Vec<u32>> {
    let n = gc.num_nodes() as usize;
    let (si, ti) = (s.0 as usize, t.0 as usize);
    const NONE: usize = usize::MAX;

    // DFS from s with the st-edge first: preorder, lowpoint, parent.
    let mut pre = vec![u32::MAX; n];
    let mut low = vec![u32::MAX; n];
    let mut parent = vec![NONE; n];
    let mut order = Vec::with_capacity(n);
    let mut by_pre = vec![NONE; n];
    let mut counter = 0u32;
    let mut stack: Vec<(usize, Vec<NodeId>, usize)> = Vec::new();
    let neighbors_of = |v: usize| -> Vec<NodeId> {
        let mut ns = gc.neighbors(NodeId(v as u64));
        if v == si {
            // Force the st-edge to be the first tree edge.
            ns.sort_by_key(|u| (*u != t, u.0));
        }
        ns
    };
    pre[si] = counter;
    low[si] = counter;
    by_pre[counter as usize] = si;
    counter += 1;
    order.push(si);
    stack.push((si, neighbors_of(si), 0));
    loop {
        let (v, step) = {
            let Some((v, ns, idx)) = stack.last_mut() else {
                break;
            };
            if *idx < ns.len() {
                let w = ns[*idx].0 as usize;
                *idx += 1;
                (*v, Some(w))
            } else {
                (*v, None)
            }
        };
        match step {
            Some(w) if pre[w] == u32::MAX => {
                pre[w] = counter;
                low[w] = counter;
                by_pre[counter as usize] = w;
                counter += 1;
                parent[w] = v;
                order.push(w);
                stack.push((w, neighbors_of(w), 0));
            }
            Some(w) => {
                if w != parent[v] {
                    low[v] = low[v].min(pre[w]);
                }
            }
            None => {
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    // Articulation test: an internal vertex p with a child
                    // v whose subtree cannot climb above p cuts the graph.
                    if p != si && low[v] >= pre[p] {
                        return None;
                    }
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }
    if order.len() != n {
        return None; // disconnected
    }
    // A biconnected graph's DFS root has exactly one child.
    if parent.iter().filter(|&&p| p == si).count() != 1 {
        return None;
    }

    // Sign-list insertion: process vertices in preorder, splicing each
    // before or after its parent according to the sign of its lowpoint
    // vertex.
    let mut next = vec![NONE; n];
    let mut prev = vec![NONE; n];
    next[si] = ti;
    prev[ti] = si;
    let mut head = si;
    let mut plus = vec![false; n];
    for &v in order.iter().filter(|&&v| v != si && v != ti) {
        let p = parent[v];
        let lv = by_pre[low[v] as usize];
        if !plus[lv] {
            // Insert v immediately before its parent.
            let pp = prev[p];
            if pp == NONE {
                head = v;
            } else {
                next[pp] = v;
            }
            prev[v] = pp;
            next[v] = p;
            prev[p] = v;
            plus[p] = true;
        } else {
            // Insert v immediately after its parent.
            let pn = next[p];
            next[p] = v;
            prev[v] = p;
            next[v] = pn;
            if pn != NONE {
                prev[pn] = v;
            }
            plus[p] = false;
        }
    }
    let mut num = vec![0u32; n];
    let mut cur = head;
    let mut i = 0u32;
    while cur != NONE {
        num[cur] = i;
        i += 1;
        cur = next[cur];
    }
    if i as usize != n {
        return None;
    }
    // Unconditional verification of the st-property: cheaper than one
    // route and it turns any construction bug into a loud failure.
    if num[si] != 0 || num[ti] != n as u32 - 1 {
        return None;
    }
    for v in 0..n {
        if v == si || v == ti {
            continue;
        }
        let (mut lo, mut hi) = (false, false);
        for u in gc.neighbors(NodeId(v as u64)) {
            if num[u.0 as usize] < num[v] {
                lo = true;
            } else {
                hi = true;
            }
        }
        if !(lo && hi) {
            return None;
        }
    }
    Some(num)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<GaussianCube> {
        vec![
            GaussianCube::new(6, 1).unwrap(), // hypercube Q6
            GaussianCube::new(6, 2).unwrap(),
            GaussianCube::new(8, 2).unwrap(),
            GaussianCube::new(6, 4).unwrap(),
            GaussianCube::new(7, 2).unwrap(),
        ]
    }

    #[test]
    fn atlas_builds_and_validates_on_paper_shapes() {
        for gc in shapes() {
            let atlas = MultiTreeAtlas::build(&gc, 2).unwrap();
            validate_independence(&gc, &atlas)
                .unwrap_or_else(|e| panic!("GC({},{}): {e}", gc.n(), gc.modulus()));
            // Tree routes must fit the simulator's default TTL of 4n + 16.
            assert!(
                atlas.max_depth() <= 4 * gc.n() + 16,
                "GC({},{}): max depth {} exceeds TTL",
                gc.n(),
                gc.modulus(),
                atlas.max_depth()
            );
        }
    }

    #[test]
    fn bad_tree_counts_rejected() {
        let gc = GaussianCube::new(6, 2).unwrap();
        assert!(matches!(
            MultiTreeAtlas::build(&gc, 0),
            Err(MultiTreeError::BadTreeCount(0))
        ));
        assert!(matches!(
            MultiTreeAtlas::build(&gc, 3),
            Err(MultiTreeError::BadTreeCount(3))
        ));
        assert!(MultiTreeAtlas::build(&gc, 1).is_ok());
    }

    #[test]
    fn fault_free_routes_are_valid_everywhere() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let atlas = MultiTreeAtlas::build(&gc, 2).unwrap();
        let faults = FaultSet::new();
        for s in 0..gc.num_nodes() {
            for d in 0..gc.num_nodes() {
                let (route, choice) = atlas
                    .route(&gc, &faults, NodeId(s), NodeId(d), None)
                    .unwrap();
                route.validate(&gc, &faults).unwrap();
                assert_eq!(route.source(), NodeId(s));
                assert_eq!(route.dest(), NodeId(d));
                assert_eq!(choice.switches, 0, "no faults, no switches");
                assert!(!choice.exhausted);
            }
        }
    }

    #[test]
    fn routes_avoid_faults_by_switching_trees() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let atlas = MultiTreeAtlas::build(&gc, 2).unwrap();
        let (s, d) = (NodeId(37), NodeId(10));
        let start = start_tree(2, s, d);
        // Break the first link of the start tree's path; the route must
        // come back on the other tree, fault-free.
        let path = atlas.tree_path(start as usize, s, d);
        let mut faults = FaultSet::new();
        let dim = path[0].differing_dims(path[1])[0];
        faults.add_link(LinkId::new(path[0], dim));
        let (route, choice) = atlas.route(&gc, &faults, s, d, None).unwrap();
        route.validate(&gc, &faults).unwrap();
        assert_eq!(choice.switches, 1);
        assert_eq!(choice.tree, (start + 1) % 2);
        assert!(!choice.exhausted);
    }

    #[test]
    fn exhaustion_falls_back_to_ftgcr() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let atlas = MultiTreeAtlas::build(&gc, 2).unwrap();
        let (s, d) = (NodeId(5), NodeId(40));
        let mut faults = FaultSet::new();
        for t in 0..2 {
            let path = atlas.tree_path(t, s, d);
            let dim = path[0].differing_dims(path[1])[0];
            faults.add_link(LinkId::new(path[0], dim));
        }
        let (route, choice) = atlas.route(&gc, &faults, s, d, None).unwrap();
        route.validate(&gc, &faults).unwrap();
        assert!(choice.exhausted);
        assert_eq!(choice.switches, 2);
    }

    #[test]
    fn cached_fallback_matches_uncached() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let atlas = MultiTreeAtlas::build(&gc, 2).unwrap();
        let cache = PlanCache::new(&gc);
        let mut faults = FaultSet::new();
        // Enough clustered damage that some pairs exhaust both trees.
        for d in 1..gc.n() {
            if gc.has_link(NodeId(0), d) {
                faults.add_link(LinkId::new(NodeId(0), d));
            }
        }
        for s in 0..gc.num_nodes() {
            for d in (0..gc.num_nodes()).step_by(7) {
                let a = atlas.route(&gc, &faults, NodeId(s), NodeId(d), None);
                let b = atlas.route(&gc, &faults, NodeId(s), NodeId(d), Some(&cache));
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn flow_hash_spreads_and_is_deterministic() {
        let mut used = [0u32; 2];
        for s in 0..64 {
            for d in 0..64 {
                let a = start_tree(2, NodeId(s), NodeId(d));
                assert_eq!(a, start_tree(2, NodeId(s), NodeId(d)));
                used[a as usize] += 1;
            }
        }
        assert!(
            used[0] > 1000 && used[1] > 1000,
            "lopsided spread: {used:?}"
        );
    }

    #[test]
    fn screen_invalidates_on_generation_bump() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let atlas = MultiTreeAtlas::build(&gc, 2).unwrap();
        let mut faults = FaultSet::new();
        let h0 = atlas.tree_health(&faults);
        assert!(h0.iter().all(|h| h.clean));
        faults.add_node(NodeId(9));
        let h1 = atlas.tree_health(&faults);
        assert!(h1.iter().all(|h| !h.clean && h.fault_nodes == 1));
        faults.remove_node(NodeId(9));
        let h2 = atlas.tree_health(&faults);
        assert!(h2.iter().all(|h| h.clean));
    }

    #[test]
    fn faulty_routes_always_validate() {
        // Whatever the screen concluded, every returned route must avoid
        // the fault set and stay under the simulator's TTL.
        let gc = GaussianCube::new(6, 2).unwrap();
        let atlas = MultiTreeAtlas::build(&gc, 2).unwrap();
        let mut faults = FaultSet::new();
        faults.add_link(LinkId::new(NodeId(12), 0));
        faults.add_node(NodeId(33));
        for s in 0..gc.num_nodes() {
            for d in (0..gc.num_nodes()).step_by(5) {
                if faults.is_node_faulty(NodeId(s)) || faults.is_node_faulty(NodeId(d)) {
                    continue;
                }
                let r = atlas.route(&gc, &faults, NodeId(s), NodeId(d), None);
                if let Ok((route, _)) = &r {
                    route.validate(&gc, &faults).unwrap();
                    assert!(route.hops() <= (4 * gc.n() + 16) as usize);
                }
            }
        }
    }
}
