//! Collective communication primitives on the Gaussian Cube.
//!
//! The paper's introduction (§1) leans on the fact that "communication
//! primitives such as unicasting, multicasting, broadcasting/gathering can
//! be done rather efficiently in all GCs" (citing Hsu et al. [1] and
//! Bertsekas & Tsitsiklis [7]). This module supplies those primitives on
//! top of the same projection machinery the routing strategy uses:
//!
//! * [`multicast_walk`] — path-based multicast: one walk from the source
//!   visiting every destination, built from the optimal covering tree walk
//!   (PC + CT) plus in-class coordinate tours;
//! * [`broadcast_tree`] — a spanning broadcast tree (BFS-optimal depth);
//! * [`screened_broadcast_tree`] — the fault-screened variant: BFS over
//!   usable links only, healthy-but-unreachable nodes left uncovered;
//! * [`BroadcastTree::regraft`] — re-rooting repair: when a fault lands on
//!   a tree edge, reattach the orphaned subtree through a surviving
//!   neighbour link (edge-minimum choice) instead of rebuilding the tree;
//! * [`binomial_broadcast_schedule`] — a round-by-round schedule where each
//!   informed node forwards to one neighbour per round (the classic
//!   binomial/Recursive-doubling pattern generalised to GC links);
//! * [`gather_schedule`] — the reverse of a broadcast tree: leaves-to-root
//!   rounds with single-port aggregation.
//!
//! Both schedules have `_masked` variants that screen faults and return a
//! typed [`RoutingError::Disconnected`] — never a panic — when the fault
//! set cuts healthy nodes off from the root.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use gcube_topology::{GaussianCube, LinkId, LinkMask, NoFaults, NodeId, Topology};

use crate::ffgcr;
use crate::route::{Route, RoutingError};

/// Path-based multicast: a single walk from `s` that visits every node of
/// `dests` (each exactly marked, possibly passed through more than once).
///
/// Construction: concatenate FFGCR unicasts in a greedy nearest-destination
/// order. Each leg is optimal, so by the triangle inequality the walk is at
/// most **twice** the sum of the individual source-to-destination distances
/// (and at least the largest one). For clustered destination sets the
/// greedy chain typically *beats* independent unicasts by 20–50% (see the
/// tests and the `collective` bench); for antipodal spreads it can exceed
/// the sum — the walk is one packet visiting everything, not a tree.
pub fn multicast_walk(
    gc: &GaussianCube,
    s: NodeId,
    dests: &BTreeSet<NodeId>,
) -> Result<Route, RoutingError> {
    if !gc.contains(s) {
        return Err(RoutingError::OutOfRange(s));
    }
    for &d in dests {
        if !gc.contains(d) {
            return Err(RoutingError::OutOfRange(d));
        }
    }
    let mut remaining: BTreeSet<NodeId> = dests.clone();
    remaining.remove(&s);
    let mut nodes = vec![s];
    let mut cur = s;
    while !remaining.is_empty() {
        // Greedy: nearest remaining destination (by route-free distance =
        // exact FFGCR length), ties towards the smallest label for
        // determinism. Only the chosen leg is ever planned in full.
        let next = *remaining
            .iter()
            .min_by_key(|&&d| (ffgcr::distance(gc, cur, d), d))
            .expect("non-empty");
        remaining.remove(&next);
        let leg = ffgcr::route(gc, cur, next)?;
        nodes.extend_from_slice(&leg.nodes()[1..]);
        cur = next;
    }
    Ok(Route::new(nodes))
}

/// Sum of independent unicast lengths from `s` to each destination — the
/// baseline [`multicast_walk`] is measured against.
pub fn independent_unicast_cost(gc: &GaussianCube, s: NodeId, dests: &BTreeSet<NodeId>) -> u64 {
    dests
        .iter()
        .map(|&d| u64::from(ffgcr::route_len(gc, s, d)))
        .sum()
}

/// A broadcast tree rooted at `s`: `parent[v]` is the node that forwards
/// the message to `v` (`None` for the root and for *uncovered* nodes —
/// faulty ones, or healthy ones the screened BFS could not reach).
///
/// BFS construction minimises depth: the tree's depth equals the
/// eccentricity of `s` (in the screened graph), the information-theoretic
/// lower bound for all-port broadcasting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BroadcastTree {
    /// The root.
    pub root: NodeId,
    /// Parent pointers (`parent[v.0]`).
    pub parent: Vec<Option<NodeId>>,
    /// BFS depth per node; `u32::MAX` marks a node the tree does not cover.
    pub depth: Vec<u32>,
    /// Covered nodes in BFS order (root first, parents before children).
    pub order: Vec<NodeId>,
}

/// What a [`BroadcastTree::regraft`] repair pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Orphaned subtrees reattached through a surviving neighbour link.
    pub regrafted_subtrees: u64,
    /// Nodes whose coverage the regraft preserved (members of reattached
    /// subtrees).
    pub reattached_nodes: u64,
    /// Previously covered nodes that lost coverage (faulty, or no
    /// surviving link back to the main tree).
    pub lost_nodes: u64,
    /// Whether the tree was rebuilt from scratch instead of patched
    /// (root replacement — never set by `regraft` itself).
    pub rebuilt: bool,
}

impl BroadcastTree {
    /// Maximum depth over covered nodes — rounds needed with all-port
    /// forwarding. Uncovered sentinels (`u32::MAX`) are ignored.
    pub fn max_depth(&self) -> u32 {
        self.depth
            .iter()
            .copied()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Whether the tree covers (reaches) `v`.
    #[inline]
    pub fn covers(&self, v: NodeId) -> bool {
        self.depth[v.0 as usize] != u32::MAX
    }

    /// Number of covered nodes (root inclusive).
    #[inline]
    pub fn covered_count(&self) -> u64 {
        self.order.len() as u64
    }

    /// Per-node BFS rank (position in [`BroadcastTree::order`]);
    /// `u32::MAX` for uncovered nodes. Gives collective packets a dense,
    /// deterministic id space.
    pub fn ranks(&self) -> Vec<u32> {
        let mut rank = vec![u32::MAX; self.parent.len()];
        for (i, &v) in self.order.iter().enumerate() {
            rank[v.0 as usize] = i as u32;
        }
        rank
    }

    /// Children lists (inverse of `parent`).
    pub fn children(&self) -> HashMap<NodeId, Vec<NodeId>> {
        let mut ch: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch.entry(*p).or_default().push(NodeId(v as u64));
            }
        }
        for list in ch.values_mut() {
            list.sort_unstable();
        }
        ch
    }

    /// The tree path from covered node `v` up to the root (inclusive both
    /// ends, `v` first) — the gather route.
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        debug_assert!(self.covers(v), "path_to_root needs a covered node");
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.0 as usize] {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Verify every tree edge is a real GC link, usable under `mask`, and
    /// that `depth`/`order` are consistent with `parent`.
    pub fn validate_masked<M: LinkMask + ?Sized>(
        &self,
        gc: &GaussianCube,
        mask: &M,
    ) -> Result<(), RoutingError> {
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                let v = NodeId(v as u64);
                let dims = v.differing_dims(*p);
                if dims.len() != 1 || !gc.has_link(v, dims[0]) {
                    return Err(RoutingError::InvalidHop { from: *p, to: v });
                }
                if !mask.node_ok(v) || !mask.node_ok(*p) {
                    return Err(RoutingError::FaultyNodeOnRoute { node: v });
                }
                let l = LinkId::new(v, dims[0]);
                if !mask.link_ok(l) {
                    return Err(RoutingError::FaultyLinkOnRoute { link: l });
                }
                if self.depth[v.0 as usize] != self.depth[p.0 as usize] + 1 {
                    return Err(RoutingError::InvalidHop { from: *p, to: v });
                }
            }
        }
        Ok(())
    }

    /// Verify every tree edge is a real GC link.
    pub fn validate(&self, gc: &GaussianCube) -> Result<(), RoutingError> {
        self.validate_masked(gc, &NoFaults)
    }

    /// Re-rooting repair: patch the tree in place after the fault set
    /// changed, reattaching each orphaned subtree through a surviving
    /// neighbour link instead of rebuilding the whole tree.
    ///
    /// Per the re-rooting broadcasting papers: an edge fault severs one
    /// subtree; some member of that subtree usually still has a healthy
    /// link into the surviving tree, so the subtree is *re-rooted* at that
    /// member (parent pointers along the old root-ward chain reversed) and
    /// grafted on. Among candidate graft edges the *edge-minimum* rule
    /// picks the one whose surviving endpoint is shallowest (ties towards
    /// the smallest `(member, neighbour)` pair), keeping the patched tree
    /// close to BFS depth. Subtrees with no surviving edge — and faulty
    /// nodes — lose coverage.
    ///
    /// The root must still be healthy (callers replace the root — and
    /// rebuild — when it dies). Deterministic: a pure function of the old
    /// tree and the mask.
    pub fn regraft<M: LinkMask + ?Sized>(&mut self, gc: &GaussianCube, mask: &M) -> RepairOutcome {
        debug_assert!(mask.node_ok(self.root), "regraft requires a live root");
        let n = self.parent.len();
        let old_covered = self.order.len();
        let mut dead = vec![false; n];
        let mut orphan = vec![false; n];
        // One pass in BFS order (parents first): a node is orphaned when it
        // is faulty, its parent edge died, or its parent is orphaned.
        for &v in &self.order {
            if v == self.root {
                continue;
            }
            let vi = v.0 as usize;
            if !mask.node_ok(v) {
                dead[vi] = true;
                orphan[vi] = true;
                continue;
            }
            let p = self.parent[vi].expect("covered non-root has a parent");
            let dims = v.differing_dims(p);
            let edge_ok =
                dims.len() == 1 && mask.node_ok(p) && mask.link_ok(LinkId::new(v, dims[0]));
            if orphan[p.0 as usize] || !edge_ok {
                orphan[vi] = true;
            }
        }
        // Group live orphans into subtrees: a live orphan roots a subtree
        // when its old parent link no longer ties it to a live orphan.
        let mut sub_id = vec![usize::MAX; n];
        let mut subtrees: Vec<Vec<NodeId>> = Vec::new();
        for &v in &self.order {
            let vi = v.0 as usize;
            if !orphan[vi] || dead[vi] {
                continue;
            }
            let p = self.parent[vi].expect("orphans are never the root");
            let pi = p.0 as usize;
            let hangs_on_parent = orphan[pi] && !dead[pi] && {
                let dims = v.differing_dims(p);
                dims.len() == 1 && mask.link_ok(LinkId::new(v, dims[0]))
            };
            if hangs_on_parent {
                sub_id[vi] = sub_id[pi];
                subtrees[sub_id[pi]].push(v);
            } else {
                sub_id[vi] = subtrees.len();
                subtrees.push(vec![v]);
            }
        }
        // Reattach subtrees, edge-minimum first. A graft can unlock further
        // grafts (a later subtree may hang off a reattached one), so loop
        // to a fixed point.
        let mut in_main = vec![false; n];
        for &v in &self.order {
            let vi = v.0 as usize;
            in_main[vi] = !orphan[vi] && !dead[vi];
        }
        let mut resolved = vec![false; subtrees.len()];
        let mut out = RepairOutcome::default();
        loop {
            let mut progress = false;
            for (si, members) in subtrees.iter().enumerate() {
                if resolved[si] {
                    continue;
                }
                // Best graft edge: member u, neighbour w in the main tree,
                // minimising (depth[w], u, w).
                let mut best: Option<(u32, u64, u64, u32)> = None;
                for &u in members {
                    for c in gc.link_dims(u) {
                        let w = u.flip(c);
                        if !in_main[w.0 as usize]
                            || !mask.node_ok(w)
                            || !mask.link_ok(LinkId::new(u, c))
                        {
                            continue;
                        }
                        let key = (self.depth[w.0 as usize], u.0, w.0, c);
                        if best.is_none_or(|b| (key.0, key.1, key.2) < (b.0, b.1, b.2)) {
                            best = Some(key);
                        }
                    }
                }
                let Some((_, u, w, _)) = best else { continue };
                let (u, w) = (NodeId(u), NodeId(w));
                // Re-root the subtree at u: reverse the parent chain from u
                // up to the old subtree root, then hang u off w.
                let mut cur = u;
                let mut prev: Option<NodeId> = Some(w);
                loop {
                    let old_parent = self.parent[cur.0 as usize];
                    self.parent[cur.0 as usize] = prev;
                    match old_parent {
                        Some(p) if sub_id[p.0 as usize] == si => {
                            prev = Some(cur);
                            cur = p;
                        }
                        _ => break,
                    }
                }
                // Provisional depths inside the subtree so later grafts see
                // an up-to-date edge-minimum landscape.
                let member_set: HashSet<NodeId> = members.iter().copied().collect();
                let mut ch: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
                for &m in members {
                    if m != u {
                        let p = self.parent[m.0 as usize].expect("grafted member has a parent");
                        ch.entry(p).or_default().push(m);
                    }
                }
                self.depth[u.0 as usize] = self.depth[w.0 as usize] + 1;
                let mut bfs = VecDeque::from([u]);
                while let Some(x) = bfs.pop_front() {
                    if let Some(kids) = ch.get(&x) {
                        for &k in kids {
                            debug_assert!(member_set.contains(&k));
                            self.depth[k.0 as usize] = self.depth[x.0 as usize] + 1;
                            bfs.push_back(k);
                        }
                    }
                }
                for &m in members {
                    in_main[m.0 as usize] = true;
                }
                resolved[si] = true;
                out.regrafted_subtrees += 1;
                out.reattached_nodes += members.len() as u64;
                progress = true;
            }
            if !progress {
                break;
            }
        }
        // Finalise: prune everything that never made it back, then rebuild
        // depth/order by walking the *patched tree* from the root (a tree
        // walk, not a graph BFS — no full rebuild happens here).
        for (v, ok) in in_main.iter().enumerate() {
            if !ok {
                self.parent[v] = None;
            }
        }
        let mut ch: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch.entry(*p).or_default().push(NodeId(v as u64));
            }
        }
        for list in ch.values_mut() {
            list.sort_unstable();
        }
        let mut depth = vec![u32::MAX; n];
        let mut order = Vec::with_capacity(old_covered);
        depth[self.root.0 as usize] = 0;
        let mut bfs = VecDeque::from([self.root]);
        while let Some(u) = bfs.pop_front() {
            order.push(u);
            if let Some(kids) = ch.get(&u) {
                for &k in kids {
                    depth[k.0 as usize] = self.depth[k.0 as usize];
                    bfs.push_back(k);
                }
            }
        }
        // Keep the patched depths, but clear stale values on pruned nodes.
        for (v, d) in depth.iter().enumerate() {
            if *d == u32::MAX && NodeId(v as u64) != self.root {
                self.depth[v] = u32::MAX;
            }
        }
        out.lost_nodes = old_covered as u64 - order.len() as u64;
        self.order = order;
        out
    }
}

/// Build the fault-screened BFS broadcast tree rooted at `s`: traversal
/// uses only links usable under `mask` and skips faulty nodes. Healthy
/// nodes the BFS cannot reach are simply left uncovered
/// (`depth = u32::MAX`) — use [`broadcast_tree_masked`] to insist on full
/// coverage.
pub fn screened_broadcast_tree<M: LinkMask + ?Sized>(
    gc: &GaussianCube,
    mask: &M,
    s: NodeId,
) -> Result<BroadcastTree, RoutingError> {
    if !gc.contains(s) {
        return Err(RoutingError::OutOfRange(s));
    }
    if !mask.node_ok(s) {
        return Err(RoutingError::SourceFaulty(s));
    }
    let n = gc.num_nodes() as usize;
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut depth = vec![u32::MAX; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    depth[s.0 as usize] = 0;
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for c in gc.link_dims(u) {
            let v = u.flip(c);
            if depth[v.0 as usize] == u32::MAX && mask.node_ok(v) && mask.link_ok(LinkId::new(u, c))
            {
                depth[v.0 as usize] = depth[u.0 as usize] + 1;
                parent[v.0 as usize] = Some(u);
                queue.push_back(v);
            }
        }
    }
    Ok(BroadcastTree {
        root: s,
        parent,
        depth,
        order,
    })
}

/// Build the BFS broadcast tree rooted at `s` in the fault-free cube.
pub fn broadcast_tree(gc: &GaussianCube, s: NodeId) -> Result<BroadcastTree, RoutingError> {
    broadcast_tree_masked(gc, &NoFaults, s)
}

/// Build the fault-screened BFS broadcast tree rooted at `s`, requiring
/// the tree to span every healthy node. Returns a typed
/// [`RoutingError::Disconnected`] — instead of silently corrupt
/// `u32::MAX` depths — when faults cut healthy nodes off from `s`.
pub fn broadcast_tree_masked<M: LinkMask + ?Sized>(
    gc: &GaussianCube,
    mask: &M,
    s: NodeId,
) -> Result<BroadcastTree, RoutingError> {
    let tree = screened_broadcast_tree(gc, mask, s)?;
    let healthy = (0..gc.num_nodes())
        .filter(|&v| mask.node_ok(NodeId(v)))
        .count() as u64;
    if tree.covered_count() < healthy {
        return Err(RoutingError::Disconnected {
            unreachable: healthy - tree.covered_count(),
        });
    }
    Ok(tree)
}

/// A single-port broadcast schedule: in each round, every *informed* node
/// may inform at most one uninformed neighbour, and every link carries at
/// most one message. Returns the rounds, each a list of `(from, to)`
/// forwarding pairs.
///
/// Greedy construction on the BFS tree: parents forward to their children
/// in subtree-size order (largest first), which is the classic optimal
/// policy on trees.
pub fn binomial_broadcast_schedule(
    gc: &GaussianCube,
    s: NodeId,
) -> Result<Vec<Vec<(NodeId, NodeId)>>, RoutingError> {
    binomial_broadcast_schedule_masked(gc, &NoFaults, s)
}

/// [`binomial_broadcast_schedule`] with faults screened out: the schedule
/// runs over the fault-screened tree and returns
/// [`RoutingError::Disconnected`] — never a panic — when healthy nodes are
/// cut off from `s`.
pub fn binomial_broadcast_schedule_masked<M: LinkMask + ?Sized>(
    gc: &GaussianCube,
    mask: &M,
    s: NodeId,
) -> Result<Vec<Vec<(NodeId, NodeId)>>, RoutingError> {
    let tree = broadcast_tree_masked(gc, mask, s)?;
    schedule_on_tree(&tree)
}

/// The greedy single-port schedule on an explicit (possibly repaired)
/// tree, covering exactly the tree's covered set.
fn schedule_on_tree(tree: &BroadcastTree) -> Result<Vec<Vec<(NodeId, NodeId)>>, RoutingError> {
    let children = tree.children();
    let n = tree.parent.len();
    // Subtree sizes by reverse-BFS accumulation over covered nodes.
    let mut size = vec![1u64; n];
    for &v in tree.order.iter().rev() {
        if let Some(p) = tree.parent[v.0 as usize] {
            size[p.0 as usize] += size[v.0 as usize];
        }
    }
    // Each node keeps an index cursor over its children sorted by subtree
    // size — no front-removal churn.
    let mut pending: HashMap<NodeId, (Vec<NodeId>, usize)> = children
        .iter()
        .map(|(p, ch)| {
            let mut sorted = ch.clone();
            sorted.sort_unstable_by_key(|c| std::cmp::Reverse(size[c.0 as usize]));
            (*p, (sorted, 0))
        })
        .collect();
    let covered = tree.covered_count() as usize;
    let mut informed: HashSet<NodeId> = [tree.root].into_iter().collect();
    let mut rounds = Vec::new();
    while informed.len() < covered {
        let mut round = Vec::new();
        let mut newly = Vec::new();
        let mut speakers: Vec<NodeId> = informed.iter().copied().collect();
        speakers.sort_unstable();
        for u in speakers {
            if let Some((list, cursor)) = pending.get_mut(&u) {
                if let Some(v) = list.get(*cursor).copied() {
                    *cursor += 1;
                    round.push((u, v));
                    newly.push(v);
                }
            }
        }
        if round.is_empty() {
            // Cannot happen on a well-formed tree (every uninformed covered
            // node has an informed ancestor with a pending child), but a
            // corrupt tree must surface as a typed error, not a panic.
            return Err(RoutingError::Disconnected {
                unreachable: (covered - informed.len()) as u64,
            });
        }
        informed.extend(newly);
        rounds.push(round);
    }
    Ok(rounds)
}

/// A gather schedule on the broadcast tree: the reverse of the broadcast —
/// in each round a node may forward its (aggregated) value to its parent
/// once all of its children have reported. Returns rounds of `(from, to)`
/// pairs; the number of rounds is the tree's "gather latency" with
/// single-port aggregation.
pub fn gather_schedule(
    gc: &GaussianCube,
    root: NodeId,
) -> Result<Vec<Vec<(NodeId, NodeId)>>, RoutingError> {
    gather_schedule_masked(gc, &NoFaults, root)
}

/// [`gather_schedule`] with faults screened out; returns
/// [`RoutingError::Disconnected`] when healthy nodes cannot reach `root`.
pub fn gather_schedule_masked<M: LinkMask + ?Sized>(
    gc: &GaussianCube,
    mask: &M,
    root: NodeId,
) -> Result<Vec<Vec<(NodeId, NodeId)>>, RoutingError> {
    let tree = broadcast_tree_masked(gc, mask, root)?;
    let children = tree.children();
    let n = gc.num_nodes() as usize;
    // Bottom-up (reverse BFS order): when a node is processed, every
    // child's send round is already fixed, so we can serialise receptions
    // at the parent's single port and derive the node's own readiness.
    let mut ready = vec![0u32; n]; // first round v may send (all children in)
    let mut send_round: Vec<Option<u32>> = vec![None; n];
    for &v in tree.order.iter().rev() {
        if let Some(ch) = children.get(&v) {
            // Serialise children into v's port: each child c sends at a
            // distinct round ≥ ready[c]; schedule in ascending readiness.
            let mut by_ready: Vec<NodeId> = ch.clone();
            by_ready.sort_unstable_by_key(|c| (ready[c.0 as usize], c.0));
            let mut cur = 0u32;
            for c in by_ready {
                let r = ready[c.0 as usize].max(cur);
                send_round[c.0 as usize] = Some(r);
                cur = r + 1;
            }
            ready[v.0 as usize] = cur;
        }
        // Leaves keep ready = 0.
    }
    // Materialise the rounds.
    let max_round = send_round.iter().flatten().copied().max().unwrap_or(0);
    let mut rounds: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); max_round as usize + 1];
    for (v, r) in send_round.iter().enumerate() {
        if let Some(r) = r {
            let p = tree.parent[v].expect("only the root never sends");
            rounds[*r as usize].push((NodeId(v as u64), p));
        }
    }
    Ok(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_topology::{search, NoFaults};

    #[test]
    fn multicast_visits_everything() {
        let gc = GaussianCube::new(8, 4).unwrap();
        let dests: BTreeSet<NodeId> = [3u64, 77, 200, 255, 128].into_iter().map(NodeId).collect();
        let walk = multicast_walk(&gc, NodeId(0), &dests).unwrap();
        walk.validate(&gc, &NoFaults).unwrap();
        let visited: HashSet<NodeId> = walk.nodes().iter().copied().collect();
        for d in &dests {
            assert!(visited.contains(d));
        }
        // Never worse than independent unicasts, never better than the
        // farthest destination.
        let indep = independent_unicast_cost(&gc, NodeId(0), &dests);
        assert!(walk.hops() as u64 <= indep);
        let farthest = dests
            .iter()
            .map(|&d| search::distance(&gc, NodeId(0), d, &NoFaults).unwrap())
            .max()
            .unwrap();
        assert!(walk.hops() as u32 >= farthest);
    }

    #[test]
    fn multicast_trivial_cases() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let empty = BTreeSet::new();
        assert_eq!(multicast_walk(&gc, NodeId(5), &empty).unwrap().hops(), 0);
        let only_self: BTreeSet<_> = [NodeId(5)].into_iter().collect();
        assert_eq!(
            multicast_walk(&gc, NodeId(5), &only_self).unwrap().hops(),
            0
        );
        let one: BTreeSet<_> = [NodeId(9)].into_iter().collect();
        let w = multicast_walk(&gc, NodeId(5), &one).unwrap();
        assert_eq!(
            w.hops() as u32,
            search::distance(&gc, NodeId(5), NodeId(9), &NoFaults).unwrap()
        );
    }

    #[test]
    fn multicast_saves_over_unicasts() {
        // Clustered destinations share long prefixes of their routes: the
        // greedy chain must beat independent unicasts strictly.
        let gc = GaussianCube::new(10, 2).unwrap();
        let dests: BTreeSet<NodeId> = [1000u64, 1001, 1003, 1007, 960]
            .into_iter()
            .map(NodeId)
            .collect();
        let walk = multicast_walk(&gc, NodeId(0), &dests).unwrap();
        let indep = independent_unicast_cost(&gc, NodeId(0), &dests);
        assert!(
            (walk.hops() as u64) < indep,
            "chained multicast ({}) should beat {indep} independent hops",
            walk.hops()
        );
    }

    #[test]
    fn broadcast_tree_spans_with_optimal_depth() {
        for (n, m) in [(7u32, 2u64), (8, 4), (6, 8)] {
            let gc = GaussianCube::new(n, m).unwrap();
            let t = broadcast_tree(&gc, NodeId(1)).unwrap();
            t.validate(&gc).unwrap();
            assert_eq!(
                t.parent.iter().filter(|p| p.is_none()).count(),
                1,
                "only the root"
            );
            let ecc = search::eccentricity(&gc, NodeId(1), &NoFaults).unwrap();
            assert_eq!(t.max_depth(), ecc, "BFS tree depth = eccentricity");
            // Every non-root node's parent is strictly shallower.
            for v in 1..gc.num_nodes() {
                let v = NodeId(v);
                if v == NodeId(1) {
                    continue;
                }
                let p = t.parent[v.0 as usize].unwrap();
                assert_eq!(t.depth[v.0 as usize], t.depth[p.0 as usize] + 1);
            }
        }
    }

    #[test]
    fn binomial_schedule_informs_everyone_once() {
        let gc = GaussianCube::new(7, 2).unwrap();
        let rounds = binomial_broadcast_schedule(&gc, NodeId(0)).unwrap();
        let mut informed: HashSet<NodeId> = [NodeId(0)].into_iter().collect();
        for round in &rounds {
            let mut this_round_senders = HashSet::new();
            for &(from, to) in round {
                assert!(informed.contains(&from), "sender must already know");
                assert!(!informed.contains(&to), "receiver must be new");
                assert!(
                    this_round_senders.insert(from),
                    "single-port: one send per round"
                );
                let dims = from.differing_dims(to);
                assert_eq!(dims.len(), 1);
                assert!(gc.has_link(from, dims[0]));
                informed.insert(to);
            }
        }
        assert_eq!(informed.len() as u64, gc.num_nodes());
        // Single-port lower bound: ceil(log2(N)) rounds.
        assert!(rounds.len() as u32 >= 7);
        // And the schedule shouldn't be catastrophically deep.
        let depth = broadcast_tree(&gc, NodeId(0)).unwrap().max_depth();
        assert!(
            rounds.len() as u32 <= depth + 8,
            "rounds {} depth {depth}",
            rounds.len()
        );
    }

    #[test]
    fn gather_schedule_respects_dependencies() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let root = NodeId(0);
        let rounds = gather_schedule(&gc, root).unwrap();
        let tree = broadcast_tree(&gc, root).unwrap();
        let mut sent: HashSet<NodeId> = HashSet::new();
        let children = tree.children();
        for (r, round) in rounds.iter().enumerate() {
            let mut receivers = HashSet::new();
            for &(from, to) in round {
                assert_eq!(tree.parent[from.0 as usize], Some(to), "sends to parent");
                assert!(receivers.insert(to), "single-port reception at round {r}");
                // All of `from`'s children must have reported already.
                if let Some(ch) = children.get(&from) {
                    for c in ch {
                        assert!(sent.contains(c), "{from} sent before child {c}");
                    }
                }
                sent.insert(from);
            }
        }
        // Everyone except the root reports exactly once.
        assert_eq!(sent.len() as u64, gc.num_nodes() - 1);
        assert!(!sent.contains(&root));
    }

    #[test]
    fn out_of_range_rejected() {
        let gc = GaussianCube::new(5, 2).unwrap();
        assert!(broadcast_tree(&gc, NodeId(99)).is_err());
        let bad: BTreeSet<_> = [NodeId(99)].into_iter().collect();
        assert!(multicast_walk(&gc, NodeId(0), &bad).is_err());
    }

    use crate::faults::FaultSet;
    use gcube_topology::LinkId;

    /// Cut every link of `v` except the ones in `keep` (as (node, dim)).
    fn isolate(gc: &GaussianCube, v: NodeId, keep: &[u32]) -> FaultSet {
        let mut f = FaultSet::new();
        for c in gc.link_dims(v) {
            if !keep.contains(&c) {
                f.add_link(LinkId::new(v, c));
            }
        }
        f
    }

    #[test]
    fn screened_tree_skips_faults_and_reports_coverage() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let mut f = FaultSet::new();
        f.add_node(NodeId(7));
        let t = screened_broadcast_tree(&gc, &f, NodeId(0)).unwrap();
        t.validate_masked(&gc, &f).unwrap();
        assert!(!t.covers(NodeId(7)));
        assert_eq!(t.covered_count(), gc.num_nodes() - 1);
        assert_eq!(t.order.len() as u64, t.covered_count());
        assert_eq!(t.order[0], NodeId(0));
        let ranks = t.ranks();
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[7], u32::MAX);
        // max_depth must ignore the uncovered sentinel.
        assert!(t.max_depth() < u32::MAX);
        // Faulty root rejected.
        assert!(matches!(
            screened_broadcast_tree(&gc, &f, NodeId(7)),
            Err(RoutingError::SourceFaulty(_))
        ));
    }

    #[test]
    fn disconnected_cube_yields_typed_error_not_panic() {
        let gc = GaussianCube::new(6, 2).unwrap();
        // Sever node 5 from everything: healthy but unreachable.
        let f = isolate(&gc, NodeId(5), &[]);
        assert!(matches!(
            broadcast_tree_masked(&gc, &f, NodeId(0)),
            Err(RoutingError::Disconnected { unreachable: 1 })
        ));
        assert!(matches!(
            binomial_broadcast_schedule_masked(&gc, &f, NodeId(0)),
            Err(RoutingError::Disconnected { .. })
        ));
        assert!(matches!(
            gather_schedule_masked(&gc, &f, NodeId(0)),
            Err(RoutingError::Disconnected { .. })
        ));
    }

    #[test]
    fn masked_schedules_respect_faults() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let mut f = FaultSet::new();
        f.add_node(NodeId(9));
        let rounds = binomial_broadcast_schedule_masked(&gc, &f, NodeId(0)).unwrap();
        let mut informed: HashSet<NodeId> = [NodeId(0)].into_iter().collect();
        for round in &rounds {
            let mut senders = HashSet::new();
            for &(from, to) in round {
                assert!(informed.contains(&from));
                assert!(!informed.contains(&to));
                assert!(senders.insert(from), "single-port discipline");
                let dims = from.differing_dims(to);
                assert_eq!(dims.len(), 1);
                assert!(gc.has_link(from, dims[0]));
                assert!(
                    f.link_ok(LinkId::new(from, dims[0])),
                    "round uses live link"
                );
                assert!(f.node_ok(to) && f.node_ok(from));
                informed.insert(to);
            }
        }
        assert_eq!(informed.len() as u64, gc.num_nodes() - 1);
        assert!(!informed.contains(&NodeId(9)));
    }

    #[test]
    fn regraft_reattaches_severed_subtree() {
        let gc = GaussianCube::new(7, 2).unwrap();
        let t0 = broadcast_tree(&gc, NodeId(0)).unwrap();
        // Pick a depth-1 child with a big subtree and cut its parent edge.
        let children = t0.children();
        let victim = children[&NodeId(0)][0];
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(victim, victim.differing_dims(NodeId(0))[0]));
        let mut t = t0.clone();
        let out = t.regraft(&gc, &f);
        assert!(!out.rebuilt);
        assert!(out.regrafted_subtrees >= 1);
        assert!(out.reattached_nodes >= 1);
        assert_eq!(out.lost_nodes, 0, "victim subtree must regraft fully");
        assert_eq!(t.covered_count(), gc.num_nodes());
        t.validate_masked(&gc, &f).unwrap();
        // The patched tree is a real tree: every covered non-root node has
        // a covered parent one level up.
        for &v in &t.order {
            if v == t.root {
                continue;
            }
            let p = t.parent[v.0 as usize].unwrap();
            assert!(t.covers(p));
            assert_eq!(t.depth[v.0 as usize], t.depth[p.0 as usize] + 1);
        }
        // And the schedule on it still informs everyone.
        let rounds = schedule_on_tree(&t).unwrap();
        let total: usize = rounds.iter().map(Vec::len).sum();
        assert_eq!(total as u64, t.covered_count() - 1);
    }

    #[test]
    fn regraft_drops_unreachable_subtree() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let mut t = broadcast_tree(&gc, NodeId(0)).unwrap();
        // Fully isolate node 5: its subtree members reattach elsewhere (if
        // any), node 5 itself is lost.
        let f = isolate(&gc, NodeId(5), &[]);
        let out = t.regraft(&gc, &f);
        assert!(out.lost_nodes >= 1);
        assert!(!t.covers(NodeId(5)));
        assert!(t.parent[5].is_none());
        assert_eq!(t.depth[5], u32::MAX);
        t.validate_masked(&gc, &f).unwrap();
        assert_eq!(t.covered_count() + out.lost_nodes, gc.num_nodes());
    }

    #[test]
    fn regraft_matches_coverage_of_fresh_screened_build() {
        // Regraft must cover exactly what a from-scratch screened BFS
        // covers whenever the screened graph keeps the root's component
        // connected to each old subtree — compare coverage sets on a batch
        // of single-fault scenarios.
        let gc = GaussianCube::new(7, 4).unwrap();
        let base = broadcast_tree(&gc, NodeId(3)).unwrap();
        for v in [1u64, 8, 21, 64, 100, 127] {
            for c in gc.link_dims(NodeId(v)) {
                let mut f = FaultSet::new();
                f.add_link(LinkId::new(NodeId(v), c));
                let mut patched = base.clone();
                patched.regraft(&gc, &f);
                patched.validate_masked(&gc, &f).unwrap();
                let fresh = screened_broadcast_tree(&gc, &f, NodeId(3)).unwrap();
                let mut pc: Vec<_> = patched.order.to_vec();
                let mut fc: Vec<_> = fresh.order.to_vec();
                pc.sort_unstable();
                fc.sort_unstable();
                assert_eq!(
                    pc, fc,
                    "coverage must match fresh build for fault at {v} dim {c}"
                );
            }
        }
    }

    #[test]
    fn gather_paths_follow_tree() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let t = broadcast_tree(&gc, NodeId(0)).unwrap();
        for v in [1u64, 17, 63] {
            let path = t.path_to_root(NodeId(v));
            assert_eq!(path[0], NodeId(v));
            assert_eq!(*path.last().unwrap(), NodeId(0));
            for w in path.windows(2) {
                assert_eq!(t.parent[w[0].0 as usize], Some(w[1]));
            }
        }
    }
}
