//! Collective communication primitives on the Gaussian Cube.
//!
//! The paper's introduction (§1) leans on the fact that "communication
//! primitives such as unicasting, multicasting, broadcasting/gathering can
//! be done rather efficiently in all GCs" (citing Hsu et al. [1] and
//! Bertsekas & Tsitsiklis [7]). This module supplies those primitives on
//! top of the same projection machinery the routing strategy uses:
//!
//! * [`multicast_walk`] — path-based multicast: one walk from the source
//!   visiting every destination, built from the optimal covering tree walk
//!   (PC + CT) plus in-class coordinate tours;
//! * [`broadcast_tree`] — a spanning broadcast tree (BFS-optimal depth);
//! * [`binomial_broadcast_schedule`] — a round-by-round schedule where each
//!   informed node forwards to one neighbour per round (the classic
//!   binomial/Recursive-doubling pattern generalised to GC links);
//! * [`gather_schedule`] — the reverse of a broadcast tree: leaves-to-root
//!   rounds with single-port aggregation.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use gcube_topology::{GaussianCube, NodeId, Topology};

use crate::ffgcr;
use crate::route::{Route, RoutingError};

/// Path-based multicast: a single walk from `s` that visits every node of
/// `dests` (each exactly marked, possibly passed through more than once).
///
/// Construction: concatenate FFGCR unicasts in a greedy nearest-destination
/// order. Each leg is optimal, so by the triangle inequality the walk is at
/// most **twice** the sum of the individual source-to-destination distances
/// (and at least the largest one). For clustered destination sets the
/// greedy chain typically *beats* independent unicasts by 20–50% (see the
/// tests and the `collective` bench); for antipodal spreads it can exceed
/// the sum — the walk is one packet visiting everything, not a tree.
pub fn multicast_walk(
    gc: &GaussianCube,
    s: NodeId,
    dests: &BTreeSet<NodeId>,
) -> Result<Route, RoutingError> {
    if !gc.contains(s) {
        return Err(RoutingError::OutOfRange(s));
    }
    for &d in dests {
        if !gc.contains(d) {
            return Err(RoutingError::OutOfRange(d));
        }
    }
    let mut remaining: BTreeSet<NodeId> = dests.clone();
    remaining.remove(&s);
    let mut nodes = vec![s];
    let mut cur = s;
    while !remaining.is_empty() {
        // Greedy: nearest remaining destination (by FFGCR length = exact
        // distance), ties towards the smallest label for determinism.
        let next = *remaining
            .iter()
            .min_by_key(|&&d| (ffgcr::route_len(gc, cur, d), d))
            .expect("non-empty");
        remaining.remove(&next);
        let leg = ffgcr::route(gc, cur, next)?;
        nodes.extend_from_slice(&leg.nodes()[1..]);
        cur = next;
    }
    Ok(Route::new(nodes))
}

/// Sum of independent unicast lengths from `s` to each destination — the
/// baseline [`multicast_walk`] is measured against.
pub fn independent_unicast_cost(gc: &GaussianCube, s: NodeId, dests: &BTreeSet<NodeId>) -> u64 {
    dests
        .iter()
        .map(|&d| u64::from(ffgcr::route_len(gc, s, d)))
        .sum()
}

/// A spanning broadcast tree rooted at `s`: `parent[v]` is the node that
/// forwards the message to `v` (`None` for the root and for nodes outside
/// the connected component, which cannot occur in a healthy GC).
///
/// BFS construction minimises depth: the tree's depth equals the
/// eccentricity of `s`, the information-theoretic lower bound for
/// all-port broadcasting.
#[derive(Clone, Debug)]
pub struct BroadcastTree {
    /// The root.
    pub root: NodeId,
    /// Parent pointers (`parent[v.0]`).
    pub parent: Vec<Option<NodeId>>,
    /// BFS depth per node.
    pub depth: Vec<u32>,
}

impl BroadcastTree {
    /// Maximum depth — rounds needed with all-port forwarding.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Children lists (inverse of `parent`).
    pub fn children(&self) -> HashMap<NodeId, Vec<NodeId>> {
        let mut ch: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch.entry(*p).or_default().push(NodeId(v as u64));
            }
        }
        for list in ch.values_mut() {
            list.sort_unstable();
        }
        ch
    }

    /// Verify every tree edge is a real GC link.
    pub fn validate(&self, gc: &GaussianCube) -> Result<(), RoutingError> {
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                let v = NodeId(v as u64);
                let dims = v.differing_dims(*p);
                if dims.len() != 1 || !gc.has_link(v, dims[0]) {
                    return Err(RoutingError::InvalidHop { from: *p, to: v });
                }
            }
        }
        Ok(())
    }
}

/// Build the BFS broadcast tree rooted at `s`.
pub fn broadcast_tree(gc: &GaussianCube, s: NodeId) -> Result<BroadcastTree, RoutingError> {
    if !gc.contains(s) {
        return Err(RoutingError::OutOfRange(s));
    }
    let n = gc.num_nodes() as usize;
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut depth = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    depth[s.0 as usize] = 0;
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        for c in gc.link_dims(u) {
            let v = u.flip(c);
            if depth[v.0 as usize] == u32::MAX {
                depth[v.0 as usize] = depth[u.0 as usize] + 1;
                parent[v.0 as usize] = Some(u);
                queue.push_back(v);
            }
        }
    }
    debug_assert!(
        depth.iter().all(|&d| d != u32::MAX),
        "a healthy GC is connected"
    );
    Ok(BroadcastTree {
        root: s,
        parent,
        depth,
    })
}

/// A single-port broadcast schedule: in each round, every *informed* node
/// may inform at most one uninformed neighbour, and every link carries at
/// most one message. Returns the rounds, each a list of `(from, to)`
/// forwarding pairs.
///
/// Greedy construction on the BFS tree: parents forward to their children
/// in subtree-size order (largest first), which is the classic optimal
/// policy on trees.
pub fn binomial_broadcast_schedule(
    gc: &GaussianCube,
    s: NodeId,
) -> Result<Vec<Vec<(NodeId, NodeId)>>, RoutingError> {
    let tree = broadcast_tree(gc, s)?;
    let children = tree.children();
    // Subtree sizes by reverse-BFS accumulation.
    let n = gc.num_nodes() as usize;
    let mut order: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    order.sort_unstable_by_key(|v| std::cmp::Reverse(tree.depth[v.0 as usize]));
    let mut size = vec![1u64; n];
    for &v in &order {
        if let Some(p) = tree.parent[v.0 as usize] {
            size[p.0 as usize] += size[v.0 as usize];
        }
    }
    // Each node keeps a cursor over its children sorted by subtree size.
    let mut pending: HashMap<NodeId, Vec<NodeId>> = children
        .iter()
        .map(|(p, ch)| {
            let mut sorted = ch.clone();
            sorted.sort_unstable_by_key(|c| std::cmp::Reverse(size[c.0 as usize]));
            (*p, sorted)
        })
        .collect();
    let mut informed: HashSet<NodeId> = [s].into_iter().collect();
    let mut rounds = Vec::new();
    while informed.len() < n {
        let mut round = Vec::new();
        let mut newly = Vec::new();
        let mut speakers: Vec<NodeId> = informed.iter().copied().collect();
        speakers.sort_unstable();
        for u in speakers {
            if let Some(list) = pending.get_mut(&u) {
                if let Some(v) = list.first().copied() {
                    list.remove(0);
                    round.push((u, v));
                    newly.push(v);
                }
            }
        }
        assert!(!round.is_empty(), "schedule must make progress every round");
        informed.extend(newly);
        rounds.push(round);
    }
    Ok(rounds)
}

/// A gather schedule on the broadcast tree: the reverse of the broadcast —
/// in each round a node may forward its (aggregated) value to its parent
/// once all of its children have reported. Returns rounds of `(from, to)`
/// pairs; the number of rounds is the tree's "gather latency" with
/// single-port aggregation.
pub fn gather_schedule(
    gc: &GaussianCube,
    root: NodeId,
) -> Result<Vec<Vec<(NodeId, NodeId)>>, RoutingError> {
    let tree = broadcast_tree(gc, root)?;
    let children = tree.children();
    let n = gc.num_nodes() as usize;
    // Bottom-up (descending depth): when a node is processed, every child's
    // send round is already fixed, so we can serialise receptions at the
    // parent's single port and derive the node's own readiness.
    let mut order: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    order.sort_unstable_by_key(|v| std::cmp::Reverse(tree.depth[v.0 as usize]));
    let mut ready = vec![0u32; n]; // first round v may send (all children in)
    let mut send_round: Vec<Option<u32>> = vec![None; n];
    for &v in &order {
        if let Some(ch) = children.get(&v) {
            // Serialise children into v's port: each child c sends at a
            // distinct round ≥ ready[c]; schedule in ascending readiness.
            let mut by_ready: Vec<NodeId> = ch.clone();
            by_ready.sort_unstable_by_key(|c| (ready[c.0 as usize], c.0));
            let mut cur = 0u32;
            for c in by_ready {
                let r = ready[c.0 as usize].max(cur);
                send_round[c.0 as usize] = Some(r);
                cur = r + 1;
            }
            ready[v.0 as usize] = cur;
        }
        // Leaves keep ready = 0.
    }
    // Materialise the rounds.
    let max_round = send_round.iter().flatten().copied().max().unwrap_or(0);
    let mut rounds: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); max_round as usize + 1];
    for (v, r) in send_round.iter().enumerate() {
        if let Some(r) = r {
            let p = tree.parent[v].expect("only the root never sends");
            rounds[*r as usize].push((NodeId(v as u64), p));
        }
    }
    Ok(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_topology::{search, NoFaults};

    #[test]
    fn multicast_visits_everything() {
        let gc = GaussianCube::new(8, 4).unwrap();
        let dests: BTreeSet<NodeId> = [3u64, 77, 200, 255, 128].into_iter().map(NodeId).collect();
        let walk = multicast_walk(&gc, NodeId(0), &dests).unwrap();
        walk.validate(&gc, &NoFaults).unwrap();
        let visited: HashSet<NodeId> = walk.nodes().iter().copied().collect();
        for d in &dests {
            assert!(visited.contains(d));
        }
        // Never worse than independent unicasts, never better than the
        // farthest destination.
        let indep = independent_unicast_cost(&gc, NodeId(0), &dests);
        assert!(walk.hops() as u64 <= indep);
        let farthest = dests
            .iter()
            .map(|&d| search::distance(&gc, NodeId(0), d, &NoFaults).unwrap())
            .max()
            .unwrap();
        assert!(walk.hops() as u32 >= farthest);
    }

    #[test]
    fn multicast_trivial_cases() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let empty = BTreeSet::new();
        assert_eq!(multicast_walk(&gc, NodeId(5), &empty).unwrap().hops(), 0);
        let only_self: BTreeSet<_> = [NodeId(5)].into_iter().collect();
        assert_eq!(
            multicast_walk(&gc, NodeId(5), &only_self).unwrap().hops(),
            0
        );
        let one: BTreeSet<_> = [NodeId(9)].into_iter().collect();
        let w = multicast_walk(&gc, NodeId(5), &one).unwrap();
        assert_eq!(
            w.hops() as u32,
            search::distance(&gc, NodeId(5), NodeId(9), &NoFaults).unwrap()
        );
    }

    #[test]
    fn multicast_saves_over_unicasts() {
        // Clustered destinations share long prefixes of their routes: the
        // greedy chain must beat independent unicasts strictly.
        let gc = GaussianCube::new(10, 2).unwrap();
        let dests: BTreeSet<NodeId> = [1000u64, 1001, 1003, 1007, 960]
            .into_iter()
            .map(NodeId)
            .collect();
        let walk = multicast_walk(&gc, NodeId(0), &dests).unwrap();
        let indep = independent_unicast_cost(&gc, NodeId(0), &dests);
        assert!(
            (walk.hops() as u64) < indep,
            "chained multicast ({}) should beat {indep} independent hops",
            walk.hops()
        );
    }

    #[test]
    fn broadcast_tree_spans_with_optimal_depth() {
        for (n, m) in [(7u32, 2u64), (8, 4), (6, 8)] {
            let gc = GaussianCube::new(n, m).unwrap();
            let t = broadcast_tree(&gc, NodeId(1)).unwrap();
            t.validate(&gc).unwrap();
            assert_eq!(
                t.parent.iter().filter(|p| p.is_none()).count(),
                1,
                "only the root"
            );
            let ecc = search::eccentricity(&gc, NodeId(1), &NoFaults).unwrap();
            assert_eq!(t.max_depth(), ecc, "BFS tree depth = eccentricity");
            // Every non-root node's parent is strictly shallower.
            for v in 1..gc.num_nodes() {
                let v = NodeId(v);
                if v == NodeId(1) {
                    continue;
                }
                let p = t.parent[v.0 as usize].unwrap();
                assert_eq!(t.depth[v.0 as usize], t.depth[p.0 as usize] + 1);
            }
        }
    }

    #[test]
    fn binomial_schedule_informs_everyone_once() {
        let gc = GaussianCube::new(7, 2).unwrap();
        let rounds = binomial_broadcast_schedule(&gc, NodeId(0)).unwrap();
        let mut informed: HashSet<NodeId> = [NodeId(0)].into_iter().collect();
        for round in &rounds {
            let mut this_round_senders = HashSet::new();
            for &(from, to) in round {
                assert!(informed.contains(&from), "sender must already know");
                assert!(!informed.contains(&to), "receiver must be new");
                assert!(
                    this_round_senders.insert(from),
                    "single-port: one send per round"
                );
                let dims = from.differing_dims(to);
                assert_eq!(dims.len(), 1);
                assert!(gc.has_link(from, dims[0]));
                informed.insert(to);
            }
        }
        assert_eq!(informed.len() as u64, gc.num_nodes());
        // Single-port lower bound: ceil(log2(N)) rounds.
        assert!(rounds.len() as u32 >= 7);
        // And the schedule shouldn't be catastrophically deep.
        let depth = broadcast_tree(&gc, NodeId(0)).unwrap().max_depth();
        assert!(
            rounds.len() as u32 <= depth + 8,
            "rounds {} depth {depth}",
            rounds.len()
        );
    }

    #[test]
    fn gather_schedule_respects_dependencies() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let root = NodeId(0);
        let rounds = gather_schedule(&gc, root).unwrap();
        let tree = broadcast_tree(&gc, root).unwrap();
        let mut sent: HashSet<NodeId> = HashSet::new();
        let children = tree.children();
        for (r, round) in rounds.iter().enumerate() {
            let mut receivers = HashSet::new();
            for &(from, to) in round {
                assert_eq!(tree.parent[from.0 as usize], Some(to), "sends to parent");
                assert!(receivers.insert(to), "single-port reception at round {r}");
                // All of `from`'s children must have reported already.
                if let Some(ch) = children.get(&from) {
                    for c in ch {
                        assert!(sent.contains(c), "{from} sent before child {c}");
                    }
                }
                sent.insert(from);
            }
        }
        // Everyone except the root reports exactly once.
        assert_eq!(sent.len() as u64, gc.num_nodes() - 1);
        assert!(!sent.contains(&root));
    }

    #[test]
    fn out_of_range_rejected() {
        let gc = GaussianCube::new(5, 2).unwrap();
        assert!(broadcast_tree(&gc, NodeId(99)).is_err());
        let bad: BTreeSet<_> = [NodeId(99)].into_iter().collect();
        assert!(multicast_walk(&gc, NodeId(0), &bad).is_err());
    }
}
