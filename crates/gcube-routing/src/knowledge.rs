//! Distributed fault-status exchange (paper §1, claims 4–5; §6 assumption 4).
//!
//! The paper asserts each node needs *"at most `⌈n/2^α⌉ + 1` rounds of fault
//! status exchange with its neighbors"* and stores *"at most F n-bit node
//! addresses, where F is the number of faults related to nodes whose least
//! significant α bits are the same as the current node"*.
//!
//! This module simulates that protocol synchronously: each healthy node
//! starts knowing only its incident status (which of its links are dead,
//! which neighbours are silent) and repeatedly exchanges its fault list
//! with its healthy neighbours **inside its own `GEEC` subcube** (the links
//! in dimensions `Dim(α, k)`). Flooding a `|Dim|`-dimensional hypercube
//! takes `|Dim| = ⌈n/2^α⌉`-ish rounds, matching the paper's bound — which
//! the tests verify, along with the storage bound.

use std::collections::{HashMap, HashSet};

use gcube_topology::classes::dims;
use gcube_topology::{GaussianCube, LinkId, NodeId, Topology};

use crate::faults::FaultSet;

/// One fault as propagated by the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultItem {
    /// A faulty node (a "silent" neighbour).
    Node(NodeId),
    /// A faulty link with healthy endpoints.
    Link(LinkId),
}

/// The converged knowledge of every healthy node, plus protocol accounting.
#[derive(Clone, Debug)]
pub struct KnowledgeMap {
    known: HashMap<NodeId, HashSet<FaultItem>>,
    rounds: u32,
}

impl KnowledgeMap {
    /// Rounds of neighbour exchange until no node learned anything new.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The fault items `node` ended up knowing (empty set for faulty nodes,
    /// which do not participate).
    pub fn known_by(&self, node: NodeId) -> &HashSet<FaultItem> {
        static EMPTY: std::sync::OnceLock<HashSet<FaultItem>> = std::sync::OnceLock::new();
        self.known
            .get(&node)
            .unwrap_or_else(|| EMPTY.get_or_init(HashSet::new))
    }

    /// Whether `node` knows about this fault item.
    pub fn knows(&self, node: NodeId, item: FaultItem) -> bool {
        self.known_by(node).contains(&item)
    }

    /// The largest fault list any node stores (paper claim 5's `F`).
    pub fn max_storage(&self) -> usize {
        self.known.values().map(HashSet::len).max().unwrap_or(0)
    }
}

/// Locally observable faults at `v`: dead incident links and silent
/// neighbours, over *all* of `v`'s dimensions.
fn local_observation(gc: &GaussianCube, faults: &FaultSet, v: NodeId) -> HashSet<FaultItem> {
    let mut out = HashSet::new();
    for c in gc.link_dims(v) {
        let u = v.flip(c);
        if faults.is_node_faulty(u) {
            out.insert(FaultItem::Node(u));
        } else if faults.is_link_faulty(LinkId::new(v, c)) {
            out.insert(FaultItem::Link(LinkId::new(v, c)));
        }
    }
    out
}

/// Run the synchronous exchange protocol to convergence.
///
/// Messages travel only over healthy links in the node's subcube dimensions
/// `Dim(α, k)` — the channel set the paper's bound is stated for. Returns
/// every node's converged knowledge and the number of rounds taken.
pub fn exchange_rounds(gc: &GaussianCube, faults: &FaultSet) -> KnowledgeMap {
    let n = gc.num_nodes();
    let alpha = gc.alpha();
    let mut known: HashMap<NodeId, HashSet<FaultItem>> = HashMap::new();
    for v in 0..n {
        let v = NodeId(v);
        if !faults.is_node_faulty(v) {
            known.insert(v, local_observation(gc, faults, v));
        }
    }
    let mut rounds = 0;
    loop {
        let mut next = known.clone();
        let mut changed = false;
        for v in 0..n {
            let v = NodeId(v);
            if faults.is_node_faulty(v) {
                continue;
            }
            let k = gc.ending_class(v);
            for c in dims(gc.n(), alpha, k) {
                let u = v.flip(c);
                if faults.is_node_faulty(u) || faults.is_link_faulty(LinkId::new(v, c)) {
                    continue; // the channel itself is down
                }
                // v receives u's current list.
                let incoming: Vec<FaultItem> = known[&u].iter().copied().collect();
                let mine = next.get_mut(&v).expect("healthy node present");
                for item in incoming {
                    changed |= mine.insert(item);
                }
            }
        }
        if !changed {
            break;
        }
        known = next;
        rounds += 1;
    }
    KnowledgeMap { known, rounds }
}

/// Faults "related to" ending class `k` (paper claim 5): faulty nodes of
/// class `k`, plus faulty links with an endpoint in class `k`.
pub fn class_related_faults(gc: &GaussianCube, faults: &FaultSet, k: u64) -> usize {
    let mut count = 0;
    for v in faults.faulty_nodes() {
        if gc.ending_class(v) == k {
            count += 1;
        }
    }
    for l in faults.faulty_links() {
        let (a, b) = l.endpoints();
        if faults.is_node_faulty(a) || faults.is_node_faulty(b) {
            continue;
        }
        if gc.ending_class(a) == k || gc.ending_class(b) == k {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_topology::classes::{dim_count, subcube_pos};

    fn gc() -> GaussianCube {
        GaussianCube::new(10, 4).unwrap()
    }

    #[test]
    fn no_faults_converges_immediately() {
        let g = gc();
        let km = exchange_rounds(&g, &FaultSet::new());
        assert_eq!(km.rounds(), 0);
        assert_eq!(km.max_storage(), 0);
    }

    #[test]
    fn rounds_bounded_by_paper_claim() {
        // Claim 4: at most ⌈n/2^α⌉ + 1 rounds. Flooding a GEEC of dimension
        // |Dim(α,k)| ≤ ⌈n/2^α⌉ converges within its diameter.
        let g = gc();
        let bound = (0..(1u64 << g.alpha()))
            .map(|k| dim_count(g.n(), g.alpha(), k))
            .max()
            .unwrap()
            + 1;
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(0b10), 2));
        f.add_node(NodeId(0b0110));
        f.add_link(LinkId::new(NodeId(0b11), 3));
        let km = exchange_rounds(&g, &f);
        assert!(
            km.rounds() <= bound,
            "rounds {} exceed the paper bound {bound}",
            km.rounds()
        );
    }

    #[test]
    fn every_geec_member_learns_its_subcube_faults() {
        // An A-category fault becomes known to every healthy member of its
        // GEEC (the knowledge FTGCR's flip stages rely on).
        let g = gc();
        let mut f = FaultSet::new();
        let fault_link = LinkId::new(NodeId(0b10), 2); // class 2, dims {2,6}
        f.add_link(fault_link);
        let km = exchange_rounds(&g, &f);
        let pos = subcube_pos(&g, NodeId(0b10));
        for coord in 0..4u64 {
            let member = gcube_topology::classes::node_at(
                &g,
                gcube_topology::classes::SubcubePos {
                    k: pos.k,
                    t: pos.t,
                    coord,
                },
            );
            assert!(
                km.knows(member, FaultItem::Link(fault_link)),
                "member {member} should know the fault"
            );
        }
    }

    #[test]
    fn faulty_nodes_do_not_participate() {
        let g = gc();
        let mut f = FaultSet::new();
        f.add_node(NodeId(42));
        let km = exchange_rounds(&g, &f);
        assert!(km.known_by(NodeId(42)).is_empty());
        // Its subcube neighbours observe it as silent.
        let dims_of = dims(g.n(), g.alpha(), g.ending_class(NodeId(42)));
        for &c in &dims_of {
            let nb = NodeId(42).flip(c);
            assert!(km.knows(nb, FaultItem::Node(NodeId(42))));
        }
    }

    #[test]
    fn storage_is_bounded_by_related_faults_plus_adjacent() {
        // Claim 5, operationalised: a node's list only ever contains faults
        // observable inside its own GEEC or incident to itself — bounded by
        // the faults related to its class plus its own degree.
        let g = gc();
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(0b10), 2));
        f.add_link(LinkId::new(NodeId(0b10), 6));
        f.add_node(NodeId(0b1010));
        let km = exchange_rounds(&g, &f);
        for v in 0..g.num_nodes() {
            let v = NodeId(v);
            if f.is_node_faulty(v) {
                continue;
            }
            let k = g.ending_class(v);
            let related = class_related_faults(&g, &f, k);
            assert!(
                km.known_by(v).len() <= related + g.degree(v) as usize,
                "node {v} stores {} items, related {} + degree {}",
                km.known_by(v).len(),
                related,
                g.degree(v)
            );
        }
    }

    #[test]
    fn class_related_fault_counting() {
        let g = gc();
        let mut f = FaultSet::new();
        f.add_node(NodeId(0b0110)); // class 2
        f.add_link(LinkId::new(NodeId(0b10), 6)); // both endpoints class 2, healthy
        f.add_link(LinkId::new(NodeId(0b01), 0)); // classes 1 and 0
        assert_eq!(class_related_faults(&g, &f, 2), 2);
        assert_eq!(class_related_faults(&g, &f, 1), 1);
        assert_eq!(class_related_faults(&g, &f, 0), 1);
        assert_eq!(class_related_faults(&g, &f, 3), 0);
    }
}
