//! Algorithm 4 — Fault-tolerant Routing in the Exchanged Hypercube (FREH),
//! generalised to any *exchanged crossing* embedded in a host topology.
//!
//! An exchanged crossing is: two families of cubes — side 0 flips the
//! physical dimensions `dims0`, side 1 flips `dims1` — joined by exchange
//! links in `cross_dim` at *every* column. `EH(s,t)` itself is the crossing
//! with `dims0 = a`-part, `dims1 = b`-part, `cross_dim = 0`; and in
//! `GC(n, 2^α)` the neighbourhood of a Gaussian-tree edge `(p, q)` is the
//! crossing with `dims0/1 = Dim(p)/Dim(q)` and `cross_dim = c₀ < α`
//! (paper §5) — which is how the full strategy consumes this module.
//!
//! The routing loop mirrors Algorithm 4's cases:
//! * fix the own-side coordinates with adaptive fault-tolerant cube routing;
//! * cross at the direct column if its exchange link is healthy, otherwise
//!   at the nearest usable column (the paper's "nonfaulty neighbour whose
//!   0-dimension link is also nonfaulty"), *masking* failed columns so they
//!   are never retried — the livelock-freedom device;
//! * perturbed coordinates are restored by bouncing back after the other
//!   side's progress (Theorem 4's "fro and pro", +2 hops per fault).
//!
//! A masked-BFS fallback over the whole (small) block guarantees delivery
//! whenever source and destination remain connected, even beyond the
//! theorem's preconditions; [`CrossingStats::bfs_fallback`] records when it
//! fired (never, under the preconditions — asserted by tests).

use std::collections::{HashMap, HashSet, VecDeque};

use gcube_topology::{ExchangedHypercube, LinkId, LinkMask, NodeId, Topology};

use crate::faults::FaultSet;
use crate::hypercube_ft::{route_adaptive, to_host_path, VirtualCube};
use crate::route::{Route, RoutingError};

/// Outcome statistics of a crossing route.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrossingStats {
    /// Exchange-link traversals.
    pub crossings: u32,
    /// Crossing columns that had to be abandoned (masked) due to faults.
    pub masked_columns: u32,
    /// Whether the whole-block BFS fallback was needed.
    pub bfs_fallback: bool,
}

/// Pack the bits of `node` at `dims` into a compact value (ascending).
fn proj(node: NodeId, dims: &[u32]) -> u64 {
    let mut v = 0u64;
    for (i, &d) in dims.iter().enumerate() {
        if node.bit(d) {
            v |= 1 << i;
        }
    }
    v
}

/// Overwrite the bits of `node` at `dims` with the packed `value`.
fn inject(node: NodeId, dims: &[u32], value: u64) -> NodeId {
    let mut v = node.0;
    for (i, &d) in dims.iter().enumerate() {
        if (value >> i) & 1 == 1 {
            v |= 1u64 << d;
        } else {
            v &= !(1u64 << d);
        }
    }
    NodeId(v)
}

/// Whether the exchange hop from `node` is usable under the mask.
fn cross_ok<M: LinkMask + ?Sized>(mask: &M, node: NodeId, cross_dim: u32) -> bool {
    mask.link_ok(LinkId::new(node, cross_dim)) && mask.node_ok(node.flip(cross_dim))
}

/// Route across an exchanged crossing from `r` to `d`.
///
/// `r` and `d` must both lie in the block (agree outside
/// `dims0 ∪ dims1 ∪ {cross_dim}`); every block node must own its `cross_dim`
/// link and its own-side cube links in the host (guaranteed for `EH` and for
/// GC tree-edge neighbourhoods).
///
/// Returns the host node path and stats, or `None` when `d` is unreachable
/// from `r` inside the block.
#[allow(clippy::too_many_arguments)] // the crossing is genuinely 8-dimensional
pub fn route_crossing<T, M>(
    host: &T,
    mask: &M,
    dims0: &[u32],
    dims1: &[u32],
    cross_dim: u32,
    r: NodeId,
    d: NodeId,
    budget: usize,
) -> Option<(Vec<NodeId>, CrossingStats)>
where
    T: Topology + ?Sized,
    M: LinkMask + ?Sized,
{
    #[cfg(debug_assertions)]
    {
        let clear = |x: NodeId| {
            let mut v = x.0;
            for &dim in dims0.iter().chain(dims1).chain(std::iter::once(&cross_dim)) {
                v &= !(1u64 << dim);
            }
            v
        };
        debug_assert_eq!(
            clear(r),
            clear(d),
            "r and d must lie in the same crossing block"
        );
    }
    if !mask.node_ok(r) || !mask.node_ok(d) {
        return None;
    }
    let mut stats = CrossingStats::default();
    let mut path = vec![r];
    let mut cur = r;
    let mut masked: HashSet<NodeId> = HashSet::new();
    let mut landings: HashSet<NodeId> = HashSet::new();
    let dims_of = |side: bool| if side { dims1 } else { dims0 };
    while cur != d && path.len() <= budget {
        let sd = cur.bit(cross_dim);
        let own = dims_of(sd);
        let other = dims_of(!sd);
        // Finish on this side when only own-side coordinates remain.
        if sd == d.bit(cross_dim) && proj(cur, other) == proj(d, other) {
            let vc = VirtualCube::from_host(host, mask, cur, own);
            if let Some((coords, _)) = route_adaptive(&vc, vc.coord(cur), vc.coord(d)) {
                let seg = to_host_path(&vc, &coords);
                path.extend_from_slice(&seg[1..]);
                cur = d;
                break;
            }
            // d is cut off inside this cube: reroute via the other side
            // (a crossing pair moves us to a different own-side cube).
        }
        // A crossing is required. Aim for the column whose own-side
        // coordinates already match the destination's — crossing there
        // leaves no residue to restore — but settle for the usable column
        // closest to that ideal (paper: "a nonfaulty neighbour whose
        // 0-dimension link is also nonfaulty").
        let vc = VirtualCube::from_host(host, mask, cur, own);
        let ideal = inject(cur, own, proj(d, own));
        if !cross_ok(mask, cur, cross_dim) && masked.insert(cur) {
            stats.masked_columns += 1;
        }
        let Some(w) = best_usable_column(
            mask, &vc, cur, ideal, other, d, cross_dim, &masked, &landings,
        ) else {
            break; // no usable column on this side: fallback
        };
        if w != cur {
            let Some((coords, _)) = route_adaptive(&vc, vc.coord(cur), vc.coord(w)) else {
                // Column unreachable inside the cube: never consider it
                // again and retry.
                masked.insert(w);
                continue;
            };
            let seg = to_host_path(&vc, &coords);
            path.extend_from_slice(&seg[1..]);
            cur = w;
        }
        cur = cur.flip(cross_dim);
        path.push(cur);
        stats.crossings += 1;
        if !landings.insert(cur) {
            break; // revisited a landing: no progress, use the fallback
        }
    }
    if cur == d {
        return Some((path, stats));
    }
    // Fallback: masked BFS over the entire block (complete).
    stats.bfs_fallback = true;
    let tail = block_bfs(host, mask, dims0, dims1, cross_dim, cur, d)?;
    path.extend_from_slice(&tail[1..]);
    Some((path, stats))
}

/// Choose the crossing column: a healthy own-cube node with a usable,
/// unmasked exchange link. Preference order:
///
/// 1. columns whose landing's *target corner* on the other side (other-side
///    coordinates set to the destination's) is healthy — crossing into a
///    cube whose exit corner is faulty is a likely dead end;
/// 2. columns whose landing has not been visited before (anti-ping-pong);
/// 3. closest to `ideal` (minimal residue to restore), then to `cur`, then
///    lowest coordinate (determinism).
#[allow(clippy::too_many_arguments)]
fn best_usable_column<M: LinkMask + ?Sized>(
    mask: &M,
    vc: &VirtualCube,
    cur: NodeId,
    ideal: NodeId,
    other_dims: &[u32],
    d: NodeId,
    cross_dim: u32,
    masked: &HashSet<NodeId>,
    landings: &HashSet<NodeId>,
) -> Option<NodeId> {
    /// Selection key: (exit corner bad, landing seen, dist-to-ideal,
    /// dist-to-cur, coordinate).
    type ColumnKey = (u32, u32, u32, u32, u64);
    let start = vc.coord(cur);
    let goal = vc.coord(ideal);
    let other_goal = proj(d, other_dims);
    let mut best: Option<(ColumnKey, u64)> = None;
    for coord in 0..vc.size() as u64 {
        if vc.is_node_faulty(coord) {
            continue;
        }
        let node = vc.node(coord);
        if masked.contains(&node) || !cross_ok(mask, node, cross_dim) {
            continue;
        }
        let landing = node.flip(cross_dim);
        let exit_corner = inject(landing, other_dims, other_goal);
        // After crossing here and fixing the other side's coordinates, the
        // packet sits at `exit_corner`. It must cross back if the
        // destination is on *this* side, or if this column leaves own-side
        // residue to restore — in either case the exit corner needs a
        // usable exchange link, not just a healthy node.
        let residue = coord != goal;
        let needs_back = d.bit(cross_dim) == cur.bit(cross_dim) || residue;
        let exit_bad = !mask.node_ok(exit_corner)
            || (needs_back && exit_corner != d && !cross_ok(mask, exit_corner, cross_dim));
        let key = (
            u32::from(exit_bad),
            u32::from(landings.contains(&landing)),
            (coord ^ goal).count_ones(),
            (coord ^ start).count_ones(),
            coord,
        );
        if best.is_none_or(|(bk, _)| key < bk) {
            best = Some((key, coord));
        }
    }
    best.map(|(_, coord)| vc.node(coord))
}

/// Masked BFS over the crossing block: complete shortest-path search over
/// the (small) union of both cube families plus exchange links.
fn block_bfs<T, M>(
    host: &T,
    mask: &M,
    dims0: &[u32],
    dims1: &[u32],
    cross_dim: u32,
    s: NodeId,
    d: NodeId,
) -> Option<Vec<NodeId>>
where
    T: Topology + ?Sized,
    M: LinkMask + ?Sized,
{
    if !mask.node_ok(s) || !mask.node_ok(d) {
        return None;
    }
    let moves = |x: NodeId| -> Vec<NodeId> {
        let own: &[u32] = if x.bit(cross_dim) { dims1 } else { dims0 };
        let mut out = Vec::with_capacity(own.len() + 1);
        for &dim in own.iter().chain(std::iter::once(&cross_dim)) {
            debug_assert!(
                host.has_link(x, dim),
                "block structure must provide the link"
            );
            if mask.link_ok(LinkId::new(x, dim)) && mask.node_ok(x.flip(dim)) {
                out.push(x.flip(dim));
            }
        }
        out
    };
    let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
    let mut queue = VecDeque::new();
    prev.insert(s, s);
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        if u == d {
            let mut rev = vec![d];
            let mut cur = d;
            while cur != s {
                cur = prev[&cur];
                rev.push(cur);
            }
            rev.reverse();
            return Some(rev);
        }
        for v in moves(u) {
            prev.entry(v).or_insert_with(|| {
                queue.push_back(v);
                u
            });
        }
    }
    None
}

/// FREH proper: fault-tolerant routing in `EH(s, t)` (Theorem 4).
///
/// Delivers from any healthy `r` to any healthy `d` whenever the fault
/// distribution keeps them connected; under the theorem's preconditions
/// (`F_s + F' < s`, `F_t + F' < t`) the route length is bounded by
/// `H(r,d) + 2(F_s + F_t + F') + 2` — asserted by the tests.
pub fn route(
    eh: &ExchangedHypercube,
    faults: &FaultSet,
    r: NodeId,
    d: NodeId,
) -> Result<(Route, CrossingStats), RoutingError> {
    if !eh.contains(r) || !eh.contains(d) {
        return Err(RoutingError::OutOfRange(if eh.contains(r) { d } else { r }));
    }
    if faults.is_node_faulty(r) {
        return Err(RoutingError::SourceFaulty(r));
    }
    if faults.is_node_faulty(d) {
        return Err(RoutingError::DestFaulty(d));
    }
    let a_dims: Vec<u32> = (eh.t() + 1..=eh.s() + eh.t()).collect();
    let b_dims: Vec<u32> = (1..=eh.t()).collect();
    let budget = (eh.dist(r, d) as usize + 2 * faults.len() + 4) * 4 + 16;
    match route_crossing(eh, faults, &a_dims, &b_dims, 0, r, d, budget) {
        Some((nodes, stats)) => Ok((Route::new(nodes), stats)),
        None => Err(RoutingError::Unreachable { from: r, to: d }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_topology::search;

    fn eh(s: u32, t: u32) -> ExchangedHypercube {
        ExchangedHypercube::new(s, t).unwrap()
    }

    #[test]
    fn fault_free_routes_are_optimal() {
        for (s, t) in [(2u32, 2u32), (3, 2), (2, 3)] {
            let e = eh(s, t);
            let f = FaultSet::new();
            for r in 0..e.num_nodes() {
                for d in 0..e.num_nodes() {
                    let (route, stats) = route(&e, &f, NodeId(r), NodeId(d)).unwrap();
                    route.validate(&e, &f).unwrap();
                    assert_eq!(route.source(), NodeId(r));
                    assert_eq!(route.dest(), NodeId(d));
                    assert_eq!(
                        route.hops() as u32,
                        e.dist(NodeId(r), NodeId(d)),
                        "suboptimal fault-free FREH {r}->{d} in EH({s},{t})"
                    );
                    assert!(!stats.bfs_fallback);
                }
            }
        }
    }

    /// Deterministic xorshift for reproducible fault sampling.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    /// Count F_s, F_t, F' for the theorem-4 precondition.
    fn precondition_holds(e: &ExchangedHypercube, f: &FaultSet) -> bool {
        let mut fs = 0usize;
        let mut ft = 0usize;
        let mut fx = 0usize;
        for n in f.faulty_nodes() {
            if e.class_bit(n) {
                ft += 1;
            } else {
                fs += 1;
            }
        }
        for l in f.faulty_links() {
            let (a, b) = l.endpoints();
            if f.is_node_faulty(a) || f.is_node_faulty(b) {
                continue;
            }
            if l.dim == 0 {
                fx += 1;
            } else if e.class_bit(a) {
                ft += 1;
            } else {
                fs += 1;
            }
        }
        (fs + fx) < e.s() as usize && (ft + fx) < e.t() as usize
    }

    #[test]
    fn theorem4_delivery_and_hop_bound() {
        // Random fault sets; whenever the Theorem-4 precondition holds, FREH
        // must deliver every healthy pair within
        //   max(H + 2F + 2, dist_masked + 2F + 2)
        // hops. The first term is the paper's bound; the max with the
        // *masked* BFS distance is needed because the paper's bound is
        // refuted by a concrete counterexample (recorded in
        // `theorem4_paper_bound_counterexample` below): a faulty exchange
        // link between partner nodes forces a 6-hop detour the bound does
        // not account for.
        let mut rng = Rng(0x9e3779b97f4a7c15);
        for (s, t) in [(3u32, 3u32), (3, 2), (2, 3)] {
            let e = eh(s, t);
            let mut tested = 0;
            let mut fallbacks = 0usize;
            let mut routed = 0usize;
            for _trial in 0..150 {
                let mut f = FaultSet::new();
                for _ in 0..(rng.next() % 3) {
                    let v = NodeId(rng.next() % e.num_nodes());
                    f.add_node(v);
                }
                for _ in 0..(rng.next() % 3) {
                    let v = NodeId(rng.next() % e.num_nodes());
                    let dims = e.link_dims(v);
                    let dim = dims[(rng.next() % dims.len() as u64) as usize];
                    f.add_link(LinkId::new(v, dim));
                }
                if !precondition_holds(&e, &f) {
                    continue;
                }
                tested += 1;
                let total_faults = f.len();
                // Sample pairs (coprime strides cover all residues across
                // trials) — the full cross product times 400 trials is
                // needlessly slow in debug builds.
                for r in (0..e.num_nodes()).step_by(3) {
                    if f.is_node_faulty(NodeId(r)) {
                        continue;
                    }
                    for d in (1..e.num_nodes()).step_by(5) {
                        if f.is_node_faulty(NodeId(d)) {
                            continue;
                        }
                        let (route, stats) =
                            route(&e, &f, NodeId(r), NodeId(d)).unwrap_or_else(|err| {
                                panic!("EH({s},{t}) {r}->{d} failed: {err} faults={f:?}")
                            });
                        route.validate(&e, &f).unwrap();
                        routed += 1;
                        fallbacks += usize::from(stats.bfs_fallback);
                        let h = e.dist(NodeId(r), NodeId(d)) as usize;
                        let dist_masked = search::distance(&e, NodeId(r), NodeId(d), &f)
                            .expect("precondition keeps healthy pairs connected")
                            as usize;
                        let bound =
                            (h + 2 * total_faults + 2).max(dist_masked + 2 * total_faults + 2);
                        assert!(
                            route.hops() <= bound,
                            "hop bound violated: {r}->{d} hops={} H={h} opt={dist_masked} \
                             F={total_faults} faults={f:?}",
                            route.hops(),
                        );
                    }
                }
            }
            assert!(
                tested > 10,
                "sampler produced too few precondition-satisfying sets"
            );
            // The block-BFS fallback is a rare escape hatch, not the common
            // path.
            assert!(
                fallbacks * 100 <= routed,
                "fallback fired on {fallbacks}/{routed} routes (> 1%)"
            );
        }
    }

    #[test]
    fn theorem4_paper_bound_counterexample() {
        // Measured counterexample to the paper's Theorem-4 hop bound
        // (recorded in EXPERIMENTS.md): EH(3,3) with the single exchange
        // link (34 <-> 35) faulty. F_s = F_t = 0, F' = 1, so the paper's
        // bound says H + 2·0 + 2 = 3 hops for r = 34, d = 35 — but the true
        // shortest healthy route is 7 hops (the packet must relocate its
        // a-coordinate, exchange, fix b, exchange back, restore a, exchange
        // again, restore b). Our router finds exactly that optimum.
        let e = eh(3, 3);
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(34), 0));
        let (route, _) = route(&e, &f, NodeId(34), NodeId(35)).unwrap();
        route.validate(&e, &f).unwrap();
        let optimal = search::distance(&e, NodeId(34), NodeId(35), &f).unwrap();
        assert_eq!(
            optimal, 7,
            "the true masked distance refutes the paper bound"
        );
        assert_eq!(route.hops(), 7, "FREH finds the optimum here");
        assert_eq!(e.dist(NodeId(34), NodeId(35)), 1);
    }

    #[test]
    fn delivers_beyond_preconditions_when_connected() {
        // Saturate one side's faults beyond the theorem; FREH must still
        // deliver any pair that BFS says is connected (fallback allowed).
        let e = eh(2, 2);
        let mut f = FaultSet::new();
        f.add_link(LinkId::new(NodeId(0b00000), 0));
        f.add_link(LinkId::new(NodeId(0b00100), 0));
        f.add_link(LinkId::new(NodeId(0b01000), 0));
        f.add_node(NodeId(0b10000));
        for r in 0..e.num_nodes() {
            if f.is_node_faulty(NodeId(r)) {
                continue;
            }
            for d in 0..e.num_nodes() {
                if f.is_node_faulty(NodeId(d)) {
                    continue;
                }
                let reachable = search::distance(&e, NodeId(r), NodeId(d), &f).is_some();
                match route(&e, &f, NodeId(r), NodeId(d)) {
                    Ok((rt, _)) => {
                        assert!(reachable);
                        rt.validate(&e, &f).unwrap();
                    }
                    Err(_) => assert!(!reachable, "{r}->{d} reachable but FREH failed"),
                }
            }
        }
    }

    #[test]
    fn rejects_faulty_endpoints() {
        let e = eh(2, 2);
        let mut f = FaultSet::new();
        f.add_node(NodeId(1));
        assert!(matches!(
            route(&e, &f, NodeId(1), NodeId(0)),
            Err(RoutingError::SourceFaulty(_))
        ));
        assert!(matches!(
            route(&e, &f, NodeId(0), NodeId(1)),
            Err(RoutingError::DestFaulty(_))
        ));
        assert!(matches!(
            route(&e, &f, NodeId(1 << 10), NodeId(0)),
            Err(RoutingError::OutOfRange(_))
        ));
    }

    #[test]
    fn proj_inject_round_trip() {
        let dims = [1u32, 4, 7];
        let v = NodeId(0b1011_0110);
        let p = proj(v, &dims);
        assert_eq!(inject(v, &dims, p), v);
        let w = inject(v, &dims, 0b101);
        assert_eq!(proj(w, &dims), 0b101);
        // Untouched bits survive.
        assert_eq!(w.0 & !(0b1001_0010), v.0 & !(0b1001_0010));
    }

    #[test]
    fn block_bfs_matches_masked_search() {
        let e = eh(2, 3);
        let mut f = FaultSet::new();
        f.add_node(NodeId(3));
        f.add_link(LinkId::new(NodeId(0), 0));
        let a_dims: Vec<u32> = (4..=5).collect();
        let b_dims: Vec<u32> = (1..=3).collect();
        for s in 0..e.num_nodes() {
            if f.is_node_faulty(NodeId(s)) {
                continue;
            }
            for d in 0..e.num_nodes() {
                if f.is_node_faulty(NodeId(d)) {
                    continue;
                }
                let got = block_bfs(&e, &f, &a_dims, &b_dims, 0, NodeId(s), NodeId(d));
                let want = search::distance(&e, NodeId(s), NodeId(d), &f);
                match (got, want) {
                    (Some(p), Some(w)) => assert_eq!((p.len() - 1) as u32, w),
                    (None, None) => {}
                    (g, w) => panic!("mismatch {s}->{d}: {g:?} vs {w:?}"),
                }
            }
        }
    }
}

/// Ignored diagnostic: scans random fault sets for routes that exceed the
/// paper bound or trip the BFS fallback, printing the first offender. Run
/// with `cargo test -p gcube-routing freh::diagnostics -- --ignored --nocapture`.
#[cfg(test)]
mod diagnostics {
    use super::*;
    use gcube_topology::search;

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    fn precondition_holds(e: &ExchangedHypercube, f: &FaultSet) -> bool {
        let mut fs = 0usize;
        let mut ft = 0usize;
        let mut fx = 0usize;
        for n in f.faulty_nodes() {
            if e.class_bit(n) {
                ft += 1;
            } else {
                fs += 1;
            }
        }
        for l in f.faulty_links() {
            let (a, b) = l.endpoints();
            if f.is_node_faulty(a) || f.is_node_faulty(b) {
                continue;
            }
            if l.dim == 0 {
                fx += 1;
            } else if e.class_bit(a) {
                ft += 1;
            } else {
                fs += 1;
            }
        }
        (fs + fx) < e.s() as usize && (ft + fx) < e.t() as usize
    }

    #[test]
    #[ignore]
    fn find_fallback_case() {
        let mut rng = Rng(0x9e3779b97f4a7c15);
        for (s, t) in [(3u32, 3u32), (3, 2), (2, 3)] {
            let e = ExchangedHypercube::new(s, t).unwrap();
            for _trial in 0..400 {
                let mut f = FaultSet::new();
                for _ in 0..(rng.next() % 3) {
                    f.add_node(NodeId(rng.next() % e.num_nodes()));
                }
                for _ in 0..(rng.next() % 3) {
                    let v = NodeId(rng.next() % e.num_nodes());
                    let dims = e.link_dims(v);
                    let dim = dims[(rng.next() % dims.len() as u64) as usize];
                    f.add_link(LinkId::new(v, dim));
                }
                if !precondition_holds(&e, &f) {
                    continue;
                }
                for r in 0..e.num_nodes() {
                    if f.is_node_faulty(NodeId(r)) {
                        continue;
                    }
                    for d in 0..e.num_nodes() {
                        if f.is_node_faulty(NodeId(d)) {
                            continue;
                        }
                        let (route, stats) = route(&e, &f, NodeId(r), NodeId(d)).unwrap();
                        let h = e.dist(NodeId(r), NodeId(d)) as usize;
                        if stats.bfs_fallback || route.hops() > h + 2 * f.len() + 2 {
                            println!(
                                "EH({s},{t}) {r}->{d} hops={} H={h} F={} fb={} faults={f:?}",
                                route.hops(),
                                f.len(),
                                stats.bfs_fallback
                            );
                            println!("route: {route}");
                            let bfsd = search::distance(&e, NodeId(r), NodeId(d), &f);
                            println!("masked bfs dist: {bfsd:?}");
                            return;
                        }
                    }
                }
            }
        }
        println!("no case found");
    }
}
