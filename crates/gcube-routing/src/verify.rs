//! Route-set verification: hop-bound accounting, livelock evidence, and
//! Dally–Seitz channel-dependency-graph (CDG) deadlock analysis.
//!
//! The paper claims its strategy "generates deadlock-free routes" and is
//! livelock-free (§1, §7). Under the simulator's assumptions the network is
//! packet-switched with eager readership (service faster than arrival), so
//! routes cannot deadlock on buffers; for wormhole-style analysis this
//! module builds the CDG of a route *set* — directed channels are `(node,
//! dim, direction)`; an edge connects consecutive channels of some route —
//! and checks acyclicity. E-cube routing on the hypercube is the classic
//! acyclic baseline (tested). FFGCR's CDG turns out to be **cyclic** (the
//! tree walk uses edges in both directions), so wormhole switching would
//! need virtual channels — [`assign_virtual_channels`] computes how many
//! and produces a valid per-hop assignment.

use std::collections::{HashMap, HashSet};

use gcube_topology::NodeId;

use crate::route::Route;

/// A directed channel: the ordered use of a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Channel {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
}

/// The channel dependency graph of a set of routes.
#[derive(Clone, Debug, Default)]
pub struct ChannelDependencyGraph {
    edges: HashMap<Channel, HashSet<Channel>>,
    channels: HashSet<Channel>,
}

impl ChannelDependencyGraph {
    /// Build the CDG from routes: each consecutive channel pair of each
    /// route adds a dependency edge.
    pub fn from_routes<'a>(routes: impl IntoIterator<Item = &'a Route>) -> Self {
        let mut g = ChannelDependencyGraph::default();
        for r in routes {
            let nodes = r.nodes();
            let mut prev: Option<Channel> = None;
            for w in nodes.windows(2) {
                let ch = Channel {
                    from: w[0],
                    to: w[1],
                };
                g.channels.insert(ch);
                if let Some(p) = prev {
                    g.edges.entry(p).or_default().insert(ch);
                }
                prev = Some(ch);
            }
        }
        g
    }

    /// Number of distinct channels used.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(HashSet::len).sum()
    }

    /// Whether the dependency graph is acyclic (Dally–Seitz condition for
    /// wormhole deadlock freedom).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// A cycle of channels if one exists (diagnostic aid).
    pub fn find_cycle(&self) -> Option<Vec<Channel>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: HashMap<Channel, Mark> =
            self.channels.iter().map(|&c| (c, Mark::White)).collect();
        let mut order: Vec<Channel> = self.channels.iter().copied().collect();
        order.sort_unstable();
        // Pre-sort successor lists for determinism.
        let succs_of = |c: Channel| -> Vec<Channel> {
            let mut v: Vec<Channel> = self
                .edges
                .get(&c)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            v.sort_unstable();
            v
        };
        for start in order {
            if marks[&start] != Mark::White {
                continue;
            }
            // Iterative DFS: each frame keeps its successor list + cursor.
            marks.insert(start, Mark::Grey);
            let mut stack: Vec<(Channel, Vec<Channel>, usize)> = vec![(start, succs_of(start), 0)];
            while let Some(frame) = stack.last_mut() {
                let (ch, succs, idx) = (frame.0, &frame.1, frame.2);
                if idx < succs.len() {
                    let nx = succs[idx];
                    frame.2 += 1;
                    match marks[&nx] {
                        Mark::Grey => {
                            // Reconstruct the cycle from the stack.
                            let mut cyc: Vec<Channel> = stack.iter().map(|f| f.0).collect();
                            if let Some(pos) = cyc.iter().position(|&c| c == nx) {
                                cyc.drain(..pos);
                            }
                            cyc.push(nx);
                            return Some(cyc);
                        }
                        Mark::White => {
                            marks.insert(nx, Mark::Grey);
                            let s = succs_of(nx);
                            stack.push((nx, s, 0));
                        }
                        Mark::Black => {}
                    }
                } else {
                    marks.insert(ch, Mark::Black);
                    stack.pop();
                }
            }
        }
        None
    }
}

/// Evidence of livelock-freedom for a single route: it is finite and its
/// length is within `bound` hops.
pub fn within_hop_bound(route: &Route, bound: usize) -> bool {
    route.hops() <= bound
}

/// Count how many times the route revisits nodes (0 for a simple path;
/// fault detours may revisit — this quantifies them).
pub fn revisit_count(route: &Route) -> usize {
    let mut seen = HashSet::new();
    route.nodes().iter().filter(|&&n| !seen.insert(n)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffgcr;
    use crate::hypercube_ft::{ecube_route, VirtualCube};
    use gcube_topology::GaussianCube;
    use gcube_topology::Topology;

    fn coords_to_route(coords: &[u64]) -> Route {
        Route::new(coords.iter().map(|&c| NodeId(c)).collect())
    }

    #[test]
    fn ecube_cdg_is_acyclic() {
        // Classic result: dimension-ordered routing has an acyclic CDG.
        let cube = VirtualCube::plain(4);
        let mut routes = Vec::new();
        for s in 0..16u64 {
            for d in 0..16u64 {
                routes.push(coords_to_route(&ecube_route(&cube, s, d)));
            }
        }
        let cdg = ChannelDependencyGraph::from_routes(&routes);
        assert!(cdg.channel_count() > 0);
        assert!(cdg.is_acyclic(), "e-cube CDG must be acyclic");
    }

    #[test]
    fn reversed_pair_creates_cycle() {
        // Two head-on routes over the same two links in opposite orders form
        // the canonical 2-cycle.
        let r1 = Route::new(vec![NodeId(0), NodeId(1), NodeId(3)]);
        let r2 = Route::new(vec![NodeId(3), NodeId(1), NodeId(0)]);
        let r3 = Route::new(vec![NodeId(1), NodeId(3), NodeId(1)]);
        let cdg = ChannelDependencyGraph::from_routes([&r1, &r2, &r3]);
        // r3 uses 1->3 then 3->1; r2 uses 3->1 then 1->0 … build an actual
        // cycle: 1->3 depends on 3->1 (r3), and make 3->1 depend on 1->3:
        let r4 = Route::new(vec![NodeId(3), NodeId(1), NodeId(3)]);
        let cdg2 = ChannelDependencyGraph::from_routes([&r3, &r4]);
        assert!(!cdg2.is_acyclic());
        assert!(cdg2.find_cycle().is_some());
        // The first graph has no guaranteed cycle claim; just exercise it.
        let _ = cdg.is_acyclic();
    }

    #[test]
    fn ffgcr_cdg_has_cycles_under_wormhole_model() {
        // Measured finding (recorded in EXPERIMENTS.md): all-pairs FFGCR
        // routes on GC(6,4) produce a CYCLIC channel dependency graph — the
        // tree walk traverses edges in both directions and side trips
        // interleave, so the Dally–Seitz wormhole condition does NOT hold.
        // The paper's deadlock-freedom claim rests on its packet-switched,
        // eager-readership model (assumption 2 of §6), where buffers drain
        // faster than they fill; the simulator reproduces that model.
        let gc = GaussianCube::new(6, 4).unwrap();
        let mut routes = Vec::new();
        for s in 0..gc.num_nodes() {
            for d in 0..gc.num_nodes() {
                routes.push(ffgcr::route(&gc, NodeId(s), NodeId(d)).unwrap());
            }
        }
        let cdg = ChannelDependencyGraph::from_routes(&routes);
        let cycle = cdg.find_cycle();
        assert!(
            cycle.is_some(),
            "expected a wormhole-model cycle in the FFGCR CDG"
        );
        // The cycle is a genuine closed chain of dependencies.
        let cyc = cycle.unwrap();
        assert!(cyc.len() >= 2);
        assert_eq!(cyc.first(), cyc.last());
    }

    #[test]
    fn bound_and_revisit_helpers() {
        let r = Route::new(vec![NodeId(0), NodeId(1), NodeId(0), NodeId(2)]);
        assert!(within_hop_bound(&r, 3));
        assert!(!within_hop_bound(&r, 2));
        assert_eq!(revisit_count(&r), 1);
        let simple = Route::new(vec![NodeId(0), NodeId(1)]);
        assert_eq!(revisit_count(&simple), 0);
    }
}

/// A virtual-channel assignment making a route set wormhole-deadlock-free.
///
/// Motivation: [`ChannelDependencyGraph`] shows FFGCR's raw CDG is cyclic
/// (see the test below), so wormhole switching would need virtual channels.
/// This computes a valid assignment greedily: each packet's hops get
/// non-decreasing VC indices, and a hop escalates to the next VC exactly
/// when staying would close a cycle inside the current VC's dependency
/// graph. Per-VC CDGs are then acyclic *by construction* — Dally–Seitz
/// grants deadlock freedom — and `num_vcs` reports how many channels the
/// route set needs (e-cube needs 1; FFGCR typically 2–3).
#[derive(Clone, Debug)]
pub struct VcAssignment {
    /// `vcs[i][j]` = virtual channel of route `i`'s hop `j`.
    pub vcs: Vec<Vec<u32>>,
    /// Number of distinct virtual channels used.
    pub num_vcs: u32,
}

/// Greedily assign virtual channels to the route set (see [`VcAssignment`]).
pub fn assign_virtual_channels(routes: &[Route]) -> VcAssignment {
    /// Incremental DAG with cycle refusal: edges are only inserted if they
    /// keep the graph acyclic (checked by reachability).
    #[derive(Default)]
    struct Dag {
        succ: HashMap<Channel, HashSet<Channel>>,
    }
    impl Dag {
        fn reaches(&self, from: Channel, to: Channel) -> bool {
            if from == to {
                return true;
            }
            let mut stack = vec![from];
            let mut seen = HashSet::new();
            while let Some(u) = stack.pop() {
                if !seen.insert(u) {
                    continue;
                }
                if let Some(next) = self.succ.get(&u) {
                    for &v in next {
                        if v == to {
                            return true;
                        }
                        stack.push(v);
                    }
                }
            }
            false
        }
        /// Insert `a -> b` unless it would close a cycle. Returns success.
        fn try_insert(&mut self, a: Channel, b: Channel) -> bool {
            if self.reaches(b, a) {
                return false;
            }
            self.succ.entry(a).or_default().insert(b);
            true
        }
    }

    let mut dags: Vec<Dag> = Vec::new();
    let mut vcs: Vec<Vec<u32>> = Vec::new();
    for route in routes {
        let nodes = route.nodes();
        let mut route_vcs = Vec::with_capacity(route.hops());
        let mut cur_vc = 0usize;
        let mut prev: Option<Channel> = None;
        for w in nodes.windows(2) {
            let ch = Channel {
                from: w[0],
                to: w[1],
            };
            if let Some(p) = prev {
                // Try to keep the dependency p -> ch inside the current VC;
                // escalate until a VC accepts it.
                loop {
                    if dags.len() <= cur_vc {
                        dags.push(Dag::default());
                    }
                    if dags[cur_vc].try_insert(p, ch) {
                        break;
                    }
                    cur_vc += 1;
                }
            }
            route_vcs.push(cur_vc as u32);
            prev = Some(ch);
        }
        vcs.push(route_vcs);
    }
    VcAssignment {
        vcs,
        num_vcs: dags.len().max(1) as u32,
    }
}

#[cfg(test)]
mod vc_tests {
    use super::*;
    use crate::ffgcr;
    use crate::hypercube_ft::{ecube_route, VirtualCube};
    use gcube_topology::{GaussianCube, NodeId, Topology};

    fn validate_assignment(routes: &[Route], assignment: &VcAssignment) {
        // 1. Monotone per route. 2. Per-VC CDG acyclic.
        let mut per_vc: Vec<Vec<Route>> = vec![Vec::new(); assignment.num_vcs as usize];
        for (route, vcs) in routes.iter().zip(&assignment.vcs) {
            assert_eq!(vcs.len(), route.hops());
            for w in vcs.windows(2) {
                assert!(w[0] <= w[1], "VC must not decrease along a route");
            }
            // Split the route at VC boundaries; each fragment's dependency
            // chain lives inside one VC.
            let nodes = route.nodes();
            let mut start = 0usize;
            for j in 1..=vcs.len() {
                if j == vcs.len() || vcs[j] != vcs[start] {
                    let frag = Route::new(nodes[start..=j].to_vec());
                    per_vc[vcs[start] as usize].push(frag);
                    start = j;
                }
            }
        }
        for (vc, frags) in per_vc.iter().enumerate() {
            let cdg = ChannelDependencyGraph::from_routes(frags.iter());
            assert!(cdg.is_acyclic(), "VC {vc} dependency graph has a cycle");
        }
    }

    #[test]
    fn ecube_needs_one_vc() {
        let cube = VirtualCube::plain(4);
        let mut routes = Vec::new();
        for s in 0..16u64 {
            for d in 0..16u64 {
                if s != d {
                    routes.push(Route::new(
                        ecube_route(&cube, s, d).into_iter().map(NodeId).collect(),
                    ));
                }
            }
        }
        let a = assign_virtual_channels(&routes);
        assert_eq!(a.num_vcs, 1, "dimension-ordered routing is already acyclic");
        validate_assignment(&routes, &a);
    }

    #[test]
    fn ffgcr_needs_few_vcs() {
        // The actionable counterpart of the cyclic-CDG finding: a small
        // number of virtual channels restores wormhole deadlock freedom.
        let gc = GaussianCube::new(6, 4).unwrap();
        let mut routes = Vec::new();
        for s in 0..gc.num_nodes() {
            for d in 0..gc.num_nodes() {
                if s != d {
                    routes.push(ffgcr::route(&gc, NodeId(s), NodeId(d)).unwrap());
                }
            }
        }
        let a = assign_virtual_channels(&routes);
        assert!(a.num_vcs >= 2, "cyclic CDG must force >1 VC");
        assert!(
            a.num_vcs <= 6,
            "greedy should stay small, got {}",
            a.num_vcs
        );
        validate_assignment(&routes, &a);
    }

    #[test]
    fn head_on_pair_needs_two_vcs() {
        let r1 = Route::new(vec![NodeId(1), NodeId(3), NodeId(1)]);
        let r2 = Route::new(vec![NodeId(3), NodeId(1), NodeId(3)]);
        let a = assign_virtual_channels(&[r1.clone(), r2.clone()]);
        assert_eq!(a.num_vcs, 2);
        validate_assignment(&[r1, r2], &a);
    }
}
