//! The full fault-tolerant Gaussian Cube routing strategy (paper §5,
//! Theorem 5) — the headline contribution.
//!
//! FTGCR executes FFGCR's source-computed plan (tree walk + per-class
//! dimension flips), absorbing faults with the two substrates:
//!
//! * **A-category faults** (links in dimensions `≥ α`) perturb the flip
//!   stages inside a `GEEC(α,k,t)` subcube; adaptive fault-tolerant
//!   hypercube routing ([`crate::hypercube_ft`]) routes around them
//!   (Theorem 3).
//! * **B/C-category faults** can block a Gaussian-tree edge crossing; the
//!   crossing neighbourhood is an exchanged hypercube
//!   (`EH(|Dim(p)|, |Dim(q)|)`), so the FREH mechanics
//!   ([`crate::freh::route_crossing`]) cross at a spare column and bounce to
//!   restore perturbed coordinates (Theorems 4 and 5).
//!
//! **Flip scheduling (our addition).** The paper's proof sketch walks the
//! packet through exact intermediate corners (the node of class `k` whose
//! `Dim(k)` bits are already final); it does not address the case where such
//! a corner is itself a faulty *node*. We close that gap at plan time: the
//! source simulates the corner sequence and, if a corner is faulty,
//! reschedules flips across multiple visits of the class (inserting a
//! two-hop bounce to create a second visit when necessary). Each repair
//! costs at most two extra hops per faulty corner, preserving the spirit of
//! the paper's `F`-bounded overhead. This uses exactly the fault knowledge
//! the paper grants a source (assumption 4 of §6: status of B/C faults for
//! same-ending nodes).

use std::collections::{BTreeSet, HashSet};

use gcube_topology::classes::dims;
use gcube_topology::{GaussianCube, GaussianTree, NodeId, Topology};

use crate::faults::FaultSet;
use crate::ffgcr;
use crate::freh::{route_crossing, CrossingStats};
use crate::hypercube_ft::{route_adaptive, to_host_path, VirtualCube};
use crate::plan_cache::PlanCache;
use crate::route::{Route, RoutingError};

/// Statistics aggregated over a full FTGCR route.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FtgcrStats {
    /// Exchange-link traversals (≥ walk length − 1; extras are fault
    /// bounces).
    pub crossings: u32,
    /// Crossing columns masked due to faults.
    pub masked_columns: u32,
    /// Whether any crossing needed the whole-block BFS fallback (never,
    /// under the Theorem-5 preconditions).
    pub bfs_fallback: bool,
    /// Plan repairs: flip moves between visits due to faulty corners.
    pub flip_moves: u32,
    /// Plan repairs: two-hop bounces inserted to create extra visits.
    pub bounces_inserted: u32,
}

impl FtgcrStats {
    fn absorb(&mut self, cs: &CrossingStats) {
        self.crossings += cs.crossings;
        self.masked_columns += cs.masked_columns;
        self.bfs_fallback |= cs.bfs_fallback;
    }
}

/// An executable plan: tree walk plus a flip mask per walk position.
#[derive(Clone, Debug)]
struct ExecPlan {
    walk: Vec<u64>,
    flips_at: Vec<u64>,
}

impl ExecPlan {
    /// The corner the packet occupies after the crossing into walk position
    /// `i` and that position's flips.
    fn corners(&self, gc: &GaussianCube, s: NodeId) -> Vec<NodeId> {
        let tree = GaussianTree::new(gc.alpha()).expect("alpha within cap");
        let mut state = s.0;
        let mut out = Vec::with_capacity(self.walk.len());
        for (i, &k) in self.walk.iter().enumerate() {
            if i > 0 {
                let c0 = tree
                    .edge_dim(NodeId(self.walk[i - 1]), NodeId(k))
                    .expect("walk follows tree edges");
                state ^= 1u64 << c0;
            }
            state ^= self.flips_at[i];
            out.push(NodeId(state));
        }
        out
    }
}

/// Build the default schedule (all flips at the first visit of each class)
/// from the FFGCR plan.
fn default_exec_plan(plan: &ffgcr::Plan) -> ExecPlan {
    let walk: Vec<u64> = plan.tree_walk.iter().map(|n| n.0).collect();
    let mut flips_at = vec![0u64; walk.len()];
    let mut seen: HashSet<u64> = HashSet::new();
    for (i, &k) in walk.iter().enumerate() {
        if seen.insert(k) {
            if let Some(ds) = plan.flips.get(&k) {
                flips_at[i] = ds.iter().fold(0u64, |m, &c| m | (1u64 << c));
            }
        }
    }
    ExecPlan { walk, flips_at }
}

/// Repair the schedule so every corner is a healthy node: move single flips
/// between visits of the same class, inserting a bounce (q → r → q) when a
/// class needs a second visit. Returns the repaired plan and repair counts,
/// or `None` when no healthy schedule was found within the search budget.
fn repair_exec_plan(
    gc: &GaussianCube,
    faults: &FaultSet,
    s: NodeId,
    mut ep: ExecPlan,
    stats: &mut FtgcrStats,
) -> Option<ExecPlan> {
    let tree = GaussianTree::new(gc.alpha()).expect("alpha within cap");
    let mut bounces = 0;
    'outer: for _attempt in 0..32 {
        let corners = ep.corners(gc, s);
        let bad_i = match corners.iter().position(|&c| faults.is_node_faulty(c)) {
            None => return Some(ep),
            Some(i) => i,
        };
        let q = ep.walk[bad_i];
        // Candidate moves: shift one dim of class kk between two of its
        // visits a ≤ bad_i < b; this toggles that bit in corners[a..b].
        let visit_indices = |kk: u64, ep: &ExecPlan| -> Vec<usize> {
            ep.walk
                .iter()
                .enumerate()
                .filter(|(_, &w)| w == kk)
                .map(|(i, _)| i)
                .collect()
        };
        // Deterministic candidate order: HashSet iteration order varies
        // per instance, which would make repeated calls repair the same
        // plan differently.
        let classes: BTreeSet<u64> = ep.walk.iter().copied().collect();
        for &kk in &classes {
            let vis = visit_indices(kk, &ep);
            for &a in &vis {
                for &b in &vis {
                    if a >= b || b <= bad_i || a > bad_i {
                        continue;
                    }
                    // Try moving each dim currently at `a` to `b`, and each
                    // dim at `b` to `a`.
                    for (from, to) in [(a, b), (b, a)] {
                        let mut mask = ep.flips_at[from];
                        while mask != 0 {
                            let c = mask.trailing_zeros();
                            mask &= mask - 1;
                            let mut cand = ep.clone();
                            cand.flips_at[from] &= !(1u64 << c);
                            cand.flips_at[to] |= 1u64 << c;
                            let ok = cand
                                .corners(gc, s)
                                .iter()
                                .all(|&x| !faults.is_node_faulty(x));
                            if ok {
                                stats.flip_moves += 1;
                                ep = cand;
                                continue 'outer;
                            }
                        }
                    }
                }
            }
        }
        // Spare pairs: temporarily flip an *extra* dimension `c ∈ Dim(kk)`
        // at one visit of `kk` and undo it at a later visit — toggling bit
        // `c` in every corner between. This is the only device that can
        // clear a *forced* corner (e.g. the pre-final corner `d ⊕ 2^c₀`
        // when that node is the faulty one); cost: 2 extra hops.
        for &kk in &classes {
            let vis = visit_indices(kk, &ep);
            for &a in &vis {
                for &b in &vis {
                    if a > bad_i || b <= bad_i {
                        continue;
                    }
                    for c in dims(gc.n(), gc.alpha(), kk) {
                        let bit = 1u64 << c;
                        if ep.flips_at[a] & bit != 0 || ep.flips_at[b] & bit != 0 {
                            continue; // not a spare at these visits
                        }
                        let mut cand = ep.clone();
                        cand.flips_at[a] |= bit;
                        cand.flips_at[b] |= bit;
                        let ok = cand
                            .corners(gc, s)
                            .iter()
                            .all(|&x| !faults.is_node_faulty(x));
                        if ok {
                            stats.flip_moves += 1;
                            ep = cand;
                            continue 'outer;
                        }
                    }
                }
            }
        }
        // No single move fixes everything at once: take any move that fixes
        // THIS corner (progress), or insert a bounce to create a later visit
        // for q.
        for &kk in &classes {
            let vis = visit_indices(kk, &ep);
            for &a in &vis {
                for &b in &vis {
                    if a > bad_i || b <= bad_i {
                        continue;
                    }
                    let mut mask = ep.flips_at[a];
                    while mask != 0 {
                        let c = mask.trailing_zeros();
                        mask &= mask - 1;
                        let mut cand = ep.clone();
                        cand.flips_at[a] &= !(1u64 << c);
                        cand.flips_at[b] |= 1u64 << c;
                        let fixed = !faults.is_node_faulty(cand.corners(gc, s)[bad_i]);
                        if fixed {
                            stats.flip_moves += 1;
                            ep = cand;
                            continue 'outer;
                        }
                    }
                }
            }
        }
        // Insert a bounce after bad_i: … q r q … (r = any tree neighbour).
        if bounces >= 4 {
            return None;
        }
        let qn = NodeId(q);
        let neighbour = tree
            .neighbors(qn)
            .into_iter()
            .next()
            .expect("every tree node has a neighbour for α ≥ 1");
        ep.walk.insert(bad_i + 1, q);
        ep.walk.insert(bad_i + 1, neighbour.0);
        ep.flips_at.insert(bad_i + 1, 0);
        ep.flips_at.insert(bad_i + 1, 0);
        bounces += 1;
        stats.bounces_inserted += 1;
    }
    None
}

/// Route from `s` to `d` in `GC(n, 2^α)` under the fault set.
///
/// Returns the route and detour statistics. With an empty fault set this
/// degenerates to FFGCR (optimal); under the Theorem-3/5 preconditions it
/// always delivers, livelock-free (masked spare columns and dimensions),
/// with bounded detour overhead (see the hop-bound tests and
/// EXPERIMENTS.md).
pub fn route(
    gc: &GaussianCube,
    faults: &FaultSet,
    s: NodeId,
    d: NodeId,
) -> Result<(Route, FtgcrStats), RoutingError> {
    route_impl(gc, faults, s, d, None)
}

/// FTGCR with the plan stage served from a [`PlanCache`]: identical output
/// to [`route`] (property-tested), with the tree walk memoised instead of
/// recomputed per packet. Fault repair and crossing detours stay
/// per-packet — the cache is keyed purely by topology, so fault events
/// never invalidate it.
pub fn route_cached(
    gc: &GaussianCube,
    faults: &FaultSet,
    s: NodeId,
    d: NodeId,
    cache: &PlanCache,
) -> Result<(Route, FtgcrStats), RoutingError> {
    route_impl(gc, faults, s, d, Some(cache))
}

fn route_impl(
    gc: &GaussianCube,
    faults: &FaultSet,
    s: NodeId,
    d: NodeId,
    cache: Option<&PlanCache>,
) -> Result<(Route, FtgcrStats), RoutingError> {
    if !gc.contains(s) {
        return Err(RoutingError::OutOfRange(s));
    }
    if !gc.contains(d) {
        return Err(RoutingError::OutOfRange(d));
    }
    if faults.is_node_faulty(s) {
        return Err(RoutingError::SourceFaulty(s));
    }
    if faults.is_node_faulty(d) {
        return Err(RoutingError::DestFaulty(d));
    }
    let mut stats = FtgcrStats::default();
    let (n, alpha) = (gc.n(), gc.alpha());

    // α = 0: GC(n,1) is the binary hypercube; route adaptively in one cube.
    if alpha == 0 {
        let all_dims: Vec<u32> = (0..n).collect();
        let vc = VirtualCube::from_host(gc, faults, s, &all_dims);
        let (coords, _) = route_adaptive(&vc, vc.coord(s), vc.coord(d))
            .ok_or(RoutingError::Unreachable { from: s, to: d })?;
        return Ok((Route::new(to_host_path(&vc, &coords)), stats));
    }

    // The default schedule flips each class's pending dimensions at its
    // first visit, whether replayed from the cache or rebuilt from scratch
    // — both paths produce the identical ExecPlan.
    let (ep, plan_hops) = match cache.filter(|c| c.is_active() && c.matches(gc)) {
        Some(c) => {
            let (walk, high) = c.walk_and_flips(gc, s, d);
            let mut flips_at = vec![0u64; walk.classes.len()];
            for (i, &k) in walk.classes.iter().enumerate() {
                if walk.first_visit[i] {
                    flips_at[i] = c.class_dims(k) & high;
                }
            }
            let plan_hops = walk.tree_hops() + high.count_ones() as usize;
            let ep = ExecPlan {
                walk: walk.classes.clone(),
                flips_at,
            };
            (ep, plan_hops)
        }
        None => {
            let plan = ffgcr::plan(gc, s, d);
            let hops = plan.hops();
            (default_exec_plan(&plan), hops)
        }
    };
    let ep = repair_exec_plan(gc, faults, s, ep, &mut stats)
        .ok_or(RoutingError::Unreachable { from: s, to: d })?;
    let corners = ep.corners(gc, s);
    debug_assert_eq!(*corners.last().unwrap(), d, "schedule must end at d");

    let tree = GaussianTree::new(alpha).expect("alpha within cap");
    let mut nodes = vec![s];
    let mut cur = s;

    // Per-crossing hop budget: plan size + generous fault allowance.
    let budget = (plan_hops + 2 * faults.len() + 8) * 4 + 16;

    for (i, &k) in ep.walk.iter().enumerate() {
        let target = corners[i];
        if i == 0 {
            if target != cur {
                // Flips at the source's own class, via adaptive subcube
                // routing (A faults tolerated).
                let dim_set = dims(n, alpha, k);
                let vc = VirtualCube::from_host(gc, faults, cur, &dim_set);
                let (coords, _) = route_adaptive(&vc, vc.coord(cur), vc.coord(target))
                    .ok_or(RoutingError::Unreachable { from: s, to: d })?;
                let seg = to_host_path(&vc, &coords);
                nodes.extend_from_slice(&seg[1..]);
                cur = target;
            }
            continue;
        }
        let p = ep.walk[i - 1];
        let c0 = tree
            .edge_dim(NodeId(p), NodeId(k))
            .expect("plan walk follows tree edges");
        let dims_p = dims(n, alpha, p);
        let dims_q = dims(n, alpha, k);
        // `route_crossing` keys the sides off bit c₀ of the node.
        let (dims0, dims1) = if NodeId(p).bit(c0) {
            (dims_q, dims_p)
        } else {
            (dims_p, dims_q)
        };
        let (seg, cs) = route_crossing(gc, faults, &dims0, &dims1, c0, cur, target, budget)
            .ok_or(RoutingError::Unreachable { from: s, to: d })?;
        stats.absorb(&cs);
        nodes.extend_from_slice(&seg[1..]);
        cur = target;
    }

    debug_assert_eq!(cur, d, "plan execution must land on the destination");
    if cur != d {
        return Err(RoutingError::DetourBudgetExceeded { stuck_at: cur });
    }
    Ok((Route::new(nodes), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{theorem3_precondition_guaranteed, theorem5_precondition};
    use gcube_topology::search;
    use gcube_topology::{LinkId, NoFaults};

    /// Deterministic xorshift for reproducible fault sampling.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn fault_free_ftgcr_equals_ffgcr() {
        for (n, m) in [(6u32, 2u64), (7, 4), (6, 8), (8, 2)] {
            let gc = GaussianCube::new(n, m).unwrap();
            let f = FaultSet::new();
            for s in (0..gc.num_nodes()).step_by(5) {
                for d in (0..gc.num_nodes()).step_by(7) {
                    let (r, stats) = route(&gc, &f, NodeId(s), NodeId(d)).unwrap();
                    r.validate(&gc, &f).unwrap();
                    let ff = ffgcr::route(&gc, NodeId(s), NodeId(d)).unwrap();
                    assert_eq!(r.hops(), ff.hops(), "GC({n},{m}) {s}->{d}");
                    assert!(!stats.bfs_fallback);
                    assert_eq!(stats.masked_columns, 0);
                    assert_eq!(stats.flip_moves, 0);
                }
            }
        }
    }

    #[test]
    fn alpha_zero_is_adaptive_hypercube() {
        let gc = GaussianCube::new(6, 1).unwrap();
        let mut f = FaultSet::new();
        f.add_node(NodeId(7));
        f.add_link(LinkId::new(NodeId(0), 3));
        for s in 0..64u64 {
            if f.is_node_faulty(NodeId(s)) {
                continue;
            }
            for d in (0..64u64).step_by(3) {
                if f.is_node_faulty(NodeId(d)) {
                    continue;
                }
                let (r, _) = route(&gc, &f, NodeId(s), NodeId(d)).unwrap();
                r.validate(&gc, &f).unwrap();
            }
        }
    }

    #[test]
    fn theorem3_regime_delivery_and_detour_bound() {
        // Only A-category link faults, below the guaranteed per-GEEC bound:
        // delivery for every healthy pair with bounded detours and no BFS
        // fallback. Detour accounting: each fault can force one spare
        // (2 hops) in each leg that meets it; legs per class ≤ 2, so the
        // conservative bound is 4 hops per fault.
        let gc = GaussianCube::new(9, 2).unwrap();
        let mut rng = Rng(0xabcdef1234567890);
        let mut tested = 0;
        let mut worst_extra = 0usize;
        for _trial in 0..60 {
            let mut f = FaultSet::new();
            for _ in 0..1 + (rng.next() % 3) {
                let v = NodeId(rng.next() % gc.num_nodes());
                let high: Vec<u32> = gc.link_dims(v).into_iter().filter(|&c| c >= 1).collect();
                if high.is_empty() {
                    continue;
                }
                let dim = high[(rng.next() % high.len() as u64) as usize];
                f.add_link(LinkId::new(v, dim));
            }
            if !theorem3_precondition_guaranteed(&gc, &f) {
                continue;
            }
            tested += 1;
            let fcount = f.len();
            for s in (0..gc.num_nodes()).step_by(11) {
                for d in (0..gc.num_nodes()).step_by(13) {
                    let (r, stats) = route(&gc, &f, NodeId(s), NodeId(d))
                        .unwrap_or_else(|e| panic!("{s}->{d}: {e} with {f:?}"));
                    r.validate(&gc, &f).unwrap();
                    let opt = ffgcr::route_len(&gc, NodeId(s), NodeId(d)) as usize;
                    worst_extra = worst_extra.max(r.hops() - opt.min(r.hops()));
                    assert!(
                        r.hops() <= opt + 4 * fcount,
                        "detour bound: {s}->{d} hops={} opt={opt} F={fcount}",
                        r.hops()
                    );
                    assert!(!stats.bfs_fallback, "fallback fired in Theorem-3 regime");
                }
            }
        }
        assert!(
            tested >= 20,
            "sampler produced too few valid fault sets ({tested})"
        );
    }

    #[test]
    fn theorem5_regime_mixed_faults() {
        // Mixed node + link faults satisfying the Theorem-5 crossing
        // precondition: delivery for every healthy pair with bounded
        // detours.
        let gc = GaussianCube::new(10, 2).unwrap();
        let mut rng = Rng(0x1234567890abcdef);
        let mut tested = 0;
        for _trial in 0..70 {
            let mut f = FaultSet::new();
            f.add_node(NodeId(rng.next() % gc.num_nodes()));
            for _ in 0..rng.next() % 3 {
                let v = NodeId(rng.next() % gc.num_nodes());
                let ds = gc.link_dims(v);
                f.add_link(LinkId::new(v, ds[(rng.next() % ds.len() as u64) as usize]));
            }
            if !theorem5_precondition(&gc, &f) {
                continue;
            }
            tested += 1;
            let fcount = f.len();
            for s in (0..gc.num_nodes()).step_by(37) {
                if f.is_node_faulty(NodeId(s)) {
                    continue;
                }
                for d in (0..gc.num_nodes()).step_by(41) {
                    if f.is_node_faulty(NodeId(d)) {
                        continue;
                    }
                    let (r, _stats) = route(&gc, &f, NodeId(s), NodeId(d))
                        .unwrap_or_else(|e| panic!("{s}->{d}: {e} with {f:?}"));
                    r.validate(&gc, &f).unwrap();
                    let opt = ffgcr::route_len(&gc, NodeId(s), NodeId(d)) as usize;
                    assert!(
                        r.hops() <= opt + 6 * fcount + 6,
                        "detour bound: {s}->{d} hops={} opt={opt} F={fcount}",
                        r.hops()
                    );
                }
            }
        }
        assert!(
            tested >= 15,
            "sampler produced too few valid fault sets ({tested})"
        );
    }

    #[test]
    fn single_faulty_node_everywhere() {
        // The simulation scenario of Figures 7/8: exactly one faulty node.
        // Every healthy pair must remain routable whenever the precondition
        // holds.
        let gc = GaussianCube::new(7, 2).unwrap();
        for fv in (0..gc.num_nodes()).step_by(17) {
            let mut f = FaultSet::new();
            f.add_node(NodeId(fv));
            if !theorem5_precondition(&gc, &f) {
                continue;
            }
            for s in 0..gc.num_nodes() {
                if s == fv {
                    continue;
                }
                for d in (0..gc.num_nodes()).step_by(5) {
                    if d == fv {
                        continue;
                    }
                    let (r, _) = route(&gc, &f, NodeId(s), NodeId(d))
                        .unwrap_or_else(|e| panic!("fault {fv}: {s}->{d}: {e}"));
                    r.validate(&gc, &f).unwrap();
                }
            }
        }
    }

    #[test]
    fn routes_avoid_faults_entirely() {
        let gc = GaussianCube::new(8, 4).unwrap();
        let mut f = FaultSet::new();
        f.add_node(NodeId(0b0110));
        f.add_link(LinkId::new(NodeId(0b10), 2));
        if theorem5_precondition(&gc, &f) {
            let (r, _) = route(&gc, &f, NodeId(0), NodeId(255)).unwrap();
            r.validate(&gc, &f).unwrap();
            assert!(r.nodes().iter().all(|&v| v != NodeId(0b0110)));
        }
    }

    #[test]
    fn cached_ftgcr_equals_uncached_under_faults() {
        use crate::plan_cache::PlanCache;
        let gc = GaussianCube::new(8, 4).unwrap();
        let cache = PlanCache::new(&gc);
        let mut rng = Rng(0xfeedface12345678);
        for _trial in 0..40 {
            let mut f = FaultSet::new();
            for _ in 0..rng.next() % 3 {
                f.add_node(NodeId(rng.next() % gc.num_nodes()));
            }
            for _ in 0..rng.next() % 3 {
                let v = NodeId(rng.next() % gc.num_nodes());
                let ds = gc.link_dims(v);
                f.add_link(LinkId::new(v, ds[(rng.next() % ds.len() as u64) as usize]));
            }
            for s in (0..gc.num_nodes()).step_by(23) {
                for d in (0..gc.num_nodes()).step_by(31) {
                    let plain = route(&gc, &f, NodeId(s), NodeId(d));
                    let cached = route_cached(&gc, &f, NodeId(s), NodeId(d), &cache);
                    match (plain, cached) {
                        (Ok((r1, st1)), Ok((r2, st2))) => {
                            assert_eq!(r1.nodes(), r2.nodes(), "{s}->{d} with {f:?}");
                            assert_eq!(st1, st2);
                        }
                        (Err(e1), Err(e2)) => assert_eq!(
                            format!("{e1}"),
                            format!("{e2}"),
                            "{s}->{d}: error paths must agree"
                        ),
                        (a, b) => panic!("{s}->{d}: cached/uncached diverge: {a:?} vs {b:?}"),
                    }
                }
            }
        }
        let st = cache.stats();
        assert!(st.hits > 0, "repeat keys must hit the cache: {st:?}");
    }

    #[test]
    fn rejects_faulty_endpoints() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let mut f = FaultSet::new();
        f.add_node(NodeId(9));
        assert!(matches!(
            route(&gc, &f, NodeId(9), NodeId(0)),
            Err(RoutingError::SourceFaulty(_))
        ));
        assert!(matches!(
            route(&gc, &f, NodeId(0), NodeId(9)),
            Err(RoutingError::DestFaulty(_))
        ));
    }

    #[test]
    fn hops_never_below_bfs_distance() {
        // Sanity: the masked BFS distance is a lower bound for any valid
        // route through healthy components.
        let gc = GaussianCube::new(8, 2).unwrap();
        let mut f = FaultSet::new();
        f.add_node(NodeId(100));
        for (s, d) in [(0u64, 255u64), (3, 200), (17, 18)] {
            let (r, _) = route(&gc, &f, NodeId(s), NodeId(d)).unwrap();
            let lower = search::distance(&gc, NodeId(s), NodeId(d), &f).unwrap();
            assert!(r.hops() as u32 >= lower);
            let ff = search::distance(&gc, NodeId(s), NodeId(d), &NoFaults).unwrap();
            assert!(r.hops() as u32 >= ff);
        }
    }
}

/// Ignored diagnostic: sweeps single A-category faults over GC(9,2) and
/// reports the worst detour overhead with its trace. Run with
/// `cargo test -p gcube-routing ftgcr::diagnostics -- --ignored --nocapture`.
#[cfg(test)]
mod diagnostics {
    use super::*;
    use gcube_topology::LinkId;

    #[test]
    #[ignore]
    fn scan_single_a_fault_extras() {
        let gc = GaussianCube::new(9, 2).unwrap();
        let mut worst = 0usize;
        let mut worst_case = None;
        for v in (0..gc.num_nodes()).step_by(13) {
            let high: Vec<u32> = gc
                .link_dims(NodeId(v))
                .into_iter()
                .filter(|&c| c >= 1)
                .collect();
            if high.is_empty() {
                continue;
            }
            for &dim in &high {
                let mut f = FaultSet::new();
                f.add_link(LinkId::new(NodeId(v), dim));
                for s in (0..gc.num_nodes()).step_by(11) {
                    for d in (0..gc.num_nodes()).step_by(13) {
                        let (r, stats) = route(&gc, &f, NodeId(s), NodeId(d)).unwrap();
                        let opt = ffgcr::route_len(&gc, NodeId(s), NodeId(d)) as usize;
                        let extra = r.hops() - opt.min(r.hops());
                        if extra > worst {
                            worst = extra;
                            worst_case = Some((v, dim, s, d, r.hops(), opt, stats));
                        }
                    }
                }
            }
        }
        println!("worst extra = {worst}, case = {worst_case:?}");
        if let Some((v, dim, s, d, _, _, _)) = worst_case {
            let mut f = FaultSet::new();
            f.add_link(LinkId::new(NodeId(v), dim));
            let (r, _) = route(&gc, &f, NodeId(s), NodeId(d)).unwrap();
            println!("route: {r}");
            let plan = ffgcr::plan(&gc, NodeId(s), NodeId(d));
            println!("plan walk: {:?}, flips: {:?}", plan.tree_walk, plan.flips);
        }
    }
}
