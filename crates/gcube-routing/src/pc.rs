//! Algorithm 1 — Path Construction (PC) in the Gaussian Tree.
//!
//! Given source `s` and destination `d` in `T_m`, PC finds the (unique,
//! hence optimal) tree path by recursing on the leftmost differing bit `c`:
//! the path must use the *single* dimension-`c` edge whose endpoints have
//! low `c` bits spelling `c`, which splits the problem into two subproblems
//! whose leftmost differing bits are strictly smaller.
//!
//! The paper emits an unordered link set and sorts (`O(D log D)`); we emit
//! the node path in order directly, which keeps the construction `O(D)` per
//! call after the recursion and makes the result immediately usable as a
//! walk.

use gcube_topology::{GaussianTree, NodeId, Topology};

/// The unique path from `s` to `d` in `T_m`, endpoints inclusive.
///
/// # Panics
/// Panics if `s` or `d` is out of range for the tree.
pub fn pc_path(tree: &GaussianTree, s: NodeId, d: NodeId) -> Vec<NodeId> {
    assert!(
        s.0 < tree.num_nodes() && d.0 < tree.num_nodes(),
        "nodes out of range"
    );
    let mut out = Vec::new();
    out.push(s);
    pc_extend(tree, s, d, &mut out);
    out
}

/// Append the path `s → d` (excluding `s`, including `d`) to `out`.
fn pc_extend(tree: &GaussianTree, s: NodeId, d: NodeId, out: &mut Vec<NodeId>) {
    let Some(c) = s.leftmost_differing_dim(d) else {
        return; // s == d
    };
    if c == 0 {
        // Dimension-0 edges always exist: s and d are neighbours.
        out.push(d);
        return;
    }
    // The unique dimension-c tree edge compatible with the shared upper bits:
    // endpoints have low c bits equal to c (c < 2^c) and upper bits (above c)
    // equal to s's (== d's, since c is the leftmost difference).
    let upper = (s.0 >> (c + 1)) << (c + 1);
    let w0 = NodeId(upper | u64::from(c)); // bit c = 0 endpoint
    let w1 = w0.flip(c);
    let (vs, vd) = if s.bit(c) { (w1, w0) } else { (w0, w1) };
    debug_assert_eq!(tree.edge_dim(vs, vd), Some(c));
    pc_extend(tree, s, vs, out);
    out.push(vd);
    pc_extend(tree, vd, d, out);
}

/// Tree distance via PC (path length). Agrees with BFS — see tests.
pub fn pc_dist(tree: &GaussianTree, s: NodeId, d: NodeId) -> u32 {
    (pc_path(tree, s, d).len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_topology::search;
    use gcube_topology::{NoFaults, Topology};

    fn assert_valid_tree_path(tree: &GaussianTree, p: &[NodeId]) {
        for w in p.windows(2) {
            assert!(
                tree.edge_dim(w[0], w[1]).is_some(),
                "hop {} -> {} is not a tree edge",
                w[0],
                w[1]
            );
        }
        let mut seen = std::collections::HashSet::new();
        for n in p {
            assert!(seen.insert(*n), "tree path revisits node {n}");
        }
    }

    #[test]
    fn paper_worked_example() {
        // Paper: PC(0111, 1111) = PC(0111, 0110) ++ (0110, 1110)?? — the
        // paper's example routes via the dim-3 edge (0011, 1011):
        // PC(0111,1111) = PC(0111,0011) ++ (0011,1011) ++ PC(1011,1111).
        let t = GaussianTree::new(4).unwrap();
        let p = pc_path(&t, NodeId(0b0111), NodeId(0b1111));
        assert_eq!(p.first(), Some(&NodeId(0b0111)));
        assert_eq!(p.last(), Some(&NodeId(0b1111)));
        assert!(p.contains(&NodeId(0b0011)));
        assert!(p.contains(&NodeId(0b1011)));
        assert_valid_tree_path(&t, &p);
    }

    #[test]
    fn trivial_and_neighbour_paths() {
        let t = GaussianTree::new(3).unwrap();
        assert_eq!(pc_path(&t, NodeId(5), NodeId(5)), vec![NodeId(5)]);
        assert_eq!(
            pc_path(&t, NodeId(4), NodeId(5)),
            vec![NodeId(4), NodeId(5)]
        );
        assert_eq!(
            pc_path(&t, NodeId(5), NodeId(4)),
            vec![NodeId(5), NodeId(4)]
        );
    }

    #[test]
    fn exhaustive_validity_and_optimality() {
        // For every pair in T_m (m ≤ 8): path is a valid simple tree path
        // whose length equals the BFS distance — hence it is THE tree path.
        for m in 1..=8u32 {
            let t = GaussianTree::new(m).unwrap();
            for s in 0..t.num_nodes() {
                let dist = search::bfs_distances(&t, NodeId(s), &NoFaults);
                for d in 0..t.num_nodes() {
                    let p = pc_path(&t, NodeId(s), NodeId(d));
                    assert_valid_tree_path(&t, &p);
                    assert_eq!(p[0], NodeId(s));
                    assert_eq!(*p.last().unwrap(), NodeId(d));
                    assert_eq!(
                        (p.len() - 1) as u32,
                        dist[d as usize],
                        "suboptimal PC path in T_{m} for {s}->{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn path_is_symmetric() {
        let t = GaussianTree::new(7).unwrap();
        for (s, d) in [(3u64, 100u64), (0, 127), (64, 65), (37, 90)] {
            let fwd = pc_path(&t, NodeId(s), NodeId(d));
            let mut bwd = pc_path(&t, NodeId(d), NodeId(s));
            bwd.reverse();
            assert_eq!(fwd, bwd);
        }
    }

    #[test]
    fn pc_dist_matches_tree_dist() {
        let t = GaussianTree::new(6).unwrap();
        for s in (0..64).step_by(7) {
            for d in (0..64).step_by(5) {
                assert_eq!(
                    pc_dist(&t, NodeId(s), NodeId(d)),
                    t.dist(NodeId(s), NodeId(d))
                );
            }
        }
    }

    #[test]
    fn recursion_depth_is_bounded() {
        // The leftmost differing bit strictly decreases, so even the largest
        // supported tree completes (this is the paper's termination claim).
        let t = GaussianTree::new(20).unwrap();
        let p = pc_path(&t, NodeId(0), NodeId((1 << 20) - 1));
        assert_eq!(p[0], NodeId(0));
        assert_eq!(*p.last().unwrap(), NodeId((1 << 20) - 1));
    }
}
