//! Distributed FTGCR: per-hop routing under *local* fault knowledge.
//!
//! The source-routed [`crate::ftgcr`] assumes the planner sees the whole
//! fault set. The paper's model is weaker (§6 assumption 4): a node knows
//! its incident link status and the B/C faults related to its own ending
//! class — the knowledge the exchange protocol of [`crate::knowledge`]
//! actually delivers. This module routes under exactly that model:
//!
//! * every node holds its converged [`KnowledgeMap`] entry;
//! * the packet header carries the fault items learned so far — at most
//!   the total number of faults, echoing the paper's claim 5 ("at most `F`
//!   n-bit node addresses");
//! * each node merges its knowledge into the header; whenever the header
//!   *grows* (or no plan exists), the node re-plans the rest of the journey
//!   with [`crate::ftgcr`] under the header's view and forwards along it.
//!
//! **Termination is provable**: the header grows at most `F` times; between
//! growth events every node on the path shares the plan's view, so the
//! packet follows one fixed plan and strictly approaches the destination.
//! Every hop is physically safe because a node's own incident observations
//! are always in its knowledge, hence in the view its plan avoided.

use std::collections::HashSet;

use gcube_topology::{GaussianCube, NodeId, Topology};

use crate::faults::FaultSet;
use crate::ftgcr;
use crate::knowledge::{FaultItem, KnowledgeMap};
use crate::route::{Route, RoutingError};

/// Statistics of a distributed routing run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistributedStats {
    /// Plans computed (1 = the source plan sufficed end to end).
    pub replans: u32,
    /// Fault items the header carried at delivery (≤ total faults).
    pub header_items: usize,
}

/// Build a [`FaultSet`] view from header items.
fn view_of(items: &HashSet<FaultItem>) -> FaultSet {
    let mut f = FaultSet::new();
    for item in items {
        match item {
            FaultItem::Node(v) => f.add_node(*v),
            FaultItem::Link(l) => f.add_link(*l),
        }
    }
    f
}

/// Route from `s` to `d` hop by hop under local knowledge.
///
/// `truth` is the ground-truth fault set (used only to seed the knowledge
/// map and for final validation in tests — the decisions never read it);
/// `km` is the converged per-node knowledge from
/// [`crate::knowledge::exchange_rounds`].
pub fn route_distributed(
    gc: &GaussianCube,
    truth: &FaultSet,
    km: &KnowledgeMap,
    s: NodeId,
    d: NodeId,
) -> Result<(Route, DistributedStats), RoutingError> {
    if !gc.contains(s) {
        return Err(RoutingError::OutOfRange(s));
    }
    if !gc.contains(d) {
        return Err(RoutingError::OutOfRange(d));
    }
    if truth.is_node_faulty(s) {
        return Err(RoutingError::SourceFaulty(s));
    }
    if truth.is_node_faulty(d) {
        return Err(RoutingError::DestFaulty(d));
    }
    let mut stats = DistributedStats::default();
    let mut header: HashSet<FaultItem> = HashSet::new();
    let mut path = vec![s];
    let mut cur = s;
    // Plan = remaining node sequence; pos = index of cur within it.
    let mut plan: Vec<NodeId> = Vec::new();
    let mut pos = 0usize;
    // Termination bound: (F + 1) plans, each bounded by the FTGCR budget.
    let budget = (truth.len() + 2) * (gc.n() as usize * 4 + 8 * truth.len() + 16) + 16;
    while cur != d {
        if path.len() > budget {
            return Err(RoutingError::DetourBudgetExceeded { stuck_at: cur });
        }
        // 1. Merge this node's knowledge into the header.
        let before = header.len();
        header.extend(km.known_by(cur).iter().copied());
        let grew = header.len() > before;
        // 2. (Re-)plan when the view changed or no plan is active.
        if grew || plan.is_empty() || pos + 1 >= plan.len() {
            let view = view_of(&header);
            let (r, _) = ftgcr::route(gc, &view, cur, d)?;
            plan = r.nodes().to_vec();
            pos = 0;
            stats.replans += 1;
        }
        // 3. Follow the plan one hop. The hop is incident to `cur`, whose
        //    own observations are in the header, so the plan avoided any
        //    dead incident link: the hop is physically usable.
        let next = plan[pos + 1];
        debug_assert!(
            {
                let dims = cur.differing_dims(next);
                dims.len() == 1
                    && gc.has_link(cur, dims[0])
                    && truth.is_link_usable(gcube_topology::LinkId::new(cur, dims[0]))
            },
            "local knowledge must make every taken hop safe"
        );
        cur = next;
        pos += 1;
        path.push(cur);
    }
    stats.header_items = header.len();
    Ok((Route::new(path), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::theorem5_precondition;
    use crate::ffgcr;
    use crate::knowledge::exchange_rounds;
    use gcube_topology::LinkId;

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn fault_free_distributed_is_optimal_with_one_plan() {
        let gc = GaussianCube::new(8, 4).unwrap();
        let truth = FaultSet::new();
        let km = exchange_rounds(&gc, &truth);
        for (s, d) in [(0u64, 255u64), (37, 200), (128, 1)] {
            let (r, stats) = route_distributed(&gc, &truth, &km, NodeId(s), NodeId(d)).unwrap();
            r.validate(&gc, &truth).unwrap();
            assert_eq!(r.hops() as u32, ffgcr::route_len(&gc, NodeId(s), NodeId(d)));
            assert_eq!(stats.replans, 1, "fault-free: the source plan suffices");
            assert_eq!(stats.header_items, 0);
        }
    }

    #[test]
    fn single_fault_delivered_with_local_knowledge() {
        let gc = GaussianCube::new(8, 2).unwrap();
        let mut rng = Rng(0xd1f);
        for _ in 0..8 {
            let mut truth = FaultSet::new();
            truth.add_node(NodeId(rng.next() % gc.num_nodes()));
            if !theorem5_precondition(&gc, &truth) {
                continue;
            }
            let km = exchange_rounds(&gc, &truth);
            for _ in 0..40 {
                let s = NodeId(rng.next() % gc.num_nodes());
                let d = NodeId(rng.next() % gc.num_nodes());
                if truth.is_node_faulty(s) || truth.is_node_faulty(d) || s == d {
                    continue;
                }
                let (r, stats) = route_distributed(&gc, &truth, &km, s, d)
                    .unwrap_or_else(|e| panic!("{s}->{d}: {e} truth={truth:?}"));
                r.validate(&gc, &truth).unwrap();
                assert!(
                    stats.header_items <= truth.len(),
                    "claim 5: header ≤ F items"
                );
                // Local knowledge costs at most a bounded premium over the
                // omniscient router.
                let (omni, _) = ftgcr::route(&gc, &truth, s, d).unwrap();
                assert!(
                    r.hops() <= omni.hops() + 2 * gc.n() as usize,
                    "{s}->{d}: distributed {} vs omniscient {}",
                    r.hops(),
                    omni.hops()
                );
            }
        }
    }

    #[test]
    fn link_faults_learned_en_route() {
        // An A-category link fault is known only inside its GEEC; remote
        // sources plan straight through it and must adapt on arrival.
        let gc = GaussianCube::new(9, 2).unwrap();
        let mut truth = FaultSet::new();
        truth.add_link(LinkId::new(NodeId(0b110), 2));
        let km = exchange_rounds(&gc, &truth);
        let mut rng = Rng(0x11f);
        let mut adapted = 0;
        for _ in 0..60 {
            let s = NodeId(rng.next() % gc.num_nodes());
            let d = NodeId(rng.next() % gc.num_nodes());
            if s == d {
                continue;
            }
            let (r, stats) = route_distributed(&gc, &truth, &km, s, d).unwrap();
            r.validate(&gc, &truth).unwrap();
            if stats.replans > 1 {
                adapted += 1;
            }
        }
        // At least some pairs must have needed an en-route replan.
        assert!(adapted >= 1, "no pair ever adapted, test is vacuous");
    }

    #[test]
    fn distributed_matches_omniscient_when_source_knows() {
        // If the source's own class holds the fault, its first plan already
        // sees it: distributed == omniscient, one plan.
        let gc = GaussianCube::new(8, 2).unwrap();
        let mut truth = FaultSet::new();
        // Fault in class of node 2 (even → class 0).
        truth.add_link(LinkId::new(NodeId(2), 2));
        let km = exchange_rounds(&gc, &truth);
        let s = NodeId(2); // same GEEC — knows the fault
        let d = NodeId(0b1111_1110);
        let (r, stats) = route_distributed(&gc, &truth, &km, s, d).unwrap();
        let (omni, _) = ftgcr::route(&gc, &truth, s, d).unwrap();
        assert_eq!(r.hops(), omni.hops());
        assert_eq!(stats.replans, 1);
    }

    #[test]
    fn rejects_faulty_endpoints() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let mut truth = FaultSet::new();
        truth.add_node(NodeId(5));
        let km = exchange_rounds(&gc, &truth);
        assert!(matches!(
            route_distributed(&gc, &truth, &km, NodeId(5), NodeId(0)),
            Err(RoutingError::SourceFaulty(_))
        ));
        assert!(matches!(
            route_distributed(&gc, &truth, &km, NodeId(0), NodeId(5)),
            Err(RoutingError::DestFaulty(_))
        ));
    }
}
