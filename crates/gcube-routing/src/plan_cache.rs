//! The ending-class plan cache — the perf layer over Algorithms 1/3.
//!
//! Theorem 2's projection argument says an FFGCR plan is determined by the
//! route's *tree-level* data alone: the endpoint ending classes `EC(s)`,
//! `EC(d)` and the set of classes that own a pending high-dimension flip
//! (`{c mod 2^α : c ≥ α, bit c of s ⊕ d set}`). Nothing else about the
//! concrete pair enters the walk construction — `2^n` node pairs collapse
//! onto at most `2^α · 2^α · 2^{2^α}` distinct planning problems, and in
//! practice onto the handful of keys live traffic actually exercises.
//!
//! [`PlanCache`] memoises the tree walk (PC trunk + CT side trips, with
//! per-step edge dimensions and first-visit flags precomputed) under the
//! key `(EC(s), EC(d), required-class mask)`. Realising a concrete route
//! then reduces to an XOR replay: walk the cached class sequence, flipping
//! each class's pending dimensions (`Dim(α,k) ∩ (s ⊕ d)`, ascending) at
//! its first visit. No sets, no maps, no tree search — the only allocation
//! is the output route itself.
//!
//! The packed mask needs `2^α ≤ 64`; wider spines (α > 6, rare — the paper
//! evaluates α ≤ 4) transparently fall back to the uncached planner. The
//! cache is keyed purely by topology, so fault events never invalidate it:
//! fault handling (FTGCR's plan repair and crossing detours) stays
//! per-packet, downstream of the cached walk. See DESIGN.md §8.

use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use gcube_topology::classes::{class_dim_masks, required_class_mask};
use gcube_topology::{GaussianCube, GaussianTree, LinkMask, NodeId, Topology};

use crate::collective::{self, BroadcastTree, RepairOutcome};
use crate::ffgcr;
use crate::route::{Route, RoutingError};

/// Largest `α` the packed cache key supports: the required-class set must
/// fit a 64-bit mask, so `2^α ≤ 64`.
pub const MAX_CACHED_ALPHA: u32 = 6;

/// One memoised tree walk, preprocessed for allocation-free replay.
#[derive(Clone, Debug)]
pub struct CachedWalk {
    /// The ending-class sequence (PC trunk plus CT side trips).
    pub classes: Vec<u64>,
    /// `edge_dims[i]` is the dimension (`< α`) crossing
    /// `classes[i] → classes[i+1]`; length `classes.len() - 1`.
    pub edge_dims: Vec<u32>,
    /// Whether position `i` is the walk's first visit of `classes[i]` —
    /// where FFGCR schedules that class's dimension flips.
    pub first_visit: Vec<bool>,
}

impl CachedWalk {
    /// Tree hops of the walk (excludes intra-class flips).
    #[inline]
    pub fn tree_hops(&self) -> usize {
        self.edge_dims.len()
    }
}

/// Snapshot of the cache's hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a memoised walk.
    pub hits: u64,
    /// Lookups that had to build the walk.
    pub misses: u64,
    /// Distinct keys currently memoised.
    pub entries: u64,
}

impl CacheStats {
    /// Hits over total lookups (`1.0` for an untouched cache).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Snapshot of the broadcast-tree cache's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TreeCacheStats {
    /// Lookups served from a cached tree at the current fault generation.
    pub hits: u64,
    /// Lookups that built, rebuilt or regrafted a tree.
    pub misses: u64,
    /// Misses resolved by a subtree regraft (same root, new generation).
    pub regrafts: u64,
    /// Misses resolved by a full rebuild (root replaced).
    pub rebuilds: u64,
}

/// An exported broadcast-tree cache entry: everything needed to re-seed
/// a fresh cache so that subsequent regrafts diff against the same
/// previous tree the original cache held.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeSnapshot {
    /// Root ending class (the cache key).
    pub class: u64,
    /// Concrete root the cached tree runs from.
    pub root: NodeId,
    /// Fault generation the tree was screened/patched against.
    pub generation: u64,
    /// The recorded transition outcome to `generation`.
    pub repair: RepairOutcome,
    /// The cached tree itself.
    pub tree: BroadcastTree,
}

/// One cached fault-screened broadcast tree, keyed by root ending class.
#[derive(Debug)]
struct TreeEntry {
    root: NodeId,
    /// Fault generation the tree was screened/patched against.
    generation: u64,
    tree: Arc<BroadcastTree>,
    /// Outcome of the transition *to* `generation` (zeroed for a fresh
    /// build) — every caller at this generation observes the same value,
    /// so repair accounting is independent of which thread got there
    /// first.
    repair: RepairOutcome,
}

/// A memoised planner for one cube shape `GC(n, 2^α)`.
///
/// Thread-safe: lookups take a short internal lock on the walk map and
/// share walks via `Arc`, so one cache can serve a whole sweep.
#[derive(Debug)]
pub struct PlanCache {
    n: u32,
    alpha: u32,
    tree: GaussianTree,
    /// `Dim(α, k)` per class as a dimension bitmask (empty when inactive).
    class_dim_mask: Vec<u64>,
    walks: Mutex<HashMap<(u64, u64, u64), Arc<CachedWalk>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Fault-screened broadcast trees for the collective traffic class,
    /// keyed by root ending class and invalidated by fault-generation
    /// bumps (unlike `walks`, which is pure topology).
    trees: Mutex<HashMap<u64, TreeEntry>>,
    tree_hits: AtomicU64,
    tree_misses: AtomicU64,
    tree_regrafts: AtomicU64,
    tree_rebuilds: AtomicU64,
}

impl PlanCache {
    /// Build a cache for `gc`'s shape. Cheap: the walk map starts empty
    /// and fills on demand.
    pub fn new(gc: &GaussianCube) -> PlanCache {
        let (n, alpha) = (gc.n(), gc.alpha());
        let class_dim_mask = if alpha <= MAX_CACHED_ALPHA {
            class_dim_masks(n, alpha)
        } else {
            Vec::new()
        };
        PlanCache {
            n,
            alpha,
            tree: GaussianTree::new(alpha).expect("alpha within width cap"),
            class_dim_mask,
            walks: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            trees: Mutex::new(HashMap::new()),
            tree_hits: AtomicU64::new(0),
            tree_misses: AtomicU64::new(0),
            tree_regrafts: AtomicU64::new(0),
            tree_rebuilds: AtomicU64::new(0),
        }
    }

    /// Whether this cache was built for `gc`'s shape.
    #[inline]
    pub fn matches(&self, gc: &GaussianCube) -> bool {
        self.n == gc.n() && self.alpha == gc.alpha()
    }

    /// Whether the packed key applies (`α ≤ 6`). When `false`, [`route`]
    /// transparently delegates to the uncached planner.
    ///
    /// [`route`]: PlanCache::route
    #[inline]
    pub fn is_active(&self) -> bool {
        self.alpha <= MAX_CACHED_ALPHA
    }

    /// `Dim(α, k)` as a dimension bitmask. Panics when inactive.
    #[inline]
    pub fn class_dims(&self, k: u64) -> u64 {
        self.class_dim_mask[k as usize]
    }

    /// The memoised walk from class `ks` to `kd` covering the classes in
    /// `required` (a class bitmask), built on first use.
    pub fn walk(&self, ks: u64, kd: u64, required: u64) -> Arc<CachedWalk> {
        let key = (ks, kd, required);
        if let Some(w) = self.walks.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(w);
        }
        // Built outside the lock: a racing builder produces the identical
        // walk. The hit/miss split is decided at insert time so each key
        // counts exactly one miss under any interleaving — a racing
        // builder that loses the insert counts a hit, keeping the
        // counters independent of thread count.
        let built = Arc::new(self.build_walk(ks, kd, required));
        match self.walks.lock().entry(key) {
            Entry::Occupied(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(e.get())
            }
            Entry::Vacant(e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Arc::clone(e.insert(built))
            }
        }
    }

    fn build_walk(&self, ks: u64, kd: u64, required: u64) -> CachedWalk {
        let req: BTreeSet<NodeId> = (0..64u64)
            .filter(|&k| required >> k & 1 == 1)
            .map(NodeId)
            .collect();
        let walk = ffgcr::tree_walk_covering(&self.tree, NodeId(ks), NodeId(kd), &req);
        let edge_dims = walk
            .windows(2)
            .map(|w| {
                self.tree
                    .edge_dim(w[0], w[1])
                    .expect("walk follows tree edges")
            })
            .collect();
        let mut seen = 0u64;
        let first_visit = walk
            .iter()
            .map(|k| {
                let bit = 1u64 << k.0;
                let first = seen & bit == 0;
                seen |= bit;
                first
            })
            .collect();
        CachedWalk {
            classes: walk.into_iter().map(|k| k.0).collect(),
            edge_dims,
            first_visit,
        }
    }

    /// The cached walk plus the high-dimension flip mask
    /// (`(s ⊕ d)` restricted to dimensions `≥ α`) for a concrete pair —
    /// the two ingredients FTGCR's executor builds its schedule from.
    pub fn walk_and_flips(
        &self,
        gc: &GaussianCube,
        s: NodeId,
        d: NodeId,
    ) -> (Arc<CachedWalk>, u64) {
        debug_assert!(self.is_active() && self.matches(gc));
        let high = (s.0 ^ d.0) >> self.alpha << self.alpha;
        let required = required_class_mask(self.alpha, s, d);
        (
            self.walk(gc.ending_class(s), gc.ending_class(d), required),
            high,
        )
    }

    /// FFGCR through the cache: the node sequence is identical to
    /// [`ffgcr::route`]'s (property-tested), at cache-lookup + XOR-replay
    /// cost. The output route is the only allocation.
    pub fn route(&self, gc: &GaussianCube, s: NodeId, d: NodeId) -> Result<Route, RoutingError> {
        if !gc.contains(s) {
            return Err(RoutingError::OutOfRange(s));
        }
        if !gc.contains(d) {
            return Err(RoutingError::OutOfRange(d));
        }
        if !self.is_active() {
            return ffgcr::route(gc, s, d);
        }
        let (walk, high) = self.walk_and_flips(gc, s, d);
        let mut nodes = Vec::with_capacity(walk.classes.len() + high.count_ones() as usize);
        let mut cur = s;
        nodes.push(cur);
        for (i, &k) in walk.classes.iter().enumerate() {
            if i > 0 {
                cur = cur.flip(walk.edge_dims[i - 1]);
                nodes.push(cur);
            }
            if walk.first_visit[i] {
                // This class's pending flips, ascending — the same order
                // ffgcr::realize uses.
                let mut pending = self.class_dim_mask[k as usize] & high;
                while pending != 0 {
                    let c = pending.trailing_zeros();
                    pending &= pending - 1;
                    cur = cur.flip(c);
                    nodes.push(cur);
                }
            }
        }
        debug_assert_eq!(cur, d, "cached realisation must land on the destination");
        if cur != d {
            return Err(RoutingError::Unreachable { from: s, to: d });
        }
        Ok(Route::new(nodes))
    }

    /// The fault-screened broadcast tree rooted at `root` for the fault
    /// set `mask` at change stamp `generation`, cached by root ending
    /// class.
    ///
    /// * Same root, same generation → pure hit (shared `Arc`).
    /// * Same root, new generation → **regraft repair** of the cached tree
    ///   (subtree reattachment, no full rebuild).
    /// * Different root (the old one died) → full screened rebuild,
    ///   flagged `rebuilt` in the outcome.
    ///
    /// The returned [`RepairOutcome`] is the one recorded for the entry's
    /// *current* generation: a racing builder that loses the insert adopts
    /// the winner's identical result, so outcome and counters are the same
    /// for every caller regardless of thread interleaving. Callers that
    /// account repairs (the simulator's coordinator) diff the generation
    /// themselves to account each transition exactly once.
    pub fn broadcast_tree_for<M: LinkMask + ?Sized>(
        &self,
        gc: &GaussianCube,
        mask: &M,
        root: NodeId,
        generation: u64,
    ) -> (Arc<BroadcastTree>, RepairOutcome) {
        debug_assert!(self.matches(gc), "cache must be built for this cube");
        let class = gc.ending_class(root);
        let prev: Option<(NodeId, Arc<BroadcastTree>)> = {
            let map = self.trees.lock();
            match map.get(&class) {
                Some(e) if e.root == root && e.generation == generation => {
                    self.tree_hits.fetch_add(1, Ordering::Relaxed);
                    return (Arc::clone(&e.tree), e.repair);
                }
                Some(e) => Some((e.root, Arc::clone(&e.tree))),
                None => None,
            }
        };
        // Build or patch outside the lock: the result is a pure function
        // of (old tree, mask), so racing builders agree.
        let (tree, repair) = match prev {
            Some((old_root, old_tree)) if old_root == root => {
                let mut patched = (*old_tree).clone();
                let outcome = patched.regraft(gc, mask);
                (patched, outcome)
            }
            was_cached => {
                let built = collective::screened_broadcast_tree(gc, mask, root)
                    .expect("collective roots are validated in-range and healthy");
                let outcome = RepairOutcome {
                    rebuilt: was_cached.is_some(),
                    ..RepairOutcome::default()
                };
                (built, outcome)
            }
        };
        let mut map = self.trees.lock();
        match map.entry(class) {
            Entry::Occupied(mut e) => {
                let cur = e.get();
                if cur.root == root && cur.generation == generation {
                    // A racing builder won the insert: adopt its result.
                    self.tree_hits.fetch_add(1, Ordering::Relaxed);
                    return (Arc::clone(&cur.tree), cur.repair);
                }
                self.tree_misses.fetch_add(1, Ordering::Relaxed);
                if repair.rebuilt {
                    self.tree_rebuilds.fetch_add(1, Ordering::Relaxed);
                } else if cur.root == root {
                    self.tree_regrafts.fetch_add(1, Ordering::Relaxed);
                }
                let entry = TreeEntry {
                    root,
                    generation,
                    tree: Arc::new(tree),
                    repair,
                };
                let shared = Arc::clone(&entry.tree);
                e.insert(entry);
                (shared, repair)
            }
            Entry::Vacant(e) => {
                self.tree_misses.fetch_add(1, Ordering::Relaxed);
                let entry = TreeEntry {
                    root,
                    generation,
                    tree: Arc::new(tree),
                    repair,
                };
                let shared = Arc::clone(&entry.tree);
                e.insert(entry);
                (shared, repair)
            }
        }
    }

    /// Snapshot the broadcast-tree cache contents (sorted by class) —
    /// the *stateful* part of the cache. Unlike the walk map, which is a
    /// pure function of topology, a cached broadcast tree carries repair
    /// history: regrafting patches the previous tree, so the current
    /// shape depends on the sequence of fault generations it lived
    /// through. A checkpointed engine must carry these entries to resume
    /// bitwise; see [`PlanCache::restore_tree`].
    pub fn tree_snapshots(&self) -> Vec<TreeSnapshot> {
        let map = self.trees.lock();
        let mut out: Vec<TreeSnapshot> = map
            .iter()
            .map(|(&class, e)| TreeSnapshot {
                class,
                root: e.root,
                generation: e.generation,
                repair: e.repair,
                tree: (*e.tree).clone(),
            })
            .collect();
        out.sort_unstable_by_key(|s| s.class);
        out
    }

    /// Seed the broadcast-tree cache with a snapshotted entry (inverse of
    /// [`PlanCache::tree_snapshots`]; counters are not restored — they
    /// are reporting, not behavior).
    pub fn restore_tree(&self, snap: TreeSnapshot) {
        self.trees.lock().insert(
            snap.class,
            TreeEntry {
                root: snap.root,
                generation: snap.generation,
                tree: Arc::new(snap.tree),
                repair: snap.repair,
            },
        );
    }

    /// Snapshot the broadcast-tree cache counters.
    pub fn tree_stats(&self) -> TreeCacheStats {
        TreeCacheStats {
            hits: self.tree_hits.load(Ordering::Relaxed),
            misses: self.tree_misses.load(Ordering::Relaxed),
            regrafts: self.tree_regrafts.load(Ordering::Relaxed),
            rebuilds: self.tree_rebuilds.load(Ordering::Relaxed),
        }
    }

    /// Snapshot the hit/miss counters and entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.walks.lock().len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_topology::NoFaults;

    #[test]
    fn cached_routes_equal_uncached_exhaustively() {
        for (n, m) in [(6u32, 1u64), (6, 2), (6, 4), (7, 8), (5, 16)] {
            let gc = GaussianCube::new(n, m).unwrap();
            let cache = PlanCache::new(&gc);
            for s in 0..gc.num_nodes() {
                for d in 0..gc.num_nodes() {
                    let cached = cache.route(&gc, NodeId(s), NodeId(d)).unwrap();
                    let plain = ffgcr::route(&gc, NodeId(s), NodeId(d)).unwrap();
                    assert_eq!(
                        cached.nodes(),
                        plain.nodes(),
                        "GC({n},{m}) {s}->{d}: cached route must be identical"
                    );
                    cached.validate(&gc, &NoFaults).unwrap();
                }
            }
        }
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let gc = GaussianCube::new(8, 4).unwrap();
        let cache = PlanCache::new(&gc);
        assert_eq!(cache.stats(), CacheStats::default());
        cache.route(&gc, NodeId(0), NodeId(255)).unwrap();
        let after_first = cache.stats();
        assert_eq!(after_first.hits, 0);
        assert!(after_first.misses >= 1 && after_first.entries >= 1);
        // Same pair again: pure hit.
        cache.route(&gc, NodeId(0), NodeId(255)).unwrap();
        let after_second = cache.stats();
        assert_eq!(after_second.hits, after_first.hits + 1);
        assert_eq!(after_second.misses, after_first.misses);
        assert!(after_second.hit_rate() > 0.0);
        // A pair with the same classes and required set shares the entry.
        let (s2, d2) = (NodeId(0b0100), NodeId(0b0100 ^ 255));
        assert_eq!(gc.ending_class(s2), gc.ending_class(NodeId(0)));
        cache.route(&gc, s2, d2).unwrap();
        assert_eq!(cache.stats().hits, after_second.hits + 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let gc = GaussianCube::new(4, 2).unwrap();
        let cache = PlanCache::new(&gc);
        assert!(cache.route(&gc, NodeId(16), NodeId(0)).is_err());
        assert!(cache.route(&gc, NodeId(0), NodeId(99)).is_err());
    }

    #[test]
    fn wide_spine_falls_back_to_uncached() {
        // α = 7 > MAX_CACHED_ALPHA: the cache must stay correct by
        // delegating to the plain planner.
        let gc = GaussianCube::new(8, 128).unwrap();
        let cache = PlanCache::new(&gc);
        assert!(!cache.is_active());
        for (s, d) in [(0u64, 255u64), (17, 200), (99, 99)] {
            let cached = cache.route(&gc, NodeId(s), NodeId(d)).unwrap();
            let plain = ffgcr::route(&gc, NodeId(s), NodeId(d)).unwrap();
            assert_eq!(cached.nodes(), plain.nodes());
        }
        assert_eq!(cache.stats().entries, 0, "fallback must not populate");
    }

    #[test]
    fn tree_cache_hits_regrafts_and_rebuilds() {
        use crate::faults::FaultSet;
        use gcube_topology::LinkId;

        let gc = GaussianCube::new(7, 2).unwrap();
        let cache = PlanCache::new(&gc);
        let mut faults = FaultSet::new();
        assert_eq!(cache.tree_stats(), TreeCacheStats::default());

        // Fresh build: miss, not a rebuild.
        let (t1, o1) = cache.broadcast_tree_for(&gc, &faults, NodeId(0), faults.generation());
        assert!(!o1.rebuilt);
        assert_eq!(t1.covered_count(), gc.num_nodes());
        let s = cache.tree_stats();
        assert_eq!((s.hits, s.misses, s.regrafts, s.rebuilds), (0, 1, 0, 0));

        // Same root + generation: pure hit on the shared Arc.
        let (t2, o2) = cache.broadcast_tree_for(&gc, &faults, NodeId(0), faults.generation());
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(o2, o1);
        assert_eq!(cache.tree_stats().hits, 1);

        // Fault on a tree edge, new generation: regraft, full coverage kept.
        let child = t1.children()[&NodeId(0)][0];
        faults.add_link(LinkId::new(child, child.differing_dims(NodeId(0))[0]));
        let (t3, o3) = cache.broadcast_tree_for(&gc, &faults, NodeId(0), faults.generation());
        assert!(!o3.rebuilt);
        assert!(o3.regrafted_subtrees >= 1);
        assert_eq!(t3.covered_count(), gc.num_nodes());
        t3.validate_masked(&gc, &faults).unwrap();
        let s = cache.tree_stats();
        assert_eq!((s.misses, s.regrafts, s.rebuilds), (2, 1, 0));
        // Re-query at the repaired generation re-observes the outcome.
        let (_, o3b) = cache.broadcast_tree_for(&gc, &faults, NodeId(0), faults.generation());
        assert_eq!(o3b, o3);

        // Root replacement: full rebuild flagged.
        faults.add_node(NodeId(0));
        let (t4, o4) = cache.broadcast_tree_for(&gc, &faults, NodeId(4), faults.generation());
        assert!(o4.rebuilt);
        assert_eq!(t4.root, NodeId(4));
        assert_eq!(cache.tree_stats().rebuilds, 1);
    }

    #[test]
    fn alpha_zero_degenerates_to_hamming_replay() {
        let gc = GaussianCube::new(10, 1).unwrap();
        let cache = PlanCache::new(&gc);
        assert!(cache.is_active());
        for (s, d) in [(0u64, 1023u64), (37, 512), (123, 321)] {
            let cached = cache.route(&gc, NodeId(s), NodeId(d)).unwrap();
            let plain = ffgcr::route(&gc, NodeId(s), NodeId(d)).unwrap();
            assert_eq!(cached.nodes(), plain.nodes());
            assert_eq!(cached.hops() as u32, NodeId(s).hamming(NodeId(d)));
        }
    }
}
