//! The [`Route`] type and routing errors.
//!
//! A route is the full node sequence a packet traverses, source and
//! destination inclusive. Routes produced by the paper's algorithms are
//! validated against the topology (every hop must be a real, non-faulty
//! link) by [`Route::validate`].

use std::fmt;

use gcube_topology::{LinkId, LinkMask, NodeId, Topology};

/// A packet's full node trajectory, endpoints inclusive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    nodes: Vec<NodeId>,
}

impl Route {
    /// Wrap a node sequence. Must be non-empty.
    pub fn new(nodes: Vec<NodeId>) -> Route {
        assert!(!nodes.is_empty(), "a route has at least its source");
        Route { nodes }
    }

    /// The source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The destination node.
    #[inline]
    pub fn dest(&self) -> NodeId {
        *self.nodes.last().unwrap()
    }

    /// Number of hops (links traversed).
    #[inline]
    pub fn hops(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The node sequence.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The links traversed, in order (one per hop).
    pub fn links(&self) -> Vec<LinkId> {
        self.nodes
            .windows(2)
            .map(|w| {
                let dims = w[0].differing_dims(w[1]);
                debug_assert_eq!(dims.len(), 1, "hops flip exactly one bit");
                LinkId::new(w[0], dims[0])
            })
            .collect()
    }

    /// Whether the route never revisits a node (true for optimal fault-free
    /// routes; fault detours may legitimately revisit).
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.nodes.len());
        self.nodes.iter().all(|n| seen.insert(*n))
    }

    /// Check that every hop is a real link of `topo`, healthy under `mask`,
    /// with all intermediate nodes healthy.
    pub fn validate<T, M>(&self, topo: &T, mask: &M) -> Result<(), RoutingError>
    where
        T: Topology + ?Sized,
        M: LinkMask + ?Sized,
    {
        for n in &self.nodes {
            if !topo.contains(*n) {
                return Err(RoutingError::InvalidHop { from: *n, to: *n });
            }
            if !mask.node_ok(*n) {
                return Err(RoutingError::FaultyNodeOnRoute { node: *n });
            }
        }
        for w in self.nodes.windows(2) {
            let (a, b) = (w[0], w[1]);
            let dims = a.differing_dims(b);
            if dims.len() != 1 || !topo.has_link(a, dims[0]) {
                return Err(RoutingError::InvalidHop { from: a, to: b });
            }
            if !mask.link_ok(LinkId::new(a, dims[0])) {
                return Err(RoutingError::FaultyLinkOnRoute {
                    link: LinkId::new(a, dims[0]),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for n in &self.nodes {
            if !first {
                write!(f, " -> ")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        Ok(())
    }
}

/// Errors produced by the routing algorithms and route validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoutingError {
    /// Source node is faulty (assumption 1 of §6 forbids this).
    SourceFaulty(NodeId),
    /// Destination node is faulty.
    DestFaulty(NodeId),
    /// Source or destination label out of range for the topology.
    OutOfRange(NodeId),
    /// No healthy route exists (fault preconditions violated badly enough to
    /// disconnect the pair).
    Unreachable {
        /// Source.
        from: NodeId,
        /// Destination.
        to: NodeId,
    },
    /// The algorithm exceeded its internal detour budget — the fault
    /// distribution violates the theorem preconditions.
    DetourBudgetExceeded {
        /// Where the packet was abandoned.
        stuck_at: NodeId,
    },
    /// A collective primitive found the (fault-screened) cube disconnected:
    /// some healthy nodes cannot be reached from the root.
    Disconnected {
        /// How many healthy nodes are unreachable.
        unreachable: u64,
    },
    /// Validation: a hop that is not a link of the topology.
    InvalidHop {
        /// Hop origin.
        from: NodeId,
        /// Hop target.
        to: NodeId,
    },
    /// Validation: the route crosses a faulty node.
    FaultyNodeOnRoute {
        /// The faulty node.
        node: NodeId,
    },
    /// Validation: the route uses a faulty link.
    FaultyLinkOnRoute {
        /// The faulty link.
        link: LinkId,
    },
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::SourceFaulty(n) => write!(f, "source node {n} is faulty"),
            RoutingError::DestFaulty(n) => write!(f, "destination node {n} is faulty"),
            RoutingError::OutOfRange(n) => write!(f, "node {n} is out of range"),
            RoutingError::Unreachable { from, to } => {
                write!(f, "no healthy route from {from} to {to}")
            }
            RoutingError::DetourBudgetExceeded { stuck_at } => {
                write!(
                    f,
                    "detour budget exceeded at {stuck_at} (preconditions violated)"
                )
            }
            RoutingError::Disconnected { unreachable } => {
                write!(
                    f,
                    "cube is disconnected: {unreachable} healthy nodes unreachable"
                )
            }
            RoutingError::InvalidHop { from, to } => {
                write!(f, "hop {from} -> {to} is not a link of the topology")
            }
            RoutingError::FaultyNodeOnRoute { node } => {
                write!(f, "route passes through faulty node {node}")
            }
            RoutingError::FaultyLinkOnRoute { link } => {
                write!(f, "route uses faulty link {link}")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_topology::{Hypercube, NoFaults};

    #[test]
    fn route_accessors() {
        let r = Route::new(vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(r.source(), NodeId(0));
        assert_eq!(r.dest(), NodeId(3));
        assert_eq!(r.hops(), 2);
        assert!(r.is_simple());
        assert_eq!(
            r.links(),
            vec![LinkId::new(NodeId(0), 0), LinkId::new(NodeId(1), 1)]
        );
    }

    #[test]
    fn zero_hop_route() {
        let r = Route::new(vec![NodeId(5)]);
        assert_eq!(r.hops(), 0);
        assert_eq!(r.source(), r.dest());
        assert!(r.links().is_empty());
        let q = Hypercube::new(3).unwrap();
        assert!(r.validate(&q, &NoFaults).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least its source")]
    fn empty_route_panics() {
        let _ = Route::new(vec![]);
    }

    #[test]
    fn validate_rejects_non_links() {
        let q = Hypercube::new(2).unwrap();
        // 0 -> 3 flips two bits at once.
        let r = Route::new(vec![NodeId(0), NodeId(3)]);
        assert!(matches!(
            r.validate(&q, &NoFaults),
            Err(RoutingError::InvalidHop { .. })
        ));
        // Out of range node.
        let r = Route::new(vec![NodeId(0), NodeId(8)]);
        assert!(r.validate(&q, &NoFaults).is_err());
    }

    #[test]
    fn validate_respects_mask() {
        struct Fault;
        impl LinkMask for Fault {
            fn node_ok(&self, n: NodeId) -> bool {
                n != NodeId(1)
            }
            fn link_ok(&self, l: LinkId) -> bool {
                l != LinkId::new(NodeId(2), 0)
            }
        }
        let q = Hypercube::new(2).unwrap();
        let through_faulty_node = Route::new(vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert!(matches!(
            through_faulty_node.validate(&q, &Fault),
            Err(RoutingError::FaultyNodeOnRoute { .. })
        ));
        let over_faulty_link = Route::new(vec![NodeId(2), NodeId(3)]);
        assert!(matches!(
            over_faulty_link.validate(&q, &Fault),
            Err(RoutingError::FaultyLinkOnRoute { .. })
        ));
        let healthy = Route::new(vec![NodeId(0), NodeId(2)]);
        assert!(healthy.validate(&q, &Fault).is_ok());
    }

    #[test]
    fn non_simple_route_detected() {
        let r = Route::new(vec![NodeId(0), NodeId(1), NodeId(0)]);
        assert!(!r.is_simple());
    }

    #[test]
    fn display_formats() {
        let r = Route::new(vec![NodeId(0), NodeId(1)]);
        assert_eq!(r.to_string(), "0 -> 1");
        assert!(RoutingError::SourceFaulty(NodeId(7))
            .to_string()
            .contains('7'));
    }
}
