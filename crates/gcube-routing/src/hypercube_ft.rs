//! Fault-tolerant routing in (embedded) binary hypercubes — the substrate
//! Theorem 3 delegates to, built in the style of the paper's references:
//! Wu's safety levels [5] and Lan's adaptive spare-dimension routing [6].
//!
//! The paper routes inside `GEEC(α,k,t)` subcubes, which are hypercubes
//! *embedded* in the Gaussian Cube: their `i`-th virtual dimension is a
//! physical GC dimension `dims[i]`. [`VirtualCube`] captures that embedding
//! so one implementation serves plain `Q_n`, the GEEC subcubes, and the two
//! sides of an exchanged hypercube.
//!
//! Routing layers:
//!
//! * [`ecube_route`] — the deterministic dimension-ordered baseline
//!   (fault-oblivious).
//! * [`safety_levels`] — Wu-style levels computed by distributed-style
//!   rounds of neighbour exchange: a node of level `ℓ` can reach any
//!   destination within Hamming distance `ℓ` along a monotone (shortest)
//!   path avoiding faults.
//! * [`route_adaptive`] — greedy adaptive routing: prefer a healthy
//!   preferred dimension (highest-safety neighbour first); if none, take a
//!   healthy spare dimension and *mask* it for the rest of the trip (the
//!   paper's livelock-freedom device); if the greedy step is stuck, fall
//!   back to a DFS detour (never fails when the pair is connected).

use gcube_topology::{LinkId, LinkMask, NodeId, Topology};

/// A hypercube embedded in a host topology: virtual dimension `i` flips the
/// physical dimension `dims[i]`; all labels share `base`'s bits outside
/// `dims`.
#[derive(Clone, Debug)]
pub struct VirtualCube {
    base: NodeId,
    dims: Vec<u32>,
    node_faulty: Vec<bool>,
    link_faulty: Vec<bool>, // indexed by coord * n + i, canonical bit-0 side
}

impl VirtualCube {
    /// Build the virtual cube containing `member`, spanning the physical
    /// `dims`, with faults projected from the host mask.
    ///
    /// `host_has_link(node, dim)` must be true for every member/dim pair —
    /// the caller guarantees the embedding exists (as `GEEC` does).
    pub fn from_host<T, M>(host: &T, mask: &M, member: NodeId, dims: &[u32]) -> VirtualCube
    where
        T: Topology + ?Sized,
        M: LinkMask + ?Sized,
    {
        let n = dims.len();
        assert!(n < 26, "virtual cube too large to materialise");
        let mut clear = member.0;
        for &d in dims {
            clear &= !(1u64 << d);
        }
        let base = NodeId(clear);
        let size = 1usize << n;
        let mut node_faulty = vec![false; size];
        let mut link_faulty = vec![false; size * n.max(1)];
        for coord in 0..size {
            let node = Self::expand(base, dims, coord as u64);
            debug_assert!(
                dims.iter().all(|&d| host.has_link(node, d)),
                "embedding must provide all cube links"
            );
            node_faulty[coord] = !mask.node_ok(node);
            for (i, &d) in dims.iter().enumerate() {
                if !node.bit(d) && !mask.link_ok(LinkId::new(node, d)) {
                    link_faulty[coord * n + i] = true;
                }
            }
        }
        VirtualCube {
            base,
            dims: dims.to_vec(),
            node_faulty,
            link_faulty,
        }
    }

    /// A plain fault-free `Q_n` as a virtual cube (for baselines/tests).
    pub fn plain(n: u32) -> VirtualCube {
        let dims: Vec<u32> = (0..n).collect();
        let size = 1usize << n;
        VirtualCube {
            base: NodeId(0),
            dims,
            node_faulty: vec![false; size],
            link_faulty: vec![false; size * n as usize],
        }
    }

    /// Dimension of the virtual cube.
    #[inline]
    pub fn n(&self) -> u32 {
        self.dims.len() as u32
    }

    /// Number of corners.
    #[inline]
    pub fn size(&self) -> usize {
        1usize << self.dims.len()
    }

    fn expand(base: NodeId, dims: &[u32], coord: u64) -> NodeId {
        let mut v = base.0;
        for (i, &d) in dims.iter().enumerate() {
            if (coord >> i) & 1 == 1 {
                v |= 1u64 << d;
            }
        }
        NodeId(v)
    }

    /// Host node for a virtual coordinate.
    pub fn node(&self, coord: u64) -> NodeId {
        Self::expand(self.base, &self.dims, coord)
    }

    /// Virtual coordinate of a host node (must be a member).
    pub fn coord(&self, node: NodeId) -> u64 {
        let mut c = 0u64;
        for (i, &d) in self.dims.iter().enumerate() {
            if node.bit(d) {
                c |= 1 << i;
            }
        }
        debug_assert_eq!(
            self.node(c),
            node,
            "node is not a member of this virtual cube"
        );
        c
    }

    /// Whether the corner at `coord` is faulty.
    #[inline]
    pub fn is_node_faulty(&self, coord: u64) -> bool {
        self.node_faulty[coord as usize]
    }

    /// Whether the link from `coord` along virtual dimension `i` is usable
    /// (link healthy; endpoint health is checked separately by callers).
    #[inline]
    pub fn is_link_faulty(&self, coord: u64, i: u32) -> bool {
        let n = self.dims.len();
        let canon = (coord & !(1u64 << i)) as usize;
        self.link_faulty[canon * n + i as usize]
    }

    /// Mark a corner faulty (test/bench helper).
    pub fn set_node_fault(&mut self, coord: u64) {
        self.node_faulty[coord as usize] = true;
    }

    /// Mark a link faulty (test/bench helper).
    pub fn set_link_fault(&mut self, coord: u64, i: u32) {
        let n = self.dims.len();
        let canon = (coord & !(1u64 << i)) as usize;
        self.link_faulty[canon * n + i as usize] = true;
    }

    /// Total faulty components (corners + links).
    pub fn fault_count(&self) -> usize {
        self.node_faulty.iter().filter(|&&f| f).count()
            + self.link_faulty.iter().filter(|&&f| f).count()
    }

    /// Healthy-step predicate: can a packet at `coord` hop along `i`?
    fn step_ok(&self, coord: u64, i: u32) -> bool {
        !self.is_link_faulty(coord, i) && !self.is_node_faulty(coord ^ (1 << i))
    }
}

/// Dimension-ordered (e-cube) route in a virtual cube, fault-oblivious.
/// Returns the coordinate sequence.
pub fn ecube_route(cube: &VirtualCube, s: u64, d: u64) -> Vec<u64> {
    let mut out = vec![s];
    let mut cur = s;
    for i in 0..cube.n() {
        if (cur ^ d) >> i & 1 == 1 {
            cur ^= 1 << i;
            out.push(cur);
        }
    }
    out
}

/// Wu-style safety levels computed by synchronous rounds of neighbour
/// exchange.
///
/// Level 0 = faulty. Every healthy node starts at level `n` and lowers
/// itself: with neighbour levels sorted ascending `s₁ ≤ … ≤ s_n`, its level
/// is the largest `ℓ` such that `sᵢ ≥ i−1` for all `i ≤ ℓ`. Under Wu's
/// *node-fault* model, a node of level `ℓ` can optimally (monotonically)
/// deliver to any healthy destination within distance `ℓ` — tested below.
/// With link faults the levels remain a sound heuristic (a faulty link makes
/// the neighbour look faulty from this side) but the distance-1 step of the
/// optimality guarantee no longer holds; `route_adaptive` never relies on it
/// for correctness.
///
/// Iterates to fixpoint; levels only decrease, so this mirrors the paper's
/// bounded "rounds of fault status exchange" (the round count is returned).
pub fn safety_levels(cube: &VirtualCube) -> (Vec<u32>, u32) {
    let n = cube.n();
    let size = cube.size();
    let mut level: Vec<u32> = (0..size)
        .map(|c| if cube.is_node_faulty(c as u64) { 0 } else { n })
        .collect();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let mut changed = false;
        let mut next = level.clone();
        for c in 0..size {
            if cube.is_node_faulty(c as u64) {
                continue;
            }
            // Gather neighbour levels; a faulty link makes the neighbour
            // *appear* faulty from this side.
            let mut nbrs: Vec<u32> = (0..n)
                .map(|i| {
                    if cube.is_link_faulty(c as u64, i) {
                        0
                    } else {
                        level[c ^ (1usize << i)]
                    }
                })
                .collect();
            nbrs.sort_unstable();
            let mut l = 0u32;
            for (i, &s) in nbrs.iter().enumerate() {
                if s >= i as u32 {
                    l = i as u32 + 1;
                } else {
                    break;
                }
            }
            if l != level[c] {
                next[c] = l;
                changed = true;
            }
        }
        level = next;
        if !changed {
            break;
        }
    }
    (level, rounds)
}

/// Statistics from an adaptive routing attempt.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteStats {
    /// Spare-dimension detour steps taken (each costs 2 extra hops total).
    pub spares_used: u32,
    /// Whether the DFS fallback ever had to backtrack.
    pub backtracked: bool,
}

/// Adaptive fault-tolerant routing in a virtual cube, from coordinate `s` to
/// `d`. Returns the coordinate path and stats, or `None` when `d` is
/// unreachable from `s` through healthy corners/links.
///
/// Strategy (Lan [6] style, safety-guided):
/// 1. among healthy *preferred* dimensions (differing bits), hop to the
///    neighbour with the highest safety level;
/// 2. otherwise among healthy *spare* dimensions not yet masked, hop to the
///    highest-safety neighbour and mask the dimension (livelock freedom:
///    each dimension is sparable once per packet);
/// 3. if both fail, run an explicit DFS detour over healthy corners —
///    guaranteed to deliver whenever the pair is connected, at the price of
///    possible backtracking (recorded in stats; never triggered when the
///    Theorem-3 preconditions hold — asserted by tests).
pub fn route_adaptive(cube: &VirtualCube, s: u64, d: u64) -> Option<(Vec<u64>, RouteStats)> {
    if cube.is_node_faulty(s) || cube.is_node_faulty(d) {
        return None;
    }
    let n = cube.n();
    let (levels, _) = safety_levels(cube);
    let mut stats = RouteStats::default();
    let mut path = vec![s];
    let mut cur = s;
    let mut spare_mask = 0u64;
    // Never step back onto a node already visited in the greedy phase: this
    // is what prevents a spare from being immediately undone by the
    // "preferred" flip-back (livelock freedom together with spare masking).
    let mut visited = vec![false; cube.size()];
    visited[s as usize] = true;
    // Greedy phase budget: distance + 2 hops per possible spare + slack.
    let budget = (n as usize + 2 * cube.fault_count() + 4) * 2 + 8;
    while cur != d && path.len() <= budget {
        let diff = cur ^ d;
        // 1. Preferred dimensions, highest-safety neighbour first.
        let best_pref = (0..n)
            .filter(|&i| {
                diff >> i & 1 == 1 && cube.step_ok(cur, i) && !visited[(cur ^ (1 << i)) as usize]
            })
            .max_by_key(|&i| (levels[(cur ^ (1 << i)) as usize], std::cmp::Reverse(i)));
        if let Some(i) = best_pref {
            cur ^= 1 << i;
            visited[cur as usize] = true;
            path.push(cur);
            continue;
        }
        // 2. Spare dimensions (not masked), highest-safety neighbour first.
        let best_spare = (0..n)
            .filter(|&i| {
                diff >> i & 1 == 0
                    && spare_mask >> i & 1 == 0
                    && cube.step_ok(cur, i)
                    && !visited[(cur ^ (1 << i)) as usize]
            })
            .max_by_key(|&i| (levels[(cur ^ (1 << i)) as usize], std::cmp::Reverse(i)));
        if let Some(i) = best_spare {
            spare_mask |= 1 << i;
            stats.spares_used += 1;
            cur ^= 1 << i;
            visited[cur as usize] = true;
            path.push(cur);
            continue;
        }
        break; // greedy stuck
    }
    if cur == d {
        return Some((path, stats));
    }
    // 3. DFS fallback from the stuck point (complete, may backtrack).
    stats.backtracked = true;
    let tail = dfs_route(cube, cur, d)?;
    path.extend_from_slice(&tail[1..]);
    Some((path, stats))
}

/// Complete DFS routing: finds *a* healthy walk from `s` to `d` whenever one
/// exists. The walk includes backtracking hops (a real packet would retrace
/// links), so it is a valid route, just not a short one.
fn dfs_route(cube: &VirtualCube, s: u64, d: u64) -> Option<Vec<u64>> {
    if cube.is_node_faulty(s) || cube.is_node_faulty(d) {
        return None;
    }
    let n = cube.n();
    let mut visited = vec![false; cube.size()];
    let mut walk = vec![s];
    let mut stack = vec![s];
    visited[s as usize] = true;
    while let Some(&cur) = stack.last() {
        if cur == d {
            return Some(walk);
        }
        // Prefer neighbours closer to d.
        let next = (0..n)
            .filter(|&i| cube.step_ok(cur, i) && !visited[(cur ^ (1 << i)) as usize])
            .min_by_key(|&i| ((cur ^ (1 << i)) ^ d).count_ones());
        match next {
            Some(i) => {
                let v = cur ^ (1 << i);
                visited[v as usize] = true;
                stack.push(v);
                walk.push(v);
            }
            None => {
                stack.pop();
                if let Some(&back) = stack.last() {
                    walk.push(back); // physical backtrack hop
                }
            }
        }
    }
    None
}

/// Convert a coordinate path into host node ids.
pub fn to_host_path(cube: &VirtualCube, coords: &[u64]) -> Vec<NodeId> {
    coords.iter().map(|&c| cube.node(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_topology::{GaussianCube, NoFaults};

    fn assert_cube_walk(cube: &VirtualCube, path: &[u64], s: u64, d: u64) {
        assert_eq!(path[0], s);
        assert_eq!(*path.last().unwrap(), d);
        for w in path.windows(2) {
            let diff = w[0] ^ w[1];
            assert_eq!(diff.count_ones(), 1, "hop flips one bit");
            let i = diff.trailing_zeros();
            assert!(!cube.is_link_faulty(w[0], i), "hop uses faulty link");
            assert!(!cube.is_node_faulty(w[1]), "hop enters faulty node");
        }
    }

    #[test]
    fn ecube_baseline() {
        let cube = VirtualCube::plain(4);
        let p = ecube_route(&cube, 0b0000, 0b1010);
        assert_eq!(p, vec![0b0000, 0b0010, 0b1010]);
        assert_eq!(ecube_route(&cube, 7, 7), vec![7]);
    }

    #[test]
    fn safety_levels_fault_free() {
        let cube = VirtualCube::plain(4);
        let (levels, rounds) = safety_levels(&cube);
        assert!(levels.iter().all(|&l| l == 4));
        assert!(rounds <= 5);
    }

    #[test]
    fn safety_levels_single_fault() {
        // One faulty node in Q_3: its neighbours drop to level... neighbours
        // see (0, 3, 3): largest l with s_i ≥ i-1: s1=0≥0, s2=3≥1, s3=3≥2 → 3?
        // No: s1 = 0 ≥ 0 ok, so the sorted check passes — neighbours stay
        // safe (one fault < n is always globally tolerable).
        let mut cube = VirtualCube::plain(3);
        cube.set_node_fault(0);
        let (levels, _) = safety_levels(&cube);
        assert_eq!(levels[0], 0);
        for (c, &l) in levels.iter().enumerate().skip(1) {
            assert!(l >= 2, "node {c} level {l}");
        }
    }

    #[test]
    fn safety_level_routing_is_monotone_when_safe() {
        // Wu's theorem (node-fault model): if level(s) ≥ dist(s,d), adaptive
        // routing finds an optimal (monotone) path. Check every node-fault
        // pattern of up to 3 faults drawn from a deterministic sample.
        let mut seed = 0xdeadbeefu64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _trial in 0..100 {
            let mut cube = VirtualCube::plain(4);
            for _ in 0..(next() % 4) {
                cube.set_node_fault(next() % 16);
            }
            let (levels, _) = safety_levels(&cube);
            for s in 0..16u64 {
                if cube.is_node_faulty(s) {
                    continue;
                }
                for d in 0..16u64 {
                    if cube.is_node_faulty(d) {
                        continue;
                    }
                    let h = (s ^ d).count_ones();
                    if levels[s as usize] >= h {
                        let (p, stats) = route_adaptive(&cube, s, d).unwrap();
                        assert_cube_walk(&cube, &p, s, d);
                        assert_eq!(p.len() as u32 - 1, h, "safe source must route optimally");
                        assert_eq!(stats.spares_used, 0);
                        assert!(!stats.backtracked);
                    }
                }
            }
        }
    }

    #[test]
    fn adaptive_delivers_under_theorem3_style_faults() {
        // All fault sets of < n faulty LINKS in Q_4 keep all pairs
        // deliverable with hops ≤ H + 2·spares and no backtracking, for a
        // deterministic sample of fault placements.
        let n = 4u32;
        let mut rng_state = 0x12345678u64;
        let mut next = move || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng_state >> 33
        };
        for _trial in 0..200 {
            let mut cube = VirtualCube::plain(n);
            let faults = (next() % n as u64) as usize; // 0..=3 < n
            for _ in 0..faults {
                let coord = next() % 16;
                let dim = (next() % n as u64) as u32;
                cube.set_link_fault(coord, dim);
            }
            for s in 0..16u64 {
                for d in 0..16u64 {
                    let (p, stats) =
                        route_adaptive(&cube, s, d).expect("connected under < n link faults");
                    assert_cube_walk(&cube, &p, s, d);
                    let h = (s ^ d).count_ones() as usize;
                    assert!(
                        p.len() - 1 <= h + 2 * stats.spares_used as usize || stats.backtracked,
                        "hop accounting violated"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_survives_node_faults_below_connectivity() {
        let n = 4u32;
        // Fault every node of one face except two, far fewer than needed to
        // disconnect; all healthy pairs must still route.
        let mut cube = VirtualCube::plain(n);
        cube.set_node_fault(0b0101);
        cube.set_node_fault(0b1010);
        cube.set_node_fault(0b0110);
        for s in 0..16u64 {
            if cube.is_node_faulty(s) {
                continue;
            }
            for d in 0..16u64 {
                if cube.is_node_faulty(d) {
                    continue;
                }
                let (p, _) = route_adaptive(&cube, s, d).expect("still connected");
                assert_cube_walk(&cube, &p, s, d);
            }
        }
    }

    #[test]
    fn unreachable_returns_none() {
        // Isolate corner 0 of Q_2 by failing both its links.
        let mut cube = VirtualCube::plain(2);
        cube.set_link_fault(0, 0);
        cube.set_link_fault(0, 1);
        assert!(route_adaptive(&cube, 0, 3).is_none());
        assert!(route_adaptive(&cube, 3, 0).is_none());
        // Faulty endpoints.
        let mut cube2 = VirtualCube::plain(2);
        cube2.set_node_fault(1);
        assert!(route_adaptive(&cube2, 1, 0).is_none());
        assert!(route_adaptive(&cube2, 0, 1).is_none());
    }

    #[test]
    fn virtual_cube_embedding_round_trip() {
        // Embed the GEEC(α=2, k=2, ·) cube of GC(10,4): dims {2, 6}.
        let gc = GaussianCube::new(10, 4).unwrap();
        let member = NodeId(0b0000000010);
        let cube = VirtualCube::from_host(&gc, &NoFaults, member, &[2, 6]);
        assert_eq!(cube.n(), 2);
        for coord in 0..4u64 {
            let node = cube.node(coord);
            assert_eq!(cube.coord(node), coord);
            assert_eq!(node.low_bits(2), 0b10);
        }
    }

    #[test]
    fn host_fault_projection() {
        let gc = GaussianCube::new(10, 4).unwrap();
        let member = NodeId(0b10);
        let mut faults = crate::faults::FaultSet::new();
        faults.add_link(LinkId::new(member, 2));
        faults.add_node(NodeId(0b10).flip(6));
        let cube = VirtualCube::from_host(&gc, &faults, member, &[2, 6]);
        let c0 = cube.coord(member);
        assert!(cube.is_link_faulty(c0, 0)); // virtual dim 0 = physical 2
        assert!(cube.is_node_faulty(cube.coord(member.flip(6))));
        assert_eq!(cube.fault_count(), 2);
    }

    #[test]
    fn dfs_fallback_handles_adversarial_pattern() {
        // A pattern engineered so the greedy phase is stuck at 0: corner 0's
        // links towards d are faulty and all spares masked quickly; DFS must
        // still deliver since the cube remains connected.
        let mut cube = VirtualCube::plain(3);
        cube.set_link_fault(0b000, 0);
        cube.set_link_fault(0b000, 1);
        let (p, _stats) = route_adaptive(&cube, 0, 0b011).unwrap();
        assert_cube_walk(&cube, &p, 0, 0b011);
    }

    #[test]
    fn to_host_path_maps_coords() {
        let cube = VirtualCube::plain(3);
        let hosts = to_host_path(&cube, &[0, 1, 3]);
        assert_eq!(hosts, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }
}
