//! Property-based tests for the routing crate.

use std::collections::{BTreeSet, HashSet};

use proptest::prelude::*;

use gcube_routing::collective::{
    binomial_broadcast_schedule_masked, broadcast_tree, gather_schedule_masked, multicast_walk,
};
use gcube_routing::ct::{ct_walk, steiner_edges};
use gcube_routing::faults::{link_category, node_category, FaultCategory, FaultSet};
use gcube_routing::multitree::{validate_independence, MultiTreeAtlas, MultiTreeError};
use gcube_routing::pc::pc_path;
use gcube_routing::verify::{assign_virtual_channels, ChannelDependencyGraph};
use gcube_routing::{ffgcr, ftgcr, PlanCache, Route, RoutingError};
use gcube_topology::{search, GaussianCube, GaussianTree, LinkId, NoFaults, NodeId, Topology};

fn arb_tree() -> impl Strategy<Value = GaussianTree> {
    (1u32..=10).prop_map(|m| GaussianTree::new(m).unwrap())
}

fn arb_gc() -> impl Strategy<Value = GaussianCube> {
    (3u32..=12).prop_flat_map(|n| {
        (Just(n), 0u32..=4.min(n)).prop_map(|(n, a)| GaussianCube::from_alpha(n, a).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// PC produces the unique tree path: valid, simple, BFS-length.
    #[test]
    fn pc_is_the_tree_path((tree, s, d) in arb_tree().prop_flat_map(|t| {
        let n = t.num_nodes();
        (Just(t), 0..n, 0..n)
    })) {
        let p = pc_path(&tree, NodeId(s), NodeId(d));
        prop_assert_eq!(p[0], NodeId(s));
        prop_assert_eq!(*p.last().unwrap(), NodeId(d));
        let unique: HashSet<_> = p.iter().collect();
        prop_assert_eq!(unique.len(), p.len(), "simple path");
        for w in p.windows(2) {
            prop_assert!(tree.edge_dim(w[0], w[1]).is_some());
        }
        let bfs = search::distance(&tree, NodeId(s), NodeId(d), &NoFaults).unwrap();
        prop_assert_eq!((p.len() - 1) as u32, bfs);
    }

    /// CT closed walks are optimal: 2 × Steiner edges, covering everything.
    #[test]
    fn ct_walk_is_optimal((tree, r, dests) in arb_tree().prop_flat_map(|t| {
        let n = t.num_nodes();
        (Just(t), 0..n, proptest::collection::btree_set(0..n, 0..6))
    })) {
        let dests: BTreeSet<NodeId> = dests.into_iter().map(NodeId).collect();
        let walk = ct_walk(&tree, NodeId(r), &dests);
        prop_assert_eq!(walk[0], NodeId(r));
        prop_assert_eq!(*walk.last().unwrap(), NodeId(r));
        let visited: HashSet<NodeId> = walk.iter().copied().collect();
        for d in &dests {
            prop_assert!(visited.contains(d));
        }
        let steiner = steiner_edges(&tree, NodeId(r), &dests);
        prop_assert_eq!(walk.len() - 1, 2 * steiner.len());
    }

    /// Fault taxonomy is a partition: links are A xor B, nodes are B xor C,
    /// and the split matches the α boundary.
    #[test]
    fn categories_partition((gc, v, c) in arb_gc().prop_flat_map(|gc| {
        let n = gc.num_nodes();
        let w = gc.n();
        (Just(gc), 0..n, 0..w)
    })) {
        let l = LinkId::new(NodeId(v), c);
        let lc = link_category(&gc, l);
        prop_assert_eq!(lc == FaultCategory::A, c >= gc.alpha());
        let nc = node_category(&gc, NodeId(v));
        prop_assert!(nc == FaultCategory::B || nc == FaultCategory::C);
        let has_high = (gc.alpha()..gc.n()).any(|cc| gc.has_link(NodeId(v), cc));
        prop_assert_eq!(nc == FaultCategory::C, has_high);
    }

    /// Multicast walks cover their destinations and sit between the two
    /// bounds (farthest destination ≤ walk ≤ 2 × independent sum, by the
    /// triangle inequality on the greedy legs).
    #[test]
    fn multicast_bounds((gc, dests) in arb_gc().prop_flat_map(|gc| {
        let n = gc.num_nodes();
        (Just(gc), proptest::collection::btree_set(0..n, 1..5))
    })) {
        let dests: BTreeSet<NodeId> = dests.into_iter().map(NodeId).collect();
        let walk = multicast_walk(&gc, NodeId(0), &dests).unwrap();
        walk.validate(&gc, &NoFaults).unwrap();
        let visited: HashSet<NodeId> = walk.nodes().iter().copied().collect();
        for d in &dests {
            prop_assert!(visited.contains(d));
        }
        let far = dests.iter().map(|&d| ffgcr::route_len(&gc, NodeId(0), d)).max().unwrap();
        let sum: u64 = dests.iter().map(|&d| u64::from(ffgcr::route_len(&gc, NodeId(0), d))).sum();
        prop_assert!(walk.hops() as u32 >= far);
        prop_assert!(walk.hops() as u64 <= 2 * sum.max(1));
    }

    /// Broadcast trees are spanning, valid, depth-optimal.
    #[test]
    fn broadcast_tree_properties((gc, root) in arb_gc().prop_flat_map(|gc| {
        let n = gc.num_nodes();
        (Just(gc), 0..n)
    })) {
        let t = broadcast_tree(&gc, NodeId(root)).unwrap();
        t.validate(&gc).unwrap();
        prop_assert_eq!(t.parent.iter().filter(|p| p.is_none()).count(), 1);
        let ecc = search::eccentricity(&gc, NodeId(root), &NoFaults).unwrap();
        prop_assert_eq!(t.max_depth(), ecc);
    }

    /// VC assignment on random route sets: monotone per route, per-VC CDG
    /// acyclic (checked by fragment re-split).
    #[test]
    fn vc_assignment_valid((gc, pairs) in arb_gc().prop_flat_map(|gc| {
        let n = gc.num_nodes();
        (Just(gc), proptest::collection::vec((0..n, 0..n), 1..12))
    })) {
        let routes: Vec<Route> = pairs
            .into_iter()
            .map(|(s, d)| ffgcr::route(&gc, NodeId(s), NodeId(d)).unwrap())
            .collect();
        let a = assign_virtual_channels(&routes);
        prop_assert!(a.num_vcs >= 1);
        let mut per_vc: Vec<Vec<Route>> = vec![Vec::new(); a.num_vcs as usize];
        for (route, vcs) in routes.iter().zip(&a.vcs) {
            prop_assert_eq!(vcs.len(), route.hops());
            for w in vcs.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            let nodes = route.nodes();
            let mut start = 0usize;
            for j in 1..=vcs.len() {
                if j == vcs.len() || vcs[j] != vcs[start] {
                    per_vc[vcs[start] as usize].push(Route::new(nodes[start..=j].to_vec()));
                    start = j;
                }
            }
        }
        for frags in &per_vc {
            let cdg = ChannelDependencyGraph::from_routes(frags.iter());
            prop_assert!(cdg.is_acyclic());
        }
    }

    /// Fault-set link usability composes node and link health.
    #[test]
    fn link_usability((v, c, fv) in (0u64..256, 0u32..8, 0u64..256)) {
        let mut f = FaultSet::new();
        f.add_node(NodeId(fv));
        let l = LinkId::new(NodeId(v), c);
        let (a, b) = l.endpoints();
        prop_assert_eq!(
            f.is_link_usable(l),
            a != NodeId(fv) && b != NodeId(fv)
        );
    }

    /// Model-based add/repair round-trips: after every operation in an
    /// arbitrary interleaving, `FaultSet` agrees with a reference model on
    /// membership and on `is_link_usable` for every probed link.
    #[test]
    fn fault_set_matches_model_under_churn(ops in proptest::collection::vec(
        (0u8..4, 0u64..64, 0u32..6),
        1..40,
    )) {
        let mut f = FaultSet::new();
        let mut nodes: HashSet<NodeId> = HashSet::new();
        let mut links: HashSet<LinkId> = HashSet::new();
        for (kind, v, c) in ops {
            let node = NodeId(v);
            let link = LinkId::new(node, c);
            match kind {
                0 => { f.add_node(node); nodes.insert(node); }
                1 => { prop_assert_eq!(f.remove_node(node), nodes.remove(&node)); }
                2 => { f.add_link(link); links.insert(link); }
                _ => { prop_assert_eq!(f.remove_link(link), links.remove(&link)); }
            }
            prop_assert_eq!(f.len(), nodes.len() + links.len());
            prop_assert_eq!(f.is_empty(), nodes.is_empty() && links.is_empty());
            prop_assert_eq!(f.is_node_faulty(node), nodes.contains(&node));
            prop_assert_eq!(f.is_link_faulty(link), links.contains(&link));
            let (a, b) = link.endpoints();
            prop_assert_eq!(
                f.is_link_usable(link),
                !links.contains(&link) && !nodes.contains(&a) && !nodes.contains(&b)
            );
        }
    }

    /// ISSUE acceptance: plan-cached FFGCR is *route-identical* to the
    /// uncached algorithm for arbitrary cubes and pairs — the cache is an
    /// optimisation, never a behaviour change.
    #[test]
    fn cached_ffgcr_equals_uncached((gc, s, d) in arb_gc().prop_flat_map(|gc| {
        let n = gc.num_nodes();
        (Just(gc), 0..n, 0..n)
    })) {
        let cache = PlanCache::new(&gc);
        let plain = ffgcr::route(&gc, NodeId(s), NodeId(d)).unwrap();
        let cached = ffgcr::route_cached(&gc, NodeId(s), NodeId(d), &cache).unwrap();
        prop_assert_eq!(plain.nodes(), cached.nodes());
        // And again, so the second call is served from the cache.
        let hit = ffgcr::route_cached(&gc, NodeId(s), NodeId(d), &cache).unwrap();
        prop_assert_eq!(plain.nodes(), hit.nodes());
    }

    /// ISSUE acceptance: plan-cached FTGCR matches the uncached strategy
    /// under arbitrary fault sets — identical route or identical error.
    #[test]
    fn cached_ftgcr_equals_uncached((gc, s, d, fault_nodes, fault_links) in arb_gc().prop_flat_map(|gc| {
        let n = gc.num_nodes();
        let w = gc.n();
        (
            Just(gc),
            0..n,
            0..n,
            proptest::collection::vec(0..n, 0..4),
            proptest::collection::vec((0..n, 0..w), 0..4),
        )
    })) {
        let (s, d) = (NodeId(s), NodeId(d));
        let mut faults = FaultSet::new();
        for v in fault_nodes {
            let v = NodeId(v);
            if v != s && v != d {
                faults.add_node(v);
            }
        }
        for (v, c) in fault_links {
            faults.add_link(LinkId::new(NodeId(v), c));
        }
        let cache = PlanCache::new(&gc);
        let plain = ftgcr::route(&gc, &faults, s, d);
        let cached = ftgcr::route_cached(&gc, &faults, s, d, &cache);
        match (plain, cached) {
            (Ok((r1, st1)), Ok((r2, st2))) => {
                prop_assert_eq!(r1.nodes(), r2.nodes());
                prop_assert_eq!(st1, st2);
            }
            (Err(e1), Err(e2)) => prop_assert_eq!(e1.to_string(), e2.to_string()),
            (p, c) => prop_assert!(false, "divergence: plain={p:?} cached={c:?}"),
        }
    }

    /// ISSUE acceptance: over random cube shapes, every bundle's spanning
    /// trees are pairwise independent (internally node- and edge-disjoint
    /// root paths), and fault-free atlas routes are valid first-choice
    /// plans — no switch, no fallback.
    #[test]
    fn multitree_trees_are_independent((gc, s, d) in arb_gc().prop_flat_map(|gc| {
        let n = gc.num_nodes();
        (Just(gc), 0..n, 0..n)
    })) {
        match MultiTreeAtlas::build(&gc, 2) {
            Ok(atlas) => {
                if let Err(why) = validate_independence(&gc, &atlas) {
                    prop_assert!(false, "independence violated: {}", why);
                }
                let (s, d) = (NodeId(s), NodeId(d));
                let (route, choice) =
                    atlas.route(&gc, &FaultSet::new(), s, d, None).unwrap();
                route.validate(&gc, &NoFaults).unwrap();
                prop_assert!(!choice.exhausted, "no faults means no fallback");
                prop_assert_eq!(choice.switches, 0, "no faults means first choice");
                prop_assert!((choice.tree as usize) < atlas.k());
            }
            Err(MultiTreeError::NotBiconnected { .. }) => {
                // Degenerate shapes legitimately lack an independent tree
                // pair; the builder must refuse them, not mis-build.
            }
            Err(other) => prop_assert!(false, "unexpected build failure: {}", other),
        }
    }

    /// Failing then repairing the same components restores the empty set,
    /// and usability of every incident link returns with it.
    #[test]
    fn repair_round_trip_restores_usability((v, c) in (0u64..256, 0u32..8)) {
        let node = NodeId(v);
        let link = LinkId::new(node, c);
        let mut f = FaultSet::new();
        f.add_node(node);
        f.add_link(link);
        prop_assert!(!f.is_link_usable(link));
        // Repairing the link alone is not enough while the endpoint is dead.
        prop_assert!(f.remove_link(link));
        prop_assert!(!f.is_link_usable(link), "faulty endpoint still kills the link");
        prop_assert!(f.remove_node(node));
        prop_assert!(f.is_link_usable(link));
        prop_assert!(f.is_empty());
        prop_assert_eq!(&f, &FaultSet::new());
        // Double repair reports nothing to remove.
        prop_assert!(!f.remove_node(node));
        prop_assert!(!f.remove_link(link));
    }

    /// Masked broadcast schedules under random fault sets: every
    /// forwarding pair crosses a usable cube link, each round obeys the
    /// single-port discipline (one send and one reception per node),
    /// senders are already informed, and the schedule covers exactly the
    /// healthy nodes reachable from the root — with a typed
    /// [`RoutingError::Disconnected`] carrying the exact unreachable
    /// count whenever faults cut healthy nodes off.
    #[test]
    fn masked_broadcast_schedule_is_single_port_and_covering(
        (gc, root, fault_nodes, fault_links) in arb_gc().prop_flat_map(|gc| {
            let n = gc.num_nodes();
            let w = gc.n();
            (
                Just(gc),
                0..n,
                proptest::collection::vec(0..n, 0..5),
                proptest::collection::vec((0..n, 0..w), 0..8),
            )
        })
    ) {
        let root = NodeId(root);
        let mut faults = FaultSet::new();
        for v in fault_nodes {
            let v = NodeId(v);
            if v != root {
                faults.add_node(v);
            }
        }
        for (v, c) in fault_links {
            faults.add_link(LinkId::new(NodeId(v), c));
        }
        let reachable = masked_reachable(&gc, &faults, root);
        let healthy = (0..gc.num_nodes()).filter(|&v| !faults.is_node_faulty(NodeId(v))).count();
        match binomial_broadcast_schedule_masked(&gc, &faults, root) {
            Ok(rounds) => {
                prop_assert_eq!(reachable.len(), healthy, "Ok means every healthy node is covered");
                let mut informed: HashSet<NodeId> = [root].into_iter().collect();
                for round in &rounds {
                    let mut senders = HashSet::new();
                    let mut receivers = HashSet::new();
                    for &(u, v) in round {
                        prop_assert!(informed.contains(&u), "sender {u} must be informed");
                        prop_assert!(!informed.contains(&v), "receiver {v} informed twice");
                        prop_assert!(senders.insert(u), "node {u} sent twice in one round");
                        prop_assert!(receivers.insert(v), "node {v} received twice in one round");
                        prop_assert!(usable_link(&gc, &faults, u, v), "unusable hop {u} -> {v}");
                    }
                    informed.extend(receivers);
                }
                prop_assert_eq!(&informed, &reachable, "schedule covers the reachable set");
            }
            Err(RoutingError::Disconnected { unreachable }) => {
                prop_assert_eq!(
                    unreachable as usize,
                    healthy - reachable.len(),
                    "typed error carries the exact cut-off count"
                );
                prop_assert!(unreachable > 0);
            }
            Err(other) => prop_assert!(false, "unexpected error: {}", other),
        }
    }

    /// Masked gather schedules mirror the broadcast properties upward:
    /// every reachable non-root node reports exactly once over a usable
    /// link, each round delivers at most one report per parent (single
    /// aggregation port), a node reports only after all reports flowing
    /// *through* it have arrived, and disconnection is the same typed
    /// error.
    #[test]
    fn masked_gather_schedule_aggregates_single_port(
        (gc, root, fault_nodes, fault_links) in arb_gc().prop_flat_map(|gc| {
            let n = gc.num_nodes();
            let w = gc.n();
            (
                Just(gc),
                0..n,
                proptest::collection::vec(0..n, 0..5),
                proptest::collection::vec((0..n, 0..w), 0..8),
            )
        })
    ) {
        let root = NodeId(root);
        let mut faults = FaultSet::new();
        for v in fault_nodes {
            let v = NodeId(v);
            if v != root {
                faults.add_node(v);
            }
        }
        for (v, c) in fault_links {
            faults.add_link(LinkId::new(NodeId(v), c));
        }
        let reachable = masked_reachable(&gc, &faults, root);
        let healthy = (0..gc.num_nodes()).filter(|&v| !faults.is_node_faulty(NodeId(v))).count();
        match gather_schedule_masked(&gc, &faults, root) {
            Ok(rounds) => {
                prop_assert_eq!(reachable.len(), healthy);
                let mut sent: HashSet<NodeId> = HashSet::new();
                for round in &rounds {
                    let mut receivers = HashSet::new();
                    for &(v, p) in round {
                        prop_assert!(v != root, "the root never reports");
                        prop_assert!(sent.insert(v), "node {v} reported twice");
                        prop_assert!(receivers.insert(p), "parent {p} received twice in one round");
                        prop_assert!(usable_link(&gc, &faults, v, p), "unusable hop {v} -> {p}");
                    }
                }
                prop_assert_eq!(sent.len(), reachable.len() - 1, "everyone but the root reports");
                // Causality: when v reports, every reachable node below it
                // has already reported — equivalently, each sender's own
                // children all sent in strictly earlier rounds. Recover
                // child links from the pairs themselves.
                let mut round_of: std::collections::HashMap<NodeId, usize> =
                    std::collections::HashMap::new();
                for (i, round) in rounds.iter().enumerate() {
                    for &(v, _) in round {
                        round_of.insert(v, i);
                    }
                }
                for (i, round) in rounds.iter().enumerate() {
                    for &(_, p) in round {
                        if p != root {
                            let pr = round_of[&p];
                            prop_assert!(i < pr, "{p} received a report at round {i} after sending at {pr}");
                        }
                    }
                }
            }
            Err(RoutingError::Disconnected { unreachable }) => {
                prop_assert_eq!(unreachable as usize, healthy - reachable.len());
                prop_assert!(unreachable > 0);
            }
            Err(other) => prop_assert!(false, "unexpected error: {}", other),
        }
    }
}

/// Reference reachability: BFS from `root` over links usable under the
/// fault set (link healthy and both endpoints healthy), independent of
/// the tree builders under test.
fn masked_reachable(gc: &GaussianCube, faults: &FaultSet, root: NodeId) -> HashSet<NodeId> {
    let mut seen: HashSet<NodeId> = [root].into_iter().collect();
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(u) = queue.pop_front() {
        for c in gc.link_dims(u) {
            let v = u.flip(c);
            if !seen.contains(&v) && usable_link(gc, faults, u, v) {
                seen.insert(v);
                queue.push_back(v);
            }
        }
    }
    seen
}

/// Whether `u -> v` is one usable cube hop under `faults`.
fn usable_link(gc: &GaussianCube, faults: &FaultSet, u: NodeId, v: NodeId) -> bool {
    let diff = u.0 ^ v.0;
    if diff == 0 || !diff.is_power_of_two() {
        return false;
    }
    let c = diff.trailing_zeros();
    gc.has_link(u, c) && faults.is_link_usable(LinkId::new(u, c))
}
