//! Property-based tests for the topology crate.
//!
//! These check the structural theorems of the paper on randomly drawn
//! parameters and nodes, complementing the exhaustive small-instance tests
//! inside each module.

use gcube_topology::classes::{node_at, subcube_pos};
use gcube_topology::gaussian_cube::link_by_congruence;
use gcube_topology::search;
use gcube_topology::{ExchangedHypercube, GaussianCube, GaussianTree, NoFaults, NodeId, Topology};
use proptest::prelude::*;

/// Strategy: a Gaussian Cube with 2 ≤ n ≤ 16 and α ≤ min(n, 5).
fn arb_gc() -> impl Strategy<Value = GaussianCube> {
    (2u32..=16).prop_flat_map(|n| {
        (Just(n), 0u32..=n.min(5))
            .prop_map(|(n, alpha)| GaussianCube::from_alpha(n, alpha).unwrap())
    })
}

fn arb_node(width: u32) -> impl Strategy<Value = NodeId> {
    (0..(1u64 << width)).prop_map(NodeId)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Theorem 1: the local link condition equals the congruence definition.
    #[test]
    fn theorem1_equivalence((gc, v) in arb_gc().prop_flat_map(|gc| {
        let w = gc.n();
        (Just(gc), arb_node(w))
    })) {
        for c in 0..gc.n() {
            prop_assert_eq!(
                gc.has_link(v, c),
                link_by_congruence(gc.n(), gc.modulus(), v, c)
            );
        }
    }

    /// Link predicates are symmetric under the bit flip.
    #[test]
    fn link_symmetry((gc, v) in arb_gc().prop_flat_map(|gc| {
        let w = gc.n();
        (Just(gc), arb_node(w))
    })) {
        for c in 0..gc.n() {
            prop_assert_eq!(gc.has_link(v, c), gc.has_link(v.flip(c), c));
        }
    }

    /// The subcube decomposition round-trips for every node.
    #[test]
    fn subcube_round_trip((gc, v) in arb_gc().prop_flat_map(|gc| {
        let w = gc.n();
        (Just(gc), arb_node(w))
    })) {
        let pos = subcube_pos(&gc, v);
        prop_assert_eq!(node_at(&gc, pos), v);
        prop_assert_eq!(pos.k, gc.ending_class(v));
    }

    /// Gaussian graphs are trees: connected with 2^m - 1 edges (Theorem 2).
    #[test]
    fn gaussian_graph_is_tree(m in 1u32..=12) {
        let t = GaussianTree::new(m).unwrap();
        prop_assert!(search::is_connected(&t, &NoFaults));
        prop_assert_eq!(t.num_links(), t.num_nodes() - 1);
    }

    /// Exchanged hypercube closed-form distance agrees with BFS on random
    /// pairs.
    #[test]
    fn eh_distance_matches_bfs(
        (s, t, u, v) in (1u32..=4, 1u32..=4).prop_flat_map(|(s, t)| {
            let w = s + t + 1;
            (Just(s), Just(t), arb_node(w), arb_node(w))
        })
    ) {
        let eh = ExchangedHypercube::new(s, t).unwrap();
        let bfs = search::distance(&eh, u, v, &NoFaults).unwrap();
        prop_assert_eq!(bfs, eh.dist(u, v));
        prop_assert_eq!(eh.dist(u, v), eh.dist(v, u));
    }

    /// BFS distance in GC is a metric on random triples (triangle
    /// inequality + symmetry).
    #[test]
    fn gc_distance_is_a_metric((gc, a, b, c) in arb_gc().prop_flat_map(|gc| {
        let w = gc.n().min(10);
        // Cap size so three BFS runs stay fast.
        let gc = GaussianCube::from_alpha(w, gc.alpha().min(w)).unwrap();
        (Just(gc), arb_node(w), arb_node(w), arb_node(w))
    })) {
        let dab = search::distance(&gc, a, b, &NoFaults).unwrap();
        let dba = search::distance(&gc, b, a, &NoFaults).unwrap();
        let dbc = search::distance(&gc, b, c, &NoFaults).unwrap();
        let dac = search::distance(&gc, a, c, &NoFaults).unwrap();
        prop_assert_eq!(dab, dba);
        prop_assert!(dac <= dab + dbc);
    }

    /// Degrees never exceed n, and the dim-0 link always exists.
    #[test]
    fn degrees_bounded((gc, v) in arb_gc().prop_flat_map(|gc| {
        let w = gc.n();
        (Just(gc), arb_node(w))
    })) {
        prop_assert!(gc.degree(v) <= gc.n());
        prop_assert!(gc.has_link(v, 0));
        prop_assert_eq!(gc.degree(v) as usize, gc.neighbors(v).len());
    }
}
