//! Node and link addressing.
//!
//! Every topology in this workspace labels its `2^w` nodes with `w`-bit
//! integers, and every link flips exactly one bit. A link is therefore fully
//! identified by its lower endpoint (the one whose flipped bit is 0) and the
//! dimension of the flipped bit.

use std::fmt;

/// A node label: a `w`-bit integer for a topology of label width `w`.
///
/// `NodeId` is deliberately a thin wrapper over `u64`; all bit manipulation
/// used by the paper's algorithms (ending classes, dimension flips, Hamming
/// distances) is provided as methods so call sites read like the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Bit `c` of the label.
    #[inline]
    pub fn bit(self, c: u32) -> bool {
        (self.0 >> c) & 1 == 1
    }

    /// The label with bit `c` flipped — the neighbour across dimension `c`.
    #[inline]
    #[must_use]
    pub fn flip(self, c: u32) -> NodeId {
        NodeId(self.0 ^ (1u64 << c))
    }

    /// The label with bit `c` forced to `v`.
    #[inline]
    #[must_use]
    pub fn with_bit(self, c: u32, v: bool) -> NodeId {
        if v {
            NodeId(self.0 | (1u64 << c))
        } else {
            NodeId(self.0 & !(1u64 << c))
        }
    }

    /// The value of the `k` least significant bits (`k = 0` yields 0).
    ///
    /// This is the paper's `a_{k-1} … a_1 a_0` — the quantity Theorem 1's link
    /// condition and the ending-class map are defined on.
    #[inline]
    pub fn low_bits(self, k: u32) -> u64 {
        if k == 0 {
            0
        } else if k >= 64 {
            self.0
        } else {
            self.0 & ((1u64 << k) - 1)
        }
    }

    /// Bits `[lo, hi]` inclusive, shifted down to start at bit 0.
    #[inline]
    pub fn bit_range(self, lo: u32, hi: u32) -> u64 {
        debug_assert!(lo <= hi && hi < 64);
        let width = hi - lo + 1;
        let mask = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        (self.0 >> lo) & mask
    }

    /// Hamming distance between two labels.
    #[inline]
    pub fn hamming(self, other: NodeId) -> u32 {
        (self.0 ^ other.0).count_ones()
    }

    /// Dimensions (bit positions) in which the two labels differ, ascending.
    pub fn differing_dims(self, other: NodeId) -> Vec<u32> {
        let mut r = self.0 ^ other.0;
        let mut dims = Vec::with_capacity(r.count_ones() as usize);
        while r != 0 {
            let c = r.trailing_zeros();
            dims.push(c);
            r &= r - 1;
        }
        dims
    }

    /// The highest set bit of `self XOR other`, i.e. the paper's "dimension
    /// corresponding to the leftmost 1 in `R = s ⊕ d`". `None` if equal.
    #[inline]
    pub fn leftmost_differing_dim(self, other: NodeId) -> Option<u32> {
        let r = self.0 ^ other.0;
        if r == 0 {
            None
        } else {
            Some(63 - r.leading_zeros())
        }
    }

    /// Render the label as a `width`-bit binary string (MSB first), matching
    /// the paper's `a_{n-1} a_{n-2} … a_1 a_0` notation.
    pub fn to_binary(self, width: u32) -> String {
        (0..width)
            .rev()
            .map(|c| if self.bit(c) { '1' } else { '0' })
            .collect()
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

/// A link identifier: the endpoint whose bit `dim` is 0, plus the dimension.
///
/// Normalising on the lower endpoint makes `LinkId` canonical: both endpoints
/// of an (undirected) link map to the same `LinkId`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LinkId {
    /// The endpoint with bit `dim` equal to 0.
    pub lo: NodeId,
    /// The dimension the link spans.
    pub dim: u32,
}

impl LinkId {
    /// Canonical link id for the link incident to `node` in dimension `dim`.
    #[inline]
    pub fn new(node: NodeId, dim: u32) -> LinkId {
        LinkId {
            lo: node.with_bit(dim, false),
            dim,
        }
    }

    /// Both endpoints, lower first.
    #[inline]
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.lo, self.lo.flip(self.dim))
    }

    /// The endpoint that is not `node` (which must be one of the endpoints).
    #[inline]
    pub fn other(self, node: NodeId) -> NodeId {
        debug_assert!(node == self.lo || node == self.lo.flip(self.dim));
        node.flip(self.dim)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (a, b) = self.endpoints();
        write!(f, "({a} <-> {b} @dim {})", self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_accessors() {
        let p = NodeId(0b1011_0101);
        assert!(p.bit(0));
        assert!(!p.bit(1));
        assert!(p.bit(2));
        assert!(p.bit(7));
        assert!(!p.bit(63));
    }

    #[test]
    fn flip_is_involution() {
        let p = NodeId(0b1010);
        for c in 0..16 {
            assert_eq!(p.flip(c).flip(c), p);
            assert_eq!(p.hamming(p.flip(c)), 1);
        }
    }

    #[test]
    fn with_bit_sets_and_clears() {
        let p = NodeId(0b1010);
        assert_eq!(p.with_bit(0, true), NodeId(0b1011));
        assert_eq!(p.with_bit(1, false), NodeId(0b1000));
        assert_eq!(p.with_bit(1, true), p);
    }

    #[test]
    fn low_bits_edges() {
        let p = NodeId(0b110110);
        assert_eq!(p.low_bits(0), 0);
        assert_eq!(p.low_bits(1), 0);
        assert_eq!(p.low_bits(2), 0b10);
        assert_eq!(p.low_bits(3), 0b110);
        assert_eq!(p.low_bits(64), p.0);
    }

    #[test]
    fn bit_range_extracts() {
        let p = NodeId(0b11010110);
        assert_eq!(p.bit_range(0, 3), 0b0110);
        assert_eq!(p.bit_range(4, 7), 0b1101);
        assert_eq!(p.bit_range(2, 5), 0b0101);
    }

    #[test]
    fn hamming_and_differing_dims() {
        let a = NodeId(0b1100);
        let b = NodeId(0b0101);
        assert_eq!(a.hamming(b), 2);
        assert_eq!(a.differing_dims(b), vec![0, 3]);
        assert!(a.differing_dims(a).is_empty());
    }

    #[test]
    fn leftmost_differing() {
        assert_eq!(NodeId(0b1000).leftmost_differing_dim(NodeId(0)), Some(3));
        assert_eq!(NodeId(5).leftmost_differing_dim(NodeId(5)), None);
        assert_eq!(NodeId(0b101).leftmost_differing_dim(NodeId(0b100)), Some(0));
    }

    #[test]
    fn binary_rendering() {
        assert_eq!(NodeId(0b101).to_binary(5), "00101");
        assert_eq!(NodeId(0).to_binary(3), "000");
    }

    #[test]
    fn link_id_canonical() {
        let a = NodeId(0b1010);
        let b = a.flip(2);
        assert_eq!(LinkId::new(a, 2), LinkId::new(b, 2));
        let l = LinkId::new(a, 2);
        let (lo, hi) = l.endpoints();
        assert!(!lo.bit(2) && hi.bit(2));
        assert_eq!(l.other(a), b);
        assert_eq!(l.other(b), a);
    }
}

#[cfg(test)]
mod boundary_tests {
    use super::*;

    #[test]
    fn bit_range_full_width() {
        let p = NodeId(u64::MAX);
        assert_eq!(p.bit_range(0, 63), u64::MAX);
        assert_eq!(p.bit_range(63, 63), 1);
        assert_eq!(NodeId(0).bit_range(0, 63), 0);
    }

    #[test]
    fn flip_high_bits() {
        let p = NodeId(0);
        assert_eq!(p.flip(63), NodeId(1u64 << 63));
        assert_eq!(p.flip(63).flip(63), p);
    }

    #[test]
    fn differing_dims_full_disagreement() {
        let dims = NodeId(0).differing_dims(NodeId(u64::MAX));
        assert_eq!(dims.len(), 64);
        assert_eq!(dims[0], 0);
        assert_eq!(dims[63], 63);
    }

    #[test]
    fn ordering_follows_label_value() {
        assert!(NodeId(3) < NodeId(10));
        let mut v = vec![NodeId(5), NodeId(1), NodeId(3)];
        v.sort();
        assert_eq!(v, vec![NodeId(1), NodeId(3), NodeId(5)]);
    }

    #[test]
    fn link_id_display_and_order() {
        let l = LinkId::new(NodeId(6), 0);
        let shown = l.to_string();
        assert!(shown.contains("dim 0"));
        assert!(LinkId::new(NodeId(0), 0) < LinkId::new(NodeId(0), 1));
    }

    #[test]
    fn from_u64_and_display() {
        let p: NodeId = 42u64.into();
        assert_eq!(p, NodeId(42));
        assert_eq!(p.to_string(), "42");
        assert_eq!(format!("{p:?}"), "NodeId(42)");
    }
}
