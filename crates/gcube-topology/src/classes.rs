//! k-ending classes and equivalent-class subcubes (paper Definitions 2 and 6).
//!
//! For `GC(n, 2^α)`:
//!
//! * `EC(α, k)` — the *k-ending class*: all nodes whose low `α` bits equal
//!   `k`. Ending classes are the fibres of the projection onto the Gaussian
//!   Tree `T_α`: class `k` *is* tree node `k`.
//! * `Dim(α, k) = { c ∈ [α, n-1] : c ≡ k (mod 2^α) }` — the high dimensions
//!   in which members of `EC(α, k)` have links (Theorem 1).
//! * `EEC(α, k, t)` — the *k-ending-t-equivalent class*: the subset of
//!   `EC(α, k)` whose bits in dimensions outside `[0, α) ∪ Dim(α, k)` spell
//!   the value `t`. The induced subgraph `GEEC(α, k, t)` is a binary
//!   hypercube of dimension `|Dim(α, k)|` — the substrate on which
//!   fault-tolerant hypercube routing runs (Theorem 3).
//!
//! This module provides the coordinate maps between a GC node and its
//! `(k, t, coord)` triple, plus the tree-crossing helpers used by the
//! fault-tolerant strategy.

use crate::addr::NodeId;
use crate::gaussian_cube::GaussianCube;
use crate::gaussian_tree::GaussianTree;
use crate::topology::Topology;

/// The high dimensions `Dim(α, k)` available to ending class `k`, ascending.
pub fn dims(n: u32, alpha: u32, k: u64) -> Vec<u32> {
    debug_assert!(alpha < 64 && k < (1u64 << alpha).max(1));
    let period = 1u64 << alpha;
    (alpha..n).filter(|&c| u64::from(c) % period == k).collect()
}

/// `|Dim(α, k)|` without materialising the set.
pub fn dim_count(n: u32, alpha: u32, k: u64) -> u32 {
    let period = 1u64 << alpha;
    // Smallest c ≥ α with c ≡ k (mod 2^α).
    let start = if k >= u64::from(alpha) { k } else { k + period };
    if start >= u64::from(n) {
        0
    } else {
        (((u64::from(n) - 1 - start) / period) + 1) as u32
    }
}

/// The paper's closed form `N(α, k) = ⌈(n-k)/2^α⌉ + 1 - δ(k < α)`
/// (Theorem 3). Tested to equal `dim_count + 1` wherever both are positive.
pub fn n_bound_paper(n: u32, alpha: u32, k: u64) -> u32 {
    let period = 1u64 << alpha;
    let nn = u64::from(n);
    // ⌈(n-k)/2^α⌉, clipped at 0 for classes beyond the label width.
    let ceil = if k >= nn {
        0
    } else {
        (nn - k).div_ceil(period)
    };
    let delta = u64::from(k < u64::from(alpha));
    (ceil + 1).saturating_sub(delta) as u32
}

/// A node's position in the `GC(n, 2^α)` decomposition: which ending class,
/// which equivalent class within it, and which corner of the embedded
/// subcube.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SubcubePos {
    /// Ending class `k` (the node's low `α` bits; also its tree node).
    pub k: u64,
    /// The equivalent-class selector `t`: bits in dimensions outside
    /// `[0, α) ∪ Dim(α, k)`, packed ascending.
    pub t: u64,
    /// Coordinates inside `GEEC(α, k, t)`: bits at the `Dim(α, k)` positions,
    /// packed ascending — a `|Dim(α,k)|`-bit hypercube label.
    pub coord: u64,
}

/// Decompose a node into its [`SubcubePos`].
pub fn subcube_pos(gc: &GaussianCube, p: NodeId) -> SubcubePos {
    let (n, alpha) = (gc.n(), gc.alpha());
    let k = p.low_bits(alpha);
    let dim_set = dims(n, alpha, k);
    let mut coord = 0u64;
    for (i, &c) in dim_set.iter().enumerate() {
        if p.bit(c) {
            coord |= 1 << i;
        }
    }
    let mut t = 0u64;
    let mut ti = 0;
    for c in alpha..n {
        if u64::from(c) % (1u64 << alpha) != k {
            if p.bit(c) {
                t |= 1 << ti;
            }
            ti += 1;
        }
    }
    SubcubePos { k, t, coord }
}

/// Reassemble a node from its [`SubcubePos`]. Inverse of [`subcube_pos`].
pub fn node_at(gc: &GaussianCube, pos: SubcubePos) -> NodeId {
    let (n, alpha) = (gc.n(), gc.alpha());
    let mut v = pos.k;
    let dim_set = dims(n, alpha, pos.k);
    for (i, &c) in dim_set.iter().enumerate() {
        if (pos.coord >> i) & 1 == 1 {
            v |= 1u64 << c;
        }
    }
    let mut ti = 0;
    for c in alpha..n {
        if u64::from(c) % (1u64 << alpha) != pos.k {
            if (pos.t >> ti) & 1 == 1 {
                v |= 1u64 << c;
            }
            ti += 1;
        }
    }
    NodeId(v)
}

/// All nodes of the ending class `EC(α, k)` (ascending).
pub fn ending_class_nodes(gc: &GaussianCube, k: u64) -> Vec<NodeId> {
    let alpha = gc.alpha();
    let step = 1u64 << alpha;
    (0..gc.num_nodes())
        .step_by(step as usize)
        .map(|base| NodeId(base | k))
        .collect()
}

/// All nodes of the equivalent class `EEC(α, k, t)` (ascending coordinate
/// order) — the vertex set of the embedded hypercube `GEEC(α, k, t)`.
pub fn equivalent_class_nodes(gc: &GaussianCube, k: u64, t: u64) -> Vec<NodeId> {
    let d = dim_count(gc.n(), gc.alpha(), k);
    (0..(1u64 << d))
        .map(|coord| node_at(gc, SubcubePos { k, t, coord }))
        .collect()
}

/// Number of distinct `t` values for class `k`, i.e. how many `GEEC(α,k,·)`
/// subcubes partition `EC(α, k)`.
pub fn equivalent_class_count(gc: &GaussianCube, k: u64) -> u64 {
    let free = gc.n() - gc.alpha() - dim_count(gc.n(), gc.alpha(), k);
    1u64 << free
}

/// The tree-walk projection: the Gaussian Tree `T_α` a cube decomposes onto.
pub fn projection_tree(gc: &GaussianCube) -> GaussianTree {
    GaussianTree::new(gc.alpha()).expect("alpha below width cap")
}

/// The set of tree nodes a route from `s` to `d` must visit (besides the
/// endpoints' own classes): one per differing dimension `≥ α`, namely class
/// `c mod 2^α` for each such dimension `c` (paper §4).
pub fn required_tree_nodes(gc: &GaussianCube, s: NodeId, d: NodeId) -> Vec<u64> {
    let alpha = gc.alpha();
    let period = 1u64 << alpha;
    let mut need: Vec<u64> = s
        .differing_dims(d)
        .into_iter()
        .filter(|&c| c >= alpha)
        .map(|c| u64::from(c) % period)
        .collect();
    need.sort_unstable();
    need.dedup();
    need
}

/// `Dim(α, k)` for every class at once, indexed by `k` — the precomputed
/// class table the routing plan cache replays flips from.
pub fn class_dim_lists(n: u32, alpha: u32) -> Vec<Vec<u32>> {
    (0..(1u64 << alpha)).map(|k| dims(n, alpha, k)).collect()
}

/// `Dim(α, k)` for every class as dimension bitmasks: entry `k` has bit `c`
/// set iff `c ∈ Dim(α, k)`. Intersecting entry `k` with `s ⊕ d` yields
/// exactly the flips class `k` owes a route, in ascending dimension order
/// under a trailing-zeros scan.
pub fn class_dim_masks(n: u32, alpha: u32) -> Vec<u64> {
    (0..(1u64 << alpha))
        .map(|k| {
            dims(n, alpha, k)
                .into_iter()
                .fold(0u64, |m, c| m | (1u64 << c))
        })
        .collect()
}

/// [`required_tree_nodes`] packed as a class bitmask: bit `k` is set iff
/// class `k` owns a differing dimension `≥ α` between `s` and `d`. Only
/// valid when `2^α ≤ 64` (`α ≤ 6`) — the plan-cache key regime.
pub fn required_class_mask(alpha: u32, s: NodeId, d: NodeId) -> u64 {
    debug_assert!(alpha <= 6, "packed class mask requires 2^α ≤ 64");
    let period = 1u64 << alpha;
    let mut rest = (s.0 ^ d.0) & !(period - 1);
    let mut mask = 0u64;
    while rest != 0 {
        let c = u64::from(rest.trailing_zeros());
        mask |= 1u64 << (c % period);
        rest &= rest - 1;
    }
    mask
}

/// The differing dimensions `≥ α` between `s` and `d`, grouped by the ending
/// class in which they must be flipped. Returns `(class, dims)` pairs with
/// ascending classes.
pub fn flips_by_class(gc: &GaussianCube, s: NodeId, d: NodeId) -> Vec<(u64, Vec<u32>)> {
    let alpha = gc.alpha();
    let period = 1u64 << alpha;
    let mut map: std::collections::BTreeMap<u64, Vec<u32>> = std::collections::BTreeMap::new();
    for c in s.differing_dims(d) {
        if c >= alpha {
            map.entry(u64::from(c) % period).or_default().push(c);
        }
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search;
    use crate::topology::NoFaults;

    #[test]
    fn dims_examples_from_analysis() {
        // n=8, α=2: Dim(0)={4}, Dim(1)={5}, Dim(2)={2,6}, Dim(3)={3,7}.
        assert_eq!(dims(8, 2, 0), vec![4]);
        assert_eq!(dims(8, 2, 1), vec![5]);
        assert_eq!(dims(8, 2, 2), vec![2, 6]);
        assert_eq!(dims(8, 2, 3), vec![3, 7]);
    }

    #[test]
    fn dim_count_matches_enumeration() {
        for n in 1..=20u32 {
            for alpha in 0..=4.min(n) {
                for k in 0..(1u64 << alpha) {
                    assert_eq!(
                        dim_count(n, alpha, k),
                        dims(n, alpha, k).len() as u32,
                        "n={n} α={alpha} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_n_bound_is_dim_count_plus_one() {
        // The identity DESIGN.md relies on: N(α,k) = |Dim(α,k)| + 1 whenever
        // the class has at least one high dimension reachable.
        for n in 2..=24u32 {
            for alpha in 1..=4.min(n - 1) {
                for k in 0..(1u64 << alpha) {
                    let d = dim_count(n, alpha, k);
                    let nb = n_bound_paper(n, alpha, k);
                    assert_eq!(nb, d + 1, "n={n} α={alpha} k={k}: N={nb}, |Dim|={d}");
                }
            }
        }
    }

    #[test]
    fn subcube_pos_round_trips() {
        let gc = GaussianCube::new(9, 4).unwrap();
        for v in 0..gc.num_nodes() {
            let pos = subcube_pos(&gc, NodeId(v));
            assert_eq!(node_at(&gc, pos), NodeId(v));
            assert_eq!(pos.k, NodeId(v).low_bits(2));
        }
    }

    #[test]
    fn ending_classes_partition_the_cube() {
        let gc = GaussianCube::new(8, 4).unwrap();
        let mut seen = std::collections::HashSet::new();
        for k in 0..4u64 {
            let nodes = ending_class_nodes(&gc, k);
            assert_eq!(nodes.len() as u64, gc.num_nodes() / 4);
            for p in nodes {
                assert_eq!(gc.ending_class(p), k);
                assert!(seen.insert(p));
            }
        }
        assert_eq!(seen.len() as u64, gc.num_nodes());
    }

    #[test]
    fn equivalent_classes_partition_each_ending_class() {
        let gc = GaussianCube::new(9, 4).unwrap();
        for k in 0..4u64 {
            let mut seen = std::collections::HashSet::new();
            for t in 0..equivalent_class_count(&gc, k) {
                for p in equivalent_class_nodes(&gc, k, t) {
                    assert_eq!(gc.ending_class(p), k);
                    assert!(seen.insert(p), "EEC overlap at k={k} t={t} p={p}");
                }
            }
            assert_eq!(seen.len(), ending_class_nodes(&gc, k).len());
        }
    }

    #[test]
    fn geec_subcubes_are_hypercubes() {
        // Theorem 3's premise: GEEC(α,k,t) is a |Dim(α,k)|-dimensional binary
        // hypercube embedded in GC — adjacent coordinates differ in exactly
        // one Dim position and the GC link exists.
        let gc = GaussianCube::new(10, 4).unwrap();
        for k in 0..4u64 {
            let dim_set = dims(10, 2, k);
            for t in 0..equivalent_class_count(&gc, k).min(4) {
                let nodes = equivalent_class_nodes(&gc, k, t);
                for (coord, &p) in nodes.iter().enumerate() {
                    for (i, &c) in dim_set.iter().enumerate() {
                        let q = nodes[coord ^ (1 << i)];
                        assert_eq!(q, p.flip(c));
                        assert!(gc.has_link(p, c), "missing GC link at {p} dim {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn high_dim_links_stay_inside_equivalent_class() {
        // Links in dimensions ≥ α never leave the node's EEC; links in
        // dimensions < α never leave its t/coord (they move along the tree).
        let gc = GaussianCube::new(9, 4).unwrap();
        for v in 0..gc.num_nodes() {
            let p = NodeId(v);
            let pos = subcube_pos(&gc, p);
            for c in gc.link_dims(p) {
                let q = p.flip(c);
                let qpos = subcube_pos(&gc, q);
                if c >= gc.alpha() {
                    assert_eq!(pos.k, qpos.k);
                    assert_eq!(pos.t, qpos.t);
                    assert_eq!((pos.coord ^ qpos.coord).count_ones(), 1);
                }
            }
        }
    }

    #[test]
    fn tree_edges_are_realised_by_every_class_member() {
        // DESIGN.md key fact: for a tree edge (p, q) across dimension c < α,
        // every member of EC(p) owns the GC link in dimension c.
        let gc = GaussianCube::new(8, 8).unwrap();
        let tree = projection_tree(&gc);
        for l in tree.links() {
            let (p, _q) = l.endpoints();
            for node in ending_class_nodes(&gc, p.0) {
                assert!(
                    gc.has_link(node, l.dim),
                    "node {node} of EC({}) lacks tree-edge link in dim {}",
                    p.0,
                    l.dim
                );
            }
        }
    }

    #[test]
    fn class_tables_match_per_class_dims() {
        for n in 1..=16u32 {
            for alpha in 0..=4.min(n) {
                let lists = class_dim_lists(n, alpha);
                let masks = class_dim_masks(n, alpha);
                assert_eq!(lists.len(), 1 << alpha);
                assert_eq!(masks.len(), 1 << alpha);
                for k in 0..(1u64 << alpha) {
                    assert_eq!(lists[k as usize], dims(n, alpha, k));
                    let want = dims(n, alpha, k)
                        .into_iter()
                        .fold(0u64, |m, c| m | (1u64 << c));
                    assert_eq!(masks[k as usize], want, "n={n} α={alpha} k={k}");
                }
            }
        }
    }

    #[test]
    fn required_class_mask_matches_required_tree_nodes() {
        for (n, m) in [(6u32, 1u64), (7, 2), (8, 4), (9, 8), (10, 16)] {
            let gc = GaussianCube::new(n, m).unwrap();
            for s in (0..gc.num_nodes()).step_by(7) {
                for d in (0..gc.num_nodes()).step_by(11) {
                    let mask = required_class_mask(gc.alpha(), NodeId(s), NodeId(d));
                    let want = required_tree_nodes(&gc, NodeId(s), NodeId(d))
                        .into_iter()
                        .fold(0u64, |acc, k| acc | (1u64 << k));
                    assert_eq!(mask, want, "GC({n},{m}) {s}->{d}");
                }
            }
        }
    }

    #[test]
    fn required_tree_nodes_and_flips() {
        let gc = GaussianCube::new(8, 4).unwrap();
        // s and d differ in dims {2, 5, 6}: classes 2%4=2, 5%4=1, 6%4=2.
        let s = NodeId(0);
        let d = NodeId((1 << 2) | (1 << 5) | (1 << 6));
        assert_eq!(required_tree_nodes(&gc, s, d), vec![1, 2]);
        let flips = flips_by_class(&gc, s, d);
        assert_eq!(flips, vec![(1, vec![5]), (2, vec![2, 6])]);
    }

    #[test]
    fn projection_preserves_reachability() {
        // Every GC hop projects to either a tree self-loop (dim ≥ α) or a
        // tree edge (dim < α) — the projection lemma FFGCR's optimality rests
        // on.
        let gc = GaussianCube::new(7, 4).unwrap();
        let tree = projection_tree(&gc);
        for v in 0..gc.num_nodes() {
            let p = NodeId(v);
            for c in gc.link_dims(p) {
                let q = p.flip(c);
                let (kp, kq) = (gc.ending_class(p), gc.ending_class(q));
                if c < gc.alpha() {
                    assert_eq!(
                        tree.edge_dim(NodeId(kp), NodeId(kq)),
                        Some(c),
                        "GC dim-{c} link must project onto a T_α edge"
                    );
                } else {
                    assert_eq!(kp, kq);
                }
            }
        }
        // Sanity: the tree really is the quotient graph.
        assert!(search::is_connected(&tree, &NoFaults));
    }
}
