//! The Exchanged Hypercube `EH(s, t)` (paper Definition 7).
//!
//! Nodes are `(s + t + 1)`-bit labels `a_{s}…a_{1} b_{t}…b_{1} c` with an
//! `a`-part (high `s` bits), a `b`-part (middle `t` bits) and a class bit `c`
//! (bit 0). Links:
//!
//! * dimension 0 (the *exchange* links): every node ↔ its bit-0 flip;
//! * dimensions `1..=t`: only between `1`-ending nodes (same `a`-part,
//!   Hamming-1 `b`-parts) — the `t`-dimensional cubes `B_t`, one per
//!   `a`-value;
//! * dimensions `t+1..=s+t`: only between `0`-ending nodes — the
//!   `s`-dimensional cubes `B_s`, one per `b`-value.
//!
//! `EH(s,t)` matters because the neighbourhood of a Gaussian-tree edge
//! `(p, q)` inside `GC(n, 2^α)` is isomorphic to `EH(|Dim(p)|, |Dim(q)|)`
//! (paper §5); the fault-tolerant crossing algorithm FREH (Algorithm 4) is
//! stated on this topology.

use crate::addr::NodeId;
use crate::error::TopologyError;
use crate::hypercube::MAX_WIDTH;
use crate::topology::Topology;

/// The exchanged hypercube `EH(s, t)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExchangedHypercube {
    s: u32,
    t: u32,
}

impl ExchangedHypercube {
    /// Create `EH(s, t)`. The paper requires `s ≥ 1, t ≥ 1`.
    pub fn new(s: u32, t: u32) -> Result<Self, TopologyError> {
        if s == 0 || t == 0 || s + t + 1 > MAX_WIDTH {
            return Err(TopologyError::DimensionOutOfRange {
                requested: s + t + 1,
                max: MAX_WIDTH,
            });
        }
        Ok(ExchangedHypercube { s, t })
    }

    /// The `s` parameter (dimension of the `0`-ending cubes).
    #[inline]
    pub fn s(&self) -> u32 {
        self.s
    }

    /// The `t` parameter (dimension of the `1`-ending cubes).
    #[inline]
    pub fn t(&self) -> u32 {
        self.t
    }

    /// The class bit: `false` = `0`-ending (lives in an `s`-cube), `true` =
    /// `1`-ending (lives in a `t`-cube).
    #[inline]
    pub fn class_bit(&self, v: NodeId) -> bool {
        v.bit(0)
    }

    /// The `a`-part `v[s+t : t+1]`.
    #[inline]
    pub fn a_part(&self, v: NodeId) -> u64 {
        v.bit_range(self.t + 1, self.s + self.t)
    }

    /// The `b`-part `v[t : 1]`.
    #[inline]
    pub fn b_part(&self, v: NodeId) -> u64 {
        v.bit_range(1, self.t)
    }

    /// Assemble a node from its parts.
    pub fn node(&self, a: u64, b: u64, class: bool) -> NodeId {
        debug_assert!(a < (1u64 << self.s) && b < (1u64 << self.t));
        NodeId((a << (self.t + 1)) | (b << 1) | u64::from(class))
    }

    /// Shortest-path distance in `EH(s,t)`.
    ///
    /// Between same-class nodes with equal "other part" the route stays in
    /// one cube; otherwise it must use exchange links. Derivation: fixing the
    /// `a`-part requires class 0, fixing the `b`-part requires class 1, and
    /// each class change costs one exchange hop.
    pub fn dist(&self, u: NodeId, v: NodeId) -> u32 {
        let (au, bu, cu) = (self.a_part(u), self.b_part(u), self.class_bit(u));
        let (av, bv, cv) = (self.a_part(v), self.b_part(v), self.class_bit(v));
        let ha = (au ^ av).count_ones();
        let hb = (bu ^ bv).count_ones();
        if u == v {
            return 0;
        }
        if cu == cv {
            if ha == 0 && hb == 0 {
                // Same a, b, same class, different node impossible.
                unreachable!("identical parts imply identical nodes");
            }
            // Stay-in-class requires the other part equal; otherwise bounce
            // through the other class: 2 exchange hops.
            if cu {
                // class 1: b-part freely fixable; a-part needs a round trip.
                if ha == 0 {
                    hb
                } else {
                    ha + hb + 2
                }
            } else if hb == 0 {
                ha
            } else {
                ha + hb + 2
            }
        } else {
            // One exchange hop, plus both parts fixed in their own class.
            ha + hb + 1
        }
    }
}

impl Topology for ExchangedHypercube {
    #[inline]
    fn label_width(&self) -> u32 {
        self.s + self.t + 1
    }

    #[inline]
    fn has_link(&self, node: NodeId, dim: u32) -> bool {
        if dim == 0 {
            return true;
        }
        if dim <= self.t {
            // b-part links exist only between 1-ending nodes.
            node.bit(0)
        } else if dim <= self.s + self.t {
            // a-part links exist only between 0-ending nodes.
            !node.bit(0)
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search;
    use crate::topology::NoFaults;

    #[test]
    fn constructor_rejects_degenerate_params() {
        assert!(ExchangedHypercube::new(0, 1).is_err());
        assert!(ExchangedHypercube::new(1, 0).is_err());
        assert!(ExchangedHypercube::new(2, 3).is_ok());
    }

    #[test]
    fn part_extraction_round_trips() {
        let eh = ExchangedHypercube::new(3, 2).unwrap();
        for a in 0..8u64 {
            for b in 0..4u64 {
                for c in [false, true] {
                    let v = eh.node(a, b, c);
                    assert_eq!(eh.a_part(v), a);
                    assert_eq!(eh.b_part(v), b);
                    assert_eq!(eh.class_bit(v), c);
                }
            }
        }
    }

    #[test]
    fn zero_ending_nodes_form_s_cubes() {
        // Definition: the 0-ending nodes comprise 2^t s-dimensional cubes,
        // one per b-value; within a cube only the a-part varies.
        let eh = ExchangedHypercube::new(3, 2).unwrap();
        for v in 0..eh.num_nodes() {
            let v = NodeId(v);
            if !eh.class_bit(v) {
                let nbrs = eh.neighbors(v);
                // Degree: s cube links + 1 exchange link.
                assert_eq!(nbrs.len() as u32, eh.s() + 1);
                for u in nbrs {
                    if eh.class_bit(u) {
                        // the unique exchange neighbour keeps both parts
                        assert_eq!(eh.a_part(u), eh.a_part(v));
                        assert_eq!(eh.b_part(u), eh.b_part(v));
                    } else {
                        assert_eq!(eh.b_part(u), eh.b_part(v));
                        assert_eq!((eh.a_part(u) ^ eh.a_part(v)).count_ones(), 1);
                    }
                }
            } else {
                assert_eq!(eh.degree(v), eh.t() + 1);
            }
        }
    }

    #[test]
    fn link_symmetry() {
        let eh = ExchangedHypercube::new(2, 3).unwrap();
        for v in 0..eh.num_nodes() {
            for c in 0..eh.label_width() {
                assert_eq!(eh.has_link(NodeId(v), c), eh.has_link(NodeId(v).flip(c), c));
            }
        }
    }

    #[test]
    fn connected_and_link_count() {
        // |E| = 2^(s+t) exchange links + 2^t * s*2^(s-1) + 2^s * t*2^(t-1).
        for (s, t) in [(1, 1), (2, 2), (3, 2), (2, 3)] {
            let eh = ExchangedHypercube::new(s, t).unwrap();
            assert!(search::is_connected(&eh, &NoFaults));
            let expect = (1u64 << (s + t))
                + (1u64 << t) * (u64::from(s) << (s - 1))
                + (1u64 << s) * (u64::from(t) << (t - 1));
            assert_eq!(eh.num_links(), expect, "EH({s},{t}) link count");
        }
    }

    #[test]
    fn closed_form_distance_matches_bfs() {
        for (s, t) in [(1, 1), (2, 2), (3, 2), (2, 3), (4, 2)] {
            let eh = ExchangedHypercube::new(s, t).unwrap();
            for u in 0..eh.num_nodes() {
                let dist = search::bfs_distances(&eh, NodeId(u), &NoFaults);
                for v in 0..eh.num_nodes() {
                    assert_eq!(
                        dist[v as usize],
                        eh.dist(NodeId(u), NodeId(v)),
                        "EH({s},{t}) dist({u:b},{v:b})"
                    );
                }
            }
        }
    }

    #[test]
    fn isomorphic_to_swapped_parameters() {
        // EH(s,t) ≅ EH(t,s) by swapping a/b parts and complementing the class
        // bit (paper, Case II of Algorithm 4).
        let eh1 = ExchangedHypercube::new(3, 2).unwrap();
        let eh2 = ExchangedHypercube::new(2, 3).unwrap();
        let map =
            |v: NodeId| -> NodeId { eh2.node(eh1.b_part(v), eh1.a_part(v), !eh1.class_bit(v)) };
        assert!(crate::gaussian_cube::general::is_isomorphic_under(
            &eh1, &eh2, map
        ));
    }
}
