//! The [`Topology`] trait: the common shape of every network in this crate.
//!
//! All topologies the paper uses — Gaussian Cube, Gaussian Tree, binary
//! hypercube and exchanged hypercube — are *bit-flip graphs* on `2^w` labels:
//! every link connects two labels differing in exactly one bit. A topology is
//! therefore fully described by its label width and a predicate
//! `has_link(node, dim)`.

use crate::addr::{LinkId, NodeId};

/// A network whose `2^label_width()` nodes are bit strings and whose links
/// each flip exactly one bit.
pub trait Topology {
    /// Number of bits in a node label (`n` for `GC(n,M)` and `Q_n`, `m` for
    /// `T_m`, `s+t+1` for `EH(s,t)`).
    fn label_width(&self) -> u32;

    /// Whether `node` has a link in dimension `dim`.
    ///
    /// Implementations must be symmetric under the flip: for all valid
    /// `node`, `dim`: `has_link(node, dim) == has_link(node.flip(dim), dim)`.
    /// (This holds by construction for every topology in the paper and is
    /// asserted by each implementation's tests.)
    fn has_link(&self, node: NodeId, dim: u32) -> bool;

    /// Number of nodes, `2^label_width()`.
    #[inline]
    fn num_nodes(&self) -> u64 {
        1u64 << self.label_width()
    }

    /// Whether `node` is a valid label for this topology.
    #[inline]
    fn contains(&self, node: NodeId) -> bool {
        node.0 < self.num_nodes()
    }

    /// The dimensions in which `node` has links, ascending.
    fn link_dims(&self, node: NodeId) -> Vec<u32> {
        (0..self.label_width())
            .filter(|&c| self.has_link(node, c))
            .collect()
    }

    /// Degree of `node`.
    fn degree(&self, node: NodeId) -> u32 {
        (0..self.label_width())
            .filter(|&c| self.has_link(node, c))
            .count() as u32
    }

    /// All neighbours of `node`, in ascending dimension order.
    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.label_width())
            .filter(|&c| self.has_link(node, c))
            .map(|c| node.flip(c))
            .collect()
    }

    /// Total number of (undirected) links. O(nodes × width) by default.
    fn num_links(&self) -> u64 {
        let mut total = 0u64;
        for v in 0..self.num_nodes() {
            total += u64::from(self.degree(NodeId(v)));
        }
        total / 2
    }

    /// Iterate all links, each reported once via its canonical [`LinkId`].
    fn links(&self) -> Vec<LinkId> {
        let mut out = Vec::new();
        for v in 0..self.num_nodes() {
            let node = NodeId(v);
            for c in 0..self.label_width() {
                if !node.bit(c) && self.has_link(node, c) {
                    out.push(LinkId::new(node, c));
                }
            }
        }
        out
    }
}

/// A predicate masking out faulty nodes and links during graph search.
///
/// The routing crate's fault sets implement this; [`NoFaults`] is the trivial
/// all-healthy mask used for fault-free analysis.
pub trait LinkMask {
    /// Whether `node` is usable (non-faulty).
    fn node_ok(&self, node: NodeId) -> bool;
    /// Whether `link` is usable (non-faulty, and both endpoints non-faulty is
    /// *not* implied — callers combine with [`LinkMask::node_ok`]).
    fn link_ok(&self, link: LinkId) -> bool;
}

/// The trivial mask: everything healthy.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl LinkMask for NoFaults {
    #[inline]
    fn node_ok(&self, _node: NodeId) -> bool {
        true
    }
    #[inline]
    fn link_ok(&self, _link: LinkId) -> bool {
        true
    }
}

impl<M: LinkMask + ?Sized> LinkMask for &M {
    #[inline]
    fn node_ok(&self, node: NodeId) -> bool {
        (**self).node_ok(node)
    }
    #[inline]
    fn link_ok(&self, link: LinkId) -> bool {
        (**self).link_ok(link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-node path graph: width 1, the single dim-0 link.
    struct Path2;
    impl Topology for Path2 {
        fn label_width(&self) -> u32 {
            1
        }
        fn has_link(&self, _node: NodeId, dim: u32) -> bool {
            dim == 0
        }
    }

    #[test]
    fn default_methods_on_tiny_topology() {
        let t = Path2;
        assert_eq!(t.num_nodes(), 2);
        assert!(t.contains(NodeId(1)));
        assert!(!t.contains(NodeId(2)));
        assert_eq!(t.link_dims(NodeId(0)), vec![0]);
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.neighbors(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(t.num_links(), 1);
        assert_eq!(t.links(), vec![LinkId::new(NodeId(0), 0)]);
    }

    #[test]
    fn no_faults_mask_accepts_everything() {
        let m = NoFaults;
        assert!(m.node_ok(NodeId(42)));
        assert!(m.link_ok(LinkId::new(NodeId(42), 3)));
        // Reference impl forwards.
        let r = &m;
        assert!(r.node_ok(NodeId(0)));
    }
}
