//! Generic graph search over any [`Topology`], with optional fault masking.
//!
//! These routines are the reference oracle for the routing algorithms: BFS
//! distances certify FFGCR's optimality, connectivity checks certify the
//! tree/decomposition theorems, and exact diameters regenerate Figure 2.

use std::collections::VecDeque;

use crate::addr::{LinkId, NodeId};
use crate::topology::{LinkMask, Topology};

/// Distance value for unreachable nodes in [`bfs_distances`] output.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `src` to every node, honouring the fault mask.
///
/// Nodes that are faulty, or unreachable through non-faulty nodes/links,
/// get [`UNREACHABLE`]. A faulty `src` yields an all-unreachable vector.
pub fn bfs_distances<T, M>(topo: &T, src: NodeId, mask: &M) -> Vec<u32>
where
    T: Topology + ?Sized,
    M: LinkMask + ?Sized,
{
    let n = topo.num_nodes() as usize;
    let mut dist = vec![UNREACHABLE; n];
    if !topo.contains(src) || !mask.node_ok(src) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[src.0 as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.0 as usize];
        for c in 0..topo.label_width() {
            if !topo.has_link(u, c) || !mask.link_ok(LinkId::new(u, c)) {
                continue;
            }
            let v = u.flip(c);
            if !mask.node_ok(v) {
                continue;
            }
            let dv = &mut dist[v.0 as usize];
            if *dv == UNREACHABLE {
                *dv = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Shortest-path distance between `s` and `d` under the mask, if connected.
pub fn distance<T, M>(topo: &T, s: NodeId, d: NodeId, mask: &M) -> Option<u32>
where
    T: Topology + ?Sized,
    M: LinkMask + ?Sized,
{
    shortest_path(topo, s, d, mask).map(|p| (p.len() - 1) as u32)
}

/// A shortest path from `s` to `d` (inclusive of both), honouring the mask.
///
/// Returns `None` if `d` is unreachable. Uses a BFS from `d` and walks
/// downhill from `s`, so the returned path is deterministic (lowest flipping
/// dimension first among ties).
pub fn shortest_path<T, M>(topo: &T, s: NodeId, d: NodeId, mask: &M) -> Option<Vec<NodeId>>
where
    T: Topology + ?Sized,
    M: LinkMask + ?Sized,
{
    if !topo.contains(s) || !topo.contains(d) {
        return None;
    }
    let dist = bfs_distances(topo, d, mask);
    if dist[s.0 as usize] == UNREACHABLE {
        return None;
    }
    let mut path = Vec::with_capacity(dist[s.0 as usize] as usize + 1);
    let mut cur = s;
    path.push(cur);
    while cur != d {
        let dcur = dist[cur.0 as usize];
        let mut advanced = false;
        for c in 0..topo.label_width() {
            if !topo.has_link(cur, c) || !mask.link_ok(LinkId::new(cur, c)) {
                continue;
            }
            let v = cur.flip(c);
            if mask.node_ok(v) && dist[v.0 as usize] == dcur - 1 {
                cur = v;
                path.push(cur);
                advanced = true;
                break;
            }
        }
        debug_assert!(advanced, "BFS downhill walk must always advance");
        if !advanced {
            return None;
        }
    }
    Some(path)
}

/// Whether the whole topology is connected under the mask.
///
/// With a non-trivial mask, "connected" means: all non-faulty nodes are
/// mutually reachable (faulty nodes are ignored).
pub fn is_connected<T, M>(topo: &T, mask: &M) -> bool
where
    T: Topology + ?Sized,
    M: LinkMask + ?Sized,
{
    let first_ok = (0..topo.num_nodes()).map(NodeId).find(|&v| mask.node_ok(v));
    let Some(src) = first_ok else { return true };
    let dist = bfs_distances(topo, src, mask);
    (0..topo.num_nodes())
        .map(NodeId)
        .filter(|&v| mask.node_ok(v))
        .all(|v| dist[v.0 as usize] != UNREACHABLE)
}

/// Connected components (of non-faulty nodes), each sorted ascending.
/// Components are ordered by their smallest member.
pub fn components<T, M>(topo: &T, mask: &M) -> Vec<Vec<NodeId>>
where
    T: Topology + ?Sized,
    M: LinkMask + ?Sized,
{
    let n = topo.num_nodes() as usize;
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for v in 0..topo.num_nodes() {
        let v = NodeId(v);
        if seen[v.0 as usize] || !mask.node_ok(v) {
            continue;
        }
        let dist = bfs_distances(topo, v, mask);
        let mut comp = Vec::new();
        for (u, &du) in dist.iter().enumerate() {
            if du != UNREACHABLE {
                seen[u] = true;
                comp.push(NodeId(u as u64));
            }
        }
        out.push(comp);
    }
    out
}

/// Eccentricity of `src`: max finite BFS distance. `None` if the graph seen
/// from `src` is empty (faulty source).
pub fn eccentricity<T, M>(topo: &T, src: NodeId, mask: &M) -> Option<u32>
where
    T: Topology + ?Sized,
    M: LinkMask + ?Sized,
{
    let dist = bfs_distances(topo, src, mask);
    dist.iter().copied().filter(|&d| d != UNREACHABLE).max()
}

/// Exact diameter by running a BFS from every node, parallelised across a
/// fixed worker pool with `crossbeam::scope`.
///
/// Suitable up to ~2^20 nodes. Returns `None` for a disconnected topology.
pub fn diameter_exact<T>(topo: &T, threads: usize) -> Option<u32>
where
    T: Topology + Sync + ?Sized,
{
    use crate::topology::NoFaults;
    let n = topo.num_nodes();
    if !is_connected(topo, &NoFaults) {
        return None;
    }
    let threads = threads.max(1);
    let counter = std::sync::atomic::AtomicU64::new(0);
    let best = std::sync::atomic::AtomicU32::new(0);
    crossbeam::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let v = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if v >= n {
                    break;
                }
                if let Some(e) = eccentricity(topo, NodeId(v), &NoFaults) {
                    best.fetch_max(e, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    })
    .expect("diameter worker panicked");
    Some(best.load(std::sync::atomic::Ordering::Relaxed))
}

/// Diameter of a *tree* topology by the classic double-BFS: two sweeps
/// instead of `2^m`, exact because BFS eccentricity from any node reaches an
/// endpoint of a longest path in a tree.
pub fn diameter_tree<T>(topo: &T) -> u32
where
    T: Topology + ?Sized,
{
    use crate::topology::NoFaults;
    let d0 = bfs_distances(topo, NodeId(0), &NoFaults);
    let (far, _) = d0
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHABLE)
        .max_by_key(|(_, &d)| d)
        .expect("tree has at least one node");
    let d1 = bfs_distances(topo, NodeId(far as u64), &NoFaults);
    d1.iter()
        .copied()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Mean shortest-path distance over all ordered reachable pairs.
pub fn mean_distance<T>(topo: &T) -> f64
where
    T: Topology + ?Sized,
{
    use crate::topology::NoFaults;
    let mut total: u64 = 0;
    let mut pairs: u64 = 0;
    for v in 0..topo.num_nodes() {
        let dist = bfs_distances(topo, NodeId(v), &NoFaults);
        for &d in &dist {
            if d != UNREACHABLE && d > 0 {
                total += u64::from(d);
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::Hypercube;
    use crate::topology::NoFaults;
    use std::collections::HashSet;

    #[test]
    fn bfs_distances_on_q3_match_hamming() {
        let q = Hypercube::new(3).unwrap();
        for s in 0..8 {
            let dist = bfs_distances(&q, NodeId(s), &NoFaults);
            for d in 0..8 {
                assert_eq!(dist[d as usize], NodeId(s).hamming(NodeId(d)));
            }
        }
    }

    #[test]
    fn shortest_path_is_valid_and_optimal() {
        let q = Hypercube::new(4).unwrap();
        for s in 0..16 {
            for d in 0..16 {
                let p = shortest_path(&q, NodeId(s), NodeId(d), &NoFaults).unwrap();
                assert_eq!(p.first(), Some(&NodeId(s)));
                assert_eq!(p.last(), Some(&NodeId(d)));
                assert_eq!(p.len() as u32 - 1, NodeId(s).hamming(NodeId(d)));
                for w in p.windows(2) {
                    assert_eq!(w[0].hamming(w[1]), 1);
                }
            }
        }
    }

    #[test]
    fn masked_bfs_routes_around_fault() {
        // Q_2 with node 01 faulty: 00 -> 11 must go through 10 (dist 2 still),
        // but 00 -> 01 is unreachable.
        struct OneFault;
        impl LinkMask for OneFault {
            fn node_ok(&self, n: NodeId) -> bool {
                n != NodeId(0b01)
            }
            fn link_ok(&self, _l: LinkId) -> bool {
                true
            }
        }
        let q = Hypercube::new(2).unwrap();
        let dist = bfs_distances(&q, NodeId(0), &OneFault);
        assert_eq!(dist[0b11], 2);
        assert_eq!(dist[0b01], UNREACHABLE);
    }

    #[test]
    fn masked_link_fault_forces_detour() {
        struct LinkFault;
        impl LinkMask for LinkFault {
            fn node_ok(&self, _n: NodeId) -> bool {
                true
            }
            fn link_ok(&self, l: LinkId) -> bool {
                l != LinkId::new(NodeId(0), 0)
            }
        }
        let q = Hypercube::new(2).unwrap();
        // 00 -> 01 now takes 3 hops: 00,10,11,01.
        assert_eq!(distance(&q, NodeId(0), NodeId(1), &LinkFault), Some(3));
    }

    #[test]
    fn connectivity_and_components() {
        let q = Hypercube::new(3).unwrap();
        assert!(is_connected(&q, &NoFaults));
        let comps = components(&q, &NoFaults);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 8);
        let all: HashSet<_> = comps[0].iter().copied().collect();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn diameter_of_hypercube_is_n() {
        for n in 1..=8 {
            let q = Hypercube::new(n).unwrap();
            assert_eq!(diameter_exact(&q, 4), Some(n));
        }
    }

    #[test]
    fn mean_distance_of_q2() {
        // Q_2 pair distances: 8 ordered pairs at distance 1, 4 at distance 2.
        let q = Hypercube::new(2).unwrap();
        let mean = mean_distance(&q);
        assert!((mean - (8.0 + 8.0) / 12.0).abs() < 1e-12);
    }

    #[test]
    fn eccentricity_of_faulty_source_is_none() {
        struct AllFaulty;
        impl LinkMask for AllFaulty {
            fn node_ok(&self, _n: NodeId) -> bool {
                false
            }
            fn link_ok(&self, _l: LinkId) -> bool {
                false
            }
        }
        let q = Hypercube::new(2).unwrap();
        assert_eq!(eccentricity(&q, NodeId(0), &AllFaulty), None);
        assert!(is_connected(&q, &AllFaulty)); // vacuously: no healthy nodes
    }
}
