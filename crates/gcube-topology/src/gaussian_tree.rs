//! The Gaussian Graph `G_m` / Gaussian Tree `T_m` (paper §3).
//!
//! `G_m` has `2^m` nodes labelled with `m`-bit strings; nodes `x` and
//! `x ⊕ 2^c` are adjacent iff `c = 0`, or `c ∈ [1, m-1]` and the low `c` bits
//! of `x` equal `c mod 2^c` (which is just `c`, since `c < 2^c`). Theorem 2
//! proves `G_m` is a tree; this module verifies that computationally (edge
//! counts per dimension, connectivity) and provides the tree operations the
//! routing algorithms need: distances, paths-to-root orientation, and the
//! diameter series of Figure 2.
//!
//! `T_α` is the quotient of `GC(n, 2^α)` by the "same low `α` bits"
//! equivalence: each tree node *is* a k-ending class, and each tree edge is
//! realised by a whole bundle of GC links in one dimension `< α`.

use crate::addr::NodeId;
use crate::error::TopologyError;
use crate::hypercube::MAX_WIDTH;
use crate::search;
use crate::topology::{NoFaults, Topology};

/// The Gaussian Tree `T_m` over `2^m` nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaussianTree {
    m: u32,
}

impl GaussianTree {
    /// Create `T_m`. `m = 0` is the single-node tree.
    pub fn new(m: u32) -> Result<Self, TopologyError> {
        if m > MAX_WIDTH {
            return Err(TopologyError::DimensionOutOfRange {
                requested: m,
                max: MAX_WIDTH,
            });
        }
        Ok(GaussianTree { m })
    }

    /// The order parameter `m` (label width).
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Whether tree nodes `a` and `b` are adjacent, and if so in which
    /// dimension. Returns `None` for non-adjacent pairs (including `a == b`).
    pub fn edge_dim(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let diff = a.0 ^ b.0;
        if diff == 0 || !diff.is_power_of_two() {
            return None;
        }
        let c = diff.trailing_zeros();
        self.has_link(a, c).then_some(c)
    }

    /// Number of edges spanning dimension `i`: `E_m(i) = 2^(m-1-i)` for
    /// `i ∈ [0, m-1]` (proof step 3 of Theorem 2).
    pub fn edges_in_dim(&self, i: u32) -> u64 {
        if self.m == 0 || i >= self.m {
            0
        } else {
            1u64 << (self.m - 1 - i)
        }
    }

    /// Tree distance between two nodes (via BFS; for the algorithmic path see
    /// the routing crate's `pc` module, which is tested to agree).
    pub fn dist(&self, a: NodeId, b: NodeId) -> u32 {
        search::distance(self, a, b, &NoFaults).expect("a tree is connected")
    }

    /// Exact diameter via double BFS (a tree-exact method) — Figure 2's
    /// quantity.
    pub fn diameter(&self) -> u32 {
        if self.m == 0 {
            0
        } else {
            search::diameter_tree(self)
        }
    }

    /// The parent of `node` when the tree is rooted at `root`: the unique
    /// neighbour closer to `root`. `None` for the root itself.
    pub fn parent_towards(&self, node: NodeId, root: NodeId) -> Option<NodeId> {
        if node == root {
            return None;
        }
        let dist = search::bfs_distances(self, root, &NoFaults);
        let dn = dist[node.0 as usize];
        self.neighbors(node)
            .into_iter()
            .find(|v| dist[v.0 as usize] + 1 == dn)
    }
}

impl Topology for GaussianTree {
    #[inline]
    fn label_width(&self) -> u32 {
        self.m
    }

    #[inline]
    fn has_link(&self, node: NodeId, dim: u32) -> bool {
        if dim >= self.m {
            return false;
        }
        if dim == 0 {
            return true;
        }
        // Low `dim` bits must equal `dim mod 2^dim = dim` (c < 2^c for c ≥ 1).
        node.low_bits(dim) == u64::from(dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{components, is_connected};

    #[test]
    fn theorem2_gaussian_graph_is_a_tree() {
        // Lemma 1: connected + (2^m - 1) edges ⇒ tree.
        for m in 0..=14u32 {
            let t = GaussianTree::new(m).unwrap();
            assert!(is_connected(&t, &NoFaults), "G_{m} must be connected");
            let expect_edges = t.num_nodes() - 1;
            assert_eq!(t.num_links(), expect_edges, "G_{m} edge count");
        }
    }

    #[test]
    fn edges_per_dimension_closed_form() {
        for m in 1..=12u32 {
            let t = GaussianTree::new(m).unwrap();
            let mut per_dim = vec![0u64; m as usize];
            for l in t.links() {
                per_dim[l.dim as usize] += 1;
            }
            for i in 0..m {
                assert_eq!(per_dim[i as usize], t.edges_in_dim(i), "E_{m}({i})");
            }
            assert_eq!(per_dim.iter().sum::<u64>(), (1u64 << m) - 1);
        }
    }

    #[test]
    fn figure1_topologies_match_paper() {
        // Figure 1 shows G_2, G_3, G_4. Check G_2 and G_3 edge sets exactly.
        let g2 = GaussianTree::new(2).unwrap();
        let mut e2: Vec<(u64, u64)> = g2
            .links()
            .iter()
            .map(|l| (l.lo.0, l.lo.flip(l.dim).0))
            .collect();
        e2.sort_unstable();
        assert_eq!(e2, vec![(0b00, 0b01), (0b01, 0b11), (0b10, 0b11)]);

        let g3 = GaussianTree::new(3).unwrap();
        let mut e3: Vec<(u64, u64)> = g3
            .links()
            .iter()
            .map(|l| (l.lo.0, l.lo.flip(l.dim).0))
            .collect();
        e3.sort_unstable();
        assert_eq!(
            e3,
            vec![
                (0b000, 0b001),
                (0b001, 0b011),
                (0b010, 0b011),
                (0b010, 0b110),
                (0b100, 0b101),
                (0b101, 0b111),
                (0b110, 0b111),
            ]
        );
    }

    #[test]
    fn edge_dim_detects_adjacency() {
        let t = GaussianTree::new(3).unwrap();
        assert_eq!(t.edge_dim(NodeId(0b010), NodeId(0b110)), Some(2));
        assert_eq!(t.edge_dim(NodeId(0b110), NodeId(0b010)), Some(2));
        assert_eq!(t.edge_dim(NodeId(0b000), NodeId(0b010)), None); // dim-1 needs low bit 1
        assert_eq!(t.edge_dim(NodeId(0b000), NodeId(0b011)), None); // two bits differ
        assert_eq!(t.edge_dim(NodeId(0b000), NodeId(0b000)), None);
    }

    #[test]
    fn small_diameters() {
        // Hand-checked: T_1 is an edge; T_2 and T_3 are paths of 4 and 8
        // nodes (trace Figure 1's edge lists), so their diameters are 3, 7.
        assert_eq!(GaussianTree::new(0).unwrap().diameter(), 0);
        assert_eq!(GaussianTree::new(1).unwrap().diameter(), 1);
        assert_eq!(GaussianTree::new(2).unwrap().diameter(), 3);
        assert_eq!(GaussianTree::new(3).unwrap().diameter(), 7);
    }

    #[test]
    fn diameter_series_figure2() {
        // Figure 2 plots D(T_m) vs m. The exact series (computed once,
        // pinned here): near-linear growth with jumps just past powers of
        // two, where the dim-(2^j) edge attaches the new copy far from the
        // old path's centre.
        let expect = [1u32, 3, 7, 11, 23, 27, 33, 37, 51, 55, 61, 65, 77];
        for (i, &want) in expect.iter().enumerate() {
            let m = (i + 1) as u32;
            assert_eq!(GaussianTree::new(m).unwrap().diameter(), want, "D(T_{m})");
        }
    }

    #[test]
    fn double_bfs_matches_exact_diameter() {
        for m in 1..=9u32 {
            let t = GaussianTree::new(m).unwrap();
            assert_eq!(Some(t.diameter()), search::diameter_exact(&t, 4));
        }
    }

    #[test]
    fn parent_orientation() {
        let t = GaussianTree::new(3).unwrap();
        let root = NodeId(0);
        assert_eq!(t.parent_towards(root, root), None);
        // Every non-root node has exactly one parent, and following parents
        // reaches the root in dist() steps.
        for v in 1..8u64 {
            let mut cur = NodeId(v);
            let mut steps = 0;
            while let Some(p) = t.parent_towards(cur, root) {
                cur = p;
                steps += 1;
                assert!(steps <= 8);
            }
            assert_eq!(cur, root);
            assert_eq!(steps, t.dist(NodeId(v), root));
        }
    }

    #[test]
    fn single_component() {
        let t = GaussianTree::new(6).unwrap();
        assert_eq!(components(&t, &NoFaults).len(), 1);
    }
}
