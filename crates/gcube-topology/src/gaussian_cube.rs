//! The binary Gaussian Cube `GC(n, M)` (paper §2).
//!
//! `GC(n, M)` has `2^n` nodes with `n`-bit labels. Nodes `p` and `q = p ⊕ 2^c`
//! are linked iff both lie in the congruence class `[c]_{M'}` with
//! `M' = min(2^c, M)` — the *original* definition. The paper's Theorem 1
//! rewrites this as a purely local condition on `p`'s least-significant bits:
//!
//! * every node has a link in dimension 0;
//! * for `c ∈ [1, α]` (`α = log2 M`): `p` has a link in dimension `c` iff its
//!   low `c` bits equal `c mod 2^c`;
//! * for `c ∈ (α, n)`: iff its low `α` bits equal `c mod 2^α`.
//!
//! [`GaussianCube`] implements the Theorem-1 form (fast, local);
//! [`link_by_congruence`] implements the original definition so the
//! equivalence can be tested exhaustively. For non-power-of-two `M` the
//! network is disconnected (§2); [`general::components`] computes the
//! decomposition.

use crate::addr::NodeId;
use crate::error::TopologyError;
use crate::hypercube::MAX_WIDTH;
use crate::topology::Topology;

/// The binary Gaussian Cube `GC(n, 2^α)`.
///
/// Constructed via [`GaussianCube::new`] from `(n, M)`; `M` must be a power
/// of two so the network is connected (the paper reduces every other case to
/// this one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaussianCube {
    n: u32,
    alpha: u32,
}

impl GaussianCube {
    /// Create `GC(n, modulus)`. Requires `n ≥ 1`, `modulus` a power of two
    /// with `modulus ≥ 1`.
    pub fn new(n: u32, modulus: u64) -> Result<Self, TopologyError> {
        if n == 0 || n > MAX_WIDTH {
            return Err(TopologyError::DimensionOutOfRange {
                requested: n,
                max: MAX_WIDTH,
            });
        }
        if modulus == 0 {
            return Err(TopologyError::ZeroModulus);
        }
        if !modulus.is_power_of_two() {
            return Err(TopologyError::ModulusNotPowerOfTwo { modulus });
        }
        Ok(GaussianCube {
            n,
            alpha: modulus.trailing_zeros(),
        })
    }

    /// Create `GC(n, 2^alpha)` directly from the exponent `α`.
    pub fn from_alpha(n: u32, alpha: u32) -> Result<Self, TopologyError> {
        if alpha >= 64 {
            return Err(TopologyError::DimensionOutOfRange {
                requested: alpha,
                max: 63,
            });
        }
        Self::new(n, 1u64 << alpha)
    }

    /// Network dimension `n` (label width).
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The modulus `M = 2^α`.
    #[inline]
    pub fn modulus(&self) -> u64 {
        1u64 << self.alpha
    }

    /// `α = log2 M` — the paper's scaling parameter.
    #[inline]
    pub fn alpha(&self) -> u32 {
        self.alpha
    }

    /// The ending class `k = p mod 2^α` of a node (Definition 2).
    #[inline]
    pub fn ending_class(&self, p: NodeId) -> u64 {
        p.low_bits(self.alpha)
    }

    /// Whether this instance degenerates to the binary hypercube (`M = 1`).
    #[inline]
    pub fn is_hypercube(&self) -> bool {
        self.alpha == 0
    }
}

impl Topology for GaussianCube {
    #[inline]
    fn label_width(&self) -> u32 {
        self.n
    }

    /// Theorem 1: the local link condition.
    #[inline]
    fn has_link(&self, node: NodeId, dim: u32) -> bool {
        if dim >= self.n {
            return false;
        }
        if dim == 0 {
            return true;
        }
        let k = dim.min(self.alpha);
        // `c mod 2^k` with k = min(c, α); for k = c this is just c because
        // c < 2^c for all c ≥ 1.
        let want = u64::from(dim) & ((1u64 << k) - 1);
        node.low_bits(k) == want
    }
}

/// The *original* congruence-class link definition from §2, for any `M ≥ 1`
/// (not just powers of two).
///
/// Nodes `p` and `q = p ⊕ 2^c` are linked iff **both** `p ≡ c` and `q ≡ c`
/// modulo `M' = min(2^c, M)`. For power-of-two `M` the second condition is
/// implied by the first (`M'` divides `2^c`), but for general `M` it is not —
/// which is exactly why such networks lose all links in high dimensions and
/// disconnect (§2).
pub fn link_by_congruence(n: u32, modulus: u64, p: NodeId, dim: u32) -> bool {
    assert!(modulus >= 1, "modulus must be >= 1");
    if dim >= n {
        return false;
    }
    let m_prime = if dim >= 63 {
        modulus // 2^dim overflows; it certainly exceeds any practical modulus
    } else {
        modulus.min(1u64 << dim)
    };
    let q = p.flip(dim);
    let want = u64::from(dim) % m_prime;
    p.0 % m_prime == want && q.0 % m_prime == want
}

/// Decomposition of `GC(n, M)` for general (possibly non-power-of-two) `M`.
///
/// §2 of the paper shows: no link spans any dimension `c > ⌊log2 M⌋` when `M`
/// is not a power of two, so the network separates into disconnected
/// subnetworks, one per assignment of the top `n - 1 - ⌊log2 M⌋` bits, and
/// each subnetwork is isomorphic to `GC(⌊log2 M⌋ + 1, 2^⌊log2 M⌋)`.
pub mod general {
    use super::*;
    use crate::search;
    use crate::topology::{LinkMask, NoFaults};

    /// `GC(n, M)` under the congruence definition, as a [`Topology`].
    #[derive(Clone, Copy, Debug)]
    pub struct GeneralGaussianCube {
        /// Label width.
        pub n: u32,
        /// Arbitrary modulus `M ≥ 1`.
        pub modulus: u64,
    }

    impl GeneralGaussianCube {
        /// Create a general-`M` Gaussian Cube (no power-of-two requirement).
        pub fn new(n: u32, modulus: u64) -> Result<Self, TopologyError> {
            if n == 0 || n > MAX_WIDTH {
                return Err(TopologyError::DimensionOutOfRange {
                    requested: n,
                    max: MAX_WIDTH,
                });
            }
            if modulus == 0 {
                return Err(TopologyError::ZeroModulus);
            }
            Ok(GeneralGaussianCube { n, modulus })
        }
    }

    impl Topology for GeneralGaussianCube {
        fn label_width(&self) -> u32 {
            self.n
        }
        fn has_link(&self, node: NodeId, dim: u32) -> bool {
            link_by_congruence(self.n, self.modulus, node, dim)
        }
    }

    /// Connected components of `GC(n, M)` under the congruence definition.
    pub fn components(n: u32, modulus: u64) -> Result<Vec<Vec<NodeId>>, TopologyError> {
        let g = GeneralGaussianCube::new(n, modulus)?;
        Ok(search::components(&g, &NoFaults))
    }

    /// Number of components predicted by §2 for non-power-of-two `M`:
    /// `2^(n - 1 - ⌊log2 M⌋)` (and 1 for power-of-two `M ≤ 2^(n-1)`).
    pub fn predicted_component_count(n: u32, modulus: u64) -> u64 {
        if modulus.is_power_of_two() {
            return 1;
        }
        let floor_log = 63 - modulus.leading_zeros();
        if floor_log + 1 >= n {
            1
        } else {
            1u64 << (n - 1 - floor_log)
        }
    }

    /// Check two topologies of equal width are isomorphic under an explicit
    /// label map `f` (used to verify the `G_i ≅ GC(⌊log2 M⌋+1, …)` claim).
    pub fn is_isomorphic_under<TA, TB, F>(a: &TA, b: &TB, f: F) -> bool
    where
        TA: Topology,
        TB: Topology,
        F: Fn(NodeId) -> NodeId,
    {
        if a.num_nodes() != b.num_nodes() {
            return false;
        }
        for v in 0..a.num_nodes() {
            let v = NodeId(v);
            let mut an: Vec<NodeId> = a.neighbors(v).into_iter().map(&f).collect();
            let mut bn = b.neighbors(f(v));
            an.sort_unstable();
            bn.sort_unstable();
            if an != bn {
                return false;
            }
        }
        true
    }

    /// Verify all healthy-node reachability statements needed by tests.
    pub fn masked_connected<T: Topology, M: LinkMask>(topo: &T, mask: &M) -> bool {
        search::is_connected(topo, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search;
    use crate::topology::NoFaults;

    #[test]
    fn constructor_validation() {
        assert!(GaussianCube::new(0, 2).is_err());
        assert!(GaussianCube::new(8, 0).is_err());
        assert!(GaussianCube::new(8, 6).is_err());
        assert!(GaussianCube::new(8, 1).is_ok());
        assert!(GaussianCube::new(8, 8).is_ok());
        assert_eq!(
            GaussianCube::from_alpha(8, 3).unwrap(),
            GaussianCube::new(8, 8).unwrap()
        );
    }

    #[test]
    fn m1_is_binary_hypercube() {
        let gc = GaussianCube::new(6, 1).unwrap();
        assert!(gc.is_hypercube());
        for v in 0..gc.num_nodes() {
            assert_eq!(gc.degree(NodeId(v)), 6);
        }
        assert_eq!(gc.num_links(), 6 * 32);
    }

    #[test]
    fn theorem1_matches_congruence_definition_exhaustively() {
        // The headline equivalence: Theorem 1's local condition reproduces
        // the original congruence-class definition for every node, dimension,
        // and power-of-two modulus.
        for n in 1..=9u32 {
            for alpha in 0..=n {
                let m = 1u64 << alpha;
                let gc = GaussianCube::new(n, m).unwrap();
                for v in 0..gc.num_nodes() {
                    for c in 0..n {
                        assert_eq!(
                            gc.has_link(NodeId(v), c),
                            link_by_congruence(n, m, NodeId(v), c),
                            "mismatch at n={n} M={m} v={v:b} c={c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn link_condition_is_symmetric() {
        let gc = GaussianCube::new(9, 4).unwrap();
        for v in 0..gc.num_nodes() {
            for c in 0..9 {
                assert_eq!(gc.has_link(NodeId(v), c), gc.has_link(NodeId(v).flip(c), c));
            }
        }
    }

    #[test]
    fn every_node_has_dim0_link() {
        for alpha in 0..4 {
            let gc = GaussianCube::from_alpha(8, alpha).unwrap();
            for v in 0..gc.num_nodes() {
                assert!(gc.has_link(NodeId(v), 0));
            }
        }
    }

    #[test]
    fn power_of_two_modulus_gives_connected_network() {
        for n in 2..=10u32 {
            for alpha in 0..=3.min(n) {
                let gc = GaussianCube::from_alpha(n, alpha).unwrap();
                assert!(
                    search::is_connected(&gc, &NoFaults),
                    "GC({n}, 2^{alpha}) should be connected"
                );
            }
        }
    }

    #[test]
    fn non_power_of_two_modulus_disconnects_as_predicted() {
        for n in 4..=8u32 {
            for m in [3u64, 5, 6, 7] {
                let comps = general::components(n, m).unwrap();
                assert_eq!(
                    comps.len() as u64,
                    general::predicted_component_count(n, m),
                    "GC({n}, {m}) component count"
                );
            }
        }
    }

    #[test]
    fn general_components_are_isomorphic_to_small_gc() {
        // §2: each component of GC(n, M) for non-power-of-two M is isomorphic
        // to GC(⌊log2 M⌋ + 1, 2^⌊log2 M⌋); the component is identified by its
        // high bits and the low ⌊log2 M⌋+1 bits are the small cube's label.
        let n = 6u32;
        let m = 5u64; // ⌊log2 5⌋ = 2 → components of size 2^3, shape GC(3, 4)
        let floor_log = 2u32;
        let small = GaussianCube::new(floor_log + 1, 1 << floor_log).unwrap();
        let comps = general::components(n, m).unwrap();
        for comp in comps {
            assert_eq!(comp.len() as u64, small.num_nodes());
            let high = comp[0].0 >> (floor_log + 1);
            // All members share their high bits.
            assert!(comp.iter().all(|p| p.0 >> (floor_log + 1) == high));
            // And the labelled map low-bits -> GC(3,4) is an isomorphism on
            // this component.
            let g = general::GeneralGaussianCube::new(n, m).unwrap();
            for p in &comp {
                let small_label = NodeId(p.low_bits(floor_log + 1));
                let mut got: Vec<u64> = g
                    .neighbors(*p)
                    .into_iter()
                    .map(|q| q.low_bits(floor_log + 1))
                    .collect();
                let mut want: Vec<u64> = small
                    .neighbors(small_label)
                    .into_iter()
                    .map(|q| q.0)
                    .collect();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "component structure mismatch at {p}");
            }
        }
    }

    #[test]
    fn degree_drops_as_modulus_grows() {
        // Larger M dilutes links: total link count is non-increasing in α.
        let n = 10u32;
        let mut prev = u64::MAX;
        for alpha in 0..=4 {
            let gc = GaussianCube::from_alpha(n, alpha).unwrap();
            let links = gc.num_links();
            assert!(links <= prev, "links must not grow with alpha");
            prev = links;
        }
    }

    #[test]
    fn ending_class_is_low_alpha_bits() {
        let gc = GaussianCube::new(8, 4).unwrap();
        assert_eq!(gc.ending_class(NodeId(0b10110110)), 0b10);
        assert_eq!(gc.ending_class(NodeId(0b111)), 0b11);
    }
}

#[cfg(test)]
mod boundary_tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn alpha_at_or_above_width_degenerates_to_tree() {
        // When 2^α ≥ 2^(n-1), every dimension c ∈ [1, n) has min(c, α) = c,
        // so GC(n, 2^α) coincides with the Gaussian Graph G_n.
        use crate::gaussian_tree::GaussianTree;
        let n = 6u32;
        let gc = GaussianCube::from_alpha(n, n).unwrap();
        let t = GaussianTree::new(n).unwrap();
        for v in 0..gc.num_nodes() {
            for c in 0..n {
                assert_eq!(gc.has_link(NodeId(v), c), t.has_link(NodeId(v), c));
            }
        }
        assert_eq!(gc.num_links(), t.num_links());
    }

    #[test]
    fn max_width_cube_constructs() {
        let gc = GaussianCube::new(crate::hypercube::MAX_WIDTH, 2).unwrap();
        assert_eq!(gc.num_nodes(), 1u64 << crate::hypercube::MAX_WIDTH);
        // Predicate stays O(1); spot-check a few links.
        assert!(gc.has_link(NodeId(0), 0));
        assert!(gc.has_link(NodeId(1), 31)); // 31 % 2 == 1 == low bit
        assert!(!gc.has_link(NodeId(0), 31));
    }

    #[test]
    fn modulus_one_alias() {
        assert_eq!(
            GaussianCube::new(5, 1).unwrap(),
            GaussianCube::from_alpha(5, 0).unwrap()
        );
    }
}
