//! Error type shared by topology constructors.

use std::fmt;

/// Errors raised when constructing a topology with invalid parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// The dimension/label width is outside the supported range.
    DimensionOutOfRange {
        /// Requested width.
        requested: u32,
        /// Maximum supported width.
        max: u32,
    },
    /// `GC(n, M)` requires `M ≥ 1`.
    ZeroModulus,
    /// `GC(n, M)` is only connected when `M` is a power of two; the strict
    /// constructor rejects other moduli (use
    /// [`crate::gaussian_cube::general`] for the decomposed general case).
    ModulusNotPowerOfTwo {
        /// The offending modulus.
        modulus: u64,
    },
    /// A node label exceeds the topology's label width.
    NodeOutOfRange {
        /// The offending label.
        node: u64,
        /// The label width of the topology.
        width: u32,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DimensionOutOfRange { requested, max } => {
                write!(f, "dimension {requested} out of range (max {max})")
            }
            TopologyError::ZeroModulus => write!(f, "Gaussian Cube modulus must be >= 1"),
            TopologyError::ModulusNotPowerOfTwo { modulus } => write!(
                f,
                "Gaussian Cube modulus {modulus} is not a power of two; \
                 the network would be disconnected (see paper §2)"
            ),
            TopologyError::NodeOutOfRange { node, width } => {
                write!(f, "node label {node} does not fit in {width} bits")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let msgs = [
            TopologyError::DimensionOutOfRange {
                requested: 99,
                max: 32,
            }
            .to_string(),
            TopologyError::ZeroModulus.to_string(),
            TopologyError::ModulusNotPowerOfTwo { modulus: 6 }.to_string(),
            TopologyError::NodeOutOfRange {
                node: 1024,
                width: 10,
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("99"));
        assert!(msgs[1].contains("modulus"));
        assert!(msgs[2].contains('6'));
        assert!(msgs[3].contains("1024"));
    }
}
