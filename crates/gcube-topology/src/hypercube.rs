//! The binary hypercube `Q_n`.
//!
//! `Q_n` is the substrate of the paper's fault-tolerance analysis: every
//! `k`-ending-`t`-equivalent graph `GEEC(k,t)` embedded in a Gaussian Cube is
//! a binary hypercube (Theorem 3), and the sides of an exchanged hypercube
//! are binary hypercubes too.

use crate::addr::NodeId;
use crate::error::TopologyError;
use crate::topology::Topology;

/// Maximum supported label width for any topology in this workspace.
pub const MAX_WIDTH: u32 = 32;

/// The binary hypercube `Q_n`: `2^n` nodes, links in every dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hypercube {
    n: u32,
}

impl Hypercube {
    /// Create `Q_n`. `n` may be 0 (a single node).
    pub fn new(n: u32) -> Result<Self, TopologyError> {
        if n > MAX_WIDTH {
            return Err(TopologyError::DimensionOutOfRange {
                requested: n,
                max: MAX_WIDTH,
            });
        }
        Ok(Hypercube { n })
    }

    /// The dimension `n`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Hypercube distance = Hamming distance.
    #[inline]
    pub fn dist(&self, a: NodeId, b: NodeId) -> u32 {
        a.hamming(b)
    }
}

impl Topology for Hypercube {
    #[inline]
    fn label_width(&self) -> u32 {
        self.n
    }

    #[inline]
    fn has_link(&self, _node: NodeId, dim: u32) -> bool {
        dim < self.n
    }

    #[inline]
    fn degree(&self, _node: NodeId) -> u32 {
        self.n
    }

    fn num_links(&self) -> u64 {
        // n * 2^(n-1)
        if self.n == 0 {
            0
        } else {
            u64::from(self.n) << (self.n - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search;
    use crate::topology::NoFaults;

    #[test]
    fn rejects_oversized_dimension() {
        assert!(Hypercube::new(MAX_WIDTH + 1).is_err());
        assert!(Hypercube::new(MAX_WIDTH).is_ok());
    }

    #[test]
    fn q0_is_a_single_node() {
        let q = Hypercube::new(0).unwrap();
        assert_eq!(q.num_nodes(), 1);
        assert_eq!(q.num_links(), 0);
        assert_eq!(q.degree(NodeId(0)), 0);
    }

    #[test]
    fn degree_and_link_count() {
        for n in 1..=6 {
            let q = Hypercube::new(n).unwrap();
            assert_eq!(q.num_links(), u64::from(n) << (n - 1));
            for v in 0..q.num_nodes() {
                assert_eq!(q.degree(NodeId(v)), n);
                assert_eq!(q.neighbors(NodeId(v)).len() as u32, n);
            }
            // Generic num_links agrees with the closed form.
            let generic: u64 = (0..q.num_nodes())
                .map(|v| u64::from(Topology::link_dims(&q, NodeId(v)).len() as u32))
                .sum();
            assert_eq!(generic / 2, q.num_links());
        }
    }

    #[test]
    fn link_symmetry() {
        let q = Hypercube::new(5).unwrap();
        for v in 0..q.num_nodes() {
            for c in 0..5 {
                assert_eq!(q.has_link(NodeId(v), c), q.has_link(NodeId(v).flip(c), c));
            }
        }
    }

    #[test]
    fn distance_is_hamming_and_matches_bfs() {
        let q = Hypercube::new(5).unwrap();
        let d = search::bfs_distances(&q, NodeId(0b10101), &NoFaults);
        for v in 0..q.num_nodes() {
            assert_eq!(d[v as usize], q.dist(NodeId(0b10101), NodeId(v)));
        }
    }
}
