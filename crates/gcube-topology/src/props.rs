//! Structural properties and statistics of topologies.
//!
//! The paper motivates Gaussian Cubes by their tunable interconnection
//! density and explains the fault-tolerance difficulty via their low *network
//! node availability* (the maximum number of faulty neighbours a node can
//! tolerate without being disconnected). This module computes those
//! quantities so the claims can be checked and reported.

use crate::addr::NodeId;
use crate::topology::Topology;

/// Degree statistics of a topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum node degree.
    pub min: u32,
    /// Maximum node degree.
    pub max: u32,
    /// Mean node degree.
    pub mean: f64,
}

/// Compute degree statistics by scanning every node.
pub fn degree_stats<T: Topology + ?Sized>(topo: &T) -> DegreeStats {
    let mut min = u32::MAX;
    let mut max = 0u32;
    let mut total = 0u64;
    for v in 0..topo.num_nodes() {
        let d = topo.degree(NodeId(v));
        min = min.min(d);
        max = max.max(d);
        total += u64::from(d);
    }
    DegreeStats {
        min,
        max,
        mean: total as f64 / topo.num_nodes() as f64,
    }
}

/// Network node availability: `min degree - 1` — the most faulty neighbours
/// any node is guaranteed to survive without disconnection (paper §1).
pub fn node_availability<T: Topology + ?Sized>(topo: &T) -> u32 {
    degree_stats(topo).min.saturating_sub(1)
}

/// Histogram of node degrees (index = degree).
pub fn degree_histogram<T: Topology + ?Sized>(topo: &T) -> Vec<u64> {
    let mut hist = vec![0u64; topo.label_width() as usize + 1];
    for v in 0..topo.num_nodes() {
        hist[topo.degree(NodeId(v)) as usize] += 1;
    }
    hist
}

/// Count of links per dimension (index = dimension).
pub fn links_per_dim<T: Topology + ?Sized>(topo: &T) -> Vec<u64> {
    let mut per = vec![0u64; topo.label_width() as usize];
    for v in 0..topo.num_nodes() {
        let node = NodeId(v);
        for c in 0..topo.label_width() {
            if !node.bit(c) && topo.has_link(node, c) {
                per[c as usize] += 1;
            }
        }
    }
    per
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian_cube::GaussianCube;
    use crate::gaussian_tree::GaussianTree;
    use crate::hypercube::Hypercube;

    #[test]
    fn hypercube_degrees_are_uniform() {
        let q = Hypercube::new(5).unwrap();
        let s = degree_stats(&q);
        assert_eq!(
            s,
            DegreeStats {
                min: 5,
                max: 5,
                mean: 5.0
            }
        );
        assert_eq!(node_availability(&q), 4);
        let hist = degree_histogram(&q);
        assert_eq!(hist[5], 32);
        assert_eq!(hist.iter().sum::<u64>(), 32);
    }

    #[test]
    fn gaussian_cube_availability_is_low() {
        // The paper's core obstacle: GC min degree can be very small
        // regardless of n — e.g. a node in a class with empty Dim set and
        // only tree links.
        let gc = GaussianCube::new(10, 4).unwrap();
        let s = degree_stats(&gc);
        assert!(
            s.min < 5,
            "GC(10,4) should have low-degree nodes, got {}",
            s.min
        );
        assert!(s.max <= 10);
        assert_eq!(node_availability(&gc), s.min - 1);
    }

    #[test]
    fn gc_m1_is_degree_n() {
        let gc = GaussianCube::new(7, 1).unwrap();
        assert_eq!(
            degree_stats(&gc),
            DegreeStats {
                min: 7,
                max: 7,
                mean: 7.0
            }
        );
    }

    #[test]
    fn tree_links_per_dim_match_closed_form() {
        let t = GaussianTree::new(8).unwrap();
        let per = links_per_dim(&t);
        for i in 0..8u32 {
            assert_eq!(per[i as usize], t.edges_in_dim(i));
        }
    }

    #[test]
    fn links_per_dim_sums_to_num_links() {
        let gc = GaussianCube::new(8, 2).unwrap();
        assert_eq!(links_per_dim(&gc).iter().sum::<u64>(), gc.num_links());
    }

    #[test]
    fn mean_degree_drops_with_modulus() {
        let mut prev = f64::INFINITY;
        for alpha in 0..=3 {
            let gc = GaussianCube::from_alpha(9, alpha).unwrap();
            let mean = degree_stats(&gc).mean;
            assert!(mean <= prev);
            prev = mean;
        }
    }
}
