//! Interconnection-network topologies for the Gaussian Cube reproduction.
//!
//! This crate implements every topology the paper *"A Fault-tolerant Routing
//! Strategy for Gaussian Cube Using Gaussian Tree"* (Loh & Zhang, ICPP 2003)
//! defines or depends on:
//!
//! * [`GaussianCube`] — the binary Gaussian Cube `GC(n, M)` (§2 of the paper),
//!   with both the original congruence-class link definition and the local
//!   Theorem-1 characterisation.
//! * [`GaussianTree`] — the Gaussian Graph `G_m`, proved (and here verified)
//!   to be a tree `T_m` (§3).
//! * [`Hypercube`] — the binary hypercube `Q_n`, the substrate in which the
//!   embedded `GEEC(k,t)` subcubes live (§5).
//! * [`ExchangedHypercube`] — `EH(s,t)` (Definition 7), the local structure of
//!   a Gaussian-tree edge crossing.
//!
//! All of these are *bit-flip graphs*: every edge connects two labels that
//! differ in exactly one bit. The [`Topology`] trait captures that shape and
//! lets the generic search engine in [`search`] (BFS, components, diameters,
//! fault-masked shortest paths) work across all of them.
//!
//! The [`classes`] module implements the paper's decomposition machinery:
//! k-ending classes `EC(k)`, the per-class high-dimension sets `Dim(α,k)`,
//! and the embedded subcubes `GEEC(k,t)` with coordinate maps in both
//! directions.

pub mod addr;
pub mod classes;
pub mod error;
pub mod exchanged;
pub mod gaussian_cube;
pub mod gaussian_tree;
pub mod hypercube;
pub mod props;
pub mod search;
pub mod topology;

pub use addr::{LinkId, NodeId};
pub use error::TopologyError;
pub use exchanged::ExchangedHypercube;
pub use gaussian_cube::GaussianCube;
pub use gaussian_tree::GaussianTree;
pub use hypercube::Hypercube;
pub use topology::{LinkMask, NoFaults, Topology};
