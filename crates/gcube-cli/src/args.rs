//! Hand-rolled argument parsing for the `gcube` CLI (no external parser —
//! the offline dependency budget is spent on the science crates).

use gcube_routing::multitree::MAX_TREES;
use gcube_sim::traffic::TrafficPattern;
use gcube_sim::{
    CategoryMix, CollectiveOp, FaultKind, FaultSchedule, FaultTarget, KnowledgeModel, SimError,
    TimedFault,
};
use gcube_topology::{LinkId, NodeId};

/// Routing strategy selector of `gcube run`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrategyArg {
    /// FFGCR on fault-free runs, FTGCR as soon as any fault is possible.
    Auto,
    /// Plan-cached FFGCR (fault-oblivious), regardless of faults.
    Ffgcr,
    /// Plan-cached FTGCR.
    Ftgcr,
    /// Independent spanning trees with FTGCR fallback (`--trees K`).
    Multitree,
}

/// Dynamic-fault options of `gcube run` (all default to "off").
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnArgs {
    /// Fault events applied mid-run.
    pub schedule: FaultSchedule,
    /// Knowledge-convergence model.
    pub knowledge: KnowledgeModel,
    /// Per-packet hop budget override.
    pub ttl: Option<u64>,
    /// Per-packet local re-route budget.
    pub reroute_budget: u32,
    /// Delivery-ratio window width in cycles.
    pub window: u64,
}

impl Default for ChurnArgs {
    fn default() -> ChurnArgs {
        ChurnArgs {
            schedule: FaultSchedule::None,
            knowledge: KnowledgeModel::Oracle,
            ttl: None,
            reroute_budget: 8,
            window: 100,
        }
    }
}

/// Parsed CLI command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `gcube topology <n> <M>` — structure summary.
    Topology {
        /// Dimension.
        n: u32,
        /// Modulus.
        modulus: u64,
    },
    /// `gcube route <n> <M> <s> <d> [--fault-node V]* [--fault-link V:DIM]*
    /// [--fault-free]` — compute and print a route.
    Route {
        /// Dimension.
        n: u32,
        /// Modulus.
        modulus: u64,
        /// Source label.
        s: u64,
        /// Destination label.
        d: u64,
        /// Faulty nodes.
        fault_nodes: Vec<NodeId>,
        /// Faulty links.
        fault_links: Vec<LinkId>,
        /// Use FFGCR (fault-oblivious) instead of FTGCR.
        fault_free: bool,
    },
    /// `gcube run <n> <M> [--rate R] [--cycles C] [--faults K]
    /// [--pattern P] [--seed S]` plus the churn flags (see [`USAGE`]) —
    /// run the cycle simulator. `gcube simulate` is the deprecated
    /// spelling of the same command.
    Run {
        /// Dimension.
        n: u32,
        /// Modulus.
        modulus: u64,
        /// Injection rate.
        rate: f64,
        /// Injection cycles.
        cycles: u64,
        /// Faulty node count.
        faults: usize,
        /// Traffic pattern.
        pattern: TrafficPattern,
        /// RNG seed.
        seed: u64,
        /// Dynamic-fault options.
        churn: ChurnArgs,
        /// Write a JSONL flight-recorder trace to this path.
        trace: Option<String>,
        /// Print latency/hop percentiles alongside the averages.
        percentiles: bool,
        /// Re-execute the run and check it replays event-for-event.
        verify_replay: bool,
        /// Write the telemetry time series to this path (CSV, or JSONL
        /// when the path ends in `.jsonl`).
        telemetry: Option<String>,
        /// Cycles per telemetry sampling window.
        telemetry_interval: u64,
        /// Print the end-of-run health report (implies collecting
        /// telemetry).
        health_report: bool,
        /// Write the per-shard/per-phase profile (JSONL) to this path
        /// and print the profiler report. Samples every
        /// `telemetry_interval` cycles.
        profile: Option<String>,
        /// Worker threads for the shard engine (`0` = available
        /// parallelism, `1` = the sequential engine).
        threads: usize,
        /// Routing strategy override.
        strategy: StrategyArg,
        /// Spanning trees per bundle for `--strategy multitree`.
        trees: usize,
        /// Periodic collective traffic class riding alongside unicast.
        collective: Option<CollectiveOp>,
        /// Cycles between collective operations.
        collective_interval: u64,
        /// The command came in through the legacy `simulate` alias; the
        /// driver prints a migration hint before running it.
        deprecated: bool,
    },
    /// `gcube serve [--socket PATH | --connect PATH] [--max-sessions N]
    /// [--workers N]` — the routing-as-a-service daemon (or, with
    /// `--connect`, a line-pumping client for an already-running one).
    Serve {
        /// Bind a Unix socket here and accept concurrent connections;
        /// `None` speaks the protocol on stdin/stdout instead.
        socket: Option<String>,
        /// Client mode: connect to a daemon's socket and pipe
        /// stdin/stdout through it.
        connect: Option<String>,
        /// Admission-control cap on concurrently open sessions.
        max_sessions: usize,
        /// Execution permits for cycle-advancing requests (`0` =
        /// available parallelism).
        workers: usize,
    },
    /// `gcube analyze <trace|profile|diff> ...` — offline forensics over
    /// recorded run artifacts (see [`AnalyzeMode`]).
    Analyze {
        /// Which analysis to run.
        mode: AnalyzeMode,
    },
    /// `gcube diameter [max_m]` — Figure 2 series.
    Diameter {
        /// Largest tree order.
        max_m: u32,
    },
    /// `gcube tolerance [max_n]` — Figure 4 series.
    Tolerance {
        /// Largest dimension.
        max_n: u32,
    },
    /// `gcube robustness <n> <M> <k>` — unified fault-tolerance metrics.
    Robustness {
        /// Dimension.
        n: u32,
        /// Modulus.
        modulus: u64,
        /// Faults per trial.
        k: usize,
    },
    /// `gcube help`.
    Help,
}

/// The three `gcube analyze` sub-modes.
#[derive(Clone, Debug, PartialEq)]
pub enum AnalyzeMode {
    /// Reconstruct a recorded JSONL trace: run summary, fault-impact
    /// attribution, congestion hot-spots — or one packet's timeline.
    Trace {
        /// Trace artifact path.
        path: String,
        /// Print this packet's full timeline instead of the tables.
        packet: Option<u64>,
        /// Rows per hot-spot/impact table.
        top: usize,
    },
    /// Render a profiler artifact's phase/imbalance breakdown.
    Profile {
        /// Profile artifact path.
        path: String,
    },
    /// A/B regression gate: compare the deterministic content of two
    /// artifacts (e.g. a 1-thread and a 4-thread run).
    Diff {
        /// Baseline artifact path.
        a: String,
        /// Candidate artifact path.
        b: String,
    },
}

/// The usage banner printed by `gcube help` and on errors.
pub const USAGE: &str = "\
gcube — Gaussian Cube fault-tolerant routing (ICPP 2003 reproduction)

USAGE:
  gcube topology <n> <M>
  gcube route <n> <M> <src> <dst> [--fault-node V]... [--fault-link V:DIM]... [--fault-free]
  gcube run <n> <M> [--rate R] [--cycles C] [--faults K] [--pattern P] [--seed S]
            [--threads N] [--strategy S] [--trees K]
            [--collective OP] [--collective-interval I]
            [--churn R | --fault-at SPEC]... [--fault-kind KIND] [--mix A:B:C]
            [--node-fraction F] [--knowledge MODEL] [--ttl T]
            [--reroute-budget B] [--window W]
            [--trace PATH] [--percentiles] [--verify-replay]
            [--telemetry PATH] [--telemetry-interval I] [--health-report]
            [--profile PATH]
  gcube serve [--socket PATH | --connect PATH] [--max-sessions N] [--workers N]
  gcube analyze trace <PATH> [--packet ID] [--top K]
  gcube analyze profile <PATH>
  gcube analyze diff <A> <B>
  gcube diameter [max_m]
  gcube tolerance [max_n]
  gcube robustness <n> <M> <k>
  gcube help

`gcube simulate` is the deprecated spelling of `gcube run` (same flags).

PATTERNS: uniform (default), complement, reversal, transpose
STRATEGY:
  --strategy S         auto (default) | ffgcr | ftgcr | multitree
                       auto picks FFGCR on fault-free runs and FTGCR
                       otherwise; multitree routes over independent
                       spanning trees, switching trees on faults and
                       falling back to FTGCR only when every tree is
                       blocked — it keeps delivering past the Theorem-3
                       fault budget
  --trees K            spanning trees per ending-class bundle for
                       --strategy multitree (default 2, max 2)
COLLECTIVES (fault-tolerant tree traffic riding alongside unicast):
  --collective OP      broadcast | multicast | gather — launch one
                       operation every interval over the fault-screened
                       broadcast tree of a rotating root class; faults on
                       tree edges are repaired by subtree re-grafting
                       (re-rooting only when the root itself dies)
  --collective-interval I  cycles between operations (default 50)
PARALLELISM:
  --threads N          worker threads for the deterministic shard engine
                       (default 1 = sequential, 0 = all available cores);
                       the effective shard count is capped at the cube's
                       2^alpha ending classes, and any N produces bitwise
                       identical results. Oversubscribing cores is safe:
                       workers park between rounds instead of spinning,
                       so N above the core count costs bounded barrier
                       overhead, not a slowdown storm
CHURN (dynamic faults applied while packets are in flight):
  --churn R            per-cycle Bernoulli fault-arrival probability
  --fault-at SPEC      scripted event, CYCLE:node:V or CYCLE:link:V:DIM (repeatable)
  --fault-kind KIND    permanent (default) | transient:REPAIR | intermittent:DOWN:PERIOD
  --mix A:B:C          category placement weights for --churn (default 1:1:1)
  --node-fraction F    probability a --churn arrival hits a node, not a link (default 0.5)
  --knowledge MODEL    oracle (default) | paper | measured — stale-view convergence
  --ttl T              per-packet hop budget (default 4n+16)
  --reroute-budget B   local re-routes per packet before dropping (default 8)
  --window W           delivery-ratio window width in cycles (default 100)
OBSERVABILITY:
  --trace PATH         record every packet event (inject/hop/stale-view/
                       reroute/drop/deliver) as JSONL to PATH
  --percentiles        print p50/p95/p99/max latency and hop percentiles
  --verify-replay      re-execute the run and assert it replays
                       event-for-event (determinism check)
  --telemetry PATH     record the network time series (per-dimension link
                       utilization, ending-class queues, cache hit rate,
                       churn and health columns) to PATH — CSV, or JSONL
                       when PATH ends in .jsonl
  --telemetry-interval I   cycles per telemetry sampling window (default 100)
  --health-report      print the end-of-run health report: utilization
                       profile, Theorem 3 fault-budget standing, health
                       transitions, and phase timings
  --profile PATH       record the per-shard performance profile to PATH
                       (JSONL) and print the profiler report: per-window
                       deterministic counters (injected/moved/in-flight,
                       queue imbalance, plan-cache deltas) plus
                       report-only wall-clock phase and barrier timings;
                       samples every --telemetry-interval cycles
FORENSICS (offline analysis of recorded artifacts):
  analyze trace PATH   reconstruct the run: packet outcomes, per-fault
                       impact attribution (stale views, reroutes, drops
                       and wasted hops per blocked node), and top-K
                       congested links/nodes; --packet ID prints one
                       packet's event-by-event timeline, --top K resizes
                       the tables (default 10)
  analyze profile PATH render a profile artifact: provenance, sample
                       windows, load-imbalance factor, wall-clock phase
                       split and the per-shard barrier/steal table
  analyze diff A B     the A/B regression gate: strip report-only
                       wall-clock lines, validate provenance headers,
                       and require the deterministic remainder to match
                       line for line (exit 1 on divergence)
SERVE (routing as a service — newline-delimited JSON, one request per line):
  --socket PATH        bind a Unix socket and serve concurrent
                       connections (default: speak the protocol on
                       stdin/stdout — handy for piped smoke tests)
  --connect PATH       client mode: pipe stdin/stdout through a
                       daemon already listening on PATH
  --max-sessions N     admission-control cap on open sessions
                       (default 64; `open` past it answers
                       admission_refused)
  --workers N          execution permits for step/run requests
                       (default 0 = available parallelism); idle
                       sessions hold no permit
  Requests: open, step, run, snapshot, restore, telemetry, close,
  shutdown — see DESIGN.md §16 for the full protocol grammar.
Node labels are decimal or binary with a 0b prefix.";

fn parse_label(s: &str) -> Result<u64, SimError> {
    let parsed = if let Some(bin) = s.strip_prefix("0b") {
        u64::from_str_radix(bin, 2)
    } else {
        s.parse::<u64>()
    };
    parsed.map_err(|_| SimError::Cli(format!("invalid node label: {s}")))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, SimError> {
    s.parse()
        .map_err(|_| SimError::Cli(format!("invalid {what}: {s}")))
}

/// `permanent` | `transient:REPAIR` | `intermittent:DOWN:PERIOD`.
fn parse_kind(s: &str) -> Result<FaultKind, SimError> {
    let mut parts = s.split(':');
    match parts.next() {
        Some("permanent") => match parts.next() {
            None => Ok(FaultKind::Permanent),
            Some(_) => Err(SimError::Cli(format!("permanent takes no parameters: {s}"))),
        },
        Some("transient") => {
            let repair_after = parse_num(parts.next().unwrap_or(""), "transient repair delay")?;
            Ok(FaultKind::Transient { repair_after })
        }
        Some("intermittent") => {
            let down_for = parse_num(parts.next().unwrap_or(""), "intermittent down time")?;
            let period = parse_num(parts.next().unwrap_or(""), "intermittent period")?;
            if period <= down_for {
                return Err(SimError::Cli(format!(
                    "intermittent period must exceed its down time: {s}"
                )));
            }
            Ok(FaultKind::Intermittent { down_for, period })
        }
        _ => Err(SimError::Cli(format!(
            "fault kind must be permanent, transient:REPAIR or intermittent:DOWN:PERIOD, got {s}"
        ))),
    }
}

/// `A:B:C` category weights.
fn parse_mix(s: &str) -> Result<CategoryMix, SimError> {
    let parts: Vec<&str> = s.split(':').collect();
    let [a, b, c] = parts.as_slice() else {
        return Err(SimError::Cli(format!("mix must be A:B:C, got {s}")));
    };
    Ok(CategoryMix {
        a: parse_num(a, "A-category weight")?,
        b: parse_num(b, "B-category weight")?,
        c: parse_num(c, "C-category weight")?,
    })
}

/// `CYCLE:node:V` or `CYCLE:link:V:DIM`; the persistence comes from the
/// session-wide `--fault-kind`.
fn parse_timed(s: &str, kind: FaultKind) -> Result<TimedFault, SimError> {
    let parts: Vec<&str> = s.split(':').collect();
    match parts.as_slice() {
        [cycle, "node", v] => Ok(TimedFault {
            cycle: parse_num(cycle, "event cycle")?,
            target: FaultTarget::Node(NodeId(parse_label(v)?)),
            kind,
        }),
        [cycle, "link", v, dim] => Ok(TimedFault {
            cycle: parse_num(cycle, "event cycle")?,
            target: FaultTarget::Link(LinkId::new(
                NodeId(parse_label(v)?),
                parse_num(dim, "link dimension")?,
            )),
            kind,
        }),
        _ => Err(SimError::Cli(format!(
            "fault event must be CYCLE:node:V or CYCLE:link:V:DIM, got {s}"
        ))),
    }
}

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, SimError> {
    let mut it = args.iter();
    let cmd = it.next().map(String::as_str).unwrap_or("help");
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "topology" => {
            let n = parse_num(next(&mut it, "n")?, "dimension n")?;
            let modulus = parse_num(next(&mut it, "M")?, "modulus M")?;
            reject_extra(&mut it)?;
            Ok(Command::Topology { n, modulus })
        }
        "route" => {
            let n = parse_num(next(&mut it, "n")?, "dimension n")?;
            let modulus = parse_num(next(&mut it, "M")?, "modulus M")?;
            let s = parse_label(next(&mut it, "src")?)?;
            let d = parse_label(next(&mut it, "dst")?)?;
            let mut fault_nodes = Vec::new();
            let mut fault_links = Vec::new();
            let mut fault_free = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--fault-node" => {
                        fault_nodes.push(NodeId(parse_label(next(&mut it, "fault node")?)?));
                    }
                    "--fault-link" => {
                        let spec = next(&mut it, "fault link")?;
                        let (v, dim) = spec.split_once(':').ok_or_else(|| {
                            SimError::Cli(format!("fault link must be V:DIM, got {spec}"))
                        })?;
                        fault_links.push(LinkId::new(
                            NodeId(parse_label(v)?),
                            parse_num(dim, "link dimension")?,
                        ));
                    }
                    "--fault-free" => fault_free = true,
                    other => return Err(SimError::Cli(format!("unknown flag: {other}"))),
                }
            }
            Ok(Command::Route {
                n,
                modulus,
                s,
                d,
                fault_nodes,
                fault_links,
                fault_free,
            })
        }
        "run" | "simulate" => {
            // `simulate` is the legacy flat spelling; it parses
            // identically and the driver prints a migration hint.
            let deprecated = cmd == "simulate";
            let n = parse_num(next(&mut it, "n")?, "dimension n")?;
            let modulus = parse_num(next(&mut it, "M")?, "modulus M")?;
            let mut rate = 0.005f64;
            let mut cycles = 600u64;
            let mut faults = 0usize;
            let mut pattern = TrafficPattern::Uniform;
            let mut seed = 0x6ca5u64;
            let mut churn = ChurnArgs::default();
            let mut churn_rate: Option<f64> = None;
            let mut kind = FaultKind::Permanent;
            let mut mix = CategoryMix::default();
            let mut node_fraction = 0.5f64;
            let mut trace: Option<String> = None;
            let mut percentiles = false;
            let mut verify_replay = false;
            let mut telemetry: Option<String> = None;
            let mut telemetry_interval = 100u64;
            let mut health_report = false;
            let mut profile: Option<String> = None;
            let mut threads = 1usize;
            let mut strategy = StrategyArg::Auto;
            let mut trees: Option<usize> = None;
            let mut collective: Option<CollectiveOp> = None;
            let mut collective_interval: Option<u64> = None;
            // Raw --fault-at specs are re-parsed once --fault-kind is known
            // (flags may come in any order).
            let mut raw_events: Vec<String> = Vec::new();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--rate" => rate = parse_num(next(&mut it, "rate")?, "rate")?,
                    "--cycles" => cycles = parse_num(next(&mut it, "cycles")?, "cycles")?,
                    "--faults" => faults = parse_num(next(&mut it, "faults")?, "faults")?,
                    "--seed" => seed = parse_num(next(&mut it, "seed")?, "seed")?,
                    "--pattern" => {
                        pattern = match next(&mut it, "pattern")?.as_str() {
                            "uniform" => TrafficPattern::Uniform,
                            "complement" => TrafficPattern::BitComplement,
                            "reversal" => TrafficPattern::BitReversal,
                            "transpose" => TrafficPattern::Transpose,
                            p => return Err(SimError::Cli(format!("unknown pattern: {p}"))),
                        }
                    }
                    "--churn" => {
                        churn_rate = Some(parse_num(next(&mut it, "churn rate")?, "churn rate")?)
                    }
                    "--fault-at" => raw_events.push(next(&mut it, "fault event")?.clone()),
                    "--fault-kind" => kind = parse_kind(next(&mut it, "fault kind")?)?,
                    "--mix" => mix = parse_mix(next(&mut it, "category mix")?)?,
                    "--node-fraction" => {
                        node_fraction = parse_num(next(&mut it, "node fraction")?, "node fraction")?
                    }
                    "--knowledge" => {
                        churn.knowledge = match next(&mut it, "knowledge model")?.as_str() {
                            "oracle" => KnowledgeModel::Oracle,
                            "paper" => KnowledgeModel::PaperDelay,
                            "measured" => KnowledgeModel::Measured,
                            m => {
                                return Err(SimError::Cli(format!("unknown knowledge model: {m}")))
                            }
                        }
                    }
                    "--ttl" => churn.ttl = Some(parse_num(next(&mut it, "ttl")?, "ttl")?),
                    "--reroute-budget" => {
                        churn.reroute_budget =
                            parse_num(next(&mut it, "reroute budget")?, "reroute budget")?
                    }
                    "--window" => churn.window = parse_num(next(&mut it, "window")?, "window")?,
                    "--trace" => trace = Some(next(&mut it, "trace path")?.clone()),
                    "--percentiles" => percentiles = true,
                    "--verify-replay" => verify_replay = true,
                    "--telemetry" => telemetry = Some(next(&mut it, "telemetry path")?.clone()),
                    "--telemetry-interval" => {
                        telemetry_interval =
                            parse_num(next(&mut it, "telemetry interval")?, "telemetry interval")?;
                        if telemetry_interval == 0 {
                            return Err(SimError::Cli(
                                "telemetry interval must be at least 1 cycle".into(),
                            ));
                        }
                    }
                    "--health-report" => health_report = true,
                    "--profile" => profile = Some(next(&mut it, "profile path")?.clone()),
                    "--threads" => threads = parse_num(next(&mut it, "threads")?, "threads")?,
                    "--strategy" => {
                        strategy = match next(&mut it, "strategy")?.as_str() {
                            "auto" => StrategyArg::Auto,
                            "ffgcr" => StrategyArg::Ffgcr,
                            "ftgcr" => StrategyArg::Ftgcr,
                            "multitree" => StrategyArg::Multitree,
                            s => return Err(SimError::Cli(format!("unknown strategy: {s}"))),
                        }
                    }
                    "--trees" => {
                        trees = Some(parse_num(next(&mut it, "tree count")?, "tree count")?)
                    }
                    "--collective" => {
                        let op = next(&mut it, "collective op")?;
                        collective = Some(CollectiveOp::from_str(op).ok_or_else(|| {
                            SimError::Cli(format!(
                                "collective must be broadcast, multicast or gather, got {op}"
                            ))
                        })?);
                    }
                    "--collective-interval" => {
                        collective_interval = Some(parse_num(
                            next(&mut it, "collective interval")?,
                            "collective interval",
                        )?);
                        if collective_interval == Some(0) {
                            return Err(SimError::Cli(
                                "collective interval must be at least 1 cycle".into(),
                            ));
                        }
                    }
                    other => return Err(SimError::Cli(format!("unknown flag: {other}"))),
                }
            }
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(SimError::InvalidRate(rate));
            }
            if trees.is_some() && strategy != StrategyArg::Multitree {
                return Err(SimError::Cli(
                    "--trees requires --strategy multitree".into(),
                ));
            }
            let trees = trees.unwrap_or(2);
            if !(1..=MAX_TREES).contains(&trees) {
                return Err(SimError::Cli(format!(
                    "tree count must be 1..={MAX_TREES}, got {trees}"
                )));
            }
            if collective_interval.is_some() && collective.is_none() {
                return Err(SimError::Cli(
                    "--collective-interval requires --collective".into(),
                ));
            }
            let collective_interval = collective_interval.unwrap_or(50);
            if churn_rate.is_some() && !raw_events.is_empty() {
                return Err(SimError::Cli(
                    "--churn and --fault-at are mutually exclusive".into(),
                ));
            }
            if let Some(r) = churn_rate {
                if !r.is_finite() || !(0.0..=1.0).contains(&r) {
                    return Err(SimError::InvalidChurnRate(r));
                }
                churn.schedule = FaultSchedule::Bernoulli {
                    rate: r,
                    kind,
                    mix,
                    node_fraction,
                };
            } else if !raw_events.is_empty() {
                let events = raw_events
                    .iter()
                    .map(|s| parse_timed(s, kind))
                    .collect::<Result<Vec<_>, _>>()?;
                churn.schedule = FaultSchedule::Scripted(events);
            }
            Ok(Command::Run {
                n,
                modulus,
                rate,
                cycles,
                faults,
                pattern,
                seed,
                churn,
                trace,
                percentiles,
                verify_replay,
                telemetry,
                telemetry_interval,
                health_report,
                profile,
                threads,
                strategy,
                trees,
                collective,
                collective_interval,
                deprecated,
            })
        }
        "serve" => {
            let mut socket: Option<String> = None;
            let mut connect: Option<String> = None;
            let mut max_sessions = 64usize;
            let mut workers = 0usize;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--socket" => socket = Some(next(&mut it, "socket path")?.clone()),
                    "--connect" => connect = Some(next(&mut it, "daemon socket path")?.clone()),
                    "--max-sessions" => {
                        max_sessions = parse_num(next(&mut it, "session limit")?, "session limit")?;
                        if max_sessions == 0 {
                            return Err(SimError::Cli("--max-sessions must be at least 1".into()));
                        }
                    }
                    "--workers" => workers = parse_num(next(&mut it, "workers")?, "workers")?,
                    other => return Err(SimError::Cli(format!("unknown flag: {other}"))),
                }
            }
            if socket.is_some() && connect.is_some() {
                return Err(SimError::Cli(
                    "--socket and --connect are mutually exclusive".into(),
                ));
            }
            Ok(Command::Serve {
                socket,
                connect,
                max_sessions,
                workers,
            })
        }
        "analyze" => {
            let mode = match next(&mut it, "analyze mode (trace|profile|diff)")?.as_str() {
                "trace" => {
                    let path = next(&mut it, "trace path")?.clone();
                    let mut packet: Option<u64> = None;
                    let mut top = 10usize;
                    while let Some(flag) = it.next() {
                        match flag.as_str() {
                            "--packet" => {
                                packet = Some(parse_num(next(&mut it, "packet id")?, "packet id")?)
                            }
                            "--top" => {
                                top = parse_num(next(&mut it, "table size")?, "table size")?;
                                if top == 0 {
                                    return Err(SimError::Cli("--top must be at least 1".into()));
                                }
                            }
                            other => return Err(SimError::Cli(format!("unknown flag: {other}"))),
                        }
                    }
                    AnalyzeMode::Trace { path, packet, top }
                }
                "profile" => {
                    let path = next(&mut it, "profile path")?.clone();
                    reject_extra(&mut it)?;
                    AnalyzeMode::Profile { path }
                }
                "diff" => {
                    let a = next(&mut it, "baseline artifact")?.clone();
                    let b = next(&mut it, "candidate artifact")?.clone();
                    reject_extra(&mut it)?;
                    AnalyzeMode::Diff { a, b }
                }
                m => {
                    return Err(SimError::Cli(format!(
                        "analyze mode must be trace, profile or diff, got {m}"
                    )))
                }
            };
            Ok(Command::Analyze { mode })
        }
        "diameter" => {
            let max_m = match it.next() {
                Some(v) => parse_num(v, "max_m")?,
                None => 14,
            };
            reject_extra(&mut it)?;
            Ok(Command::Diameter { max_m })
        }
        "tolerance" => {
            let max_n = match it.next() {
                Some(v) => parse_num(v, "max_n")?,
                None => 24,
            };
            reject_extra(&mut it)?;
            Ok(Command::Tolerance { max_n })
        }
        "robustness" => {
            let n = parse_num(next(&mut it, "n")?, "dimension n")?;
            let modulus = parse_num(next(&mut it, "M")?, "modulus M")?;
            let k = parse_num(next(&mut it, "k")?, "fault count k")?;
            reject_extra(&mut it)?;
            Ok(Command::Robustness { n, modulus, k })
        }
        other => Err(SimError::Cli(format!(
            "unknown command: {other}\n\n{USAGE}"
        ))),
    }
}

fn next<'a>(it: &mut std::slice::Iter<'a, String>, what: &str) -> Result<&'a String, SimError> {
    it.next()
        .ok_or_else(|| SimError::Cli(format!("missing argument: {what}\n\n{USAGE}")))
}

fn reject_extra(it: &mut std::slice::Iter<'_, String>) -> Result<(), SimError> {
    match it.next() {
        Some(extra) => Err(SimError::Cli(format!("unexpected argument: {extra}"))),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_topology() {
        assert_eq!(
            parse(&argv("topology 8 4")),
            Ok(Command::Topology { n: 8, modulus: 4 })
        );
        assert!(parse(&argv("topology 8")).is_err());
        assert!(parse(&argv("topology 8 4 9")).is_err());
    }

    #[test]
    fn parses_route_with_faults() {
        let c = parse(&argv(
            "route 8 4 0 0b1011 --fault-node 6 --fault-link 2:2 --fault-free",
        ))
        .unwrap();
        match c {
            Command::Route {
                n,
                modulus,
                s,
                d,
                fault_nodes,
                fault_links,
                fault_free,
            } => {
                assert_eq!((n, modulus, s, d), (8, 4, 0, 0b1011));
                assert_eq!(fault_nodes, vec![NodeId(6)]);
                assert_eq!(fault_links, vec![LinkId::new(NodeId(2), 2)]);
                assert!(fault_free);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_run_defaults_and_flags() {
        let c = parse(&argv("run 10 2")).unwrap();
        match c {
            Command::Run {
                n,
                modulus,
                rate,
                faults,
                pattern,
                churn,
                ..
            } => {
                assert_eq!((n, modulus), (10, 2));
                assert_eq!(rate, 0.005);
                assert_eq!(faults, 0);
                assert_eq!(pattern, TrafficPattern::Uniform);
                assert_eq!(churn, ChurnArgs::default());
            }
            other => panic!("wrong command: {other:?}"),
        }
        let c = parse(&argv("run 8 2 --rate 0.02 --faults 1 --pattern complement")).unwrap();
        match c {
            Command::Run {
                rate,
                faults,
                pattern,
                ..
            } => {
                assert_eq!(rate, 0.02);
                assert_eq!(faults, 1);
                assert_eq!(pattern, TrafficPattern::BitComplement);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_run_bernoulli_churn() {
        let c = parse(&argv(
            "run 8 2 --churn 0.02 --fault-kind transient:40 --mix 2:1:0.5 \
             --node-fraction 0.3 --knowledge paper --ttl 64 --reroute-budget 4 --window 50",
        ))
        .unwrap();
        let Command::Run { churn, .. } = c else {
            panic!("wrong command: {c:?}")
        };
        assert_eq!(
            churn.schedule,
            FaultSchedule::Bernoulli {
                rate: 0.02,
                kind: FaultKind::Transient { repair_after: 40 },
                mix: CategoryMix {
                    a: 2.0,
                    b: 1.0,
                    c: 0.5
                },
                node_fraction: 0.3,
            }
        );
        assert_eq!(churn.knowledge, KnowledgeModel::PaperDelay);
        assert_eq!(churn.ttl, Some(64));
        assert_eq!(churn.reroute_budget, 4);
        assert_eq!(churn.window, 50);
    }

    #[test]
    fn parses_run_scripted_churn() {
        // --fault-kind after --fault-at must still apply (order-free flags).
        let c = parse(&argv(
            "run 8 2 --fault-at 300:node:9 --fault-at 400:link:0b10:3 \
             --fault-kind intermittent:5:20 --knowledge measured",
        ))
        .unwrap();
        let Command::Run { churn, .. } = c else {
            panic!("wrong command: {c:?}")
        };
        let kind = FaultKind::Intermittent {
            down_for: 5,
            period: 20,
        };
        assert_eq!(
            churn.schedule,
            FaultSchedule::Scripted(vec![
                TimedFault {
                    cycle: 300,
                    target: FaultTarget::Node(NodeId(9)),
                    kind
                },
                TimedFault {
                    cycle: 400,
                    target: FaultTarget::Link(LinkId::new(NodeId(0b10), 3)),
                    kind,
                },
            ])
        );
        assert_eq!(churn.knowledge, KnowledgeModel::Measured);
    }

    #[test]
    fn rejects_bad_churn_flags() {
        for bad in [
            "run 8 2 --churn 0.1 --fault-at 10:node:1", // mutually exclusive
            "run 8 2 --churn 1.5",                      // rate out of range
            "run 8 2 --fault-at 10:disk:1",             // unknown target
            "run 8 2 --fault-kind transient",           // missing parameter
            "run 8 2 --fault-kind intermittent:9:9",    // period <= down
            "run 8 2 --mix 1:2",                        // not three weights
            "run 8 2 --knowledge psychic",              // unknown model
        ] {
            assert!(parse(&argv(bad)).is_err(), "must reject: {bad}");
        }
    }

    #[test]
    fn rejects_out_of_range_injection_rate() {
        // Used to be silently clamped by the engine; now a typed error
        // callers can match on instead of substring-checking.
        for bad in [
            "run 8 2 --rate 1.2",
            "run 8 2 --rate -0.5",
            "run 8 2 --rate NaN",
            "run 8 2 --rate inf",
        ] {
            assert!(
                matches!(parse(&argv(bad)), Err(SimError::InvalidRate(_))),
                "must reject: {bad}"
            );
        }
        assert!(matches!(
            parse(&argv("run 8 2 --churn 1.5")),
            Err(SimError::InvalidChurnRate(_))
        ));
        assert!(parse(&argv("run 8 2 --rate 1.0")).is_ok());
        assert!(parse(&argv("run 8 2 --rate 0")).is_ok());
    }

    #[test]
    fn parses_threads() {
        let Command::Run { threads, .. } = parse(&argv("run 8 2")).unwrap() else {
            panic!()
        };
        assert_eq!(threads, 1, "default is the sequential engine");
        let Command::Run { threads, .. } = parse(&argv("run 8 2 --threads 4")).unwrap() else {
            panic!()
        };
        assert_eq!(threads, 4);
        let Command::Run { threads, .. } = parse(&argv("run 8 2 --threads 0")).unwrap() else {
            panic!()
        };
        assert_eq!(threads, 0, "0 = available parallelism, resolved later");
        assert!(matches!(
            parse(&argv("run 8 2 --threads lots")),
            Err(SimError::Cli(_))
        ));
        assert!(matches!(
            parse(&argv("run 8 2 --threads -1")),
            Err(SimError::Cli(_))
        ));
    }

    #[test]
    fn parses_strategy_flags() {
        let Command::Run {
            strategy, trees, ..
        } = parse(&argv("run 8 2")).unwrap()
        else {
            panic!()
        };
        assert_eq!(strategy, StrategyArg::Auto, "default keeps the auto pick");
        assert_eq!(trees, 2);
        for (arg, want) in [
            ("auto", StrategyArg::Auto),
            ("ffgcr", StrategyArg::Ffgcr),
            ("ftgcr", StrategyArg::Ftgcr),
            ("multitree", StrategyArg::Multitree),
        ] {
            let Command::Run { strategy, .. } =
                parse(&argv(&format!("run 8 2 --strategy {arg}"))).unwrap()
            else {
                panic!()
            };
            assert_eq!(strategy, want, "--strategy {arg}");
        }
        let Command::Run { trees, .. } =
            parse(&argv("run 8 2 --strategy multitree --trees 1")).unwrap()
        else {
            panic!()
        };
        assert_eq!(trees, 1);
        for bad in [
            "run 8 2 --strategy psychic",
            "run 8 2 --trees 2", // needs multitree
            "run 8 2 --strategy ftgcr --trees 2",
            "run 8 2 --strategy multitree --trees 0",
            "run 8 2 --strategy multitree --trees 3", // beyond MAX_TREES
        ] {
            assert!(parse(&argv(bad)).is_err(), "must reject: {bad}");
        }
    }

    #[test]
    fn parses_collective_flags() {
        let Command::Run {
            collective,
            collective_interval,
            ..
        } = parse(&argv("run 8 2")).unwrap()
        else {
            panic!()
        };
        assert_eq!(collective, None, "default is unicast-only");
        assert_eq!(collective_interval, 50);
        for (arg, want) in [
            ("broadcast", CollectiveOp::Broadcast),
            ("multicast", CollectiveOp::Multicast),
            ("gather", CollectiveOp::Gather),
        ] {
            let Command::Run { collective, .. } =
                parse(&argv(&format!("run 8 2 --collective {arg}"))).unwrap()
            else {
                panic!()
            };
            assert_eq!(collective, Some(want), "--collective {arg}");
        }
        let Command::Run {
            collective_interval,
            ..
        } = parse(&argv(
            "run 8 2 --collective gather --collective-interval 25",
        ))
        .unwrap()
        else {
            panic!()
        };
        assert_eq!(collective_interval, 25);
        for bad in [
            "run 8 2 --collective scatter",
            "run 8 2 --collective-interval 25", // needs --collective
            "run 8 2 --collective broadcast --collective-interval 0",
        ] {
            assert!(parse(&argv(bad)).is_err(), "must reject: {bad}");
        }
    }

    #[test]
    fn parses_observability_flags() {
        let c = parse(&argv(
            "run 8 2 --trace run.jsonl --percentiles --verify-replay",
        ))
        .unwrap();
        let Command::Run {
            trace,
            percentiles,
            verify_replay,
            ..
        } = c
        else {
            panic!("wrong command: {c:?}")
        };
        assert_eq!(trace.as_deref(), Some("run.jsonl"));
        assert!(percentiles);
        assert!(verify_replay);
        // All default to off.
        let Command::Run {
            trace,
            percentiles,
            verify_replay,
            ..
        } = parse(&argv("run 8 2")).unwrap()
        else {
            panic!()
        };
        assert_eq!(trace, None);
        assert!(!percentiles && !verify_replay);
    }

    #[test]
    fn parses_telemetry_flags() {
        let c = parse(&argv(
            "run 8 2 --telemetry net.csv --telemetry-interval 25 --health-report",
        ))
        .unwrap();
        let Command::Run {
            telemetry,
            telemetry_interval,
            health_report,
            ..
        } = c
        else {
            panic!("wrong command: {c:?}")
        };
        assert_eq!(telemetry.as_deref(), Some("net.csv"));
        assert_eq!(telemetry_interval, 25);
        assert!(health_report);
        // All default to off.
        let Command::Run {
            telemetry,
            telemetry_interval,
            health_report,
            ..
        } = parse(&argv("run 8 2")).unwrap()
        else {
            panic!()
        };
        assert_eq!(telemetry, None);
        assert_eq!(telemetry_interval, 100);
        assert!(!health_report);
    }

    #[test]
    fn rejects_zero_telemetry_interval() {
        let e = parse(&argv("run 8 2 --telemetry-interval 0")).unwrap_err();
        assert!(e.to_string().contains("telemetry interval"), "{e}");
    }

    #[test]
    fn parses_profile_flag() {
        let Command::Run {
            profile, telemetry, ..
        } = parse(&argv("run 8 2 --profile run.profile.jsonl")).unwrap()
        else {
            panic!()
        };
        assert_eq!(profile.as_deref(), Some("run.profile.jsonl"));
        assert_eq!(telemetry, None, "--profile must not require --telemetry");
        let Command::Run { profile, .. } = parse(&argv("run 8 2")).unwrap() else {
            panic!()
        };
        assert_eq!(profile, None);
    }

    #[test]
    fn parses_analyze_commands() {
        assert_eq!(
            parse(&argv("analyze trace run.jsonl")),
            Ok(Command::Analyze {
                mode: AnalyzeMode::Trace {
                    path: "run.jsonl".into(),
                    packet: None,
                    top: 10,
                }
            })
        );
        assert_eq!(
            parse(&argv("analyze trace run.jsonl --packet 7 --top 3")),
            Ok(Command::Analyze {
                mode: AnalyzeMode::Trace {
                    path: "run.jsonl".into(),
                    packet: Some(7),
                    top: 3,
                }
            })
        );
        assert_eq!(
            parse(&argv("analyze profile run.profile.jsonl")),
            Ok(Command::Analyze {
                mode: AnalyzeMode::Profile {
                    path: "run.profile.jsonl".into(),
                }
            })
        );
        assert_eq!(
            parse(&argv("analyze diff a.jsonl b.jsonl")),
            Ok(Command::Analyze {
                mode: AnalyzeMode::Diff {
                    a: "a.jsonl".into(),
                    b: "b.jsonl".into(),
                }
            })
        );
        let e = parse(&argv("analyze frobnicate x")).unwrap_err();
        assert!(e.to_string().contains("trace, profile or diff"), "{e}");
        let e = parse(&argv("analyze trace run.jsonl --top 0")).unwrap_err();
        assert!(e.to_string().contains("--top"), "{e}");
        let e = parse(&argv("analyze diff a.jsonl")).unwrap_err();
        assert!(e.to_string().contains("candidate artifact"), "{e}");
    }

    #[test]
    fn simulate_is_a_deprecated_run_alias() {
        let run = parse(&argv("run 8 2 --rate 0.02 --faults 1")).unwrap();
        assert!(matches!(
            run,
            Command::Run {
                deprecated: false,
                ..
            }
        ));
        let mut legacy = parse(&argv("simulate 8 2 --rate 0.02 --faults 1")).unwrap();
        let Command::Run { deprecated, .. } = &mut legacy else {
            panic!("wrong command: {legacy:?}")
        };
        assert!(*deprecated, "the alias must be flagged for the hint");
        // Aside from the flag, the two spellings parse identically.
        *deprecated = false;
        assert_eq!(legacy, run);
    }

    #[test]
    fn parses_serve() {
        assert_eq!(
            parse(&argv("serve")),
            Ok(Command::Serve {
                socket: None,
                connect: None,
                max_sessions: 64,
                workers: 0,
            })
        );
        assert_eq!(
            parse(&argv(
                "serve --socket /tmp/g.sock --max-sessions 8 --workers 2"
            )),
            Ok(Command::Serve {
                socket: Some("/tmp/g.sock".into()),
                connect: None,
                max_sessions: 8,
                workers: 2,
            })
        );
        assert_eq!(
            parse(&argv("serve --connect /tmp/g.sock")),
            Ok(Command::Serve {
                socket: None,
                connect: Some("/tmp/g.sock".into()),
                max_sessions: 64,
                workers: 0,
            })
        );
        for bad in [
            "serve --socket /a --connect /b", // pick one side of the socket
            "serve --max-sessions 0",
            "serve --port 80",
        ] {
            assert!(parse(&argv(bad)).is_err(), "must reject: {bad}");
        }
    }

    #[test]
    fn parses_series_commands() {
        assert_eq!(
            parse(&argv("diameter")),
            Ok(Command::Diameter { max_m: 14 })
        );
        assert_eq!(
            parse(&argv("diameter 10")),
            Ok(Command::Diameter { max_m: 10 })
        );
        assert_eq!(
            parse(&argv("tolerance 20")),
            Ok(Command::Tolerance { max_n: 20 })
        );
        assert_eq!(
            parse(&argv("robustness 8 2 4")),
            Ok(Command::Robustness {
                n: 8,
                modulus: 2,
                k: 4
            })
        );
    }

    #[test]
    fn binary_labels() {
        assert_eq!(parse_label("0b1010").unwrap(), 10);
        assert_eq!(parse_label("42").unwrap(), 42);
        assert!(parse_label("0bxyz").is_err());
        assert!(parse_label("twelve").is_err());
    }

    #[test]
    fn errors_are_helpful() {
        let e = parse(&argv("frobnicate")).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
        assert!(e.to_string().contains("USAGE"));
        let e = parse(&argv("route 8 4 0 1 --fault-link nodim")).unwrap_err();
        assert!(e.to_string().contains("V:DIM"));
        assert_eq!(parse(&[]), Ok(Command::Help));
    }
}
