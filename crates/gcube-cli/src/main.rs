//! `gcube` — command-line interface to the Gaussian Cube reproduction.
//!
//! ```sh
//! gcube topology 10 4
//! gcube route 10 4 0 0b1011010110 --fault-node 6
//! gcube run 10 2 --rate 0.01 --faults 1
//! gcube serve --socket /tmp/gcube.sock
//! gcube diameter 14
//! gcube robustness 8 2 4
//! ```
//!
//! `gcube simulate` remains as a deprecated alias of `gcube run`.

mod args;

use std::process::ExitCode;

use args::{parse, AnalyzeMode, ChurnArgs, Command, StrategyArg, USAGE};
use gcube_analysis::forensics::{diff_deterministic, render_profile, RunForensics};
use gcube_analysis::robustness::{algorithmic_robustness, connectivity_robustness};
use gcube_analysis::tables::{num, Table};
use gcube_analysis::{diameter, structure, tolerance};
use gcube_routing::faults::{categorize, theorem5_precondition};
use gcube_routing::{collective, ffgcr, ftgcr, FaultSet};
use gcube_sim::{
    class_ranges, effective_shards, parse_jsonl_with_meta, resolve_threads, ArtifactKind,
    ArtifactMeta, CachedFfgcr, CachedFtgcr, JsonlSink, MemorySink, MultiTreeStrategy,
    ProfileCollector, RoutingAlgorithm, SimConfig, Simulator, TelemetryCollector, TraceSink,
    ARTIFACT_FORMAT,
};
use gcube_topology::classes::dims;
use gcube_topology::{GaussianCube, GaussianTree, NodeId, Topology};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv) {
        Ok(cmd) => match run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Topology { n, modulus } => topology(n, modulus),
        Command::Route {
            n,
            modulus,
            s,
            d,
            fault_nodes,
            fault_links,
            fault_free,
        } => route(n, modulus, s, d, fault_nodes, fault_links, fault_free),
        Command::Run {
            n,
            modulus,
            rate,
            cycles,
            faults,
            pattern,
            seed,
            churn,
            trace,
            percentiles,
            verify_replay,
            telemetry,
            telemetry_interval,
            health_report,
            profile,
            threads,
            strategy,
            trees,
            collective,
            collective_interval,
            deprecated,
        } => {
            if deprecated {
                eprintln!("note: `gcube simulate` is deprecated; use `gcube run` (same flags)");
            }
            simulate(
                n,
                modulus,
                rate,
                cycles,
                faults,
                pattern,
                seed,
                churn,
                threads,
                strategy,
                trees,
                collective,
                collective_interval,
                SimulateOutput {
                    trace,
                    percentiles,
                    verify_replay,
                    telemetry,
                    telemetry_interval,
                    health_report,
                    profile,
                },
            )
        }
        Command::Serve {
            socket,
            connect,
            max_sessions,
            workers,
        } => serve(socket, connect, max_sessions, workers),
        Command::Analyze { mode } => analyze(mode),
        Command::Diameter { max_m } => {
            let mut t = Table::new(["m", "nodes", "diameter"]);
            for p in diameter::series(max_m.min(20)) {
                t.row([p.m.to_string(), p.nodes.to_string(), p.diameter.to_string()]);
            }
            print!("{}", t.render());
            Ok(())
        }
        Command::Tolerance { max_n } => {
            let mut t = Table::new(["n", "alpha", "T_paper", "log2_T", "T_guaranteed"]);
            for p in tolerance::series(max_n.min(30)) {
                t.row([
                    p.n.to_string(),
                    p.alpha.to_string(),
                    p.t_paper.to_string(),
                    num(p.log2_t_paper, 3),
                    p.t_guaranteed.to_string(),
                ]);
            }
            print!("{}", t.render());
            Ok(())
        }
        Command::Robustness { n, modulus, k } => {
            let gc = GaussianCube::new(n, modulus).map_err(|e| e.to_string())?;
            if n > 14 {
                return Err("robustness Monte Carlo supports n <= 14".into());
            }
            let conn = connectivity_robustness(&gc, k, 30, 0xc11);
            let alg = algorithmic_robustness(&gc, k, 30, 12, 0xc11);
            println!("GC({n}, {modulus}) with {k} random node faults (30 trials):");
            println!("  pair connectivity  : {:.4}", conn.pair_connectivity);
            println!("  fully connected    : {:.3}", conn.fully_connected_ratio);
            println!("  FTGCR delivery     : {:.4}", alg.delivery_ratio);
            println!("  Thm-5 precondition : {:.3}", alg.precondition_ratio);
            println!("  mean detour (hops) : {:.3}", alg.mean_detour);
            Ok(())
        }
    }
}

fn topology(n: u32, modulus: u64) -> Result<(), String> {
    let gc = GaussianCube::new(n, modulus).map_err(|e| e.to_string())?;
    let row = structure::structure_row(n, modulus);
    println!("GC({n}, {modulus}):  α = {}", gc.alpha());
    println!("  nodes        : {}", row.nodes);
    println!("  links        : {}", row.links);
    println!(
        "  degree       : min {} / mean {:.2} / max {}",
        row.min_degree, row.mean_degree, row.max_degree
    );
    println!("  availability : {}", row.availability);
    let tree = GaussianTree::new(gc.alpha()).map_err(|e| e.to_string())?;
    println!(
        "  projection   : T_{} ({} classes, tree diameter {})",
        gc.alpha(),
        tree.num_nodes(),
        tree.diameter()
    );
    for k in 0..(1u64 << gc.alpha()) {
        println!("  Dim(α,{k})     : {:?}", dims(n, gc.alpha(), k));
    }
    // Broadcast depth from node 0 as a latency indicator.
    let bt = collective::broadcast_tree(&gc, NodeId(0)).map_err(|e| e.to_string())?;
    println!("  broadcast    : depth {} from node 0", bt.max_depth());
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn route(
    n: u32,
    modulus: u64,
    s: u64,
    d: u64,
    fault_nodes: Vec<NodeId>,
    fault_links: Vec<gcube_topology::LinkId>,
    fault_free: bool,
) -> Result<(), String> {
    let gc = GaussianCube::new(n, modulus).map_err(|e| e.to_string())?;
    let mut faults = FaultSet::new();
    for v in fault_nodes {
        faults.add_node(v);
    }
    for l in fault_links {
        faults.add_link(l);
    }
    let (s, d) = (NodeId(s), NodeId(d));
    if !faults.is_empty() {
        let counts = categorize(&gc, &faults);
        println!(
            "faults: {counts:?}; Theorem-5 precondition: {}",
            theorem5_precondition(&gc, &faults)
        );
    }
    if fault_free {
        let r = ffgcr::route(&gc, s, d).map_err(|e| e.to_string())?;
        println!(
            "FFGCR {} -> {} ({} hops, optimal):",
            s.to_binary(n),
            d.to_binary(n),
            r.hops()
        );
        println!("  {r}");
    } else {
        let (r, stats) = ftgcr::route(&gc, &faults, s, d).map_err(|e| e.to_string())?;
        let opt = ffgcr::route_len(&gc, s, d);
        println!(
            "FTGCR {} -> {} ({} hops; fault-free optimum {opt}):",
            s.to_binary(n),
            d.to_binary(n),
            r.hops()
        );
        println!("  {r}");
        println!(
            "  crossings {}, masked columns {}, repairs {} moves / {} bounces{}",
            stats.crossings,
            stats.masked_columns,
            stats.flip_moves,
            stats.bounces_inserted,
            if stats.bfs_fallback {
                " [BFS fallback]"
            } else {
                ""
            }
        );
    }
    Ok(())
}

/// Observability options of `gcube simulate`.
struct SimulateOutput {
    trace: Option<String>,
    percentiles: bool,
    verify_replay: bool,
    telemetry: Option<String>,
    telemetry_interval: u64,
    health_report: bool,
    profile: Option<String>,
}

#[allow(clippy::too_many_arguments)]
fn simulate(
    n: u32,
    modulus: u64,
    rate: f64,
    cycles: u64,
    faults: usize,
    pattern: gcube_sim::traffic::TrafficPattern,
    seed: u64,
    churn: ChurnArgs,
    threads: usize,
    strategy: StrategyArg,
    trees: usize,
    collective: Option<gcube_sim::CollectiveOp>,
    collective_interval: u64,
    out: SimulateOutput,
) -> Result<(), String> {
    if n > 14 {
        return Err("simulation supports n <= 14 (16k nodes)".into());
    }
    let dynamic = !churn.schedule.is_none();
    let mut cfg = SimConfig::new(n, modulus)
        .with_rate(rate)
        .with_cycles(cycles, cycles * 20, cycles / 10)
        .with_faults(faults)
        .with_pattern(pattern)
        .with_seed(seed)
        .with_schedule(churn.schedule)
        .with_knowledge(churn.knowledge)
        .with_reroute_budget(churn.reroute_budget)
        .with_window(churn.window)
        .with_telemetry_interval(out.telemetry_interval);
    if let Some(ttl) = churn.ttl {
        cfg = cfg.with_ttl(ttl);
    }
    if let Some(op) = collective {
        cfg = cfg
            .with_collective(op)
            .with_collective_interval(collective_interval);
    }
    // Pick the routing strategy. `auto` keeps the historic rule: any
    // fault — static or dynamic — needs the fault-tolerant strategy.
    // Everything runs plan-cached: identical routes, amortised planning.
    let ffgcr = CachedFfgcr::new();
    let ftgcr = CachedFtgcr::new();
    let multitree = MultiTreeStrategy::new(trees);
    let algo: &dyn RoutingAlgorithm = match strategy {
        StrategyArg::Ffgcr => &ffgcr,
        StrategyArg::Ftgcr => &ftgcr,
        StrategyArg::Multitree => &multitree,
        StrategyArg::Auto if faults == 0 && !dynamic => &ffgcr,
        StrategyArg::Auto => &ftgcr,
    };
    let sim = Simulator::try_new(cfg.clone(), algo).map_err(|e| e.to_string())?;
    if faults > 0 {
        let list: Vec<String> = sim.faults().faulty_nodes().map(|v| v.to_string()).collect();
        println!("faulty nodes: {}", list.join(", "));
    }
    // With tracing or replay verification on, record the flight into
    // memory; otherwise the zero-cost no-sink path runs. Telemetry and
    // profiling are orthogonal: attach a collector only when asked, so
    // the default path stays the sink-free monomorphisation. Each of
    // the eight arms is its own monomorphised engine.
    let recording = out.trace.is_some() || out.verify_replay;
    let mut sink = MemorySink::new();
    let mut telem = (out.telemetry.is_some() || out.health_report)
        .then(|| TelemetryCollector::new(sim.cube(), out.telemetry_interval));
    let mut prof = out
        .profile
        .is_some()
        .then(|| ProfileCollector::new(1 << sim.cube().alpha(), out.telemetry_interval));
    let r = match (&mut telem, &mut prof, recording) {
        (Some(t), Some(p), true) => sim
            .session()
            .threads(threads)
            .trace(&mut sink)
            .telemetry(t)
            .profile(p)
            .try_run(),
        (Some(t), Some(p), false) => sim
            .session()
            .threads(threads)
            .telemetry(t)
            .profile(p)
            .try_run(),
        (Some(t), None, true) => sim
            .session()
            .threads(threads)
            .trace(&mut sink)
            .telemetry(t)
            .try_run(),
        (Some(t), None, false) => sim.session().threads(threads).telemetry(t).try_run(),
        (None, Some(p), true) => sim
            .session()
            .threads(threads)
            .trace(&mut sink)
            .profile(p)
            .try_run(),
        (None, Some(p), false) => sim.session().threads(threads).profile(p).try_run(),
        (None, None, true) => sim.session().threads(threads).trace(&mut sink).try_run(),
        (None, None, false) => sim.session().threads(threads).try_run(),
    }
    .map_err(|e| e.to_string())?;
    // Provenance header stamped onto every JSONL artifact this run
    // writes, so `gcube analyze` can validate what it is fed. The
    // strategy field carries the stable wire spelling (ffgcr / ftgcr /
    // multitree) shared with `gcube serve`, so daemon-written and
    // single-run artifacts diff clean against each other.
    let wire_strategy = gcube_sim::resolve_strategy_name(
        match strategy {
            StrategyArg::Auto => "auto",
            StrategyArg::Ffgcr => "ffgcr",
            StrategyArg::Ftgcr => "ftgcr",
            StrategyArg::Multitree => "multitree",
        },
        &cfg,
    );
    let meta_for = |kind: ArtifactKind| ArtifactMeta {
        kind,
        format: ARTIFACT_FORMAT,
        n: n as u64,
        modulus,
        seed,
        threads: resolve_threads(threads) as u64,
        strategy: wire_strategy.clone(),
    };
    if out.verify_replay {
        // Re-execute against a fresh instance (cold caches, cold atlas)
        // and compare event-for-event.
        let fresh = CachedFtgcr::new();
        let fresh_ff = CachedFfgcr::new();
        let fresh_mt = MultiTreeStrategy::new(trees);
        let fresh_algo: &dyn RoutingAlgorithm = match strategy {
            StrategyArg::Ffgcr => &fresh_ff,
            StrategyArg::Ftgcr => &fresh,
            StrategyArg::Multitree => &fresh_mt,
            StrategyArg::Auto if faults == 0 && !dynamic => &fresh_ff,
            StrategyArg::Auto => &fresh,
        };
        let count =
            gcube_sim::verify_replay(cfg, fresh_algo, sink.events()).map_err(|e| e.to_string())?;
        println!("replay verified  : {count} events match");
    }
    if let Some(path) = &out.trace {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
        let mut jsonl = JsonlSink::with_meta(
            std::io::BufWriter::new(file),
            &meta_for(ArtifactKind::Trace),
        );
        for e in sink.events() {
            jsonl.record(e);
        }
        let written = jsonl
            .finish()
            .map_err(|e| format!("trace write to {path} failed: {e}"))?;
        println!("trace written    : {written} events -> {path}");
    }
    if let Some(path) = &out.telemetry {
        let t = telem.as_ref().expect("telemetry was collected");
        // CSV stays headerless-compatible; the JSONL form is stamped.
        let data = if path.ends_with(".jsonl") {
            format!(
                "{}\n{}",
                meta_for(ArtifactKind::Telemetry).to_jsonl_line(),
                t.to_jsonl()
            )
        } else {
            t.to_csv()
        };
        std::fs::write(path, data).map_err(|e| format!("cannot write telemetry to {path}: {e}"))?;
        println!(
            "telemetry written: {} samples ({} evicted) -> {path}",
            t.len(),
            t.evicted()
        );
    }
    if let Some(path) = &out.profile {
        let p = prof.as_ref().expect("profile was collected");
        let data = format!(
            "{}\n{}",
            meta_for(ArtifactKind::Profile).to_jsonl_line(),
            p.to_jsonl()
        );
        std::fs::write(path, data).map_err(|e| format!("cannot write profile to {path}: {e}"))?;
        println!(
            "profile written  : {} sample windows -> {path}",
            p.samples().count()
        );
        print!("{}", p.report());
    }
    let m = r.metrics;
    println!("algorithm        : {}", algo.name());
    if let Some(stats) = algo.cache_stats() {
        println!(
            "plan cache       : {} hits / {} misses ({:.1}% hit rate), {} entries",
            stats.hits,
            stats.misses,
            100.0 * stats.hit_rate(),
            stats.entries
        );
    }
    let tree_carried: u64 = m.tree_routes.iter().sum();
    if tree_carried > 0 || m.tree_exhausted > 0 {
        println!(
            "tree routes      : {tree_carried} carried ({} switches), {} FTGCR fallbacks",
            m.tree_switches, m.tree_exhausted
        );
    }
    println!("injected         : {}", m.injected);
    println!("delivered        : {}", m.delivered);
    if m.suppressed_injections_total > 0 {
        println!(
            "suppressed inj   : {} measured / {} total (permutation partner faulty)",
            m.suppressed_injections, m.suppressed_injections_total
        );
    }
    println!("route failures   : {}", m.route_failures);
    println!("avg latency      : {:.3} cycles", m.avg_latency());
    println!("avg hops         : {:.3}", m.avg_hops());
    if out.percentiles {
        let fmt = |h: &gcube_sim::Histogram| {
            format!(
                "p50 {} / p95 {} / p99 {} / max {}",
                h.p50().map_or_else(|| "-".into(), |v| v.to_string()),
                h.p95().map_or_else(|| "-".into(), |v| v.to_string()),
                h.p99().map_or_else(|| "-".into(), |v| v.to_string()),
                h.max()
            )
        };
        println!("latency pctl     : {}", fmt(&m.latency_hist));
        println!("hops pctl        : {}", fmt(&m.hops_hist));
    }
    let log2 = m
        .log2_throughput()
        .map_or_else(|| "n/a".into(), |v| format!("{v:.3}"));
    println!(
        "throughput       : {:.4} pkts/cycle (log2 {log2})",
        m.throughput()
    );
    println!("measured cycles  : {}", m.cycles);
    if let Some(op) = collective {
        println!(
            "collective       : {} every {} cycles — {} ops launched, {} skipped (dead root class)",
            op.as_str(),
            collective_interval,
            m.collective_ops,
            m.collective_skipped
        );
        println!(
            "  wave packets   : {} injected, {} delivered, {} dropped (coverage {:.4})",
            m.collective_injected,
            m.collective_delivered,
            m.collective_dropped,
            m.collective_coverage()
        );
        if m.tree_regrafts + m.tree_rebuilds > 0 {
            println!(
                "  tree repairs   : {} re-grafts, {} full rebuilds, {} nodes lost to partitions",
                m.tree_regrafts, m.tree_rebuilds, m.tree_lost_nodes
            );
        }
        if !r.collectives.is_empty() {
            println!("  per-op coverage (op root: delivered/expected, completion cycles):");
            for s in r.collectives.iter().take(20) {
                println!(
                    "    op {:>3} @ node {:>5}: {:>5}/{:<5} ({:.3})  {} cycles",
                    s.op,
                    s.root,
                    s.delivered,
                    s.expected,
                    s.coverage(),
                    s.last_delivery.saturating_sub(s.started)
                );
            }
            if r.collectives.len() > 20 {
                println!("    ... {} more", r.collectives.len() - 20);
            }
        }
    }
    if dynamic {
        println!("fault events     : {}", m.fault_events);
        println!(
            "dropped          : {} (ttl {}, stranded {}, unrecoverable {})",
            m.dropped, m.ttl_expired, m.dropped_stranded, m.dropped_unrecoverable
        );
        println!(
            "delivery ratio   : {:.4} of resolved ({:.4} of injected)",
            m.delivery_ratio(),
            m.completion_ratio()
        );
        println!("rerouted packets : {}", m.rerouted_packets);
        println!("detour hops      : {}", m.rerouted_hops);
        println!(
            "stale knowledge  : {} cycles over {} reconvergences",
            m.stale_cycles, m.reconvergences
        );
        println!(
            "final health     : {} ({} transitions; {} live faults, \
             Thm-3 headroom {} of {})",
            r.budget.state,
            m.health_transitions,
            r.budget.total,
            r.budget.headroom_paper(),
            r.budget.t_paper
        );
        println!("delivery windows (cycles: delivered/resolved ratio):");
        for w in &r.windows {
            println!(
                "  {:>6}..{:<6} inj {:>5}  dlv {:>5}  drop {:>4}  ratio {:.3}",
                w.start,
                w.end,
                w.injected,
                w.delivered,
                w.dropped,
                w.delivery_ratio()
            );
        }
        if !r.trace.is_empty() {
            println!("fault trace ({} events):", r.trace.len());
            for e in r.trace.iter().take(20) {
                let what = match e.target {
                    gcube_sim::FaultTarget::Node(v) => format!("node {v}"),
                    gcube_sim::FaultTarget::Link(l) => format!("link {l}"),
                };
                let act = match e.action {
                    gcube_sim::FaultAction::Fail => "fail",
                    gcube_sim::FaultAction::Repair => "repair",
                };
                println!("  cycle {:>6}: {act:<6} {what}", e.cycle);
            }
            if r.trace.len() > 20 {
                println!("  ... {} more", r.trace.len() - 20);
            }
        }
    }
    if m.in_flight_at_end > 0 {
        println!(
            "WARNING: {} packets undrained (raise --cycles?)",
            m.in_flight_at_end
        );
    }
    if out.health_report {
        let t = telem.as_ref().expect("telemetry was collected");
        print!(
            "{}",
            t.health_report_with_trees(&r.budget, r.tree_health.as_deref())
        );
        // Shard layout: which ending classes each worker owned (Theorem 2
        // partitions the cube so this assignment is the parallel unit).
        let resolved = resolve_threads(threads);
        let shards = effective_shards(sim.cube(), resolved);
        let num_classes = 1usize << sim.cube().alpha();
        let nodes_per_class = sim.cube().num_nodes() / num_classes as u64;
        println!("--- shard layout ---");
        println!(
            "threads: {threads} requested -> {resolved} resolved -> {shards} shard{} \
             over {num_classes} ending class{}",
            if shards == 1 { "" } else { "s" },
            if num_classes == 1 { "" } else { "es" },
        );
        if shards == 1 {
            println!("  sequential engine (one shard owns every class)");
        } else {
            for (s, (lo, hi)) in class_ranges(num_classes, shards).into_iter().enumerate() {
                println!(
                    "  shard {s}: classes {lo}..{} ({} nodes)",
                    hi - 1,
                    (hi - lo) as u64 * nodes_per_class
                );
            }
        }
    }
    Ok(())
}

/// `gcube serve` — the routing-as-a-service daemon, or (with
/// `--connect`) a thin client piping stdin/stdout through the socket of
/// one that is already running.
fn serve(
    socket: Option<String>,
    connect: Option<String>,
    max_sessions: usize,
    workers: usize,
) -> Result<(), String> {
    if let Some(path) = connect {
        return serve_client(&path);
    }
    let cfg = gcube_sim::ServerConfig {
        max_sessions,
        workers,
    };
    gcube_sim::serve(cfg, socket.as_deref().map(std::path::Path::new))
        .map_err(|e| format!("serve failed: {e}"))
}

/// Client mode: forward stdin lines to the daemon socket and stream the
/// replies back to stdout. Replies arrive on their own thread so a
/// long-running request never deadlocks the pipe.
fn serve_client(path: &str) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    let stream = UnixStream::connect(path)
        .map_err(|e| format!("cannot connect to daemon at {path}: {e}"))?;
    let reader = stream
        .try_clone()
        .map_err(|e| format!("socket clone failed: {e}"))?;
    let pump = std::thread::spawn(move || {
        let mut out = std::io::stdout().lock();
        for line in BufReader::new(reader).lines() {
            let Ok(line) = line else { break };
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                break;
            }
        }
    });
    let mut writer = stream;
    for line in std::io::stdin().lock().lines() {
        let line = line.map_err(|e| format!("stdin read failed: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(writer, "{line}")
            .and_then(|()| writer.flush())
            .map_err(|e| format!("socket write failed: {e}"))?;
    }
    // EOF on stdin: half-close so the daemon side sees the end of the
    // conversation, then drain the remaining replies.
    let _ = writer.shutdown(std::net::Shutdown::Write);
    let _ = pump.join();
    Ok(())
}

/// `gcube analyze` — offline forensics over recorded artifacts.
fn analyze(mode: AnalyzeMode) -> Result<(), String> {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read artifact {path}: {e}"))
    };
    match mode {
        AnalyzeMode::Trace { path, packet, top } => {
            let text = read(&path)?;
            let (meta, events) =
                parse_jsonl_with_meta(&text).map_err(|e| format!("{path}: {e}"))?;
            if let Some(m) = &meta {
                println!(
                    "provenance       : GC({}, {}), seed {}, {} threads, {} (format {})",
                    m.n, m.modulus, m.seed, m.threads, m.strategy, m.format
                );
            } else {
                println!("provenance       : unstamped v0 artifact");
            }
            let f = RunForensics::from_events(&events);
            if let Some(id) = packet {
                print!("{}", f.timeline(id));
                return Ok(());
            }
            print!("{}", f.summary());
            println!("--- fault impact (per blocked node) ---");
            print!("{}", f.fault_impact_table(top));
            println!("--- congestion hot-spots ---");
            print!("{}", f.congestion_table(top));
            Ok(())
        }
        AnalyzeMode::Profile { path } => {
            let text = read(&path)?;
            print!(
                "{}",
                render_profile(&text).map_err(|e| format!("{path}: {e}"))?
            );
            Ok(())
        }
        AnalyzeMode::Diff { a, b } => {
            let outcome = diff_deterministic(&read(&a)?, &read(&b)?)?;
            println!("A: {a}");
            println!("B: {b}");
            println!("{}", outcome.detail);
            if outcome.identical {
                Ok(())
            } else {
                Err("deterministic streams diverged".into())
            }
        }
    }
}
