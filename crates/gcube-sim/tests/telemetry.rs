//! Telemetry integration tests: the time series must reconcile exactly
//! with the metrics ledger, the fault-budget monitor must flag
//! `BoundExceeded` iff the Theorem 3 precondition fails, attaching a
//! collector must not perturb the simulation, and the exports must be
//! deterministic.

use gcube_routing::faults::{theorem3_precondition_paper, HealthState};
use gcube_sim::telemetry::TelemetryCollector;
use gcube_sim::{
    verify_replay, CachedFtgcr, CategoryMix, FaultKind, FaultSchedule, FaultTarget, KnowledgeModel,
    MemorySink, SimConfig, Simulator, TimedFault, TraceEventKind,
};
use gcube_topology::{GaussianCube, LinkId, NodeId};

/// A seeded churn workload exercising every telemetry counter.
fn churn_config() -> SimConfig {
    SimConfig::new(6, 2)
        .with_cycles(400, 3_000, 50)
        .with_rate(0.1)
        .with_seed(0xf116)
        .with_knowledge(KnowledgeModel::PaperDelay)
        .with_reroute_budget(1)
        .with_ttl(25)
        .with_telemetry_interval(50)
        .with_schedule(FaultSchedule::Bernoulli {
            rate: 0.05,
            kind: FaultKind::Transient { repair_after: 80 },
            mix: CategoryMix::default(),
            node_fraction: 1.0,
        })
}

/// ISSUE acceptance: the per-dimension hop series reconciles *exactly*
/// with the Metrics ledger — per window and in total — and every other
/// telemetry counter matches its metrics twin.
#[test]
fn telemetry_reconciles_with_the_metrics_ledger() {
    let alg = CachedFtgcr::new();
    let sim = Simulator::new(churn_config(), &alg);
    let mut telem = TelemetryCollector::new(sim.cube(), 50);
    let report = sim.session().telemetry(&mut telem).run();
    let m = report.metrics;

    assert!(m.forwarded_hops_total > 0, "workload must forward packets");
    assert_eq!(telem.forwarded_hops_total(), m.forwarded_hops_total);
    // The window series sums to the same total (no eviction here).
    assert_eq!(telem.evicted(), 0);
    assert_eq!(
        telem.samples().map(|s| s.forwarded_hops()).sum::<u64>(),
        m.forwarded_hops_total
    );
    // Per-dimension totals sum across windows too.
    for (d, &total) in telem.dim_hops_total().iter().enumerate() {
        assert_eq!(
            telem.samples().map(|s| s.dim_hops[d]).sum::<u64>(),
            total,
            "dimension {d}"
        );
    }
    assert_eq!(
        telem.packet_totals(),
        (m.injected_total, m.delivered_total, m.dropped_total)
    );
    let (reroutes, stale_views, stale_cycles, fault_events, reconvergences) = telem.churn_totals();
    assert_eq!(stale_cycles, m.stale_cycles);
    assert_eq!(fault_events, m.fault_events);
    assert_eq!(reconvergences, m.reconvergences);
    assert!(stale_views >= reroutes, "every reroute follows an exposure");
    assert!(reroutes > 0, "churn under PaperDelay must force re-routes");
    // Health transitions recorded by the collector match the metric.
    assert_eq!(telem.transitions().len() as u64, m.health_transitions);
    // The last sample's in-flight count matches the end-of-run metric.
    let last = telem.samples().last().unwrap();
    assert_eq!(last.in_flight, m.in_flight_at_end);
}

/// Attaching a collector must not perturb the run: metrics, windows,
/// fault trace, and budget are bit-identical to the bare engine's.
#[test]
fn telemetry_does_not_perturb_the_run() {
    let alg = CachedFtgcr::new();
    let bare = Simulator::new(churn_config(), &alg).session().run();
    let sim = Simulator::new(churn_config(), &alg);
    let mut telem = TelemetryCollector::new(sim.cube(), 50);
    let observed = sim.session().telemetry(&mut telem).run();
    assert_eq!(bare, observed);
}

/// ISSUE acceptance: the monitor flags `BoundExceeded` iff the injected
/// fault set violates the Theorem 3 precondition checker.
#[test]
fn bound_exceeded_iff_theorem3_precondition_fails() {
    let gc = GaussianCube::new(6, 2).unwrap(); // α = 1
    let base = || {
        SimConfig::new(6, 2)
            .with_cycles(200, 2_000, 0)
            .with_rate(0.02)
            .with_knowledge(KnowledgeModel::PaperDelay)
    };
    // One A-category fault (link in dim ≥ α): precondition holds, so the
    // run goes Degraded and never BoundExceeded.
    let a_link = LinkId::new(NodeId(0), gc.alpha() + 1);
    // One node fault: C-category, precondition void, BoundExceeded.
    let scenarios: [(FaultTarget, HealthState); 2] = [
        (FaultTarget::Link(a_link), HealthState::Degraded),
        (FaultTarget::Node(NodeId(9)), HealthState::BoundExceeded),
    ];
    for (target, expected) in scenarios {
        let cfg = base().with_schedule(FaultSchedule::Scripted(vec![TimedFault {
            cycle: 100,
            target,
            kind: FaultKind::Permanent,
        }]));
        let alg = CachedFtgcr::new();
        let mut sink = MemorySink::new();
        let report = Simulator::new(cfg, &alg).session().trace(&mut sink).run();
        // The iff, against the checker itself on the final fault set.
        assert_eq!(
            report.budget.state == HealthState::BoundExceeded,
            !report.budget.precondition_paper,
            "{target:?}"
        );
        assert_eq!(report.budget.state, expected, "{target:?}");
        // The transition is a first-class trace event.
        let health_events: Vec<_> = sink
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Health { state, faults } => Some((e.cycle, state, faults)),
                _ => None,
            })
            .collect();
        assert_eq!(health_events, vec![(100, expected, 1)], "{target:?}");
        assert_eq!(report.metrics.health_transitions, 1, "{target:?}");
    }
}

/// A run that *starts* faulty reports its classification at cycle 0, and
/// replay verification covers the health events.
#[test]
fn initial_faults_classify_at_cycle_zero_and_replay() {
    let cfg = || {
        SimConfig::new(6, 2)
            .with_cycles(200, 2_000, 0)
            .with_rate(0.05)
            .with_faults(2)
    };
    let alg = CachedFtgcr::new();
    let mut sink = MemorySink::new();
    let report = Simulator::new(cfg(), &alg).session().trace(&mut sink).run();
    let first = sink.events().first().expect("events recorded");
    assert!(
        matches!(
            first.kind,
            TraceEventKind::Health {
                state: HealthState::BoundExceeded, // node faults are C-category
                faults: 2,
            }
        ),
        "first event must be the cycle-0 classification, got {first:?}"
    );
    assert_eq!(first.cycle, 0);
    assert_eq!(report.metrics.health_transitions, 1);
    // Health events replay like any other event.
    let events = sink.into_events();
    let n = verify_replay(cfg(), &CachedFtgcr::new(), &events).unwrap();
    assert_eq!(n, events.len());
}

/// Transient churn that fully repairs walks the monitor back to Healthy,
/// and the budget snapshot agrees with a fresh checker run.
#[test]
fn transient_fault_recovers_to_healthy() {
    let cfg = SimConfig::new(6, 2)
        .with_cycles(400, 3_000, 0)
        .with_rate(0.02)
        .with_knowledge(KnowledgeModel::PaperDelay)
        .with_schedule(FaultSchedule::Scripted(vec![TimedFault {
            cycle: 100,
            target: FaultTarget::Node(NodeId(9)),
            kind: FaultKind::Transient { repair_after: 100 },
        }]));
    let alg = CachedFtgcr::new();
    let sim = Simulator::new(cfg, &alg);
    let mut telem = TelemetryCollector::new(sim.cube(), 100);
    let report = sim.session().telemetry(&mut telem).run();
    assert_eq!(report.budget.state, HealthState::Healthy);
    assert_eq!(report.budget.total, 0);
    let t = telem.transitions();
    assert_eq!(t.len(), 2, "down then up: {t:?}");
    assert_eq!((t[0].cycle, t[0].to), (100, HealthState::BoundExceeded));
    assert_eq!((t[1].cycle, t[1].to), (200, HealthState::Healthy));
    assert_eq!(report.metrics.health_transitions, 2);
    // The per-sample health column tracks the live state.
    let states: Vec<HealthState> = telem.samples().map(|s| s.health).collect();
    assert_eq!(states[0], HealthState::Healthy);
    assert_eq!(states[1], HealthState::BoundExceeded);
    assert_eq!(*states.last().unwrap(), HealthState::Healthy);
    assert!(theorem3_precondition_paper(sim.cube(), sim.faults()));
}

/// Same seed ⇒ byte-identical CSV and JSONL exports (what CI diffs).
#[test]
fn telemetry_exports_are_deterministic() {
    let run = || {
        let alg = CachedFtgcr::new();
        let sim = Simulator::new(churn_config(), &alg);
        let mut telem = TelemetryCollector::new(sim.cube(), 50);
        sim.session().telemetry(&mut telem).run();
        (telem.to_csv(), telem.to_jsonl())
    };
    let (csv_a, jsonl_a) = run();
    let (csv_b, jsonl_b) = run();
    assert_eq!(csv_a, csv_b);
    assert_eq!(jsonl_a, jsonl_b);
    assert!(csv_a.lines().count() > 2, "series must have rows");
}

/// The health report renders the budget standing of a real run.
#[test]
fn health_report_reflects_the_run() {
    let alg = CachedFtgcr::new();
    let sim = Simulator::new(churn_config(), &alg);
    let mut telem = TelemetryCollector::new(sim.cube(), 50);
    let report = sim.session().telemetry(&mut telem).run();
    let text = telem.health_report(&report.budget);
    assert!(text.contains("network health report"));
    assert!(text.contains(&format!("injected {}", report.metrics.injected_total)));
    assert!(text.contains(report.budget.state.as_str()));
    assert!(text.contains("phase profile"));
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_workload() -> impl Strategy<Value = SimConfig> {
        (
            5u32..8,     // n
            0u32..3,     // α (modulus = 2^α)
            0u64..1_000, // seed
            1u32..8,     // rate, in percent
        )
            .prop_map(|(n, alpha_pow, seed, rate)| {
                SimConfig::new(n, 1u64 << alpha_pow)
                    .with_cycles(150, 1_500, 0)
                    .with_rate(f64::from(rate) * 0.01)
                    .with_seed(seed)
                    .with_knowledge(KnowledgeModel::PaperDelay)
                    .with_schedule(FaultSchedule::Bernoulli {
                        rate: 0.01,
                        kind: FaultKind::Transient { repair_after: 50 },
                        mix: CategoryMix::default(),
                        node_fraction: 0.5,
                    })
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Satellite: per-dimension utilization counters sum to the total
        /// forwarded hops, across shapes, rates, and churn seeds.
        #[test]
        fn dim_hops_sum_to_total_forwarded(cfg in arb_workload()) {
            let alg = CachedFtgcr::new();
            let sim = Simulator::new(cfg, &alg);
            let mut telem = TelemetryCollector::new(sim.cube(), 40);
            let report = sim.session().telemetry(&mut telem).run();
            let per_dim: u64 = telem.dim_hops_total().iter().sum();
            prop_assert_eq!(per_dim, telem.forwarded_hops_total());
            prop_assert_eq!(per_dim, report.metrics.forwarded_hops_total);
            // And the iff holds on whatever fault set the churn left.
            prop_assert_eq!(
                report.budget.state == HealthState::BoundExceeded,
                !report.budget.precondition_paper
            );
        }
    }
}
