//! Flight-recorder integration tests: tracing must not perturb the
//! simulation, the event stream must reconcile with the metrics ledger,
//! and a recorded run must replay event-for-event.

use gcube_sim::{
    parse_jsonl, trace, verify_replay, CachedFtgcr, CategoryMix, FaultKind, FaultSchedule,
    KnowledgeModel, MemorySink, MultiTreeStrategy, ReplayError, SimConfig, Simulator,
    TraceEventKind,
};

/// A seeded churn workload that exercises every event kind: hops, stale
/// views, re-routes, drops (all three causes reachable), deliveries.
fn churn_config() -> SimConfig {
    SimConfig::new(6, 2)
        .with_cycles(400, 3_000, 50)
        .with_rate(0.1)
        .with_seed(0xf116)
        .with_knowledge(KnowledgeModel::PaperDelay)
        .with_reroute_budget(1)
        .with_ttl(25)
        .with_schedule(FaultSchedule::Bernoulli {
            rate: 0.05,
            kind: FaultKind::Transient { repair_after: 80 },
            mix: CategoryMix::default(),
            node_fraction: 1.0,
        })
}

#[test]
fn tracing_does_not_perturb_the_run() {
    let alg = CachedFtgcr::new();
    let untraced = Simulator::new(churn_config(), &alg).session().run();
    let mut sink = MemorySink::new();
    let traced = Simulator::new(churn_config(), &alg)
        .session()
        .trace(&mut sink)
        .run();
    assert_eq!(untraced.metrics, traced.metrics);
    assert_eq!(untraced.windows, traced.windows);
    assert!(!sink.events().is_empty());
}

#[test]
fn trace_reconciles_with_ledger() {
    let alg = CachedFtgcr::new();
    let mut sink = MemorySink::new();
    let report = Simulator::new(churn_config(), &alg)
        .session()
        .trace(&mut sink)
        .run();
    let m = report.metrics;
    let count = |pred: &dyn Fn(&TraceEventKind) -> bool| -> u64 {
        sink.events().iter().filter(|e| pred(&e.kind)).count() as u64
    };
    // The flight record covers *every* packet, warm-up included, so the
    // counts match the whole-run totals.
    assert_eq!(
        count(&|k| matches!(k, TraceEventKind::Inject { .. })),
        m.injected_total
    );
    assert_eq!(
        count(&|k| matches!(k, TraceEventKind::Deliver { .. })),
        m.delivered_total
    );
    assert_eq!(
        count(&|k| matches!(k, TraceEventKind::Drop { .. })),
        m.dropped_total
    );
    assert!(m.dropped_total > 0, "this workload must drop packets");
    // Every re-route was preceded by a stale-view exposure.
    let stale = count(&|k| matches!(k, TraceEventKind::StaleView { .. }));
    let reroutes = count(&|k| matches!(k, TraceEventKind::Reroute { .. }));
    assert!(stale >= reroutes);
    assert!(reroutes > 0, "churn under PaperDelay must force re-routes");
}

#[test]
fn recorded_churn_run_replays_event_for_event() {
    let alg = CachedFtgcr::new();
    let mut sink = MemorySink::new();
    Simulator::new(churn_config(), &alg)
        .session()
        .trace(&mut sink)
        .run();
    let events = sink.into_events();
    // A fresh algorithm instance (empty route cache) must still replay
    // identically — caching is an optimisation, not a semantic.
    let n = verify_replay(churn_config(), &CachedFtgcr::new(), &events).unwrap();
    assert_eq!(n, events.len());
}

#[test]
fn replay_detects_tampering() {
    let alg = CachedFtgcr::new();
    let mut sink = MemorySink::new();
    Simulator::new(churn_config(), &alg)
        .session()
        .trace(&mut sink)
        .run();
    let mut events = sink.into_events();

    // Tampered event value.
    let idx = events.len() / 2;
    let mut bent = events[idx];
    bent.cycle += 1;
    let orig = std::mem::replace(&mut events[idx], bent);
    match verify_replay(churn_config(), &CachedFtgcr::new(), &events).unwrap_err() {
        ReplayError::Mismatch { index, .. } => assert_eq!(index, idx),
        other => panic!("expected Mismatch, got {other}"),
    }
    events[idx] = orig;

    // Truncated trace.
    events.pop();
    match verify_replay(churn_config(), &CachedFtgcr::new(), &events).unwrap_err() {
        ReplayError::LengthMismatch { recorded, replayed } => {
            assert_eq!(recorded + 1, replayed)
        }
        other => panic!("expected LengthMismatch, got {other}"),
    }

    // Different seed: diverges (at some event, or in length).
    assert!(verify_replay(churn_config().with_seed(1), &CachedFtgcr::new(), &events).is_err());
}

#[test]
fn multitree_tree_switches_replay_and_round_trip() {
    let alg = MultiTreeStrategy::new(2);
    let mut sink = MemorySink::new();
    let report = Simulator::new(churn_config(), &alg)
        .session()
        .trace(&mut sink)
        .run();
    let switch_events: Vec<_> = sink
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::TreeSwitch { .. }))
        .collect();
    assert!(
        !switch_events.is_empty(),
        "churn under multitree must emit tree_switch events"
    );
    // The trace's per-event switch counts reconcile with the metrics
    // ledger exactly (first-choice plans emit no event and add nothing).
    let traced_switches: u64 = switch_events
        .iter()
        .map(|e| match e.kind {
            TraceEventKind::TreeSwitch { switches, .. } => u64::from(switches),
            _ => unreachable!(),
        })
        .sum();
    assert_eq!(traced_switches, report.metrics.tree_switches);
    let traced_exhausted = switch_events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                TraceEventKind::TreeSwitch {
                    exhausted: true,
                    ..
                }
            )
        })
        .count() as u64;
    assert_eq!(traced_exhausted, report.metrics.tree_exhausted);

    // JSONL round trip preserves the tree fields bit for bit.
    let text = trace::to_jsonl(sink.events());
    assert_eq!(parse_jsonl(&text).unwrap().as_slice(), sink.events());

    // A fresh strategy instance (cold atlas, cold caches) replays the
    // recorded stream event for event.
    let events = sink.into_events();
    let n = verify_replay(churn_config(), &MultiTreeStrategy::new(2), &events).unwrap();
    assert_eq!(n, events.len());
}

#[test]
fn jsonl_export_round_trips_a_real_run() {
    let alg = CachedFtgcr::new();
    let mut sink = MemorySink::new();
    Simulator::new(churn_config(), &alg)
        .session()
        .trace(&mut sink)
        .run();
    let text = trace::to_jsonl(sink.events());
    let parsed = parse_jsonl(&text).unwrap();
    assert_eq!(parsed.as_slice(), sink.events());
}
