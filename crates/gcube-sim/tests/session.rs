//! The `SimSession` front door: builder composition, thread resolution,
//! and — the headline guarantee — bitwise sequential/sharded equivalence
//! for arbitrary configurations and strategies (multitree included).

use proptest::prelude::*;

use gcube_sim::{
    effective_shards, resolve_threads, CategoryMix, FaultKind, FaultSchedule, KnowledgeModel,
    MemorySink, SimConfig, SimError, Simulator, TelemetryCollector, TrafficPattern,
};

fn churn_config() -> SimConfig {
    SimConfig::new(6, 2)
        .with_cycles(300, 3_000, 40)
        .with_rate(0.08)
        .with_knowledge(KnowledgeModel::PaperDelay)
        .with_reroute_budget(2)
        .with_schedule(FaultSchedule::Bernoulli {
            rate: 0.02,
            kind: FaultKind::Transient { repair_after: 60 },
            mix: CategoryMix::default(),
            node_fraction: 0.7,
        })
}

#[test]
fn builder_composes_every_observer_combination() {
    let sim = Simulator::new(churn_config(), &gcube_sim::FaultTolerantGcr);
    let bare = sim.session().run();

    let mut sink = MemorySink::new();
    let traced = sim.session().trace(&mut sink).run();
    assert_eq!(bare, traced, "a trace sink must never steer the engine");
    assert!(!sink.events().is_empty());

    let mut telem = TelemetryCollector::new(sim.cube(), sim.config().telemetry_interval);
    let mut sink2 = MemorySink::new();
    let instrumented = sim.session().trace(&mut sink2).telemetry(&mut telem).run();
    assert_eq!(bare, instrumented, "observers must never steer the engine");
    assert!(telem.samples().count() > 0);
    assert_eq!(sink.events(), sink2.events());
}

#[test]
fn multitree_shards_bitwise_under_churn() {
    // One fresh strategy per run: the shared FTGCR-fallback plan cache
    // and the atlas screen are cumulative, so reusing an instance would
    // (correctly) change telemetry cache counters between runs.
    let run_with = |threads: usize| {
        let alg = gcube_sim::MultiTreeStrategy::new(2);
        let sim = Simulator::new(churn_config(), &alg);
        let mut sink = MemorySink::new();
        let mut telem = TelemetryCollector::new(sim.cube(), sim.config().telemetry_interval);
        let report = sim
            .session()
            .threads(threads)
            .trace(&mut sink)
            .telemetry(&mut telem)
            .run();
        (report, sink, telem)
    };
    let (seq, seq_sink, seq_tel) = run_with(1);
    assert!(
        seq.metrics.tree_routes.iter().sum::<u64>() > 0,
        "multitree must carry traffic on trees"
    );
    assert!(seq.tree_health.is_some(), "report must carry tree health");
    for threads in [2, 4] {
        let (par, par_sink, par_tel) = run_with(threads);
        assert_eq!(seq, par, "report mismatch at threads={threads}");
        assert_eq!(
            seq_sink.events(),
            par_sink.events(),
            "trace mismatch at threads={threads}"
        );
        assert_eq!(
            seq_tel.to_csv(),
            par_tel.to_csv(),
            "telemetry mismatch at threads={threads}"
        );
    }
}

#[test]
fn threads_zero_resolves_to_available_parallelism() {
    assert!(resolve_threads(0) >= 1);
    assert_eq!(resolve_threads(3), 3);
    let sim = Simulator::new(
        SimConfig::new(6, 2)
            .with_cycles(100, 1_000, 0)
            .with_rate(0.03),
        &gcube_sim::FaultFreeGcr,
    );
    // Whatever 0 resolves to, the result is the sequential one.
    assert_eq!(sim.session().threads(0).run(), sim.session().run());
}

#[test]
fn effective_shards_cap_at_the_ending_classes() {
    let sim = Simulator::new(SimConfig::new(6, 4), &gcube_sim::FaultFreeGcr);
    assert_eq!(effective_shards(sim.cube(), 1), 1);
    assert_eq!(effective_shards(sim.cube(), 3), 3);
    assert_eq!(effective_shards(sim.cube(), 64), 4, "capped at 2^α");
    let flat = Simulator::new(SimConfig::new(6, 1), &gcube_sim::FaultFreeGcr);
    assert_eq!(
        effective_shards(flat.cube(), 8),
        1,
        "one ending class means the sequential engine"
    );
}

#[test]
fn finite_buffers_refuse_sharded_runs() {
    let cfg = SimConfig::new(6, 2)
        .with_cycles(100, 1_000, 0)
        .with_rate(0.02)
        .with_buffer_capacity(4);
    let sim = Simulator::new(cfg, &gcube_sim::FaultFreeGcr);
    match sim.session().threads(4).try_run() {
        Err(SimError::FiniteBuffersRequireSingleThread) => {}
        other => panic!("expected a finite-buffer refusal, got {other:?}"),
    }
    // Single-threaded finite buffers still run.
    assert!(sim.session().threads(1).try_run().is_ok());
}

/// A completed million-node run: `GC(20, 4)` end to end at a trickle
/// injection rate, sequential and 4-way sharded agreeing bitwise. The
/// SoA engine never materialises the node set — queues are flat arrays
/// plus occupancy bitsets — so 2^20 nodes is minutes of arithmetic, not
/// memory pressure. Ignored by default: run with
/// `cargo test --release -- --ignored million_node` (debug builds spend
/// most of their time in bounds checks).
#[test]
#[ignore = "release-scale: 1M-node engine run, use --release -- --ignored"]
fn million_node_run_completes_and_shards_bitwise() {
    let cfg = SimConfig::new(20, 4)
        .with_cycles(10, 100, 0)
        .with_rate(0.0002)
        .with_seed(0x6c0de);
    let run_with = |threads: usize| {
        let alg = gcube_sim::CachedFfgcr::new();
        let sim = Simulator::new(cfg.clone(), &alg);
        sim.session().threads(threads).run()
    };
    let seq = run_with(1);
    assert_eq!(seq.metrics.nodes, 1 << 20);
    assert!(seq.metrics.injected_total > 0, "trickle must inject");
    assert_eq!(
        seq.metrics.injected_total,
        seq.metrics.delivered_total + seq.metrics.dropped_total,
        "a drained fault-free run delivers everything it injected"
    );
    let par = run_with(4);
    assert_eq!(seq, par, "GC(20, 4) must shard bitwise");
}

fn arb_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::Permanent),
        (20u64..150).prop_map(|repair_after| FaultKind::Transient { repair_after }),
        (10u64..40, 60u64..150)
            .prop_map(|(down_for, period)| FaultKind::Intermittent { down_for, period }),
    ]
}

fn arb_schedule() -> impl Strategy<Value = FaultSchedule> {
    prop_oneof![
        Just(FaultSchedule::None),
        (0.005f64..0.05, arb_kind(), 0.0f64..=1.0).prop_map(|(rate, kind, node_fraction)| {
            FaultSchedule::Bernoulli {
                rate,
                kind,
                mix: CategoryMix::default(),
                node_fraction,
            }
        }),
    ]
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        5u32..=7,                         // n
        prop_oneof![Just(2u64), Just(4)], // modulus (>1 so sharding engages)
        0.005f64..0.08,                   // rate
        80u64..250,                       // inject cycles
        0u64..60,                         // warmup
        any::<u64>(),                     // seed
        0usize..2,                        // static faults
        arb_schedule(),
        prop_oneof![
            Just(KnowledgeModel::Oracle),
            Just(KnowledgeModel::PaperDelay),
            Just(KnowledgeModel::Measured),
        ],
        prop_oneof![Just(None), (2u64..50).prop_map(Some)], // ttl
        0u32..5,                                            // reroute budget
        prop_oneof![
            Just(TrafficPattern::Uniform),
            Just(TrafficPattern::Transpose),
            Just(TrafficPattern::BitComplement),
        ],
    )
        .prop_map(
            |(
                n,
                m,
                rate,
                inject,
                warmup,
                seed,
                faults,
                schedule,
                knowledge,
                ttl,
                budget,
                pattern,
            )| {
                let mut cfg = SimConfig::new(n, m)
                    .with_cycles(inject, inject * 20, warmup)
                    .with_rate(rate)
                    .with_seed(seed)
                    .with_faults(faults)
                    .with_schedule(schedule)
                    .with_knowledge(knowledge)
                    .with_reroute_budget(budget)
                    .with_pattern(pattern)
                    .with_window(100)
                    .with_telemetry_interval(50);
                if let Some(t) = ttl {
                    cfg = cfg.with_ttl(t);
                }
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property: for any shape, seed, and churn schedule,
    /// every thread count produces the identical `ChurnReport`, the
    /// identical trace stream, the identical telemetry exports, and a
    /// balanced conservation ledger.
    #[test]
    fn sharded_runs_are_bitwise_sequential((cfg, multitree) in (arb_config(), any::<bool>())) {
        let uses_ftgcr = cfg.faulty_nodes > 0 || !cfg.schedule.is_none();
        // One fresh algorithm instance per run: plan-cache hit/miss
        // counters are cumulative for the cache's lifetime, so a shared
        // warm cache would (correctly) report different telemetry for the
        // second run regardless of the engine used.
        let run_with = |threads: usize| {
            let alg_mt = gcube_sim::MultiTreeStrategy::new(2);
            let alg_ft = gcube_sim::CachedFtgcr::new();
            let alg_ff = gcube_sim::CachedFfgcr::new();
            let alg: &dyn gcube_sim::RoutingAlgorithm = if multitree {
                &alg_mt
            } else if uses_ftgcr {
                &alg_ft
            } else {
                &alg_ff
            };
            let sim = Simulator::new(cfg.clone(), alg);
            let mut sink = MemorySink::new();
            let mut tel =
                TelemetryCollector::new(sim.cube(), sim.config().telemetry_interval);
            let report = sim
                .session()
                .threads(threads)
                .trace(&mut sink)
                .telemetry(&mut tel)
                .run();
            (report, sink, tel)
        };

        let (seq, seq_sink, seq_tel) = run_with(1);

        let m = &seq.metrics;
        prop_assert_eq!(
            m.injected_total,
            m.delivered_total + m.dropped_total + m.in_flight_at_end,
            "sequential ledger must balance"
        );

        for threads in [2usize, 4, 7] {
            let (par, par_sink, par_tel) = run_with(threads);
            prop_assert_eq!(&seq, &par, "ChurnReport diverged at threads={}", threads);
            prop_assert_eq!(
                seq_sink.events(),
                par_sink.events(),
                "trace stream diverged at threads={}",
                threads
            );
            prop_assert_eq!(
                seq_tel.to_csv(),
                par_tel.to_csv(),
                "telemetry CSV diverged at threads={}",
                threads
            );
            prop_assert_eq!(
                seq_tel.to_jsonl(),
                par_tel.to_jsonl(),
                "telemetry JSONL diverged at threads={}",
                threads
            );
        }
    }
}
