//! Property test: the engine never loses or invents a packet.
//!
//! Whatever the configuration — load, warm-up, TTL, re-route budget,
//! knowledge model, static faults, dynamic churn — the whole-run ledger
//! must balance exactly:
//!
//! `injected_total == delivered_total + dropped_total + in_flight_at_end`
//!
//! and the per-window time series must sum to the same totals. Route
//! failures never create packets, so they sit outside the sum.

use proptest::prelude::*;

use gcube_sim::{CategoryMix, FaultKind, FaultSchedule, KnowledgeModel, SimConfig, Simulator};

fn arb_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::Permanent),
        (20u64..200).prop_map(|repair_after| FaultKind::Transient { repair_after }),
        (10u64..50, 60u64..200)
            .prop_map(|(down_for, period)| FaultKind::Intermittent { down_for, period }),
    ]
}

fn arb_schedule() -> impl Strategy<Value = FaultSchedule> {
    prop_oneof![
        Just(FaultSchedule::None),
        (0.002f64..0.05, arb_kind(), 0.0f64..=1.0).prop_map(|(rate, kind, node_fraction)| {
            FaultSchedule::Bernoulli {
                rate,
                kind,
                mix: CategoryMix::default(),
                node_fraction,
            }
        }),
    ]
}

fn arb_knowledge() -> impl Strategy<Value = KnowledgeModel> {
    prop_oneof![
        Just(KnowledgeModel::Oracle),
        Just(KnowledgeModel::PaperDelay),
        Just(KnowledgeModel::Measured),
    ]
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        5u32..=7,                                  // n
        prop_oneof![Just(1u64), Just(2), Just(4)], // modulus
        0.005f64..0.1,                             // rate
        100u64..400,                               // inject cycles
        0u64..100,                                 // warmup
        any::<u64>(),                              // seed
        0usize..2,                                 // static faults
        arb_schedule(),
        arb_knowledge(),
        prop_oneof![Just(None), (2u64..60).prop_map(Some)], // ttl
        0u32..6,                                            // reroute budget
    )
        .prop_map(
            |(n, m, rate, inject, warmup, seed, faults, schedule, knowledge, ttl, budget)| {
                let mut cfg = SimConfig::new(n, m)
                    .with_cycles(inject, inject * 20, warmup)
                    .with_rate(rate)
                    .with_seed(seed)
                    .with_faults(faults)
                    .with_schedule(schedule)
                    .with_knowledge(knowledge)
                    .with_reroute_budget(budget)
                    .with_window(100);
                if let Some(t) = ttl {
                    cfg = cfg.with_ttl(t);
                }
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packets_are_conserved(cfg in arb_config()) {
        let uses_ftgcr = cfg.faulty_nodes > 0 || !cfg.schedule.is_none();
        let r = if uses_ftgcr {
            Simulator::new(cfg, &gcube_sim::CachedFtgcr::new()).session().run()
        } else {
            Simulator::new(cfg, &gcube_sim::CachedFfgcr::new()).session().run()
        };
        let m = r.metrics;

        // The whole-run ledger balances exactly.
        prop_assert_eq!(
            m.injected_total,
            m.delivered_total + m.dropped_total + m.in_flight_at_end,
            "ledger: {} != {} + {} + {}",
            m.injected_total, m.delivered_total, m.dropped_total, m.in_flight_at_end
        );

        // The window time series tells the same story.
        prop_assert_eq!(r.windows.iter().map(|w| w.injected).sum::<u64>(), m.injected_total);
        prop_assert_eq!(r.windows.iter().map(|w| w.delivered).sum::<u64>(), m.delivered_total);
        prop_assert_eq!(r.windows.iter().map(|w| w.dropped).sum::<u64>(), m.dropped_total);

        // Measured counters are a subset of the totals.
        prop_assert!(m.injected <= m.injected_total);
        prop_assert!(m.delivered <= m.delivered_total);
        prop_assert!(m.dropped <= m.dropped_total);
        prop_assert!(m.route_failures <= m.route_failures_total);
        prop_assert!(m.ttl_expired <= m.dropped);
        prop_assert!(m.rerouted_packets <= m.delivered + m.dropped);
        prop_assert!(m.suppressed_injections <= m.suppressed_injections_total);

        // The drop-cause taxonomy partitions the measured drops exactly.
        prop_assert_eq!(
            m.dropped,
            m.ttl_expired + m.dropped_stranded + m.dropped_unrecoverable,
            "drop causes must partition dropped: {} != {} + {} + {}",
            m.dropped, m.ttl_expired, m.dropped_stranded, m.dropped_unrecoverable
        );

        // The latency/hop histograms see exactly the measured deliveries,
        // and the resolved-based ratios stay probabilities that sum to 1.
        prop_assert_eq!(m.latency_hist.count(), m.delivered);
        prop_assert_eq!(m.hops_hist.count(), m.delivered);
        if m.resolved() > 0 {
            let s = m.delivery_ratio() + m.drop_ratio();
            prop_assert!((s - 1.0).abs() < 1e-12, "ratios must sum to 1, got {}", s);
        }
    }
}
