//! The profiler's two contracts: the deterministic counter stream is
//! bitwise identical between the sequential and sharded engines for any
//! configuration, and an attached profiler never steers the run.
//! (`ProfileCollector`'s unit tests cover the aggregation mechanics;
//! these are the whole-engine properties.)

use proptest::prelude::*;

use gcube_sim::{
    CategoryMix, FaultKind, FaultSchedule, KnowledgeModel, ProfileCollector, SimConfig, Simulator,
    TelemetryCollector, TrafficPattern,
};

fn churn_config() -> SimConfig {
    SimConfig::new(6, 2)
        .with_cycles(300, 3_000, 40)
        .with_rate(0.08)
        .with_knowledge(KnowledgeModel::PaperDelay)
        .with_reroute_budget(2)
        .with_schedule(FaultSchedule::Bernoulli {
            rate: 0.02,
            kind: FaultKind::Transient { repair_after: 60 },
            mix: CategoryMix::default(),
            node_fraction: 0.7,
        })
}

/// `--profile` must work without `--telemetry`: a profiler alone turns
/// the phase timers on and produces samples, and the run's results are
/// untouched.
#[test]
fn profiling_alone_samples_and_does_not_perturb() {
    let alg = gcube_sim::CachedFtgcr::new();
    let sim = Simulator::new(churn_config(), &alg);
    let bare = sim.session().run();

    let alg2 = gcube_sim::CachedFtgcr::new();
    let sim2 = Simulator::new(churn_config(), &alg2);
    let mut prof = ProfileCollector::new(1 << sim2.cube().alpha(), 50);
    let profiled = sim2.session().profile(&mut prof).run();

    assert_eq!(bare, profiled, "a profiler must never steer the engine");
    assert!(prof.cycles() > 0);
    assert!(prof.samples().count() > 0, "windows must close");
    assert!(
        prof.phase_nanos().iter().sum::<u64>() > 0,
        "phase timers must run without telemetry attached"
    );
    assert!(
        prof.shard_profiles().is_empty(),
        "sequential runs have no per-shard breakdown"
    );
}

/// Sharded profiled runs populate the per-shard report-only table, one
/// entry per shard in shard order, without perturbing the report.
#[test]
fn sharded_profiling_reports_every_shard() {
    let alg = gcube_sim::CachedFtgcr::new();
    let sim = Simulator::new(churn_config(), &alg);
    let bare = sim.session().run();

    let alg2 = gcube_sim::CachedFtgcr::new();
    let sim2 = Simulator::new(churn_config(), &alg2);
    let mut prof = ProfileCollector::new(1 << sim2.cube().alpha(), 50);
    let profiled = sim2.session().threads(4).profile(&mut prof).run();

    assert_eq!(bare, profiled, "a profiler must never steer the engine");
    let expected = gcube_sim::effective_shards(sim2.cube(), 4);
    assert!(expected > 1, "the workload must actually shard");
    let shards: Vec<usize> = prof.shard_profiles().iter().map(|&(s, _)| s).collect();
    assert_eq!(shards, (0..expected).collect::<Vec<_>>());
    for (s, p) in prof.shard_profiles() {
        assert!(p.cycles > 0, "shard {s} must report its cycle count");
        assert!(p.run_nanos > 0, "shard {s} must report wall time");
    }
    assert!(
        prof.shard_profiles()
            .iter()
            .map(|&(_, p)| p.steal_units)
            .sum::<u64>()
            > 0,
        "somebody must have claimed planning units"
    );
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        5u32..=7,                         // n
        prop_oneof![Just(2u64), Just(4)], // modulus (>1 so sharding engages)
        0.005f64..0.08,                   // rate
        80u64..250,                       // inject cycles
        any::<u64>(),                     // seed
        prop_oneof![
            Just(FaultSchedule::None),
            (0.005f64..0.05).prop_map(|rate| FaultSchedule::Bernoulli {
                rate,
                kind: FaultKind::Transient { repair_after: 60 },
                mix: CategoryMix::default(),
                node_fraction: 0.7,
            }),
        ],
        prop_oneof![
            Just(TrafficPattern::Uniform),
            Just(TrafficPattern::Transpose),
        ],
        2u64..80, // profile interval
    )
        .prop_map(|(n, m, rate, inject, seed, schedule, pattern, interval)| {
            SimConfig::new(n, m)
                .with_cycles(inject, inject * 20, 0)
                .with_rate(rate)
                .with_seed(seed)
                .with_schedule(schedule)
                .with_knowledge(KnowledgeModel::PaperDelay)
                .with_reroute_budget(2)
                .with_pattern(pattern)
                .with_telemetry_interval(interval)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance property: the profiler's deterministic export —
    /// per-window counters, imbalance, cache deltas, log2 histograms —
    /// is bitwise identical at every thread count. Wall-clock fields are
    /// excluded by construction (they live in `to_jsonl`'s
    /// `report_only` lines, not in `deterministic_jsonl`).
    #[test]
    fn profiler_deterministic_stream_is_bitwise_thread_invariant(cfg in arb_config()) {
        let interval = cfg.telemetry_interval;
        // One fresh algorithm per run: plan-cache counters are
        // cumulative over the cache's lifetime, so sharing an instance
        // would (correctly) change the cache-delta columns.
        let run_with = |threads: usize| {
            let alg = gcube_sim::CachedFtgcr::new();
            let sim = Simulator::new(cfg.clone(), &alg);
            let mut prof = ProfileCollector::new(1 << sim.cube().alpha(), interval);
            let report = sim.session().threads(threads).profile(&mut prof).run();
            (report, prof.deterministic_jsonl())
        };
        let (seq, seq_stream) = run_with(1);
        for threads in [2usize, 4] {
            let (par, par_stream) = run_with(threads);
            prop_assert_eq!(&seq, &par, "ChurnReport diverged at threads={}", threads);
            prop_assert_eq!(
                &seq_stream,
                &par_stream,
                "profiler deterministic stream diverged at threads={}",
                threads
            );
        }
    }

    /// Attaching a telemetry collector alongside the profiler must not
    /// change the profiler's deterministic stream (the cache fetch is
    /// shared but filtered per consumer).
    #[test]
    fn telemetry_does_not_leak_into_the_profile(threads in prop_oneof![Just(1usize), Just(4)]) {
        let run_with = |with_telemetry: bool| {
            let alg = gcube_sim::CachedFtgcr::new();
            let sim = Simulator::new(churn_config(), &alg);
            let mut prof = ProfileCollector::new(1 << sim.cube().alpha(), 50);
            if with_telemetry {
                let mut telem = TelemetryCollector::new(sim.cube(), 50);
                sim.session()
                    .threads(threads)
                    .telemetry(&mut telem)
                    .profile(&mut prof)
                    .run();
            } else {
                sim.session().threads(threads).profile(&mut prof).run();
            }
            prof.deterministic_jsonl()
        };
        prop_assert_eq!(run_with(false), run_with(true));
    }
}
