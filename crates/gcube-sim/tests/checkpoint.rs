//! The snapshot/restore contract, held as a property: checkpoint a run
//! mid-flight at an arbitrary cycle, serialize through the text codec,
//! rebuild on a fresh simulator with a fresh strategy instance, finish —
//! and the final `ChurnReport` plus the composed trace stream (prefix
//! recorded before the pause + suffix recorded after the restore) must be
//! bitwise identical to the uninterrupted run, whether that baseline ran
//! sequentially or on the 4-thread shard engine.
//!
//! This is the engine-level guarantee `gcube serve` builds its
//! `snapshot`/`restore` requests on (DESIGN.md §16); the server's unit
//! tests pin the wire behaviour, this proptest pins the state capture
//! itself across random shapes, churn schedules, pause points, and the
//! collective traffic class (whose broadcast-tree cache is history, not
//! derivable state, and must ride the checkpoint).
#![recursion_limit = "1024"]

use proptest::prelude::*;

use gcube_sim::{
    CategoryMix, Checkpoint, ChurnReport, CollectiveOp, FaultKind, FaultSchedule, KnowledgeModel,
    MemorySink, RoutingAlgorithm, SimConfig, Simulator, TraceEvent,
};

fn build_algo(multitree: bool) -> Box<dyn RoutingAlgorithm> {
    // One fresh instance per run, like the daemon's `open`/`restore`: the
    // unicast plan cache is derivable state and deliberately not part of
    // a checkpoint, so sharing a warm instance across runs would not test
    // what restore actually rebuilds.
    if multitree {
        Box::new(gcube_sim::MultiTreeStrategy::new(2))
    } else {
        Box::new(gcube_sim::CachedFtgcr::new())
    }
}

fn run_uninterrupted(
    cfg: &SimConfig,
    multitree: bool,
    threads: usize,
) -> (ChurnReport, Vec<TraceEvent>) {
    let algo = build_algo(multitree);
    let sim = Simulator::new(cfg.clone(), &*algo);
    let mut sink = MemorySink::new();
    let report = sim.session().threads(threads).trace(&mut sink).run();
    (report, sink.events().to_vec())
}

/// Step to `pause`, checkpoint, round-trip the checkpoint through its
/// text serialization, resume on a completely fresh simulator, run to
/// completion. Returns the report and the prefix+suffix trace stream.
fn run_interrupted(cfg: &SimConfig, multitree: bool, pause: u64) -> (ChurnReport, Vec<TraceEvent>) {
    let algo = build_algo(multitree);
    let sim = Simulator::new(cfg.clone(), &*algo);
    let mut sink = MemorySink::new();
    let ck_text = {
        let mut stepper = sim.session().trace(&mut sink).stepper();
        stepper.step_many(pause);
        // The mark is bookkeeping for the daemon's rewind path (how much
        // trace prefix the holder retains); this test tracks the prefix
        // directly, so any value round-trips fine.
        stepper.checkpoint(0).expect("checkpoint mid-run").to_text()
    };
    let mut events = sink.events().to_vec();

    let ck = Checkpoint::from_text(&ck_text).expect("checkpoint text must round-trip");
    let algo2 = build_algo(multitree);
    let sim2 = Simulator::new(cfg.clone(), &*algo2);
    let mut suffix = MemorySink::new();
    let report = {
        let mut stepper = sim2
            .session()
            .trace(&mut suffix)
            .stepper_from(&ck)
            .expect("restore onto a matching simulator");
        while !stepper.step() {}
        stepper.finish()
    };
    events.extend_from_slice(suffix.events());
    (report, events)
}

fn arb_schedule() -> impl Strategy<Value = FaultSchedule> {
    prop_oneof![
        Just(FaultSchedule::None),
        (0.005f64..0.04, 20u64..120, 0.0f64..=1.0).prop_map(|(rate, repair, node_fraction)| {
            FaultSchedule::Bernoulli {
                rate,
                kind: FaultKind::Transient {
                    repair_after: repair,
                },
                mix: CategoryMix::default(),
                node_fraction,
            }
        }),
    ]
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        5u32..=6,                         // n
        prop_oneof![Just(2u64), Just(4)], // modulus
        0.01f64..0.06,                    // rate
        60u64..150,                       // inject cycles
        any::<u64>(),                     // seed
        0usize..2,                        // static faults
        arb_schedule(),
        prop_oneof![
            Just(KnowledgeModel::Oracle),
            Just(KnowledgeModel::PaperDelay),
        ],
        prop_oneof![Just(None), Just(Some(CollectiveOp::Broadcast))],
    )
        .prop_map(
            |(n, m, rate, inject, seed, faults, schedule, knowledge, collective)| {
                let mut cfg = SimConfig::new(n, m)
                    .with_cycles(inject, inject * 20, inject / 10)
                    .with_rate(rate)
                    .with_seed(seed)
                    .with_faults(faults)
                    .with_schedule(schedule)
                    .with_knowledge(knowledge)
                    .with_window(100)
                    .with_telemetry_interval(50);
                if let Some(op) = collective {
                    cfg = cfg.with_collective(op).with_collective_interval(40);
                }
                cfg
            },
        )
}

fn check_round_trip(cfg: &SimConfig, multitree: bool, pause: u64) -> Result<(), TestCaseError> {
    let (seq_report, seq_events) = run_uninterrupted(cfg, multitree, 1);
    prop_assert!(
        !seq_events.is_empty(),
        "vacuous case: the baseline run recorded no trace events"
    );
    let (resumed_report, resumed_events) = run_interrupted(cfg, multitree, pause);
    prop_assert_eq!(
        &seq_report,
        &resumed_report,
        "restored run's ChurnReport diverged from the uninterrupted run (pause={})",
        pause
    );
    prop_assert_eq!(
        &seq_events,
        &resumed_events,
        "restored run's trace stream diverged (pause={})",
        pause
    );

    // The stepper always drives the sequential reference engine, but its
    // outputs are thread-invariant by the shard-equivalence guarantee —
    // so the resumed run must also match the 4-thread baseline bit for
    // bit.
    let (par_report, par_events) = run_uninterrupted(cfg, multitree, 4);
    prop_assert_eq!(&par_report, &resumed_report, "4-thread baseline diverged");
    prop_assert_eq!(&par_events, &resumed_events, "4-thread trace diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Checkpoint at a random cycle, restore, finish: report and trace
    /// bitwise equal to the uninterrupted run — sequential and 4-thread.
    #[test]
    fn checkpoint_round_trip_is_bitwise(
        (cfg, multitree, pause) in (arb_config(), any::<bool>(), 1u64..140)
    ) {
        check_round_trip(&cfg, multitree, pause)?;
    }
}
