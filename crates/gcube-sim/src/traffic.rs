//! Traffic generation and fault placement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gcube_routing::FaultSet;
use gcube_topology::{GaussianCube, NodeId, Topology};

/// Spatial traffic pattern: how a source chooses its destination.
///
/// `Uniform` is the paper's workload; the permutation patterns are the
/// classic adversarial workloads of the interconnection literature, exposed
/// for the ablation benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Uniform random healthy destination (the paper's model).
    #[default]
    Uniform,
    /// Destination = bitwise complement of the source.
    BitComplement,
    /// Destination = bit-reversed source label.
    BitReversal,
    /// Destination = label rotated by half the width (a transpose-style
    /// permutation).
    Transpose,
}

impl TrafficPattern {
    /// The deterministic partner of `src` under this pattern (`None` for
    /// `Uniform`).
    pub fn partner(self, n_bits: u32, src: NodeId) -> Option<NodeId> {
        let mask = if n_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << n_bits) - 1
        };
        match self {
            TrafficPattern::Uniform => None,
            TrafficPattern::BitComplement => Some(NodeId(!src.0 & mask)),
            TrafficPattern::BitReversal => {
                let mut v = 0u64;
                for i in 0..n_bits {
                    if src.bit(i) {
                        v |= 1 << (n_bits - 1 - i);
                    }
                }
                Some(NodeId(v))
            }
            TrafficPattern::Transpose => {
                let half = n_bits / 2;
                let rotated = ((src.0 << half) | (src.0 >> (n_bits - half))) & mask;
                Some(NodeId(rotated))
            }
        }
    }
}

/// Deterministic traffic source: Bernoulli injection with pattern-driven
/// destinations (uniform random healthy destinations by default — the
/// paper's synthetic workload).
pub struct TrafficGen {
    rng: StdRng,
    rate: f64,
    pattern: TrafficPattern,
}

impl TrafficGen {
    /// Create a generator with the given per-node per-cycle rate.
    pub fn new(seed: u64, rate: f64) -> TrafficGen {
        Self::with_pattern(seed, rate, TrafficPattern::Uniform)
    }

    /// Create a generator with an explicit spatial pattern. The rate must
    /// be a probability — [`crate::config::SimConfig::validate`] enforces
    /// that for simulator-driven traffic; direct construction asserts it
    /// (the old code silently clamped, so `rate = 1.2` ran as `1.0`).
    pub fn with_pattern(seed: u64, rate: f64, pattern: TrafficPattern) -> TrafficGen {
        debug_assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "injection rate must be in [0, 1], got {rate}"
        );
        TrafficGen {
            rng: StdRng::seed_from_u64(seed),
            rate,
            pattern,
        }
    }

    /// Whether `src` injects a packet this cycle.
    pub fn fires(&mut self) -> bool {
        self.rng.gen_bool(self.rate)
    }

    /// The generator's raw RNG state, for mid-run checkpointing.
    pub(crate) fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Resume the Bernoulli stream from a checkpointed RNG state.
    pub(crate) fn restore_rng(&mut self, s: [u64; 4]) {
        self.rng = StdRng::from_state(s);
    }

    /// The destination for a packet injected at `src`: the pattern partner
    /// if healthy and distinct, otherwise a uniform random healthy node.
    /// Returns `None` if no healthy destination exists at all.
    pub fn pick_dest(
        &mut self,
        gc: &GaussianCube,
        faults: &FaultSet,
        src: NodeId,
    ) -> Option<NodeId> {
        if let Some(p) = self.pattern.partner(gc.n(), src) {
            if p != src && !faults.is_node_faulty(p) {
                return Some(p);
            }
            return None; // permutation partner unusable: this source is silent
        }
        let n = gc.num_nodes();
        for _ in 0..64 {
            let d = NodeId(self.rng.gen_range(0..n));
            if d != src && !faults.is_node_faulty(d) {
                return Some(d);
            }
        }
        self.fallback_scan(n, faults, src)
    }

    /// Dense-fault fallback: scan from a seeded random offset so heavily
    /// faulted networks don't funnel all residual traffic onto the
    /// lowest-numbered healthy nodes.
    fn fallback_scan(&mut self, n: u64, faults: &FaultSet, src: NodeId) -> Option<NodeId> {
        let start = self.rng.gen_range(0..n);
        (0..n)
            .map(|i| NodeId((start + i) % n))
            .find(|&d| d != src && !faults.is_node_faulty(d))
    }
}

/// Place `count` distinct faulty nodes pseudo-randomly (assumption 3: a
/// faulty node kills all its incident links, which [`FaultSet`] models).
pub fn place_node_faults(gc: &GaussianCube, count: usize, seed: u64) -> FaultSet {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfau64.rotate_left(32));
    let mut faults = FaultSet::new();
    let n = gc.num_nodes();
    let count = count.min((n as usize).saturating_sub(2));
    let mut placed = 0;
    while placed < count {
        let v = NodeId(rng.gen_range(0..n));
        if !faults.is_node_faulty(v) {
            faults.add_node(v);
            placed += 1;
        }
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_is_deterministic() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let f = FaultSet::new();
        let run = |seed| {
            let mut t = TrafficGen::new(seed, 0.5);
            (0..100)
                .map(|_| {
                    let fire = t.fires();
                    let dest = t.pick_dest(&gc, &f, NodeId(0)).unwrap();
                    (fire, dest)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn dest_avoids_source_and_faults() {
        let gc = GaussianCube::new(5, 2).unwrap();
        let faults = place_node_faults(&gc, 5, 99);
        let mut t = TrafficGen::new(1, 1.0);
        for _ in 0..200 {
            let d = t.pick_dest(&gc, &faults, NodeId(3)).unwrap();
            assert_ne!(d, NodeId(3));
            assert!(!faults.is_node_faulty(d));
        }
    }

    #[test]
    fn fault_placement_counts() {
        let gc = GaussianCube::new(7, 2).unwrap();
        for count in [0usize, 1, 4, 10] {
            let f = place_node_faults(&gc, count, 42);
            assert_eq!(f.faulty_nodes().count(), count);
            assert_eq!(f.faulty_links().count(), 0);
        }
        // Deterministic in the seed.
        assert_eq!(place_node_faults(&gc, 3, 5), place_node_faults(&gc, 3, 5));
    }

    #[test]
    fn dense_fault_fallback_is_unbiased() {
        // Only three healthy nodes survive; the scan must not always hand
        // the lowest-numbered one to every source.
        let gc = GaussianCube::new(5, 2).unwrap();
        let mut faults = FaultSet::new();
        let healthy = [NodeId(5), NodeId(20), NodeId(29)];
        for v in 0..gc.num_nodes() {
            if !healthy.contains(&NodeId(v)) {
                faults.add_node(NodeId(v));
            }
        }
        let mut t = TrafficGen::new(11, 1.0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let d = t.fallback_scan(gc.num_nodes(), &faults, NodeId(5)).unwrap();
            assert!(d == NodeId(20) || d == NodeId(29));
            seen.insert(d);
        }
        assert_eq!(seen.len(), 2, "both healthy candidates must be reachable");
    }

    #[test]
    fn rate_bounds() {
        let mut always = TrafficGen::new(0, 1.0);
        assert!((0..50).all(|_| always.fires()));
        let mut never = TrafficGen::new(0, 0.0);
        assert!((0..50).all(|_| !never.fires()));
    }
}

#[cfg(test)]
mod pattern_tests {
    use super::*;

    #[test]
    fn patterns_are_involutions_or_permutations() {
        let n = 8u32;
        for pat in [
            TrafficPattern::BitComplement,
            TrafficPattern::BitReversal,
            TrafficPattern::Transpose,
        ] {
            let mut seen = std::collections::HashSet::new();
            for v in 0..(1u64 << n) {
                let p = pat.partner(n, NodeId(v)).unwrap();
                assert!(p.0 < (1 << n), "partner in range");
                assert!(seen.insert(p), "{pat:?} must be a permutation");
            }
        }
        // Complement and reversal are involutions.
        for v in 0..(1u64 << n) {
            let c = TrafficPattern::BitComplement.partner(n, NodeId(v)).unwrap();
            assert_eq!(
                TrafficPattern::BitComplement.partner(n, c).unwrap(),
                NodeId(v)
            );
            let r = TrafficPattern::BitReversal.partner(n, NodeId(v)).unwrap();
            assert_eq!(
                TrafficPattern::BitReversal.partner(n, r).unwrap(),
                NodeId(v)
            );
        }
    }

    #[test]
    fn partner_examples() {
        assert_eq!(
            TrafficPattern::BitComplement.partner(4, NodeId(0b0101)),
            Some(NodeId(0b1010))
        );
        assert_eq!(
            TrafficPattern::BitReversal.partner(4, NodeId(0b0011)),
            Some(NodeId(0b1100))
        );
        assert_eq!(
            TrafficPattern::Transpose.partner(4, NodeId(0b0011)),
            Some(NodeId(0b1100))
        );
        assert_eq!(TrafficPattern::Uniform.partner(4, NodeId(3)), None);
    }

    #[test]
    fn pattern_generator_uses_partner() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let f = FaultSet::new();
        let mut t = TrafficGen::with_pattern(1, 1.0, TrafficPattern::BitComplement);
        assert_eq!(t.pick_dest(&gc, &f, NodeId(0)), Some(NodeId(63)));
        // Faulty partner silences the source.
        let mut faults = FaultSet::new();
        faults.add_node(NodeId(63));
        assert_eq!(t.pick_dest(&gc, &faults, NodeId(0)), None);
    }
}
