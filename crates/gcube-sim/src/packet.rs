//! Packets and their in-flight state.

use gcube_routing::Route;
use gcube_topology::NodeId;

/// A unicast packet with its precomputed (source-routed) trajectory.
///
/// The paper's algorithms compute the whole plan at the source (message
/// overhead `O(n)`), so source routing is the faithful simulation model;
/// fault detours are already baked into the route by FTGCR. Under dynamic
/// faults the plan can become invalid mid-flight: the engine then rewrites
/// `route` from the current node (a local re-route), so `hops_taken` and
/// `planned_hops` diverge and their difference is the detour cost.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Unique id (injection order).
    pub id: u64,
    /// Injection cycle.
    pub injected_at: u64,
    /// Position within the route: index of the node currently holding the
    /// packet.
    pub hop_idx: usize,
    /// The current trajectory from its planning point to the destination.
    pub route: Route,
    /// Links actually traversed so far (spans re-routes; bounded by the
    /// TTL).
    pub hops_taken: u64,
    /// Hop count of the route planned at injection.
    pub planned_hops: u64,
    /// Local re-routes performed so far (bounded by the re-route budget).
    pub reroutes: u32,
}

impl Packet {
    /// A freshly injected packet at the start of `route`.
    pub fn new(id: u64, injected_at: u64, route: Route) -> Packet {
        let planned_hops = route.hops() as u64;
        Packet {
            id,
            injected_at,
            hop_idx: 0,
            route,
            hops_taken: 0,
            planned_hops,
            reroutes: 0,
        }
    }

    /// Replace the remaining trajectory (local recovery after discovering
    /// a fault); the packet restarts at the head of the new route.
    pub fn replan(&mut self, route: Route) {
        self.route = route;
        self.hop_idx = 0;
        self.reroutes += 1;
    }

    /// Extra links traversed beyond the injection-time plan.
    #[inline]
    pub fn detour_hops(&self) -> u64 {
        self.hops_taken.saturating_sub(self.planned_hops)
    }

    /// The node currently buffering the packet.
    #[inline]
    pub fn current(&self) -> NodeId {
        self.route.nodes()[self.hop_idx]
    }

    /// The next node on the trajectory, or `None` if at the destination.
    #[inline]
    pub fn next_hop(&self) -> Option<NodeId> {
        self.route.nodes().get(self.hop_idx + 1).copied()
    }

    /// Whether the packet has reached its destination.
    #[inline]
    pub fn arrived(&self) -> bool {
        self.hop_idx + 1 == self.route.nodes().len()
    }

    /// The final destination — stable across replans: a recovery route is
    /// always planned to the same endpoint.
    #[inline]
    pub fn dest(&self) -> NodeId {
        *self
            .route
            .nodes()
            .last()
            .expect("routes hold at least the source")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_progression() {
        let route = Route::new(vec![NodeId(0), NodeId(1), NodeId(3)]);
        let mut p = Packet::new(0, 5, route);
        assert_eq!(p.current(), NodeId(0));
        assert_eq!(p.next_hop(), Some(NodeId(1)));
        assert!(!p.arrived());
        assert_eq!(p.planned_hops, 2);
        p.hop_idx = 2;
        assert_eq!(p.current(), NodeId(3));
        assert_eq!(p.next_hop(), None);
        assert!(p.arrived());
    }

    #[test]
    fn zero_hop_packet_is_arrived() {
        let route = Route::new(vec![NodeId(7)]);
        let p = Packet::new(1, 0, route);
        assert!(p.arrived());
    }

    #[test]
    fn replan_tracks_detour_cost() {
        let mut p = Packet::new(0, 0, Route::new(vec![NodeId(0), NodeId(1), NodeId(3)]));
        p.hop_idx = 1;
        p.hops_taken = 1;
        // Fault discovered at NodeId(1): take the long way round.
        p.replan(Route::new(vec![NodeId(1), NodeId(5), NodeId(7), NodeId(3)]));
        assert_eq!(p.current(), NodeId(1));
        assert_eq!(p.reroutes, 1);
        p.hop_idx = 3;
        p.hops_taken = 4;
        assert!(p.arrived());
        assert_eq!(p.detour_hops(), 2, "4 links walked vs 2 planned");
    }
}
