//! Packets and their in-flight state.

use gcube_routing::Route;
use gcube_topology::NodeId;

/// A unicast packet with its precomputed (source-routed) trajectory.
///
/// The paper's algorithms compute the whole plan at the source (message
/// overhead `O(n)`), so source routing is the faithful simulation model;
/// fault detours are already baked into the route by FTGCR.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Unique id (injection order).
    pub id: u64,
    /// Injection cycle.
    pub injected_at: u64,
    /// Position within the route: index of the node currently holding the
    /// packet.
    pub hop_idx: usize,
    /// The full trajectory, source and destination inclusive.
    pub route: Route,
}

impl Packet {
    /// The node currently buffering the packet.
    #[inline]
    pub fn current(&self) -> NodeId {
        self.route.nodes()[self.hop_idx]
    }

    /// The next node on the trajectory, or `None` if at the destination.
    #[inline]
    pub fn next_hop(&self) -> Option<NodeId> {
        self.route.nodes().get(self.hop_idx + 1).copied()
    }

    /// Whether the packet has reached its destination.
    #[inline]
    pub fn arrived(&self) -> bool {
        self.hop_idx + 1 == self.route.nodes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_progression() {
        let route = Route::new(vec![NodeId(0), NodeId(1), NodeId(3)]);
        let mut p = Packet { id: 0, injected_at: 5, hop_idx: 0, route };
        assert_eq!(p.current(), NodeId(0));
        assert_eq!(p.next_hop(), Some(NodeId(1)));
        assert!(!p.arrived());
        p.hop_idx = 2;
        assert_eq!(p.current(), NodeId(3));
        assert_eq!(p.next_hop(), None);
        assert!(p.arrived());
    }

    #[test]
    fn zero_hop_packet_is_arrived() {
        let route = Route::new(vec![NodeId(7)]);
        let p = Packet { id: 1, injected_at: 0, hop_idx: 0, route };
        assert!(p.arrived());
    }
}
