//! Replay verification: re-execute a recorded run and assert
//! event-for-event equality.
//!
//! The engine is deterministic and fully seeded, so a run's flight
//! record ([`crate::trace`]) is a pure function of the
//! [`SimConfig`](crate::config::SimConfig) and routing algorithm. That
//! makes a recorded trace *checkable*: [`verify_replay`] re-runs the
//! simulation and compares the two streams event by event — through a
//! streaming comparator sink, so the re-executed trace is never
//! materialised (memory stays bounded by the *recorded* trace, however
//! long the replay runs). Any divergence — a non-deterministic data
//! structure, an RNG ordering change, a corrupted trace file — is
//! reported with the index and both versions of the first mismatching
//! event.
//!
//! The JSONL side ([`parse_jsonl`]) is hand-rolled against the fixed flat
//! schema emitted by [`TraceEvent::to_jsonl`] (this workspace vendors no
//! JSON library). It is a strict parser for that schema, not a general
//! JSON reader.

use std::fmt;

use gcube_routing::faults::HealthState;
use gcube_topology::NodeId;

use crate::artifact::{ArtifactKind, ArtifactMeta};
use crate::config::SimConfig;
use crate::engine::Simulator;
use crate::strategy::RoutingAlgorithm;
use crate::trace::{DropCause, TraceEvent, TraceEventKind, TraceSink};

/// Why a replay check failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The re-executed run produced a different event at `index`.
    Mismatch {
        /// Position (0-based) of the first diverging event.
        index: usize,
        /// What the recorded trace says happened.
        recorded: TraceEvent,
        /// What the re-executed run actually did.
        replayed: TraceEvent,
    },
    /// The streams agree on their common prefix but have different
    /// lengths.
    LengthMismatch {
        /// Events in the recorded trace.
        recorded: usize,
        /// Events in the re-executed run.
        replayed: usize,
    },
    /// The simulator refused the configuration.
    Config(String),
    /// A JSONL line could not be parsed (line number is 1-based).
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Mismatch {
                index,
                recorded,
                replayed,
            } => write!(
                f,
                "replay diverged at event {index}: recorded {recorded}, replayed {replayed}"
            ),
            ReplayError::LengthMismatch { recorded, replayed } => write!(
                f,
                "replay event count differs: recorded {recorded}, replayed {replayed}"
            ),
            ReplayError::Config(msg) => write!(f, "replay config rejected: {msg}"),
            ReplayError::Parse { line, message } => {
                write!(f, "trace line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Streaming comparator: checks the re-executed stream against the
/// recorded one as events are emitted, holding only a cursor and the
/// first divergence. The old implementation materialised a second
/// [`MemorySink`](crate::trace::MemorySink) copy of the whole replay;
/// this keeps verification memory bounded by the recorded slice alone.
struct CompareSink<'r> {
    recorded: &'r [TraceEvent],
    /// Events the re-executed run has emitted so far.
    replayed: usize,
    /// First mismatch, latched; later events are only counted.
    divergence: Option<ReplayError>,
}

impl TraceSink for CompareSink<'_> {
    fn record(&mut self, event: &TraceEvent) {
        let index = self.replayed;
        self.replayed += 1;
        if self.divergence.is_some() {
            return;
        }
        if let Some(r) = self.recorded.get(index) {
            if r != event {
                self.divergence = Some(ReplayError::Mismatch {
                    index,
                    recorded: *r,
                    replayed: *event,
                });
            }
        }
        // Replay running past the record is a length mismatch, reported
        // with the full replayed count once the run finishes.
    }
}

/// Re-execute `config` under `algorithm` and check the resulting event
/// stream equals `recorded`, event for event. `Ok(n)` returns the number
/// of matching events.
pub fn verify_replay(
    config: SimConfig,
    algorithm: &dyn RoutingAlgorithm,
    recorded: &[TraceEvent],
) -> Result<usize, ReplayError> {
    let sim =
        Simulator::try_new(config, algorithm).map_err(|e| ReplayError::Config(e.to_string()))?;
    let mut sink = CompareSink {
        recorded,
        replayed: 0,
        divergence: None,
    };
    sim.session().trace(&mut sink).run();
    if let Some(err) = sink.divergence {
        return Err(err);
    }
    if recorded.len() != sink.replayed {
        return Err(ReplayError::LengthMismatch {
            recorded: recorded.len(),
            replayed: sink.replayed,
        });
    }
    Ok(sink.replayed)
}

/// Parse a whole JSONL trace (one event per non-empty line) back into
/// events. Inverse of [`crate::trace::to_jsonl`]. A leading
/// [`ArtifactMeta`] header line is validated and skipped; see
/// [`parse_jsonl_with_meta`] to keep it.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, ReplayError> {
    parse_jsonl_with_meta(text).map(|(_, events)| events)
}

/// Parse a whole JSONL trace, returning the provenance header (if the
/// file has one) alongside the events. A file without a header is a v0
/// artifact and parses to `(None, events)`; a *malformed* or
/// wrong-kind header is an error, as is a header that is not the first
/// non-blank line.
pub fn parse_jsonl_with_meta(
    text: &str,
) -> Result<(Option<ArtifactMeta>, Vec<TraceEvent>), ReplayError> {
    let mut meta = None;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if ArtifactMeta::is_meta_line(line) {
            let parse_err = |message| ReplayError::Parse {
                line: i + 1,
                message,
            };
            if meta.is_some() || !events.is_empty() {
                return Err(parse_err(
                    "meta header must be the first non-blank line".to_string(),
                ));
            }
            let m = ArtifactMeta::parse(line)
                .expect("is_meta_line implies parse returns Some")
                .map_err(parse_err)?;
            if m.kind != ArtifactKind::Trace {
                return Err(ReplayError::Parse {
                    line: i + 1,
                    message: format!("expected a trace artifact, got {}", m.kind),
                });
            }
            meta = Some(m);
            continue;
        }
        events.push(
            parse_jsonl_line(line).map_err(|message| ReplayError::Parse {
                line: i + 1,
                message,
            })?,
        );
    }
    Ok((meta, events))
}

/// Parse one line of the flat trace schema produced by
/// [`TraceEvent::to_jsonl`].
pub fn parse_jsonl_line(line: &str) -> Result<TraceEvent, String> {
    let body = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "not a JSON object".to_string())?;
    let mut cycle = None;
    let mut packet = None;
    let mut node = None;
    let mut event = None;
    let mut dst = None;
    let mut planned_hops = None;
    let mut from = None;
    let mut blocked = None;
    let mut budget_left = None;
    let mut cause = None;
    let mut latency = None;
    let mut hops = None;
    let mut state = None;
    let mut faults = None;
    let mut tree = None;
    let mut switches = None;
    let mut exhausted = None;
    let mut regrafted = None;
    let mut reattached = None;
    let mut lost = None;
    let mut rebuilt = None;
    for field in body.split(',') {
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| format!("malformed field {field:?}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("malformed key in {field:?}"))?;
        let value = value.trim();
        let num = || -> Result<u64, String> {
            value
                .parse::<u64>()
                .map_err(|_| format!("field {key:?}: expected integer, got {value:?}"))
        };
        let text = || -> Result<&str, String> {
            value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("field {key:?}: expected string, got {value:?}"))
        };
        match key {
            "cycle" => cycle = Some(num()?),
            "packet" => packet = Some(num()?),
            "node" => node = Some(NodeId(num()?)),
            "event" => event = Some(text()?.to_string()),
            "dst" => dst = Some(NodeId(num()?)),
            "planned_hops" => planned_hops = Some(num()?),
            "from" => from = Some(NodeId(num()?)),
            "blocked" => blocked = Some(NodeId(num()?)),
            "budget_left" => {
                budget_left = Some(
                    u32::try_from(num()?).map_err(|_| "budget_left out of range".to_string())?,
                )
            }
            "cause" => {
                let t = text()?;
                cause = Some(
                    DropCause::from_str(t).ok_or_else(|| format!("unknown drop cause {t:?}"))?,
                )
            }
            "latency" => latency = Some(num()?),
            "hops" => hops = Some(num()?),
            "state" => {
                let t = text()?;
                state = Some(
                    HealthState::from_str(t)
                        .ok_or_else(|| format!("unknown health state {t:?}"))?,
                )
            }
            "faults" => faults = Some(num()?),
            "tree" => {
                tree = Some(u32::try_from(num()?).map_err(|_| "tree out of range".to_string())?)
            }
            "switches" => {
                switches =
                    Some(u32::try_from(num()?).map_err(|_| "switches out of range".to_string())?)
            }
            "exhausted" => {
                exhausted = Some(match value {
                    "true" => true,
                    "false" => false,
                    other => {
                        return Err(format!("field \"exhausted\": expected bool, got {other:?}"))
                    }
                })
            }
            "regrafted" => regrafted = Some(num()?),
            "reattached" => reattached = Some(num()?),
            "lost" => lost = Some(num()?),
            "rebuilt" => {
                rebuilt = Some(match value {
                    "true" => true,
                    "false" => false,
                    other => {
                        return Err(format!("field \"rebuilt\": expected bool, got {other:?}"))
                    }
                })
            }
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    let missing = |k: &str| format!("missing field {k:?}");
    let kind = match event.as_deref().ok_or_else(|| missing("event"))? {
        "inject" => TraceEventKind::Inject {
            dst: dst.ok_or_else(|| missing("dst"))?,
            planned_hops: planned_hops.ok_or_else(|| missing("planned_hops"))?,
        },
        "hop" => TraceEventKind::Hop {
            from: from.ok_or_else(|| missing("from"))?,
        },
        "stale_view" => TraceEventKind::StaleView {
            blocked: blocked.ok_or_else(|| missing("blocked"))?,
        },
        "reroute" => TraceEventKind::Reroute {
            budget_left: budget_left.ok_or_else(|| missing("budget_left"))?,
        },
        "drop" => TraceEventKind::Drop {
            cause: cause.ok_or_else(|| missing("cause"))?,
        },
        "deliver" => TraceEventKind::Deliver {
            latency: latency.ok_or_else(|| missing("latency"))?,
            hops: hops.ok_or_else(|| missing("hops"))?,
        },
        "health" => TraceEventKind::Health {
            state: state.ok_or_else(|| missing("state"))?,
            faults: faults.ok_or_else(|| missing("faults"))?,
        },
        "tree_switch" => TraceEventKind::TreeSwitch {
            tree: tree.ok_or_else(|| missing("tree"))?,
            switches: switches.ok_or_else(|| missing("switches"))?,
            exhausted: exhausted.ok_or_else(|| missing("exhausted"))?,
        },
        "tree_repair" => TraceEventKind::TreeRepair {
            regrafted: regrafted.ok_or_else(|| missing("regrafted"))?,
            reattached: reattached.ok_or_else(|| missing("reattached"))?,
            lost: lost.ok_or_else(|| missing("lost"))?,
            rebuilt: rebuilt.ok_or_else(|| missing("rebuilt"))?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    };
    Ok(TraceEvent {
        cycle: cycle.ok_or_else(|| missing("cycle"))?,
        packet: packet.ok_or_else(|| missing("packet"))?,
        node: node.ok_or_else(|| missing("node"))?,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::to_jsonl;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 0,
                packet: 0,
                node: NodeId(1),
                kind: TraceEventKind::Inject {
                    dst: NodeId(6),
                    planned_hops: 3,
                },
            },
            TraceEvent {
                cycle: 1,
                packet: 0,
                node: NodeId(3),
                kind: TraceEventKind::Hop { from: NodeId(1) },
            },
            TraceEvent {
                cycle: 2,
                packet: 0,
                node: NodeId(3),
                kind: TraceEventKind::StaleView { blocked: NodeId(2) },
            },
            TraceEvent {
                cycle: 2,
                packet: 0,
                node: NodeId(3),
                kind: TraceEventKind::Reroute { budget_left: 4 },
            },
            TraceEvent {
                cycle: 2,
                packet: 0,
                node: NodeId(3),
                kind: TraceEventKind::TreeSwitch {
                    tree: 1,
                    switches: 1,
                    exhausted: false,
                },
            },
            TraceEvent {
                cycle: 3,
                packet: 2,
                node: NodeId(5),
                kind: TraceEventKind::TreeSwitch {
                    tree: 0,
                    switches: 2,
                    exhausted: true,
                },
            },
            TraceEvent {
                cycle: 6,
                packet: 0,
                node: NodeId(6),
                kind: TraceEventKind::Deliver {
                    latency: 6,
                    hops: 4,
                },
            },
            TraceEvent {
                cycle: 7,
                packet: 1,
                node: NodeId(2),
                kind: TraceEventKind::Drop {
                    cause: DropCause::Stranded,
                },
            },
            TraceEvent {
                cycle: 8,
                packet: crate::trace::NETWORK_EVENT_PACKET,
                node: NodeId(0),
                kind: TraceEventKind::Health {
                    state: HealthState::BoundExceeded,
                    faults: 5,
                },
            },
            TraceEvent {
                cycle: 9,
                packet: crate::trace::NETWORK_EVENT_PACKET,
                node: NodeId(4),
                kind: TraceEventKind::TreeRepair {
                    regrafted: 1,
                    reattached: 6,
                    lost: 0,
                    rebuilt: true,
                },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let events = sample_events();
        let text = to_jsonl(&events);
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"cycle\":1}").is_err());
        assert!(parse_jsonl("{\"cycle\":1,\"packet\":0,\"node\":2,\"event\":\"warp\"}").is_err());
        assert!(parse_jsonl(
            "{\"cycle\":1,\"packet\":0,\"node\":2,\"event\":\"drop\",\"cause\":\"x\"}"
        )
        .is_err());
        assert!(
            parse_jsonl(
                "{\"cycle\":1,\"packet\":0,\"node\":2,\"event\":\"tree_switch\",\
                 \"tree\":1,\"switches\":0,\"exhausted\":\"maybe\"}"
            )
            .is_err(),
            "exhausted must be an unquoted bool"
        );
        assert!(
            parse_jsonl(
                "{\"cycle\":1,\"packet\":0,\"node\":2,\"event\":\"tree_repair\",\
                 \"regrafted\":1,\"reattached\":3,\"lost\":0,\"rebuilt\":\"no\"}"
            )
            .is_err(),
            "rebuilt must be an unquoted bool"
        );
        assert!(
            parse_jsonl(
                "{\"cycle\":1,\"packet\":0,\"node\":2,\"event\":\"tree_repair\",\
                 \"regrafted\":1,\"reattached\":3,\"rebuilt\":false}"
            )
            .is_err(),
            "tree_repair requires the lost field"
        );
        // Error carries the 1-based line number.
        let err = parse_jsonl(
            "{\"cycle\":0,\"packet\":0,\"node\":0,\"event\":\"hop\",\"from\":1}\nbroken",
        )
        .unwrap_err();
        match err {
            ReplayError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn meta_header_is_validated_and_optional() {
        use crate::artifact::ARTIFACT_FORMAT;
        let events = sample_events();
        let meta = ArtifactMeta {
            kind: ArtifactKind::Trace,
            format: ARTIFACT_FORMAT,
            n: 6,
            modulus: 2,
            seed: 42,
            threads: 4,
            strategy: "ftgcr".to_string(),
        };
        let mut text = meta.to_jsonl_line();
        text.push('\n');
        text.push_str(&to_jsonl(&events));

        // Stamped file: both entry points parse, meta comes back.
        assert_eq!(parse_jsonl(&text).unwrap(), events);
        let (m, ev) = parse_jsonl_with_meta(&text).unwrap();
        assert_eq!(m.as_ref(), Some(&meta));
        assert_eq!(ev, events);

        // Unstamped file is v0: meta is None.
        let (m, ev) = parse_jsonl_with_meta(&to_jsonl(&events)).unwrap();
        assert!(m.is_none());
        assert_eq!(ev, events);

        // Wrong-kind header is rejected.
        let mut telem = meta.clone();
        telem.kind = ArtifactKind::Telemetry;
        let bad = format!("{}\n{}", telem.to_jsonl_line(), to_jsonl(&events));
        assert!(parse_jsonl_with_meta(&bad).is_err());

        // A header after the first event is rejected with its line.
        let late = format!("{}{}", to_jsonl(&events), meta.to_jsonl_line());
        match parse_jsonl_with_meta(&late).unwrap_err() {
            ReplayError::Parse { line, message } => {
                assert_eq!(line, events.len() + 1);
                assert!(message.contains("first non-blank line"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }

        // A malformed header is an error, not silently treated as v0.
        let broken = format!("{{\"meta\":\"trace\"}}\n{}", to_jsonl(&events));
        assert!(parse_jsonl_with_meta(&broken).is_err());
    }

    #[test]
    fn parse_skips_blank_lines() {
        let events = sample_events();
        let mut text = String::from("\n");
        text.push_str(&to_jsonl(&events));
        text.push('\n');
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }
}
