//! Per-packet flight recorder: the simulator's observability layer.
//!
//! Every packet's life is a short story — injected, forwarded hop by hop,
//! possibly exposed to a stale routing view and re-planned, finally
//! delivered or dropped with a cause. The engine narrates that story as a
//! stream of [`TraceEvent`]s into a [`TraceSink`]. Aggregate counters
//! ([`crate::metrics::Metrics`]) answer "how much"; the trace answers
//! "which packet, where, when, why" — the evidence layer behind the
//! paper-figure numbers.
//!
//! # Zero cost when off
//!
//! The engine is generic over its sink, and [`NullSink`] reports
//! [`TraceSink::enabled`]` == false` as a compile-time-foldable constant:
//! with tracing off, every event construction is dead code and the
//! allocation-free hot path is byte-for-byte the untraced engine. The
//! `tracing_overhead` measurement in `bench_trajectory` guards this.
//!
//! # Determinism
//!
//! The engine is seeded and lockstep-synchronised, so the event stream is
//! a pure function of [`crate::config::SimConfig`] and the routing
//! algorithm — for *any* thread count: the sharded engine merges
//! per-shard events back into the exact sequential order before they
//! reach the sink. [`crate::replay`] re-executes a recorded run and
//! asserts event-for-event equality — a standing determinism check.

use std::fmt;
use std::io::{self, Write};

use gcube_routing::faults::HealthState;
use gcube_topology::NodeId;

/// Packet id used for network-scoped events ([`TraceEventKind::Health`])
/// that are not about any one packet.
pub const NETWORK_EVENT_PACKET: u64 = u64::MAX;

/// Why a packet was removed from the network without being delivered.
///
/// The drop-cause taxonomy (see `DESIGN.md` §9): every dropped packet has
/// exactly one cause, and the per-cause counters in
/// [`crate::metrics::Metrics`] partition `dropped`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropCause {
    /// The node buffering the packet failed.
    Stranded,
    /// No recovery route existed, or the re-route budget ran out.
    Unrecoverable,
    /// The per-packet hop budget ran out.
    TtlExpired,
}

impl DropCause {
    /// Stable lower-snake name used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            DropCause::Stranded => "stranded",
            DropCause::Unrecoverable => "unrecoverable",
            DropCause::TtlExpired => "ttl_expired",
        }
    }

    /// Inverse of [`DropCause::as_str`]. Not the std `FromStr` trait —
    /// that returns `Result`, and an `Option` reads better at the single
    /// JSONL-parsing call site.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<DropCause> {
        match s {
            "stranded" => Some(DropCause::Stranded),
            "unrecoverable" => Some(DropCause::Unrecoverable),
            "ttl_expired" => Some(DropCause::TtlExpired),
            _ => None,
        }
    }
}

/// What happened to a packet at one point of its flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The packet entered the network at `node` bound for `dst` with a
    /// `planned_hops`-link route.
    Inject {
        /// Destination.
        dst: NodeId,
        /// Length of the injection-time plan, in links.
        planned_hops: u64,
    },
    /// The packet moved over one link onto `node` (coming `from`).
    Hop {
        /// The node it departed.
        from: NodeId,
    },
    /// The packet's planned next hop (`blocked`) proved dead in the ground
    /// truth: the plan was made against a stale (or since-invalidated)
    /// view. Always followed, same cycle, by a `Reroute` or a `Drop`.
    StaleView {
        /// The dead next hop the packet could not take.
        blocked: NodeId,
    },
    /// The packet was re-planned in place at `node`.
    Reroute {
        /// Re-route budget remaining after this re-plan.
        budget_left: u32,
    },
    /// The packet was removed undelivered.
    Drop {
        /// Why (see the taxonomy on [`DropCause`]).
        cause: DropCause,
    },
    /// The packet reached its destination.
    Deliver {
        /// Cycles from injection to delivery.
        latency: u64,
        /// Links actually traversed (detours included).
        hops: u64,
    },
    /// The network's Theorem-3 health classification changed. This is a
    /// network-scoped event: `packet` is [`NETWORK_EVENT_PACKET`] and
    /// `node` is `NodeId(0)`. Emitted by the fault-budget monitor whenever
    /// the live fault set crosses a health boundary, so replay
    /// verification covers health transitions too.
    Health {
        /// The state entered.
        state: HealthState,
        /// Live faulty components (nodes + links) at the transition.
        faults: u64,
    },
    /// A multitree plan did not get its first-choice spanning tree:
    /// `switches` trees were rejected for faults before tree `tree`
    /// carried the plan — or, when `exhausted`, the whole bundle was
    /// blocked and the plan came from the FTGCR fallback. Emitted right
    /// after the `Inject` or `Reroute` event whose plan it describes;
    /// first-choice plans emit nothing.
    TreeSwitch {
        /// The tree that carried the plan (start tree when `exhausted`).
        tree: u32,
        /// Trees tried and rejected before this plan.
        switches: u32,
        /// All trees were blocked; the plan is an FTGCR fallback.
        exhausted: bool,
    },
    /// The collective broadcast tree for one root class changed shape in
    /// response to a fault generation bump: orphaned subtrees were
    /// re-grafted onto healthy attachment points (or, when `rebuilt`, the
    /// whole tree was reconstructed from scratch). A network-scoped event
    /// like [`TraceEventKind::Health`]: `packet` is
    /// [`NETWORK_EVENT_PACKET`] and `node` is the tree's root. Emitted
    /// once per repair, before the operation's `Inject` events.
    TreeRepair {
        /// Orphaned subtrees reattached in place.
        regrafted: u64,
        /// Nodes those subtrees carried back into coverage.
        reattached: u64,
        /// Healthy nodes the repair could not reconnect to the root.
        lost: u64,
        /// The tree was rebuilt from scratch instead of patched.
        rebuilt: bool,
    },
}

/// One flight-recorder event: a packet did something at a node on a cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event took effect.
    pub cycle: u64,
    /// Packet id (injection order, unique within a run).
    pub packet: u64,
    /// Node where the event happened (for `Hop`: the node arrived at).
    pub node: NodeId,
    /// What happened.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Render as one JSONL line (no trailing newline). The schema is flat
    /// and fixed-order so [`crate::replay::parse_jsonl_line`] can read it
    /// back without a JSON library.
    pub fn to_jsonl(&self) -> String {
        let head = format!(
            "{{\"cycle\":{},\"packet\":{},\"node\":{}",
            self.cycle, self.packet, self.node.0
        );
        let tail = match self.kind {
            TraceEventKind::Inject { dst, planned_hops } => {
                format!(
                    ",\"event\":\"inject\",\"dst\":{},\"planned_hops\":{planned_hops}}}",
                    dst.0
                )
            }
            TraceEventKind::Hop { from } => {
                format!(",\"event\":\"hop\",\"from\":{}}}", from.0)
            }
            TraceEventKind::StaleView { blocked } => {
                format!(",\"event\":\"stale_view\",\"blocked\":{}}}", blocked.0)
            }
            TraceEventKind::Reroute { budget_left } => {
                format!(",\"event\":\"reroute\",\"budget_left\":{budget_left}}}")
            }
            TraceEventKind::Drop { cause } => {
                format!(",\"event\":\"drop\",\"cause\":\"{}\"}}", cause.as_str())
            }
            TraceEventKind::Deliver { latency, hops } => {
                format!(",\"event\":\"deliver\",\"latency\":{latency},\"hops\":{hops}}}")
            }
            TraceEventKind::Health { state, faults } => {
                format!(
                    ",\"event\":\"health\",\"state\":\"{}\",\"faults\":{faults}}}",
                    state.as_str()
                )
            }
            TraceEventKind::TreeSwitch {
                tree,
                switches,
                exhausted,
            } => {
                format!(
                    ",\"event\":\"tree_switch\",\"tree\":{tree},\"switches\":{switches},\"exhausted\":{exhausted}}}"
                )
            }
            TraceEventKind::TreeRepair {
                regrafted,
                reattached,
                lost,
                rebuilt,
            } => {
                format!(
                    ",\"event\":\"tree_repair\",\"regrafted\":{regrafted},\"reattached\":{reattached},\"lost\":{lost},\"rebuilt\":{rebuilt}}}"
                )
            }
        };
        head + &tail
    }
}

/// Consumer of the engine's event stream.
///
/// The engine monomorphises over the sink, and guards every event
/// construction with [`TraceSink::enabled`], so a sink whose `enabled`
/// is a constant `false` costs nothing — not even the event struct.
pub trait TraceSink {
    /// Whether events should be generated at all. The engine checks this
    /// before *constructing* each event, so return `false` from a
    /// constant implementation to compile tracing out entirely.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event. Called in deterministic engine order.
    fn record(&mut self, event: &TraceEvent);
}

/// Mutable references are sinks too: this is what lets
/// [`crate::SimSession::trace`] borrow a caller-owned sink (`&mut sink`)
/// while the session stores its sink by value.
impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn record(&mut self, event: &TraceEvent) {
        (**self).record(event)
    }
}

/// The tracing-off sink: `enabled()` is a constant `false`, so the
/// monomorphised engine contains no tracing code at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
    #[inline]
    fn record(&mut self, _event: &TraceEvent) {}
}

/// In-memory sink: keeps the whole flight record for replay verification
/// and post-run analysis.
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty recorder.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consume the sink, yielding its events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Drop every event after the first `len` — rewinding the record to a
    /// checkpoint's trace mark, so a restored run appends its re-executed
    /// suffix onto exactly the prefix it branched from. No-op when the
    /// sink already holds `len` events or fewer.
    pub fn truncate(&mut self, len: usize) {
        self.events.truncate(len);
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }
}

/// Streaming JSONL sink: writes one line per event into any [`Write`].
///
/// I/O errors are latched (the first one wins) instead of panicking
/// mid-simulation; check [`JsonlSink::finish`] after the run.
pub struct JsonlSink<W: Write> {
    out: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer (use a `BufWriter` for files).
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            out,
            written: 0,
            error: None,
        }
    }

    /// Wrap a writer and stamp the artifact's provenance header
    /// ([`crate::artifact::ArtifactMeta`]) as the first line. A write
    /// failure is latched like any event write; the header does not
    /// count toward [`JsonlSink::written`].
    pub fn with_meta(out: W, meta: &crate::artifact::ArtifactMeta) -> JsonlSink<W> {
        let mut sink = JsonlSink::new(out);
        if let Err(e) = writeln!(sink.out, "{}", meta.to_jsonl_line()) {
            sink.error = Some(e);
        }
        sink
    }

    /// Events successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The latched I/O error, if any write has failed. Lets callers abort
    /// a doomed run early instead of discovering the failure at
    /// [`JsonlSink::finish`].
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flush and surface any latched I/O error.
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.written)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        match writeln!(self.out, "{}", event.to_jsonl()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Serialise a recorded trace as a JSONL string (one event per line).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    out
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 3,
                packet: 0,
                node: NodeId(5),
                kind: TraceEventKind::Inject {
                    dst: NodeId(9),
                    planned_hops: 4,
                },
            },
            TraceEvent {
                cycle: 4,
                packet: 0,
                node: NodeId(7),
                kind: TraceEventKind::Hop { from: NodeId(5) },
            },
            TraceEvent {
                cycle: 5,
                packet: 0,
                node: NodeId(7),
                kind: TraceEventKind::StaleView { blocked: NodeId(6) },
            },
            TraceEvent {
                cycle: 5,
                packet: 0,
                node: NodeId(7),
                kind: TraceEventKind::Reroute { budget_left: 7 },
            },
            TraceEvent {
                cycle: 5,
                packet: 0,
                node: NodeId(7),
                kind: TraceEventKind::TreeSwitch {
                    tree: 1,
                    switches: 1,
                    exhausted: false,
                },
            },
            TraceEvent {
                cycle: 9,
                packet: 0,
                node: NodeId(9),
                kind: TraceEventKind::Deliver {
                    latency: 6,
                    hops: 5,
                },
            },
            TraceEvent {
                cycle: 11,
                packet: 1,
                node: NodeId(2),
                kind: TraceEventKind::Drop {
                    cause: DropCause::TtlExpired,
                },
            },
            TraceEvent {
                cycle: 12,
                packet: NETWORK_EVENT_PACKET,
                node: NodeId(0),
                kind: TraceEventKind::Health {
                    state: HealthState::Degraded,
                    faults: 2,
                },
            },
            TraceEvent {
                cycle: 13,
                packet: NETWORK_EVENT_PACKET,
                node: NodeId(3),
                kind: TraceEventKind::TreeRepair {
                    regrafted: 2,
                    reattached: 9,
                    lost: 1,
                    rebuilt: false,
                },
            },
        ]
    }

    #[test]
    fn jsonl_lines_are_flat_json() {
        for e in sample_events() {
            let line = e.to_jsonl();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"cycle\":"), "{line}");
            assert!(line.contains("\"event\":\""), "{line}");
            assert!(!line.contains('\n'));
        }
    }

    #[test]
    fn memory_sink_records_in_order() {
        let mut sink = MemorySink::new();
        for e in sample_events() {
            sink.record(&e);
        }
        assert_eq!(sink.events(), sample_events().as_slice());
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        assert!(MemorySink::new().enabled());
    }

    #[test]
    fn jsonl_sink_streams_and_counts() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf);
            for e in sample_events() {
                sink.record(&e);
            }
            assert_eq!(sink.finish().unwrap(), 9);
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 9);
        assert_eq!(text, to_jsonl(&sample_events()));
    }

    /// A writer that fails after `ok` successful writes — a stand-in for
    /// a disk filling up mid-run.
    struct FailAfter {
        ok: usize,
    }

    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.ok == 0 {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"));
            }
            self.ok -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_latches_io_errors_and_surfaces_them() {
        let mut sink = JsonlSink::new(FailAfter { ok: 2 });
        for e in sample_events() {
            sink.record(&e); // must not panic once the writer dies
        }
        // writeln! may split a line across write calls, so only bound it.
        assert!(sink.written() >= 1 && sink.written() < 9);
        let err = sink.error().expect("error latched");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        let err = sink.finish().expect_err("finish surfaces the error");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn drop_cause_names_round_trip() {
        for c in [
            DropCause::Stranded,
            DropCause::Unrecoverable,
            DropCause::TtlExpired,
        ] {
            assert_eq!(DropCause::from_str(c.as_str()), Some(c));
        }
        assert_eq!(DropCause::from_str("gremlins"), None);
    }
}
