//! Dynamic fault injection: timed fault *events* that mutate the network
//! while packets are in flight.
//!
//! The seed simulator froze its [`FaultSet`] at construction, so the
//! fault-tolerant strategies were never exercised against a failure they
//! had not already been told about. This module produces a deterministic,
//! seeded stream of fault events — permanent, transient (auto-repair after
//! a fixed number of cycles) and intermittent (periodic down/up) node and
//! link faults — either from per-cycle Bernoulli arrivals or an explicit
//! scripted timeline. Placement can target the paper's A/B/C fault
//! taxonomy via [`CategoryMix`], using
//! [`gcube_routing::faults::link_category`] /
//! [`gcube_routing::faults::node_category`].
//!
//! Determinism: the injector owns its own RNG (independent of the traffic
//! stream), pending events are kept in a `BTreeMap` keyed by cycle, and
//! the applied-event trace is recorded in order — the same seed and
//! schedule always reproduce the same trace bit for bit.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gcube_routing::faults::{link_category, node_category, FaultCategory};
use gcube_routing::FaultSet;
use gcube_topology::{GaussianCube, LinkId, NodeId, Topology};

/// The component a fault event acts on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// A node (all incident links die with it — assumption 3).
    Node(NodeId),
    /// A single link.
    Link(LinkId),
}

/// Fail or repair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// The component goes down.
    Fail,
    /// The component comes back up.
    Repair,
}

/// One applied fault event, as recorded in the run's trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the event took effect.
    pub cycle: u64,
    /// What happened.
    pub action: FaultAction,
    /// To which component.
    pub target: FaultTarget,
}

/// Persistence class of an injected fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Down forever.
    Permanent,
    /// Auto-repairs `repair_after` cycles after failing.
    Transient {
        /// Cycles between the failure and its repair.
        repair_after: u64,
    },
    /// Repeats: down for `down_for` cycles, then healthy until the next
    /// period boundary, forever.
    Intermittent {
        /// Cycles spent down each period.
        down_for: u64,
        /// Cycles from one failure to the next (must exceed `down_for`).
        period: u64,
    },
}

/// Relative weights for placing random faults across the paper's A/B/C
/// categories (Definitions 3–5). Weights are normalised over the
/// categories that actually have candidates in the topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CategoryMix {
    /// A-category: link faults in dimensions `≥ α`.
    pub a: f64,
    /// B-category: link faults in dimensions `< α`, or node faults with no
    /// high-dimension link.
    pub b: f64,
    /// C-category: node faults breaking links on both sides of `α`.
    pub c: f64,
}

impl Default for CategoryMix {
    fn default() -> CategoryMix {
        CategoryMix {
            a: 1.0,
            b: 1.0,
            c: 1.0,
        }
    }
}

/// One scripted fault: a component that fails at a given cycle with a
/// given persistence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedFault {
    /// Failure cycle.
    pub cycle: u64,
    /// Component to fail.
    pub target: FaultTarget,
    /// Persistence (drives any auto-repair / re-failure events).
    pub kind: FaultKind,
}

/// Where the fault events of a run come from.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum FaultSchedule {
    /// No dynamic faults — the seed engine's behaviour.
    #[default]
    None,
    /// An explicit timeline of failures.
    Scripted(Vec<TimedFault>),
    /// Per-cycle Bernoulli arrivals: each cycle one new fault arrives with
    /// probability `rate`, placed by category mix, affecting a node with
    /// probability `node_fraction` (otherwise a link).
    Bernoulli {
        /// Per-cycle arrival probability of one new fault.
        rate: f64,
        /// Persistence of the arriving faults.
        kind: FaultKind,
        /// A/B/C placement weights.
        mix: CategoryMix,
        /// Probability an arrival hits a node rather than a link.
        node_fraction: f64,
    },
}

impl FaultSchedule {
    /// Whether the schedule can emit any event at all.
    pub fn is_none(&self) -> bool {
        matches!(self, FaultSchedule::None)
            || matches!(self, FaultSchedule::Scripted(v) if v.is_empty())
    }
}

/// Pending operation: what to do to a target when its cycle comes up.
/// `pub(crate)` so the checkpoint codec can serialize the injector's
/// future exactly (auto-repairs and re-failures already scheduled).
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingOp {
    pub(crate) action: FaultAction,
    pub(crate) target: FaultTarget,
    pub(crate) kind: FaultKind,
}

/// Deterministic engine-side driver of a [`FaultSchedule`].
///
/// Call [`FaultInjector::step`] once per cycle *before* routing; it
/// mutates the ground-truth [`FaultSet`] and returns the events applied
/// this cycle (also appended to [`FaultInjector::trace`]).
pub struct FaultInjector {
    rng: StdRng,
    schedule: FaultSchedule,
    pending: BTreeMap<u64, Vec<PendingOp>>,
    trace: Vec<FaultEvent>,
    // Candidate pools for category-aware random placement.
    links_a: Vec<LinkId>,
    links_b: Vec<LinkId>,
    nodes_b: Vec<NodeId>,
    nodes_c: Vec<NodeId>,
    /// Never fail a node if it would leave fewer than this many healthy.
    min_healthy_nodes: u64,
}

impl FaultInjector {
    /// Build an injector for one cube. `seed` controls only the Bernoulli
    /// placement stream; scripted schedules are RNG-free.
    pub fn new(gc: &GaussianCube, schedule: FaultSchedule, seed: u64) -> FaultInjector {
        let mut pending: BTreeMap<u64, Vec<PendingOp>> = BTreeMap::new();
        if let FaultSchedule::Scripted(faults) = &schedule {
            for f in faults {
                pending.entry(f.cycle).or_default().push(PendingOp {
                    action: FaultAction::Fail,
                    target: f.target,
                    kind: f.kind,
                });
            }
        }
        let (mut links_a, mut links_b) = (Vec::new(), Vec::new());
        for l in gc.links() {
            match link_category(gc, l) {
                FaultCategory::A => links_a.push(l),
                _ => links_b.push(l),
            }
        }
        let (mut nodes_b, mut nodes_c) = (Vec::new(), Vec::new());
        for v in 0..gc.num_nodes() {
            match node_category(gc, NodeId(v)) {
                FaultCategory::C => nodes_c.push(NodeId(v)),
                _ => nodes_b.push(NodeId(v)),
            }
        }
        FaultInjector {
            rng: StdRng::seed_from_u64(seed ^ 0xc4u64.rotate_left(56)),
            schedule,
            pending,
            trace: Vec::new(),
            links_a,
            links_b,
            nodes_b,
            nodes_c,
            min_healthy_nodes: 2,
        }
    }

    /// The events applied so far, in application order.
    pub fn trace(&self) -> &[FaultEvent] {
        &self.trace
    }

    /// Checkpoint view: the raw RNG state of the Bernoulli stream.
    pub(crate) fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Checkpoint view: every scheduled-but-unapplied operation, keyed by
    /// its due cycle.
    pub(crate) fn pending(&self) -> &BTreeMap<u64, Vec<PendingOp>> {
        &self.pending
    }

    /// Overwrite the injector's mutable state from a checkpoint. The
    /// candidate pools and the schedule are derived from the cube and
    /// config (rebuilt by [`FaultInjector::new`]); only the stream
    /// position, the scheduled future, and the applied history move.
    pub(crate) fn restore(
        &mut self,
        rng: [u64; 4],
        pending: BTreeMap<u64, Vec<PendingOp>>,
        trace: Vec<FaultEvent>,
    ) {
        self.rng = StdRng::from_state(rng);
        self.pending = pending;
        self.trace = trace;
    }

    /// Advance to `cycle`: draw any Bernoulli arrival, apply every due
    /// pending operation to `truth`, and return how many events changed
    /// the fault set this cycle.
    pub fn step(&mut self, cycle: u64, truth: &mut FaultSet) -> usize {
        if let FaultSchedule::Bernoulli {
            rate,
            kind,
            mix,
            node_fraction,
        } = self.schedule
        {
            if self.rng.gen_bool(rate.clamp(0.0, 1.0)) {
                if let Some(target) = self.draw_target(mix, node_fraction, truth) {
                    self.pending.entry(cycle).or_default().push(PendingOp {
                        action: FaultAction::Fail,
                        target,
                        kind,
                    });
                }
            }
        }
        let Some(ops) = self.pending.remove(&cycle) else {
            return 0;
        };
        let mut applied = 0;
        for op in ops {
            if self.apply(cycle, op, truth) {
                applied += 1;
            }
        }
        applied
    }

    /// Apply one operation; returns whether the fault set changed.
    fn apply(&mut self, cycle: u64, op: PendingOp, truth: &mut FaultSet) -> bool {
        let changed = match (op.action, op.target) {
            (FaultAction::Fail, FaultTarget::Node(v)) => {
                if truth.is_node_faulty(v) || !self.node_budget_ok(truth) {
                    false
                } else {
                    truth.add_node(v);
                    true
                }
            }
            (FaultAction::Fail, FaultTarget::Link(l)) => {
                if truth.is_link_faulty(l) {
                    false
                } else {
                    truth.add_link(l);
                    true
                }
            }
            (FaultAction::Repair, FaultTarget::Node(v)) => truth.remove_node(v),
            (FaultAction::Repair, FaultTarget::Link(l)) => truth.remove_link(l),
        };
        if !changed {
            return false;
        }
        self.trace.push(FaultEvent {
            cycle,
            action: op.action,
            target: op.target,
        });
        // Schedule the follow-up the persistence class implies.
        match (op.action, op.kind) {
            (FaultAction::Fail, FaultKind::Transient { repair_after }) => {
                self.schedule_op(
                    cycle + repair_after.max(1),
                    PendingOp {
                        action: FaultAction::Repair,
                        ..op
                    },
                );
            }
            (FaultAction::Fail, FaultKind::Intermittent { down_for, period }) => {
                let down = down_for.max(1);
                self.schedule_op(
                    cycle + down,
                    PendingOp {
                        action: FaultAction::Repair,
                        ..op
                    },
                );
                self.schedule_op(
                    cycle + period.max(down + 1),
                    PendingOp {
                        action: FaultAction::Fail,
                        ..op
                    },
                );
            }
            _ => {}
        }
        true
    }

    fn schedule_op(&mut self, cycle: u64, op: PendingOp) {
        self.pending.entry(cycle).or_default().push(op);
    }

    /// Whether another node may fail without dropping below the healthy
    /// floor (the simulator needs at least a source/destination pair).
    fn node_budget_ok(&self, truth: &FaultSet) -> bool {
        let total = (self.nodes_b.len() + self.nodes_c.len()) as u64;
        total - truth.faulty_nodes().count() as u64 > self.min_healthy_nodes
    }

    /// Draw a currently-healthy target according to the category mix.
    fn draw_target(
        &mut self,
        mix: CategoryMix,
        node_fraction: f64,
        truth: &FaultSet,
    ) -> Option<FaultTarget> {
        // Split B weight across its node and link candidates using the
        // caller's node fraction; A is links-only, C nodes-only.
        let nf = node_fraction.clamp(0.0, 1.0);
        let pools: [(f64, PoolId); 4] = [
            (mix.a.max(0.0) * (1.0 - nf).max(0.05), PoolId::LinksA),
            (mix.b.max(0.0) * (1.0 - nf).max(0.05), PoolId::LinksB),
            (mix.b.max(0.0) * nf.max(0.05), PoolId::NodesB),
            (mix.c.max(0.0) * nf.max(0.05), PoolId::NodesC),
        ];
        let usable: Vec<(f64, PoolId)> = pools
            .into_iter()
            .filter(|&(w, p)| w > 0.0 && !self.pool_is_empty(p))
            .collect();
        let total: f64 = usable.iter().map(|(w, _)| w).sum();
        if total <= 0.0 {
            return None;
        }
        let mut pick = self.rng.gen_range(0.0..total);
        let mut chosen = usable.last()?.1;
        for (w, p) in &usable {
            if pick < *w {
                chosen = *p;
                break;
            }
            pick -= w;
        }
        self.draw_from_pool(chosen, truth)
    }

    fn pool_is_empty(&self, p: PoolId) -> bool {
        match p {
            PoolId::LinksA => self.links_a.is_empty(),
            PoolId::LinksB => self.links_b.is_empty(),
            PoolId::NodesB => self.nodes_b.is_empty(),
            PoolId::NodesC => self.nodes_c.is_empty(),
        }
    }

    /// Uniform draw of a healthy candidate from one pool: bounded random
    /// probes, then a seeded-offset scan (no low-index bias).
    fn draw_from_pool(&mut self, p: PoolId, truth: &FaultSet) -> Option<FaultTarget> {
        let healthy_node = |v: &NodeId, t: &FaultSet| !t.is_node_faulty(*v);
        let healthy_link = |l: &LinkId, t: &FaultSet| !t.is_link_faulty(*l);
        match p {
            PoolId::NodesB | PoolId::NodesC => {
                if !self.node_budget_ok(truth) {
                    return None;
                }
                let pool: &[NodeId] = if p == PoolId::NodesB {
                    &self.nodes_b
                } else {
                    &self.nodes_c
                };
                pick_healthy(&mut self.rng, pool, truth, healthy_node).map(FaultTarget::Node)
            }
            PoolId::LinksA | PoolId::LinksB => {
                let pool: &[LinkId] = if p == PoolId::LinksA {
                    &self.links_a
                } else {
                    &self.links_b
                };
                pick_healthy(&mut self.rng, pool, truth, healthy_link).map(FaultTarget::Link)
            }
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PoolId {
    LinksA,
    LinksB,
    NodesB,
    NodesC,
}

/// Uniform pick of an element satisfying `ok`: up to 32 random probes,
/// then a scan from a random offset so dense fault sets carry no
/// positional bias.
fn pick_healthy<T: Copy>(
    rng: &mut StdRng,
    pool: &[T],
    truth: &FaultSet,
    ok: impl Fn(&T, &FaultSet) -> bool,
) -> Option<T> {
    if pool.is_empty() {
        return None;
    }
    for _ in 0..32 {
        let cand = pool[rng.gen_range(0..pool.len())];
        if ok(&cand, truth) {
            return Some(cand);
        }
    }
    let start = rng.gen_range(0..pool.len());
    (0..pool.len())
        .map(|i| pool[(start + i) % pool.len()])
        .find(|cand| ok(cand, truth))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gc() -> GaussianCube {
        GaussianCube::new(8, 4).unwrap()
    }

    fn run_trace(schedule: FaultSchedule, seed: u64, cycles: u64) -> (Vec<FaultEvent>, FaultSet) {
        let g = gc();
        let mut inj = FaultInjector::new(&g, schedule, seed);
        let mut truth = FaultSet::new();
        for c in 0..cycles {
            inj.step(c, &mut truth);
        }
        (inj.trace().to_vec(), truth)
    }

    #[test]
    fn scripted_timeline_applies_in_order() {
        let v = NodeId(5);
        let l = LinkId::new(NodeId(0), 4);
        let schedule = FaultSchedule::Scripted(vec![
            TimedFault {
                cycle: 10,
                target: FaultTarget::Node(v),
                kind: FaultKind::Permanent,
            },
            TimedFault {
                cycle: 20,
                target: FaultTarget::Link(l),
                kind: FaultKind::Transient { repair_after: 5 },
            },
        ]);
        let (trace, truth) = run_trace(schedule, 0, 100);
        assert_eq!(
            trace,
            vec![
                FaultEvent {
                    cycle: 10,
                    action: FaultAction::Fail,
                    target: FaultTarget::Node(v)
                },
                FaultEvent {
                    cycle: 20,
                    action: FaultAction::Fail,
                    target: FaultTarget::Link(l)
                },
                FaultEvent {
                    cycle: 25,
                    action: FaultAction::Repair,
                    target: FaultTarget::Link(l)
                },
            ]
        );
        assert!(truth.is_node_faulty(v), "permanent fault persists");
        assert!(!truth.is_link_faulty(l), "transient fault repaired");
    }

    #[test]
    fn intermittent_fault_cycles_down_and_up() {
        let l = LinkId::new(NodeId(0), 4);
        let schedule = FaultSchedule::Scripted(vec![TimedFault {
            cycle: 0,
            target: FaultTarget::Link(l),
            kind: FaultKind::Intermittent {
                down_for: 3,
                period: 10,
            },
        }]);
        let (trace, _) = run_trace(schedule, 0, 35);
        let fails: Vec<u64> = trace
            .iter()
            .filter(|e| e.action == FaultAction::Fail)
            .map(|e| e.cycle)
            .collect();
        let repairs: Vec<u64> = trace
            .iter()
            .filter(|e| e.action == FaultAction::Repair)
            .map(|e| e.cycle)
            .collect();
        assert_eq!(fails, vec![0, 10, 20, 30]);
        assert_eq!(repairs, vec![3, 13, 23, 33]);
    }

    #[test]
    fn bernoulli_trace_is_deterministic_in_seed() {
        let schedule = FaultSchedule::Bernoulli {
            rate: 0.05,
            kind: FaultKind::Transient { repair_after: 40 },
            mix: CategoryMix::default(),
            node_fraction: 0.5,
        };
        let (t1, f1) = run_trace(schedule.clone(), 7, 2_000);
        let (t2, f2) = run_trace(schedule.clone(), 7, 2_000);
        let (t3, _) = run_trace(schedule, 8, 2_000);
        assert!(!t1.is_empty(), "rate 0.05 over 2000 cycles must fire");
        assert_eq!(t1, t2, "same seed ⇒ identical event trace");
        assert_eq!(f1, f2, "same seed ⇒ identical final fault set");
        assert_ne!(t1, t3, "different seed ⇒ different trace");
    }

    #[test]
    fn category_mix_respects_pure_a() {
        let g = gc();
        let schedule = FaultSchedule::Bernoulli {
            rate: 0.2,
            kind: FaultKind::Permanent,
            mix: CategoryMix {
                a: 1.0,
                b: 0.0,
                c: 0.0,
            },
            node_fraction: 0.0,
        };
        let (trace, _) = run_trace(schedule, 3, 500);
        assert!(!trace.is_empty());
        for e in &trace {
            match e.target {
                FaultTarget::Link(l) => {
                    assert_eq!(
                        link_category(&g, l),
                        FaultCategory::A,
                        "pure-A mix placed {l}"
                    );
                }
                FaultTarget::Node(v) => panic!("pure-A link mix placed a node fault at {v}"),
            }
        }
    }

    #[test]
    fn node_floor_is_respected_under_saturation() {
        let schedule = FaultSchedule::Bernoulli {
            rate: 1.0,
            kind: FaultKind::Permanent,
            mix: CategoryMix {
                a: 0.0,
                b: 1.0,
                c: 1.0,
            },
            node_fraction: 1.0,
        };
        let (_, truth) = run_trace(schedule, 1, 5_000);
        let g = gc();
        let healthy = g.num_nodes() - truth.faulty_nodes().count() as u64;
        assert!(
            healthy >= 2,
            "at least a source/destination pair must survive"
        );
    }
}
