//! Live network telemetry: per-cycle time series, the Theorem-3
//! fault-budget monitor, and phase profiling.
//!
//! The flight recorder ([`crate::trace`]) narrates individual packets;
//! this module watches the *network*: which dimensions carry the traffic,
//! which ending classes congest, how the plan cache behaves, and — the
//! paper's own health signal — how close the live fault set stands to the
//! Theorem 3 tolerance bounds `N(α,k)` / `T(GC)`.
//!
//! # Architecture
//!
//! The engine is generic over a [`TelemetrySink`], exactly like its
//! [`TraceSink`](crate::trace::TraceSink): [`NullTelemetry`] reports
//! `enabled() == false` as a compile-time-foldable constant, so the
//! telemetry-off engine monomorphisation contains no telemetry code at
//! all (the `telemetry` criterion group and the `telemetry_overhead`
//! entry in `BENCH_routing.json` guard this). [`TelemetryCollector`] is
//! the real sink: it accumulates counters per sampling window
//! ([`crate::config::SimConfig::telemetry_interval`] cycles) into a
//! bounded ring of [`TelemetrySample`]s, exportable as CSV
//! ([`TelemetryCollector::to_csv`]) or JSONL
//! ([`TelemetryCollector::to_jsonl`]) and summarised by
//! [`TelemetryCollector::health_report`].
//!
//! # The fault-budget monitor
//!
//! [`FaultBudgetMonitor`] classifies the ground-truth fault set after
//! every fault event with [`health_state`]: `Healthy` (no faults),
//! `Degraded` (faults within the Theorem 3 precondition), or
//! `BoundExceeded` (precondition violated — routing guarantees void). The
//! *engine* owns the monitor, not the collector: state transitions are
//! emitted as first-class [`TraceEventKind::Health`](crate::trace::TraceEventKind)
//! trace events and counted in
//! [`Metrics::health_transitions`](crate::metrics::Metrics), whether or
//! not telemetry is attached — so replay verification covers them too.
//!
//! # Determinism
//!
//! Everything exported by CSV/JSONL is a pure function of the
//! configuration and seed (CI diffs two identical runs). Phase timings
//! are wall-clock and therefore appear **only** in the human-readable
//! health report, never in the machine exports.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::mem;

use gcube_routing::faults::{health_state, FaultBudget, HealthState};
use gcube_routing::{CacheStats, FaultSet};
use gcube_topology::GaussianCube;

/// Number of [`Phase`] variants (size of per-phase accumulator arrays).
pub const NUM_PHASES: usize = 4;

/// One of the engine's per-cycle phases, for profiling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Fault-event application, stranding, and knowledge reconvergence.
    Reconvergence = 0,
    /// Injection: destination choice and route planning.
    Planning = 1,
    /// Forwarding: link arbitration, recovery, movement, delivery.
    Forwarding = 2,
    /// Telemetry sampling itself (the observer's own cost).
    Telemetry = 3,
}

impl Phase {
    /// All phases, in accumulator order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Reconvergence,
        Phase::Planning,
        Phase::Forwarding,
        Phase::Telemetry,
    ];

    /// Stable lower-snake name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Reconvergence => "reconvergence",
            Phase::Planning => "planning",
            Phase::Forwarding => "forwarding",
            Phase::Telemetry => "telemetry",
        }
    }
}

/// The network state the engine exposes to the sink at the end of a cycle
/// (and once more at the end of the run).
pub struct CycleView<'a> {
    /// The cycle just completed (for [`TelemetrySink::finish`]: the cycle
    /// the run ended at).
    pub cycle: u64,
    /// Packets queued per ending class `EC(k)`, indexed by class. The
    /// engine maintains these incrementally on every queue push/pop, so
    /// exposing them is O(2^α) per sample — never a scan over the nodes.
    pub class_queued: &'a [u64],
    /// Nodes per ending class with a non-empty queue, indexed by class.
    pub class_occupied: &'a [u64],
    /// Packets currently in flight.
    pub in_flight: u64,
    /// The fault-budget monitor's current classification.
    pub health: HealthState,
    /// Live faulty components (nodes + links) in the ground truth.
    pub live_faults: u64,
    /// Plan-cache counters, fetched by the engine only when
    /// [`TelemetrySink::wants_sample`] said this cycle closes a window
    /// (snapshotting takes a lock — not a per-cycle cost).
    pub cache: Option<CacheStats>,
}

/// Consumer of the engine's per-cycle network state.
///
/// Mirrors [`crate::trace::TraceSink`]: the engine monomorphises over the
/// sink, every hook defaults to a no-op, and [`NullTelemetry`] reports
/// `enabled() == false` as a constant so the telemetry-off engine path
/// compiles to exactly the untelemetered engine.
pub trait TelemetrySink {
    /// Whether telemetry is collected at all. Return a constant `false`
    /// (like [`NullTelemetry`]) to compile every hook out.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Whether `cycle` closes a sampling window. The engine only fetches
    /// plan-cache statistics (which take a lock) when this returns true.
    #[inline]
    fn wants_sample(&self, _cycle: u64) -> bool {
        false
    }

    /// One packet moved over a link in dimension `dim`.
    #[inline]
    fn hop(&mut self, _dim: u32) {}

    /// One packet was successfully injected.
    #[inline]
    fn inject(&mut self) {}

    /// One packet was delivered.
    #[inline]
    fn deliver(&mut self) {}

    /// One *collective* packet (broadcast/multicast/gather wave member)
    /// was delivered. Fires in addition to [`TelemetrySink::deliver`], so
    /// the unicast share of a window is `delivered - collective_delivered`.
    #[inline]
    fn collective_deliver(&mut self) {}

    /// A cached broadcast tree was repaired against a new fault
    /// generation: regrafted in place, or — when `rebuilt` — rebuilt from
    /// scratch because no cached tree for the root existed. Coordinator-
    /// only in sharded runs (exactly once per repair, like reroutes).
    #[inline]
    fn tree_repair(&mut self, _rebuilt: bool) {}

    /// One packet was dropped.
    #[inline]
    fn drop_packet(&mut self) {}

    /// One packet was re-planned in place.
    #[inline]
    fn reroute(&mut self) {}

    /// One packet's planned hop proved dead in the ground truth.
    #[inline]
    fn stale_view(&mut self) {}

    /// A cycle passed with the routing view lagging the truth.
    #[inline]
    fn stale_cycle(&mut self) {}

    /// `applied` fault events (failures/repairs) hit the network.
    #[inline]
    fn fault_events(&mut self, _applied: u64) {}

    /// The routing view re-converged onto the ground truth.
    #[inline]
    fn reconvergence(&mut self) {}

    /// The fault-budget monitor changed state.
    #[inline]
    fn health_transition(&mut self, _cycle: u64, _from: HealthState, _to: HealthState) {}

    /// A multitree plan switched trees `switches` times (and fell back to
    /// FTGCR when `exhausted`). Called once per planned route carrying
    /// tree data; single-tree strategies never call it.
    #[inline]
    fn tree_activity(&mut self, _switches: u64, _exhausted: bool) {}

    /// Wall-clock nanoseconds spent in `phase` this cycle. Never exported
    /// to the deterministic CSV/JSONL streams.
    #[inline]
    fn phase_time(&mut self, _phase: Phase, _nanos: u64) {}

    /// Fold in a worker shard's per-cycle delta (sharded runs only; the
    /// coordinator absorbs every worker's delta before `end_cycle`, so
    /// window sums are identical to the sequential engine's).
    #[inline]
    fn absorb_shard(&mut self, _delta: &ShardTelemetry) {}

    /// A cycle completed; `view` describes the network at its end.
    #[inline]
    fn end_cycle(&mut self, _view: CycleView<'_>) {}

    /// The run completed; close any partial sampling window.
    #[inline]
    fn finish(&mut self, _view: CycleView<'_>) {}
}

/// The telemetry-off sink: `enabled()` is a constant `false` and every
/// hook is a no-op, so the monomorphised engine contains no telemetry
/// code at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTelemetry;

impl TelemetrySink for NullTelemetry {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// A worker shard's telemetry counters for one cycle, shipped to the
/// coordinator at the cycle's telemetry barrier and folded in via
/// [`TelemetrySink::absorb_shard`]. Carries exactly the counters workers
/// account locally in a sharded run; everything else (reroutes, stale
/// views, fault events, health) is coordinator-owned and reaches the sink
/// through the ordinary hooks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardTelemetry {
    /// Link traversals per dimension this cycle.
    pub dim_hops: Vec<u64>,
    /// Packets injected by this shard's nodes this cycle.
    pub injected: u64,
    /// Packets delivered to this shard's nodes this cycle.
    pub delivered: u64,
    /// Collective packets among `delivered` (broadcast/multicast/gather
    /// wave members sunk at this shard's nodes this cycle).
    pub collective_delivered: u64,
    /// Packets this shard dropped this cycle (stranding and TTL; recovery
    /// drops are resolved — and accounted — by the coordinator).
    pub dropped: u64,
    /// Tree switches across this shard's injection plans this cycle
    /// (multitree strategies only; recovery replans are coordinator-owned).
    pub tree_switches: u64,
    /// Injection plans that exhausted every tree and fell back to FTGCR.
    pub tree_exhausted: u64,
}

impl ShardTelemetry {
    /// A zeroed delta for an `n_dims`-dimensional cube.
    pub fn new(n_dims: usize) -> ShardTelemetry {
        ShardTelemetry {
            dim_hops: vec![0; n_dims],
            ..ShardTelemetry::default()
        }
    }

    /// Zero every counter for the next cycle.
    pub fn reset(&mut self) {
        self.dim_hops.iter_mut().for_each(|h| *h = 0);
        self.injected = 0;
        self.delivered = 0;
        self.collective_delivered = 0;
        self.dropped = 0;
        self.tree_switches = 0;
        self.tree_exhausted = 0;
    }

    /// Copy `other`'s counters into this pre-sized delta without
    /// allocating (the shard engine publishes into reusable exchange
    /// cells; a `clone` per cycle would churn the `dim_hops` buffer).
    pub fn copy_from(&mut self, other: &ShardTelemetry) {
        self.dim_hops.copy_from_slice(&other.dim_hops);
        self.injected = other.injected;
        self.delivered = other.delivered;
        self.collective_delivered = other.collective_delivered;
        self.dropped = other.dropped;
        self.tree_switches = other.tree_switches;
        self.tree_exhausted = other.tree_exhausted;
    }
}

/// Forwarding impl so the engine internals can borrow a caller-owned sink
/// (`SimSession` holds `&mut` sinks across the sequential/sharded split).
impl<T: TelemetrySink + ?Sized> TelemetrySink for &mut T {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    #[inline]
    fn wants_sample(&self, cycle: u64) -> bool {
        (**self).wants_sample(cycle)
    }
    #[inline]
    fn hop(&mut self, dim: u32) {
        (**self).hop(dim)
    }
    #[inline]
    fn inject(&mut self) {
        (**self).inject()
    }
    #[inline]
    fn deliver(&mut self) {
        (**self).deliver()
    }
    #[inline]
    fn collective_deliver(&mut self) {
        (**self).collective_deliver()
    }
    #[inline]
    fn tree_repair(&mut self, rebuilt: bool) {
        (**self).tree_repair(rebuilt)
    }
    #[inline]
    fn drop_packet(&mut self) {
        (**self).drop_packet()
    }
    #[inline]
    fn reroute(&mut self) {
        (**self).reroute()
    }
    #[inline]
    fn stale_view(&mut self) {
        (**self).stale_view()
    }
    #[inline]
    fn stale_cycle(&mut self) {
        (**self).stale_cycle()
    }
    #[inline]
    fn fault_events(&mut self, applied: u64) {
        (**self).fault_events(applied)
    }
    #[inline]
    fn reconvergence(&mut self) {
        (**self).reconvergence()
    }
    #[inline]
    fn health_transition(&mut self, cycle: u64, from: HealthState, to: HealthState) {
        (**self).health_transition(cycle, from, to)
    }
    #[inline]
    fn tree_activity(&mut self, switches: u64, exhausted: bool) {
        (**self).tree_activity(switches, exhausted)
    }
    #[inline]
    fn phase_time(&mut self, phase: Phase, nanos: u64) {
        (**self).phase_time(phase, nanos)
    }
    #[inline]
    fn absorb_shard(&mut self, delta: &ShardTelemetry) {
        (**self).absorb_shard(delta)
    }
    #[inline]
    fn end_cycle(&mut self, view: CycleView<'_>) {
        (**self).end_cycle(view)
    }
    #[inline]
    fn finish(&mut self, view: CycleView<'_>) {
        (**self).finish(view)
    }
}

/// Tracks the network's [`HealthState`] and reports transitions.
///
/// Starts `Healthy` (the state of an empty fault set); the engine calls
/// [`FaultBudgetMonitor::update`] before the first cycle and after every
/// applied fault event, so a run that *starts* faulty reports its initial
/// classification as a transition at cycle zero.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultBudgetMonitor {
    state: HealthState,
    /// The routing strategy keeps working routes past the Theorem-3
    /// budget (multitree): `BoundExceeded` is downgraded to `Degraded`.
    survives_bound_exceeded: bool,
    /// Whether the *current* state is such a downgrade — the reason the
    /// health report shows `degraded` while the raw budget says exceeded.
    downgraded: bool,
}

impl FaultBudgetMonitor {
    /// A monitor in the `Healthy` state.
    pub fn new() -> FaultBudgetMonitor {
        FaultBudgetMonitor::default()
    }

    /// A monitor for a strategy that reports
    /// [`survives_bound_exceeded`](crate::strategy::RoutingAlgorithm::survives_bound_exceeded):
    /// when true, a raw `BoundExceeded` classification is downgraded to
    /// `Degraded` — the Theorem-3 precondition is void, but the strategy
    /// still has independent spanning trees (plus the FTGCR fallback) to
    /// route around the excess faults.
    pub fn for_strategy(survives_bound_exceeded: bool) -> FaultBudgetMonitor {
        FaultBudgetMonitor {
            survives_bound_exceeded,
            ..FaultBudgetMonitor::default()
        }
    }

    /// The current classification.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Whether the current state is a `BoundExceeded` downgraded to
    /// `Degraded` because the strategy survives past the budget.
    pub fn downgraded(&self) -> bool {
        self.downgraded
    }

    /// Rebuild a monitor from checkpointed state. `survives_bound_exceeded`
    /// comes from the strategy (it is configuration, not history); `state`
    /// and `downgraded` are the history.
    pub fn from_parts(
        state: HealthState,
        survives_bound_exceeded: bool,
        downgraded: bool,
    ) -> FaultBudgetMonitor {
        FaultBudgetMonitor {
            state,
            survives_bound_exceeded,
            downgraded,
        }
    }

    /// Re-classify `faults`; returns `Some((from, to))` when the state
    /// changed.
    pub fn update(
        &mut self,
        gc: &GaussianCube,
        faults: &FaultSet,
    ) -> Option<(HealthState, HealthState)> {
        let raw = health_state(gc, faults);
        let next = if raw == HealthState::BoundExceeded && self.survives_bound_exceeded {
            HealthState::Degraded
        } else {
            raw
        };
        self.downgraded = next != raw;
        if next != self.state {
            let prev = mem::replace(&mut self.state, next);
            Some((prev, next))
        } else {
            None
        }
    }
}

/// One recorded health-state transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthTransition {
    /// Cycle the transition took effect.
    pub cycle: u64,
    /// State left.
    pub from: HealthState,
    /// State entered.
    pub to: HealthState,
}

/// One sampling window of the time series.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySample {
    /// First cycle of the window (inclusive).
    pub start: u64,
    /// Last cycle of the window (exclusive).
    pub end: u64,
    /// Link traversals per dimension during the window (`dim_hops[d]`
    /// counts hops over dimension-`d` links).
    pub dim_hops: Vec<u64>,
    /// Packets queued per ending class `EC(k)` at the window's end.
    pub class_queued: Vec<u64>,
    /// Nodes per ending class with a non-empty queue at the window's end.
    pub class_occupied: Vec<u64>,
    /// Packets in flight at the window's end.
    pub in_flight: u64,
    /// Packets injected during the window.
    pub injected: u64,
    /// Packets delivered during the window.
    pub delivered: u64,
    /// Collective packets among `delivered` during the window.
    pub collective_delivered: u64,
    /// Packets dropped during the window.
    pub dropped: u64,
    /// Local re-plans during the window.
    pub reroutes: u64,
    /// Stale-view exposures (planned hop dead in the truth) during the
    /// window.
    pub stale_views: u64,
    /// Cycles of the window the view spent lagging the truth.
    pub stale_cycles: u64,
    /// Fault events (failures and repairs) applied during the window.
    pub fault_events: u64,
    /// View reconvergences during the window.
    pub reconvergences: u64,
    /// Multitree tree switches across plans made during the window (zero
    /// for single-tree strategies).
    pub tree_switches: u64,
    /// Plans during the window that exhausted every tree and fell back to
    /// FTGCR.
    pub tree_exhausted: u64,
    /// Broadcast-tree regrafts during the window (collective runs only).
    pub tree_regrafts: u64,
    /// Broadcast trees rebuilt from scratch during the window.
    pub tree_rebuilds: u64,
    /// Plan-cache counters: hits/misses are deltas over the window,
    /// entries is the absolute size at the window's end. `None` when the
    /// strategy has no cache (or it is still unused).
    pub cache: Option<CacheStats>,
    /// Health classification at the window's end.
    pub health: HealthState,
    /// Live faulty components at the window's end.
    pub live_faults: u64,
}

impl TelemetrySample {
    /// Total link traversals in the window (sum over dimensions).
    pub fn forwarded_hops(&self) -> u64 {
        self.dim_hops.iter().sum()
    }
}

/// Pending-window accumulators, zeroed at each window boundary.
#[derive(Clone, Debug, Default)]
struct WindowAcc {
    dim_hops: Vec<u64>,
    injected: u64,
    delivered: u64,
    collective_delivered: u64,
    dropped: u64,
    reroutes: u64,
    stale_views: u64,
    stale_cycles: u64,
    fault_events: u64,
    reconvergences: u64,
    tree_switches: u64,
    tree_exhausted: u64,
    tree_regrafts: u64,
    tree_rebuilds: u64,
}

impl WindowAcc {
    fn reset(&mut self) {
        self.dim_hops.iter_mut().for_each(|h| *h = 0);
        self.injected = 0;
        self.delivered = 0;
        self.collective_delivered = 0;
        self.dropped = 0;
        self.reroutes = 0;
        self.stale_views = 0;
        self.stale_cycles = 0;
        self.fault_events = 0;
        self.reconvergences = 0;
        self.tree_switches = 0;
        self.tree_exhausted = 0;
        self.tree_regrafts = 0;
        self.tree_rebuilds = 0;
    }
}

/// Default ring capacity: at most this many samples are retained; older
/// ones are evicted (and counted in [`TelemetryCollector::evicted`]).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// The real telemetry sink: accumulates the per-cycle hooks into
/// fixed-width sampling windows held in a bounded ring, alongside
/// whole-run totals (which survive ring eviction, so reconciliation
/// against the [`Metrics`](crate::metrics::Metrics) ledger is exact
/// regardless of ring size).
#[derive(Clone, Debug)]
pub struct TelemetryCollector {
    n_dims: usize,
    num_classes: usize,
    interval: u64,
    capacity: usize,
    samples: VecDeque<TelemetrySample>,
    evicted: u64,
    window_start: u64,
    acc: WindowAcc,
    // Whole-run totals (never evicted).
    dim_hops_total: Vec<u64>,
    injected_total: u64,
    delivered_total: u64,
    collective_delivered_total: u64,
    dropped_total: u64,
    reroutes_total: u64,
    stale_views_total: u64,
    stale_cycles_total: u64,
    fault_events_total: u64,
    reconvergences_total: u64,
    tree_switches_total: u64,
    tree_exhausted_total: u64,
    tree_regrafts_total: u64,
    tree_rebuilds_total: u64,
    last_cache: CacheStats,
    transitions: Vec<HealthTransition>,
    phase_nanos: [u64; NUM_PHASES],
    ended_at: u64,
}

impl TelemetryCollector {
    /// A collector for `gc`'s shape sampling every `interval` cycles
    /// (clamped to ≥ 1), retaining at most [`DEFAULT_RING_CAPACITY`]
    /// windows.
    pub fn new(gc: &GaussianCube, interval: u64) -> TelemetryCollector {
        TelemetryCollector::with_capacity(gc, interval, DEFAULT_RING_CAPACITY)
    }

    /// As [`TelemetryCollector::new`] with an explicit ring capacity
    /// (clamped to ≥ 1).
    pub fn with_capacity(gc: &GaussianCube, interval: u64, capacity: usize) -> TelemetryCollector {
        let n_dims = gc.n() as usize;
        let num_classes = 1usize << gc.alpha();
        TelemetryCollector {
            n_dims,
            num_classes,
            interval: interval.max(1),
            capacity: capacity.max(1),
            samples: VecDeque::new(),
            evicted: 0,
            window_start: 0,
            acc: WindowAcc {
                dim_hops: vec![0; n_dims],
                ..WindowAcc::default()
            },
            dim_hops_total: vec![0; n_dims],
            injected_total: 0,
            delivered_total: 0,
            collective_delivered_total: 0,
            dropped_total: 0,
            reroutes_total: 0,
            stale_views_total: 0,
            stale_cycles_total: 0,
            fault_events_total: 0,
            reconvergences_total: 0,
            tree_switches_total: 0,
            tree_exhausted_total: 0,
            tree_regrafts_total: 0,
            tree_rebuilds_total: 0,
            last_cache: CacheStats::default(),
            transitions: Vec::new(),
            phase_nanos: [0; NUM_PHASES],
            ended_at: 0,
        }
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &TelemetrySample> {
        self.samples.iter()
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted from the ring (oldest-first) to stay within
    /// capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Whole-run link traversals per dimension (survives ring eviction).
    pub fn dim_hops_total(&self) -> &[u64] {
        &self.dim_hops_total
    }

    /// Whole-run link traversals, all dimensions.
    pub fn forwarded_hops_total(&self) -> u64 {
        self.dim_hops_total.iter().sum()
    }

    /// Whole-run totals `(injected, delivered, dropped)`.
    pub fn packet_totals(&self) -> (u64, u64, u64) {
        (
            self.injected_total,
            self.delivered_total,
            self.dropped_total,
        )
    }

    /// Whole-run totals `(reroutes, stale_views, stale_cycles,
    /// fault_events, reconvergences)`.
    pub fn churn_totals(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.reroutes_total,
            self.stale_views_total,
            self.stale_cycles_total,
            self.fault_events_total,
            self.reconvergences_total,
        )
    }

    /// Whole-run totals `(tree_switches, tree_exhausted)` — multitree
    /// strategies only; both zero otherwise.
    pub fn tree_totals(&self) -> (u64, u64) {
        (self.tree_switches_total, self.tree_exhausted_total)
    }

    /// Whole-run collective deliveries (zero for unicast-only runs).
    pub fn collective_delivered_total(&self) -> u64 {
        self.collective_delivered_total
    }

    /// Whole-run broadcast-tree repairs `(regrafts, rebuilds)` —
    /// collective runs only; both zero otherwise.
    pub fn tree_repair_totals(&self) -> (u64, u64) {
        (self.tree_regrafts_total, self.tree_rebuilds_total)
    }

    /// Recorded health transitions, in order.
    pub fn transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    /// Wall-clock nanoseconds accumulated per phase (report-only; never
    /// exported to the deterministic streams).
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase as usize]
    }

    fn close_window(&mut self, view: &CycleView<'_>, end: u64) {
        debug_assert_eq!(view.class_queued.len(), self.num_classes);
        let class_queued = view.class_queued.to_vec();
        let class_occupied = view.class_occupied.to_vec();
        let cache = view.cache.map(|now| {
            let delta = CacheStats {
                hits: now.hits - self.last_cache.hits,
                misses: now.misses - self.last_cache.misses,
                entries: now.entries,
            };
            self.last_cache = now;
            delta
        });
        let sample = TelemetrySample {
            start: self.window_start,
            end,
            dim_hops: self.acc.dim_hops.clone(),
            class_queued,
            class_occupied,
            in_flight: view.in_flight,
            injected: self.acc.injected,
            delivered: self.acc.delivered,
            collective_delivered: self.acc.collective_delivered,
            dropped: self.acc.dropped,
            reroutes: self.acc.reroutes,
            stale_views: self.acc.stale_views,
            stale_cycles: self.acc.stale_cycles,
            fault_events: self.acc.fault_events,
            reconvergences: self.acc.reconvergences,
            tree_switches: self.acc.tree_switches,
            tree_exhausted: self.acc.tree_exhausted,
            tree_regrafts: self.acc.tree_regrafts,
            tree_rebuilds: self.acc.tree_rebuilds,
            cache,
            health: view.health,
            live_faults: view.live_faults,
        };
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.evicted += 1;
        }
        self.samples.push_back(sample);
        self.acc.reset();
        self.window_start = end;
    }

    /// CSV export: one header line, one row per retained sample. Pure
    /// function of config + seed (CI diffs two runs byte for byte); phase
    /// timings are deliberately absent.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "start,end,in_flight,injected,delivered,dropped,forwarded_hops,reroutes,\
             stale_views,stale_cycles,fault_events,reconvergences,tree_switches,\
             tree_exhausted,collective_delivered,tree_regrafts,tree_rebuilds,health,\
             live_faults,cache_hits,cache_misses,cache_entries",
        );
        for d in 0..self.n_dims {
            let _ = write!(out, ",dim{d}_hops");
        }
        for k in 0..self.num_classes {
            let _ = write!(out, ",class{k}_queued");
        }
        for k in 0..self.num_classes {
            let _ = write!(out, ",class{k}_occupied");
        }
        out.push('\n');
        for s in &self.samples {
            let _ = write!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                s.start,
                s.end,
                s.in_flight,
                s.injected,
                s.delivered,
                s.dropped,
                s.forwarded_hops(),
                s.reroutes,
                s.stale_views,
                s.stale_cycles,
                s.fault_events,
                s.reconvergences,
                s.tree_switches,
                s.tree_exhausted,
                s.collective_delivered,
                s.tree_regrafts,
                s.tree_rebuilds,
                s.health.as_str(),
                s.live_faults,
            );
            match s.cache {
                Some(c) => {
                    let _ = write!(out, ",{},{},{}", c.hits, c.misses, c.entries);
                }
                None => out.push_str(",,,"),
            }
            for h in &s.dim_hops {
                let _ = write!(out, ",{h}");
            }
            for q in &s.class_queued {
                let _ = write!(out, ",{q}");
            }
            for o in &s.class_occupied {
                let _ = write!(out, ",{o}");
            }
            out.push('\n');
        }
        out
    }

    /// JSONL export: one flat hand-rolled object per retained sample.
    /// Deterministic, like the CSV.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            let _ = write!(
                out,
                "{{\"start\":{},\"end\":{},\"in_flight\":{},\"injected\":{},\
                 \"delivered\":{},\"dropped\":{},\"forwarded_hops\":{},\"reroutes\":{},\
                 \"stale_views\":{},\"stale_cycles\":{},\"fault_events\":{},\
                 \"reconvergences\":{},\"tree_switches\":{},\"tree_exhausted\":{},\
                 \"collective_delivered\":{},\"tree_regrafts\":{},\"tree_rebuilds\":{},\
                 \"health\":\"{}\",\"live_faults\":{}",
                s.start,
                s.end,
                s.in_flight,
                s.injected,
                s.delivered,
                s.dropped,
                s.forwarded_hops(),
                s.reroutes,
                s.stale_views,
                s.stale_cycles,
                s.fault_events,
                s.reconvergences,
                s.tree_switches,
                s.tree_exhausted,
                s.collective_delivered,
                s.tree_regrafts,
                s.tree_rebuilds,
                s.health.as_str(),
                s.live_faults,
            );
            match s.cache {
                Some(c) => {
                    let _ = write!(
                        out,
                        ",\"cache_hits\":{},\"cache_misses\":{},\"cache_entries\":{}",
                        c.hits, c.misses, c.entries
                    );
                }
                None => out
                    .push_str(",\"cache_hits\":null,\"cache_misses\":null,\"cache_entries\":null"),
            }
            let join = |vals: &[u64]| {
                vals.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let _ = write!(
                out,
                ",\"dim_hops\":[{}],\"class_queued\":[{}],\"class_occupied\":[{}]}}",
                join(&s.dim_hops),
                join(&s.class_queued),
                join(&s.class_occupied)
            );
            out.push('\n');
        }
        out
    }

    /// Human-readable end-of-run health report: whole-run totals, the
    /// dimension utilization profile, health transitions, the Theorem 3
    /// budget standing, and the (wall-clock) phase profile.
    pub fn health_report(&self, budget: &FaultBudget) -> String {
        self.health_report_with_trees(budget, None)
    }

    /// As [`TelemetryCollector::health_report`], plus a spanning-tree
    /// survival section when the run used a multitree strategy: which
    /// trees are still intact against the final fault set, and — when the
    /// Theorem-3 precondition is void — why the monitor downgraded
    /// `bound-exceeded` to `degraded`.
    pub fn health_report_with_trees(
        &self,
        budget: &FaultBudget,
        trees: Option<&[gcube_routing::multitree::TreeHealth]>,
    ) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== network health report ===");
        let _ = writeln!(
            out,
            "run: {} cycles, {} sampling windows of {} cycles ({} evicted)",
            self.ended_at,
            self.samples.len() as u64 + self.evicted,
            self.interval,
            self.evicted
        );
        let _ = writeln!(
            out,
            "packets: injected {}, delivered {}, dropped {}",
            self.injected_total, self.delivered_total, self.dropped_total
        );
        let _ = writeln!(
            out,
            "churn: {} fault events, {} stale-view exposures over {} stale cycles, \
             {} reroutes, {} reconvergences",
            self.fault_events_total,
            self.stale_views_total,
            self.stale_cycles_total,
            self.reroutes_total,
            self.reconvergences_total
        );
        if self.collective_delivered_total + self.tree_regrafts_total + self.tree_rebuilds_total > 0
        {
            let _ = writeln!(
                out,
                "collectives: {} wave packets delivered, {} tree regrafts, {} rebuilds",
                self.collective_delivered_total, self.tree_regrafts_total, self.tree_rebuilds_total
            );
        }
        let total_hops = self.forwarded_hops_total();
        let _ = writeln!(out, "link utilization ({total_hops} hops total):");
        for (d, &h) in self.dim_hops_total.iter().enumerate() {
            let pct = if total_hops == 0 {
                0.0
            } else {
                100.0 * h as f64 / total_hops as f64
            };
            let _ = writeln!(out, "  dim {d:>2}: {h:>10} hops ({pct:5.1}%)");
        }
        if let Some(last) = self.samples.back() {
            if let Some(c) = last.cache {
                let _ = writeln!(
                    out,
                    "plan cache: {} entries (last window: {} hits, {} misses)",
                    c.entries, c.hits, c.misses
                );
            }
        }
        let _ = writeln!(out, "--- Theorem 3 fault budget ---");
        let _ = writeln!(
            out,
            "state: {} ({} live faults: {} A / {} B / {} C)",
            budget.state, budget.total, budget.counts.a, budget.counts.b, budget.counts.c
        );
        let _ = writeln!(
            out,
            "aggregate headroom: {} of T_paper = {}, {} of T_guaranteed = {}",
            budget.headroom_paper(),
            budget.t_paper,
            budget.headroom_guaranteed(),
            budget.t_guaranteed
        );
        let _ = writeln!(
            out,
            "precondition: paper {}, guaranteed {}",
            budget.precondition_paper, budget.precondition_guaranteed
        );
        if let Some(w) = budget.worst_subcube() {
            let _ = writeln!(
                out,
                "worst subcube: GEEC(k={}, t={}) with {} faults against N(α,k)={} \
                 (guaranteed bound {})",
                w.k, w.t, w.faults, w.bound_paper, w.bound_guaranteed
            );
        }
        if let Some(trees) = trees {
            let _ = writeln!(out, "--- spanning-tree survival (multitree) ---");
            let _ = writeln!(
                out,
                "plans: {} tree switches, {} tree-exhausted FTGCR fallbacks",
                self.tree_switches_total, self.tree_exhausted_total
            );
            for t in trees {
                if t.clean {
                    let _ = writeln!(out, "  tree {}: intact (no matching faults)", t.tree);
                } else {
                    let _ = writeln!(
                        out,
                        "  tree {}: threatened ({} matching fault links, {} fault nodes)",
                        t.tree, t.matching_fault_links, t.fault_nodes
                    );
                }
            }
            if !budget.precondition_paper {
                let intact = trees.iter().filter(|t| t.clean).count();
                let _ = writeln!(
                    out,
                    "Theorem-3 precondition void, but {intact} of {} trees intact and the \
                     FTGCR fallback remains: bound-exceeded downgraded to degraded",
                    trees.len()
                );
            }
        }
        if self.transitions.is_empty() {
            let _ = writeln!(out, "health transitions: none");
        } else {
            let _ = writeln!(out, "health transitions:");
            for t in &self.transitions {
                let _ = writeln!(
                    out,
                    "  cycle {:>8}: {} -> {}",
                    t.cycle,
                    t.from.as_str(),
                    t.to.as_str()
                );
            }
        }
        let _ = writeln!(out, "--- phase profile (wall clock, report-only) ---");
        let total_ns: u64 = self.phase_nanos.iter().sum();
        for p in Phase::ALL {
            let ns = self.phase_nanos[p as usize];
            let pct = if total_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / total_ns as f64
            };
            let _ = writeln!(out, "  {:<14} {:>12} ns ({pct:5.1}%)", p.as_str(), ns);
        }
        out
    }
}

impl TelemetrySink for TelemetryCollector {
    #[inline]
    fn wants_sample(&self, cycle: u64) -> bool {
        (cycle + 1).is_multiple_of(self.interval)
    }

    #[inline]
    fn hop(&mut self, dim: u32) {
        self.acc.dim_hops[dim as usize] += 1;
        self.dim_hops_total[dim as usize] += 1;
    }

    #[inline]
    fn inject(&mut self) {
        self.acc.injected += 1;
        self.injected_total += 1;
    }

    #[inline]
    fn deliver(&mut self) {
        self.acc.delivered += 1;
        self.delivered_total += 1;
    }

    #[inline]
    fn collective_deliver(&mut self) {
        self.acc.collective_delivered += 1;
        self.collective_delivered_total += 1;
    }

    #[inline]
    fn tree_repair(&mut self, rebuilt: bool) {
        if rebuilt {
            self.acc.tree_rebuilds += 1;
            self.tree_rebuilds_total += 1;
        } else {
            self.acc.tree_regrafts += 1;
            self.tree_regrafts_total += 1;
        }
    }

    #[inline]
    fn drop_packet(&mut self) {
        self.acc.dropped += 1;
        self.dropped_total += 1;
    }

    #[inline]
    fn reroute(&mut self) {
        self.acc.reroutes += 1;
        self.reroutes_total += 1;
    }

    #[inline]
    fn stale_view(&mut self) {
        self.acc.stale_views += 1;
        self.stale_views_total += 1;
    }

    #[inline]
    fn stale_cycle(&mut self) {
        self.acc.stale_cycles += 1;
        self.stale_cycles_total += 1;
    }

    #[inline]
    fn fault_events(&mut self, applied: u64) {
        self.acc.fault_events += applied;
        self.fault_events_total += applied;
    }

    #[inline]
    fn reconvergence(&mut self) {
        self.acc.reconvergences += 1;
        self.reconvergences_total += 1;
    }

    fn health_transition(&mut self, cycle: u64, from: HealthState, to: HealthState) {
        self.transitions.push(HealthTransition { cycle, from, to });
    }

    #[inline]
    fn tree_activity(&mut self, switches: u64, exhausted: bool) {
        self.acc.tree_switches += switches;
        self.tree_switches_total += switches;
        if exhausted {
            self.acc.tree_exhausted += 1;
            self.tree_exhausted_total += 1;
        }
    }

    #[inline]
    fn phase_time(&mut self, phase: Phase, nanos: u64) {
        self.phase_nanos[phase as usize] += nanos;
    }

    fn absorb_shard(&mut self, delta: &ShardTelemetry) {
        for (d, &h) in delta.dim_hops.iter().enumerate() {
            self.acc.dim_hops[d] += h;
            self.dim_hops_total[d] += h;
        }
        self.acc.injected += delta.injected;
        self.injected_total += delta.injected;
        self.acc.delivered += delta.delivered;
        self.delivered_total += delta.delivered;
        self.acc.collective_delivered += delta.collective_delivered;
        self.collective_delivered_total += delta.collective_delivered;
        self.acc.dropped += delta.dropped;
        self.dropped_total += delta.dropped;
        self.acc.tree_switches += delta.tree_switches;
        self.tree_switches_total += delta.tree_switches;
        self.acc.tree_exhausted += delta.tree_exhausted;
        self.tree_exhausted_total += delta.tree_exhausted;
    }

    fn end_cycle(&mut self, view: CycleView<'_>) {
        if self.wants_sample(view.cycle) {
            self.close_window(&view, view.cycle + 1);
        }
    }

    fn finish(&mut self, view: CycleView<'_>) {
        self.ended_at = view.cycle;
        if view.cycle > self.window_start {
            // A partial window remains (the run ended mid-interval, or
            // drained early): close it so its counters are not lost.
            self.close_window(&view, view.cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gc() -> GaussianCube {
        GaussianCube::new(6, 4).unwrap() // α = 2: 4 ending classes
    }

    /// Class-aggregate slices for a quiet network (all 4 classes empty).
    const IDLE: [u64; 4] = [0; 4];

    fn view<'a>(
        cycle: u64,
        class_queued: &'a [u64],
        class_occupied: &'a [u64],
        health: HealthState,
    ) -> CycleView<'a> {
        CycleView {
            cycle,
            class_queued,
            class_occupied,
            in_flight: class_queued.iter().sum(),
            health,
            live_faults: 0,
            cache: None,
        }
    }

    #[test]
    fn windows_close_on_interval_and_accumulate() {
        let g = gc();
        let mut c = TelemetryCollector::new(&g, 10);
        for cycle in 0..25u64 {
            c.hop(0);
            c.hop(3);
            c.inject();
            assert_eq!(c.wants_sample(cycle), (cycle + 1) % 10 == 0);
            c.end_cycle(view(cycle, &IDLE, &IDLE, HealthState::Healthy));
        }
        // Two full windows closed; 5 cycles pending.
        assert_eq!(c.len(), 2);
        c.finish(view(25, &IDLE, &IDLE, HealthState::Healthy));
        assert_eq!(c.len(), 3, "finish must close the partial window");
        let s: Vec<&TelemetrySample> = c.samples().collect();
        assert_eq!((s[0].start, s[0].end), (0, 10));
        assert_eq!((s[1].start, s[1].end), (10, 20));
        assert_eq!((s[2].start, s[2].end), (20, 25));
        assert_eq!(s[0].injected, 10);
        assert_eq!(s[2].injected, 5);
        assert_eq!(s[0].dim_hops[0], 10);
        assert_eq!(s[0].dim_hops[3], 10);
        assert_eq!(s[0].forwarded_hops(), 20);
        // Totals reconcile with the per-window series.
        assert_eq!(c.forwarded_hops_total(), 50);
        assert_eq!(
            c.samples().map(|s| s.forwarded_hops()).sum::<u64>(),
            c.forwarded_hops_total()
        );
        assert_eq!(c.packet_totals(), (25, 0, 0));
    }

    #[test]
    fn finish_without_pending_cycles_adds_no_window() {
        let g = gc();
        let mut c = TelemetryCollector::new(&g, 10);
        for cycle in 0..10u64 {
            c.end_cycle(view(cycle, &IDLE, &IDLE, HealthState::Healthy));
        }
        assert_eq!(c.len(), 1);
        c.finish(view(10, &IDLE, &IDLE, HealthState::Healthy));
        assert_eq!(c.len(), 1, "exactly one full window, no empty tail");
    }

    #[test]
    fn ring_evicts_oldest_but_totals_survive() {
        let g = gc();
        let mut c = TelemetryCollector::with_capacity(&g, 1, 4);
        for cycle in 0..10u64 {
            c.hop(1);
            c.end_cycle(view(cycle, &IDLE, &IDLE, HealthState::Healthy));
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.evicted(), 6);
        assert_eq!(c.samples().next().unwrap().start, 6, "oldest retained");
        assert_eq!(c.forwarded_hops_total(), 10, "totals ignore eviction");
    }

    #[test]
    fn class_occupancy_snapshots_the_view() {
        let g = gc();
        // The engine's incremental aggregates for: nodes 1 and 5 (both
        // EC(1) under α = 2) holding 2 + 1 packets, node 6 (EC(2))
        // holding 1.
        let class_queued = [0u64, 3, 1, 0];
        let class_occupied = [0u64, 2, 1, 0];
        let mut c = TelemetryCollector::new(&g, 1);
        c.end_cycle(view(
            0,
            &class_queued,
            &class_occupied,
            HealthState::Healthy,
        ));
        let s = c.samples().next().unwrap();
        assert_eq!(s.class_queued, vec![0, 3, 1, 0]);
        assert_eq!(s.class_occupied, vec![0, 2, 1, 0]);
        assert_eq!(s.in_flight, 4);
    }

    #[test]
    fn absorb_shard_matches_individual_hooks() {
        let g = gc();
        let mut merged = TelemetryCollector::new(&g, 1);
        let mut direct = TelemetryCollector::new(&g, 1);
        let mut delta = ShardTelemetry::new(g.n() as usize);
        delta.dim_hops[0] = 2;
        delta.dim_hops[4] = 1;
        delta.injected = 3;
        delta.delivered = 2;
        delta.dropped = 1;
        merged.absorb_shard(&delta);
        for _ in 0..2 {
            direct.hop(0);
        }
        direct.hop(4);
        for _ in 0..3 {
            direct.inject();
        }
        for _ in 0..2 {
            direct.deliver();
        }
        direct.drop_packet();
        for c in [&mut merged, &mut direct] {
            c.end_cycle(view(0, &IDLE, &IDLE, HealthState::Healthy));
        }
        assert_eq!(
            merged.samples().next().unwrap(),
            direct.samples().next().unwrap()
        );
        assert_eq!(merged.packet_totals(), (3, 2, 1));
        assert_eq!(merged.forwarded_hops_total(), 3);
    }

    #[test]
    fn csv_and_jsonl_have_one_line_per_sample() {
        let g = gc();
        let mut c = TelemetryCollector::new(&g, 5);
        for cycle in 0..20u64 {
            c.hop((cycle % 6) as u32);
            c.end_cycle(view(cycle, &IDLE, &IDLE, HealthState::Healthy));
        }
        let csv = c.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 4, "header + 4 windows");
        let cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols, "ragged row: {row}");
        }
        assert!(lines[0].contains("dim5_hops") && lines[0].contains("class3_occupied"));
        let jsonl = c.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"dim_hops\":["), "{line}");
        }
    }

    #[test]
    fn cache_deltas_are_per_window() {
        let g = gc();
        let mut c = TelemetryCollector::new(&g, 1);
        let mk = |cycle: u64, cache: CacheStats| CycleView {
            cycle,
            class_queued: &IDLE,
            class_occupied: &IDLE,
            in_flight: 0,
            health: HealthState::Healthy,
            live_faults: 0,
            cache: Some(cache),
        };
        c.end_cycle(mk(
            0,
            CacheStats {
                hits: 10,
                misses: 4,
                entries: 4,
            },
        ));
        c.end_cycle(mk(
            1,
            CacheStats {
                hits: 25,
                misses: 5,
                entries: 5,
            },
        ));
        let s: Vec<&TelemetrySample> = c.samples().collect();
        assert_eq!(
            s[0].cache,
            Some(CacheStats {
                hits: 10,
                misses: 4,
                entries: 4
            })
        );
        assert_eq!(
            s[1].cache,
            Some(CacheStats {
                hits: 15,
                misses: 1,
                entries: 5
            }),
            "hits/misses are window deltas, entries absolute"
        );
    }

    #[test]
    fn monitor_reports_transitions_once() {
        use gcube_topology::{LinkId, NodeId};
        let g = gc();
        let mut m = FaultBudgetMonitor::new();
        let mut f = FaultSet::new();
        assert_eq!(m.state(), HealthState::Healthy);
        assert_eq!(m.update(&g, &f), None, "no transition while healthy");
        f.add_link(LinkId::new(NodeId(0), g.alpha())); // A-category
        assert_eq!(
            m.update(&g, &f),
            Some((HealthState::Healthy, HealthState::Degraded))
        );
        assert_eq!(m.update(&g, &f), None, "no repeat without change");
        f.add_node(NodeId(5)); // C-category: bound void
        assert_eq!(
            m.update(&g, &f),
            Some((HealthState::Degraded, HealthState::BoundExceeded))
        );
        let mut repaired = FaultSet::new();
        repaired.sync_from(&FaultSet::new());
        assert_eq!(
            m.update(&g, &repaired),
            Some((HealthState::BoundExceeded, HealthState::Healthy))
        );
    }

    #[test]
    fn null_telemetry_is_disabled() {
        let g = gc();
        assert!(!NullTelemetry.enabled());
        assert!(TelemetryCollector::new(&g, 1).enabled());
    }

    #[test]
    fn health_report_renders() {
        let g = gc();
        let mut c = TelemetryCollector::new(&g, 10);
        for cycle in 0..30u64 {
            c.hop(2);
            c.end_cycle(view(cycle, &IDLE, &IDLE, HealthState::Healthy));
        }
        c.health_transition(7, HealthState::Healthy, HealthState::Degraded);
        c.phase_time(Phase::Forwarding, 12_345);
        c.finish(view(30, &IDLE, &IDLE, HealthState::Degraded));
        let budget = gcube_routing::fault_budget(&g, &FaultSet::new());
        let report = c.health_report(&budget);
        assert!(report.contains("network health report"));
        assert!(report.contains("dim  2"));
        assert!(report.contains("healthy -> degraded"));
        assert!(report.contains("forwarding"));
        assert!(report.contains("T_paper"));
    }
}
