//! The cycle-driven simulation engine.
//!
//! Store-and-forward with FIFO queues: each cycle, every node may forward
//! the head of its queue onto the requested output link; each *directed*
//! link carries at most one packet per cycle; a packet reaching its
//! destination is sinked immediately (eager readership). Node service
//! order rotates each cycle so no node is systematically favoured.
//!
//! Buffers are unbounded by default — the paper's eager-readership model.
//! With [`crate::config::SimConfig::with_buffer_capacity`] the engine
//! switches to backpressure: packets move only into queues with room and
//! full sources refuse injections. That mode exists to *demonstrate* the
//! assumption's importance: tight buffers genuinely deadlock under load
//! (see `finite_buffers_apply_backpressure_and_can_deadlock`).

use std::collections::{HashSet, VecDeque};

use gcube_routing::FaultSet;
use gcube_topology::{GaussianCube, NodeId, Topology};

use crate::config::SimConfig;
use crate::metrics::Metrics;
use crate::packet::Packet;
use crate::strategy::RoutingAlgorithm;
use crate::traffic::{place_node_faults, TrafficGen};

/// A deterministic cycle-driven simulator for one `GC(n, M)` instance.
pub struct Simulator<'a> {
    gc: GaussianCube,
    faults: FaultSet,
    config: SimConfig,
    algorithm: &'a dyn RoutingAlgorithm,
}

impl<'a> Simulator<'a> {
    /// Build a simulator; places `config.faulty_nodes` node faults.
    pub fn new(config: SimConfig, algorithm: &'a dyn RoutingAlgorithm) -> Simulator<'a> {
        let gc = GaussianCube::new(config.n, config.modulus)
            .expect("simulation config must describe a valid Gaussian Cube");
        let faults = place_node_faults(&gc, config.faulty_nodes, config.seed);
        Simulator { gc, faults, config, algorithm }
    }

    /// The fault set in effect (for inspection).
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The simulated cube.
    pub fn cube(&self) -> &GaussianCube {
        &self.gc
    }

    /// Run to completion and return the metrics.
    pub fn run(&self) -> Metrics {
        let n_nodes = self.gc.num_nodes();
        let mut queues: Vec<VecDeque<Packet>> = (0..n_nodes).map(|_| VecDeque::new()).collect();
        let mut traffic = TrafficGen::with_pattern(
            self.config.seed,
            self.config.injection_rate,
            self.config.pattern,
        );
        let capacity = self.config.buffer_capacity;
        let mut metrics = Metrics {
            nodes: n_nodes,
            ..Metrics::default()
        };
        let mut next_id = 0u64;
        let total_cycles = self.config.inject_cycles + self.config.drain_cycles;
        let warmup = self.config.warmup_cycles.min(self.config.inject_cycles);
        let mut in_flight = 0u64;

        for cycle in 0..total_cycles {
            let measuring = cycle >= warmup;
            // 1. Injection phase.
            if cycle < self.config.inject_cycles {
                for v in 0..n_nodes {
                    let src = NodeId(v);
                    if self.faults.is_node_faulty(src) || !traffic.fires() {
                        continue;
                    }
                    if let Some(cap) = capacity {
                        if queues[v as usize].len() >= cap {
                            // Backpressure: the source buffer is full.
                            if measuring {
                                metrics.blocked_injections += 1;
                            }
                            continue;
                        }
                    }
                    let Some(dst) = traffic.pick_dest(&self.gc, &self.faults, src) else {
                        continue;
                    };
                    match self.algorithm.compute_route(&self.gc, &self.faults, src, dst) {
                        Ok(route) => {
                            let pkt = Packet {
                                id: next_id,
                                injected_at: cycle,
                                hop_idx: 0,
                                route,
                            };
                            next_id += 1;
                            if measuring {
                                metrics.injected += 1;
                            }
                            if pkt.arrived() {
                                // src == dst cannot happen (pick_dest), but a
                                // zero-hop route would sink immediately.
                                if measuring {
                                    metrics.delivered += 1;
                                }
                            } else {
                                in_flight += 1;
                                queues[v as usize].push_back(pkt);
                            }
                        }
                        Err(_) => {
                            if measuring {
                                metrics.route_failures += 1;
                            }
                        }
                    }
                }
            }

            // 2. Forwarding phase: one packet per directed link per cycle.
            //    Rotate the service order for fairness.
            let mut used_links: HashSet<(NodeId, NodeId)> = HashSet::new();
            let offset = (cycle % n_nodes) as usize;
            let mut moves: Vec<Packet> = Vec::new();
            // Backpressure accounting: occupancy snapshot plus arrivals
            // granted this cycle (departures free their slot next cycle —
            // conservative store-and-forward).
            let mut arriving = vec![0usize; n_nodes as usize];
            for i in 0..n_nodes as usize {
                let v = (i + offset) % n_nodes as usize;
                let Some(head) = queues[v].front() else { continue };
                let from = head.current();
                let to = head.next_hop().expect("queued packets have a next hop");
                if used_links.contains(&(from, to)) {
                    continue; // link busy this cycle; wait
                }
                let sinks = head.hop_idx + 2 == head.route.nodes().len();
                if let Some(cap) = capacity {
                    // A packet sinking at its destination always fits
                    // (eager readership at the consumer); otherwise the
                    // target buffer must have room.
                    if !sinks
                        && queues[to.0 as usize].len() + arriving[to.0 as usize] >= cap
                    {
                        continue; // backpressure: wait for room
                    }
                }
                if !sinks {
                    arriving[to.0 as usize] += 1;
                }
                used_links.insert((from, to));
                let mut pkt = queues[v].pop_front().expect("head exists");
                pkt.hop_idx += 1;
                moves.push(pkt);
            }
            for pkt in moves {
                let measured_pkt = measuring && pkt.injected_at >= warmup;
                if measured_pkt {
                    metrics.total_hops += 1;
                }
                if pkt.arrived() {
                    in_flight -= 1;
                    if measured_pkt {
                        metrics.delivered += 1;
                        metrics.total_latency += cycle + 1 - pkt.injected_at;
                    }
                } else {
                    // Keep FIFO order at the receiving node; the packet can
                    // move again no earlier than next cycle.
                    let cur = pkt.current().0 as usize;
                    queues[cur].push_back(pkt);
                }
            }

            if cycle >= self.config.inject_cycles && in_flight == 0 {
                metrics.cycles = cycle + 1 - warmup;
                metrics.in_flight_at_end = 0;
                return metrics;
            }
        }
        metrics.cycles = total_cycles - warmup;
        metrics.in_flight_at_end = in_flight;
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{FaultFreeGcr, FaultTolerantGcr};

    fn small_config() -> SimConfig {
        SimConfig::new(6, 2).with_cycles(200, 2_000, 20).with_rate(0.02)
    }

    #[test]
    fn conservation_packets_in_equals_out() {
        let sim = Simulator::new(small_config(), &FaultFreeGcr);
        let m = sim.run();
        assert!(m.injected > 0, "workload must inject packets");
        assert_eq!(m.route_failures, 0);
        // Every measured packet is either delivered or still in flight.
        assert_eq!(m.in_flight_at_end, 0, "drain period must empty the network");
        assert_eq!(m.delivered, m.injected);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Simulator::new(small_config(), &FaultFreeGcr).run();
        let b = Simulator::new(small_config(), &FaultFreeGcr).run();
        assert_eq!(a, b);
        let c = Simulator::new(small_config().with_seed(777), &FaultFreeGcr).run();
        assert_ne!(a, c);
    }

    #[test]
    fn latency_at_least_route_length() {
        // Latency per packet ≥ hops; with low load close to hops.
        let sim = Simulator::new(small_config().with_rate(0.001), &FaultFreeGcr);
        let m = sim.run();
        assert!(m.avg_latency() >= m.avg_hops());
        // Uncongested: latency within 1.5x of hop count.
        assert!(m.avg_latency() <= 1.5 * m.avg_hops() + 1.0);
    }

    #[test]
    fn faulty_network_still_delivers_with_ftgcr() {
        let cfg = small_config().with_faults(1);
        let sim = Simulator::new(cfg, &FaultTolerantGcr);
        assert_eq!(sim.faults().faulty_nodes().count(), 1);
        let m = sim.run();
        assert_eq!(m.delivered, m.injected, "FTGCR must deliver all packets");
        assert_eq!(m.route_failures, 0);
    }

    #[test]
    fn fault_raises_latency_on_average() {
        // The Figure 7 effect, in miniature: faults force detours, so mean
        // latency (averaged over seeds — a single seed is noisy because the
        // faulty node also stops injecting) must not drop.
        let mean = |faults: usize| -> f64 {
            let mut total = 0.0;
            for seed in 0..6u64 {
                let cfg = small_config().with_seed(1000 + seed).with_faults(faults);
                total += Simulator::new(cfg, &FaultTolerantGcr).run().avg_latency();
            }
            total / 6.0
        };
        let base = mean(0);
        let faulty = mean(2);
        assert!(
            faulty >= base * 0.98,
            "mean latency should not drop with faults: base={base:.3} faulty={faulty:.3}"
        );
    }

    #[test]
    fn permutation_traffic_runs_and_drains() {
        use crate::traffic::TrafficPattern;
        for pat in [
            TrafficPattern::BitComplement,
            TrafficPattern::BitReversal,
            TrafficPattern::Transpose,
        ] {
            let cfg = small_config().with_pattern(pat);
            let m = Simulator::new(cfg, &FaultFreeGcr).run();
            assert!(m.injected > 0, "{pat:?} must inject");
            assert_eq!(m.delivered, m.injected, "{pat:?} must drain fully");
        }
    }

    #[test]
    fn bit_complement_has_longest_latency() {
        use crate::traffic::TrafficPattern;
        // Complement partners are at maximal distance: latency must exceed
        // the uniform workload's at equal rate.
        let uni = Simulator::new(small_config(), &FaultFreeGcr).run();
        let comp = Simulator::new(
            small_config().with_pattern(TrafficPattern::BitComplement),
            &FaultFreeGcr,
        )
        .run();
        assert!(
            comp.avg_hops() > uni.avg_hops(),
            "complement hops {} must exceed uniform {}",
            comp.avg_hops(),
            uni.avg_hops()
        );
    }

    #[test]
    fn finite_buffers_apply_backpressure_and_can_deadlock() {
        // This test documents WHY the paper assumes eager readership
        // (assumption 2 of §6): with tight finite buffers and no consumption
        // guarantee, store-and-forward traffic deadlocks — head packets
        // point at each other's full queues and nothing ever moves again.
        // (warmup = 0 so the conservation ledger covers every packet.)
        let cfg = SimConfig::new(6, 2)
            .with_cycles(200, 2_000, 0)
            .with_rate(0.2)
            .with_buffer_capacity(2);
        let m = Simulator::new(cfg, &FaultFreeGcr).run();
        assert!(m.blocked_injections > 0, "tight buffers must block injections");
        assert_eq!(m.delivered + m.in_flight_at_end, m.injected, "conservation");
        assert!(
            m.in_flight_at_end > 0,
            "expected a buffer deadlock at this load; delivered={} injected={}",
            m.delivered,
            m.injected
        );
        // Unbounded buffers (the paper's model): same load, no blocking,
        // full drain.
        let m2 = Simulator::new(
            SimConfig::new(6, 2).with_cycles(200, 2_000, 0).with_rate(0.2),
            &FaultFreeGcr,
        )
        .run();
        assert_eq!(m2.blocked_injections, 0);
        assert_eq!(m2.in_flight_at_end, 0);
        assert_eq!(m2.delivered, m2.injected);
    }

    #[test]
    fn backpressure_conserves_packets_at_gentle_load() {
        // At loads where no deadlock forms, finite buffers still deliver
        // everything they accepted.
        for cap in [4usize, 8] {
            let cfg = SimConfig::new(6, 2)
                .with_cycles(200, 4_000, 0)
                .with_rate(0.005)
                .with_buffer_capacity(cap);
            let m = Simulator::new(cfg, &FaultFreeGcr).run();
            assert_eq!(m.delivered + m.in_flight_at_end, m.injected, "cap {cap}");
            assert_eq!(m.in_flight_at_end, 0, "cap {cap}: gentle load must drain");
        }
    }

    #[test]
    fn higher_load_does_not_lower_throughput() {
        let low = Simulator::new(small_config().with_rate(0.002), &FaultFreeGcr).run();
        let high = Simulator::new(small_config().with_rate(0.02), &FaultFreeGcr).run();
        assert!(high.throughput() > low.throughput());
    }
}
