//! The cycle-driven simulation engine.
//!
//! Store-and-forward with FIFO queues: each cycle, every node may forward
//! the head of its queue onto the requested output link; each *directed*
//! link carries at most one packet per cycle; a packet reaching its
//! destination is sinked immediately (eager readership). Node service
//! order rotates each cycle so no node is systematically favoured.
//!
//! Buffers are unbounded by default — the paper's eager-readership model.
//! With [`crate::config::SimConfig::with_buffer_capacity`] the engine
//! switches to backpressure: packets move only into queues with room and
//! full sources refuse injections. That mode exists to *demonstrate* the
//! assumption's importance: tight buffers genuinely deadlock under load
//! (see `finite_buffers_apply_backpressure_and_can_deadlock`).
//!
//! # Dynamic faults and online recovery
//!
//! With a [`FaultSchedule`], the network changes *while packets are in
//! flight*. The engine then tracks two fault sets:
//!
//! - the **truth** — what is actually broken, mutated by the
//!   [`FaultInjector`] before each cycle;
//! - the **view** — what routing decisions see. Under
//!   [`KnowledgeModel::Oracle`] the two coincide; otherwise the view lags
//!   each fault event by the paper's claim-4 exchange bound
//!   (`⌈n/2^α⌉ + 1` cycles) or by the measured protocol rounds, and
//!   packets are planned against stale knowledge.
//!
//! A packet whose next hop is dead in the truth cannot move. Its holder
//! observes the failure (the component is added to the view immediately —
//! neighbours of a fault notice the silence first) and the engine replans
//! the packet locally from its current node with the session's routing
//! algorithm, burning one cycle and one unit of its re-route budget.
//! Packets are dropped — and counted — when the budget or the TTL is
//! exhausted, when no recovery route exists, or when the node buffering
//! them dies.
//!
//! # The steppable core
//!
//! The sequential loop lives in [`EngineCore`]: all of a run's mutable
//! state in one struct, advanced one cycle at a time by
//! [`EngineCore::step`]. [`Simulator::run_sequential`] is now just
//! `new + step-until-done + finish`, bit-identical to the old monolithic
//! loop. The split exists for the daemon ([`crate::server`]): a stepped
//! core can be parked between requests, checkpointed mid-run
//! ([`crate::checkpoint`]), and resumed bitwise.

use std::mem;
use std::sync::Arc;
use std::time::Instant;

use gcube_routing::faults::fault_budget;
use gcube_routing::knowledge::exchange_rounds;
use gcube_routing::plan_cache::PlanCache;
use gcube_routing::FaultSet;
use gcube_topology::{GaussianCube, LinkId, NodeId, Topology};

use crate::collective::{is_collective, CollectivePlanner, OpTracker, RepairLedger};
use crate::config::{KnowledgeModel, SimConfig};
use crate::error::SimError;
use crate::injection::FaultInjector;
use crate::metrics::{ChurnReport, Metrics, WindowStat, MAX_TREES};
use crate::packet::Packet;
use crate::profiler::{ProfSample, ProfilerSink};
use crate::session::SimSession;
use crate::soa::{LinkTable, NodeQueues, PacketStore};
use crate::strategy::{RoutingAlgorithm, TreeChoice};
use crate::telemetry::{CycleView, FaultBudgetMonitor, Phase, TelemetrySink};
use crate::trace::{DropCause, TraceEvent, TraceEventKind, TraceSink, NETWORK_EVENT_PACKET};
use crate::traffic::{place_node_faults, TrafficGen};

/// A deterministic cycle-driven simulator for one `GC(n, M)` instance.
pub struct Simulator<'a> {
    pub(crate) gc: GaussianCube,
    pub(crate) faults: FaultSet,
    pub(crate) config: SimConfig,
    pub(crate) algorithm: &'a dyn RoutingAlgorithm,
}

impl<'a> Simulator<'a> {
    /// Build a simulator; places `config.faulty_nodes` node faults.
    ///
    /// Panics on an invalid configuration (bad cube parameters or an
    /// out-of-range injection rate); use [`Simulator::try_new`] to handle
    /// those as errors.
    pub fn new(config: SimConfig, algorithm: &'a dyn RoutingAlgorithm) -> Simulator<'a> {
        match Self::try_new(config, algorithm) {
            Ok(sim) => sim,
            Err(e) => panic!("invalid simulation config: {e}"),
        }
    }

    /// Fallible constructor: validates the configuration (including the
    /// injection rate, which used to be silently clamped) before building
    /// anything.
    pub fn try_new(
        config: SimConfig,
        algorithm: &'a dyn RoutingAlgorithm,
    ) -> Result<Simulator<'a>, SimError> {
        config.validate()?;
        let gc =
            GaussianCube::new(config.n, config.modulus).map_err(|e| SimError::InvalidTopology {
                n: config.n,
                modulus: config.modulus,
                reason: e.to_string(),
            })?;
        let faults = place_node_faults(&gc, config.faulty_nodes, config.seed);
        Ok(Simulator {
            gc,
            faults,
            config,
            algorithm,
        })
    }

    /// The fault set in effect at cycle zero (for inspection).
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The simulated cube.
    pub fn cube(&self) -> &GaussianCube {
        &self.gc
    }

    /// The configuration this simulator was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The routing algorithm this simulator plans with.
    pub fn algorithm(&self) -> &'a dyn RoutingAlgorithm {
        self.algorithm
    }

    /// The view's convergence lag after a fault event, in cycles.
    pub(crate) fn knowledge_delay(&self, truth: &FaultSet) -> u64 {
        match self.config.knowledge {
            KnowledgeModel::Oracle => 0,
            KnowledgeModel::PaperDelay => {
                // Claim 4: at most ⌈n/2^α⌉ + 1 exchange rounds.
                let d = 1u64 << self.gc.alpha();
                u64::from(self.gc.n()).div_ceil(d) + 1
            }
            KnowledgeModel::Measured => exchange_rounds(&self.gc, truth).rounds().max(1) as u64,
        }
    }

    /// Start building a run: the single composable front door.
    ///
    /// ```text
    /// sim.session().threads(4).trace(&mut sink).telemetry(&mut telem).run()
    /// ```
    ///
    /// Every combination the four legacy entry points used to cover — and
    /// the ones they could not, like "run sharded with these sinks" — is a
    /// chain of builder calls. See [`SimSession`].
    pub fn session(&self) -> SimSession<'_, 'a> {
        SimSession::new(self)
    }

    /// The sequential cycle loop — the reference semantics. The session
    /// builder dispatches here for single-threaded runs; the sharded
    /// engine ([`crate::shard`]) reproduces this loop's output bit for
    /// bit. `NullSink`/`NullTelemetry` monomorphisations contain no
    /// tracing or telemetry code at all, and the hot path performs no
    /// per-cycle allocations. Trace events, metrics, and windows are
    /// identical across all sink combinations — observers never steer.
    pub(crate) fn run_sequential<S: TraceSink, T: TelemetrySink, P: ProfilerSink>(
        &self,
        sink: &mut S,
        telem: &mut T,
        prof: &mut P,
    ) -> ChurnReport {
        let mut core = EngineCore::new(self, sink, telem);
        while !core.step(self, sink, telem, prof) {}
        core.finish(self, telem, prof)
    }

    /// Handle the head packet of node `v` whose next hop just proved dead.
    ///
    /// Publishes the observed failure into the view (and a stale-view
    /// exposure event into the trace — the packet was planned against
    /// knowledge that missed this fault), then either replans the packet
    /// in place (returning `None`) or pops and returns it with the drop
    /// cause.
    #[allow(clippy::too_many_arguments)]
    fn recover<S: TraceSink, T: TelemetrySink>(
        &self,
        store: &mut PacketStore,
        queues: &mut NodeQueues,
        v: usize,
        view: &mut FaultSet,
        links: &LinkTable,
        link: LinkId,
        to: NodeId,
        cycle: u64,
        metrics: &mut Metrics,
        window: &mut WindowStat,
        sink: &mut S,
        telem: &mut T,
    ) -> Option<(Packet, DropCause)> {
        // Local discovery: the blocked node learns exactly which component
        // failed and that knowledge enters the routing view at once.
        if links.node_faulty(to.0) {
            view.add_node(to);
        } else {
            view.add_link(link);
        }
        let head = queues
            .front(v)
            .expect("recover is called on a non-empty queue");
        telem.stale_view();
        if sink.enabled() {
            sink.record(&TraceEvent {
                cycle,
                packet: store.id[head as usize],
                node: store.current(head),
                kind: TraceEventKind::StaleView { blocked: to },
            });
        }
        if u64::from(store.hops_taken[head as usize]) >= self.config.effective_ttl() {
            let slot = queues.pop_front(store, v);
            return Some((store.remove(slot), DropCause::TtlExpired));
        }
        if store.reroutes[head as usize] >= self.config.reroute_budget {
            let slot = queues.pop_front(store, v);
            return Some((store.remove(slot), DropCause::Unrecoverable));
        }
        let from = store.current(head);
        let dest = *store
            .route(head)
            .nodes()
            .last()
            .expect("routes are non-empty");
        match self.algorithm.plan_route(&self.gc, view, from, dest) {
            Ok(planned) => {
                let tree = planned.tree;
                store.replan(head, planned.route);
                telem.reroute();
                if sink.enabled() {
                    sink.record(&TraceEvent {
                        cycle,
                        packet: store.id[head as usize],
                        node: from,
                        kind: TraceEventKind::Reroute {
                            budget_left: self.config.reroute_budget - store.reroutes[head as usize],
                        },
                    });
                }
                if let Some(tc) = tree {
                    let id = store.id[head as usize];
                    account_tree_choice(metrics, window, &mut *telem, tc);
                    if sink.enabled() && (tc.switches > 0 || tc.exhausted) {
                        sink.record(&TraceEvent {
                            cycle,
                            packet: id,
                            node: from,
                            kind: TraceEventKind::TreeSwitch {
                                tree: tc.tree,
                                switches: tc.switches,
                                exhausted: tc.exhausted,
                            },
                        });
                    }
                }
                None
            }
            Err(_) => {
                let slot = queues.pop_front(store, v);
                Some((store.remove(slot), DropCause::Unrecoverable))
            }
        }
    }
}

/// All mutable state of one sequential run, advanced cycle by cycle.
///
/// Everything the old monolithic loop kept in locals lives here, so a run
/// can be suspended between cycles (the daemon parks sessions this way)
/// and serialized mid-run ([`crate::checkpoint`]). Field order follows
/// the loop's initialisation order; all fields are `pub(crate)` because
/// checkpointing is a whole-state concern.
pub(crate) struct EngineCore {
    pub(crate) store: PacketStore,
    pub(crate) queues: NodeQueues,
    pub(crate) traffic: TrafficGen,
    pub(crate) metrics: Metrics,
    pub(crate) next_id: u64,
    pub(crate) total_cycles: u64,
    pub(crate) warmup: u64,
    pub(crate) in_flight: u64,
    pub(crate) ttl: u64,
    pub(crate) window: u64,
    pub(crate) windows: Vec<WindowStat>,
    pub(crate) truth: FaultSet,
    pub(crate) view: FaultSet,
    pub(crate) synced: (u64, u64),
    pub(crate) injector: FaultInjector,
    pub(crate) dynamic: bool,
    pub(crate) converge_at: Option<u64>,
    pub(crate) links: LinkTable,
    pub(crate) monitor: FaultBudgetMonitor,
    pub(crate) collective: Option<CollectivePlanner>,
    pub(crate) repair_ledger: RepairLedger,
    pub(crate) op_tracker: OpTracker,
    pub(crate) moves: Vec<u32>,
    pub(crate) scan: Vec<u32>,
    pub(crate) cmask: usize,
    pub(crate) class_queued: Vec<u64>,
    pub(crate) class_occupied: Vec<u64>,
    pub(crate) arriving: Vec<u32>,
    pub(crate) arrival_nodes: Vec<usize>,
    pub(crate) capacity: Option<usize>,
    /// The next cycle [`EngineCore::step`] will execute.
    pub(crate) cycle: u64,
    pub(crate) ended_at: u64,
    pub(crate) done: bool,
}

impl EngineCore {
    /// Initialise a run: cycle-zero state, including the initial
    /// fault-budget classification (trace event and counter) for runs
    /// that start faulty. Checkpoint restore must *not* call this with a
    /// live sink — the cycle-0 health event would be re-emitted.
    pub(crate) fn new<S: TraceSink, T: TelemetrySink>(
        sim: &Simulator,
        sink: &mut S,
        telem: &mut T,
    ) -> EngineCore {
        let n_nodes = sim.gc.num_nodes();
        // Structure-of-arrays packet state (see `crate::soa`): an arena of
        // packet fields plus intrusive per-node FIFO queues and an
        // occupancy bitset, so the forwarding scan only visits nodes that
        // actually hold packets.
        let store = PacketStore::new();
        let queues = NodeQueues::new(n_nodes);
        let traffic = TrafficGen::with_pattern(
            sim.config.seed,
            sim.config.injection_rate,
            sim.config.pattern,
        );
        let capacity = sim.config.buffer_capacity;
        let mut metrics = Metrics {
            nodes: n_nodes,
            ..Metrics::default()
        };
        let total_cycles = sim.config.inject_cycles + sim.config.drain_cycles;
        let warmup = sim.config.warmup_cycles.min(sim.config.inject_cycles);
        let ttl = sim.config.effective_ttl();
        let window = sim.config.window.max(1);

        // Ground truth vs. routing view (see module docs). With no
        // schedule and an oracle view these stay identical to the static
        // fault set, and the run is bit-for-bit the seed engine's.
        let truth = sim.faults.clone();
        let view = sim.faults.clone();
        // Generation stamps of (truth, view) at the last sync: when neither
        // set changed since, reconvergence skips the copy entirely.
        let synced = (truth.generation(), view.generation());
        let injector = FaultInjector::new(&sim.gc, sim.config.schedule.clone(), sim.config.seed);
        let dynamic = !sim.config.schedule.is_none();
        // Bitset mirror of the truth: dead-node word probes for the
        // injection loop, dead-link word probes for the forwarding scan.
        // Resynced only when the truth's generation stamp moves.
        let mut links = LinkTable::new(n_nodes, sim.gc.n());
        links.sync(&truth);

        // The Theorem-3 fault-budget monitor runs whether or not
        // telemetry is attached: health transitions are trace events and
        // metric counters, so replay verification covers them. A run that
        // starts faulty reports its initial classification at cycle 0.
        let mut monitor = FaultBudgetMonitor::for_strategy(sim.algorithm.survives_bound_exceeded());
        if let Some((from, to)) = monitor.update(&sim.gc, &truth) {
            metrics.health_transitions += 1;
            telem.health_transition(0, from, to);
            if sink.enabled() {
                sink.record(&TraceEvent {
                    cycle: 0,
                    packet: NETWORK_EVENT_PACKET,
                    node: NodeId(0),
                    kind: TraceEventKind::Health {
                        state: to,
                        faults: truth.len() as u64,
                    },
                });
            }
        }

        // The collective traffic class: a planner over a dedicated tree
        // cache, a repair ledger that accounts each tree transition once,
        // and the per-operation completion records.
        let collective = sim.config.collective.map(|op| {
            CollectivePlanner::new(
                op,
                sim.config.collective_interval,
                sim.config.seed,
                Arc::new(PlanCache::new(&sim.gc)),
            )
        });
        let repair_ledger = RepairLedger::new(1 << sim.gc.alpha());
        let op_tracker = OpTracker::new();

        // Reusable per-cycle scratch, allocated once for the whole run:
        // the forwarding hot path is allocation-free. `moves` holds the
        // arena slots that advanced this cycle; `scan` snapshots the
        // occupied nodes in service order (safe: the scan pops only at the
        // visited node and buffers every push until the drain, so the
        // snapshot equals the live occupancy).
        // Per-ending-class queue aggregates, maintained incrementally on
        // every push/pop so telemetry sampling is O(classes), not
        // O(nodes): packets queued per class, and nodes per class with a
        // non-empty queue.
        let cmask = (1usize << sim.gc.alpha()) - 1;
        // Backpressure scratch: arrivals granted this cycle per node, with
        // a touched-list so resetting costs O(arrivals), not O(nodes).
        // Only materialised when finite buffers are on — at GC(20) the
        // dense array would cost 4 MiB for a mode that cannot engage.
        let arriving: Vec<u32> = if capacity.is_some() {
            vec![0; n_nodes as usize]
        } else {
            Vec::new()
        };

        EngineCore {
            store,
            queues,
            traffic,
            metrics,
            next_id: 0,
            total_cycles,
            warmup,
            in_flight: 0,
            ttl,
            window,
            windows: Vec::new(),
            truth,
            view,
            synced,
            injector,
            dynamic,
            converge_at: None,
            links,
            monitor,
            collective,
            repair_ledger,
            op_tracker,
            moves: Vec::new(),
            scan: Vec::new(),
            cmask,
            class_queued: vec![0; cmask + 1],
            class_occupied: vec![0; cmask + 1],
            arriving,
            arrival_nodes: Vec::new(),
            capacity,
            cycle: 0,
            ended_at: total_cycles,
            done: false,
        }
    }

    /// Whether the run has executed its last cycle.
    pub(crate) fn is_done(&self) -> bool {
        self.done
    }

    /// Execute one cycle. Returns `true` once the run is complete (all
    /// cycles executed, or injection over and the network drained); calling
    /// again after that is a no-op returning `true`.
    pub(crate) fn step<S: TraceSink, T: TelemetrySink, P: ProfilerSink>(
        &mut self,
        sim: &Simulator,
        sink: &mut S,
        telem: &mut T,
        prof: &mut P,
    ) -> bool {
        if self.done || self.cycle >= self.total_cycles {
            self.done = true;
            return true;
        }
        let n_nodes = sim.gc.num_nodes();
        // Phase profiling is wall-clock and report-only; the timers exist
        // when either a telemetry sink or a profiler is attached, so
        // `--profile` works without `--telemetry`.
        let profiling = telem.enabled() || prof.enabled();
        let cycle = self.cycle;
        let cmask = self.cmask;
        let measuring = cycle >= self.warmup;
        let widx = (cycle / self.window) as usize;
        if self.windows.len() <= widx {
            self.windows.push(WindowStat {
                start: widx as u64 * self.window,
                end: (widx as u64 + 1) * self.window,
                ..WindowStat::default()
            });
        }

        // Per-cycle deterministic profiler counters; the guarded
        // increments monomorphise away with `NullProfiler`.
        let mut cycle_injected = 0u64;

        // 0. Fault events: mutate the truth, strand queued packets on
        //    dead nodes, restart the knowledge exchange.
        let phase_started = profiling.then(Instant::now);
        if self.dynamic {
            let applied = self.injector.step(cycle, &mut self.truth);
            if applied > 0 {
                self.metrics.fault_events += applied as u64;
                telem.fault_events(applied as u64);
                // Re-classify against the Theorem 3 budget only when
                // the fault set actually changed.
                if let Some((from, to)) = self.monitor.update(&sim.gc, &self.truth) {
                    self.metrics.health_transitions += 1;
                    telem.health_transition(cycle, from, to);
                    if sink.enabled() {
                        sink.record(&TraceEvent {
                            cycle,
                            packet: NETWORK_EVENT_PACKET,
                            node: NodeId(0),
                            kind: TraceEventKind::Health {
                                state: to,
                                faults: self.truth.len() as u64,
                            },
                        });
                    }
                }
                self.links.sync(&self.truth);
                self.queues.collect_occupied(&mut self.scan);
                for &vq in &self.scan {
                    let v = vq as usize;
                    if !self.links.node_faulty(vq as u64) {
                        continue;
                    }
                    self.class_queued[v & cmask] -= self.queues.len(v) as u64;
                    self.class_occupied[v & cmask] -= 1;
                    while !self.queues.is_empty(v) {
                        let slot = self.queues.pop_front(&mut self.store, v);
                        let pkt = self.store.remove(slot);
                        self.in_flight -= 1;
                        count_drop(
                            &mut self.metrics,
                            &mut self.windows[widx],
                            &mut self.op_tracker,
                            &pkt,
                            DropCause::Stranded,
                            measuring,
                            self.warmup,
                            cycle,
                            NodeId(v as u64),
                            sink,
                            telem,
                        );
                    }
                }
                let delay = sim.knowledge_delay(&self.truth);
                if delay == 0 {
                    sync_view(&mut self.view, &self.truth, &mut self.synced);
                } else {
                    // A new event during an ongoing exchange restarts
                    // it: convergence is measured from the last change.
                    self.converge_at = Some(cycle + delay);
                }
            }
            if let Some(t) = self.converge_at {
                if cycle >= t {
                    sync_view(&mut self.view, &self.truth, &mut self.synced);
                    self.converge_at = None;
                    self.metrics.reconvergences += 1;
                    telem.reconvergence();
                } else {
                    self.metrics.stale_cycles += 1;
                    telem.stale_cycle();
                }
            }
        }
        if let Some(t) = phase_started {
            let nanos = t.elapsed().as_nanos() as u64;
            telem.phase_time(Phase::Reconvergence, nanos);
            prof.phase_time(Phase::Reconvergence, nanos);
        }

        // 1. Injection phase. Sources route on the *view*: right
        //    after a fault event they may plan through a dead
        //    component and only find out en route.
        let phase_started = profiling.then(Instant::now);

        // 1a. Collective launch: before unicast injection, so the
        //     per-node queue order (collective wave first) matches
        //     the sharded engine exactly. The plan routes on the
        //     view; sources are filtered by the ground truth (a dead
        //     node cannot transmit, whatever the view believes).
        if let Some(cp) = &self.collective {
            if let Some(op_index) = cp.due(cycle, sim.config.inject_cycles) {
                let links = &self.links;
                let plan = cp.plan(
                    &sim.gc,
                    &self.view,
                    self.view.generation(),
                    |v: NodeId| links.node_faulty(v.0),
                    op_index,
                );
                match plan {
                    Some(plan) => {
                        if let Some(rep) = self.repair_ledger.note(&plan) {
                            if rep.rebuilt {
                                self.metrics.tree_rebuilds += 1;
                            } else {
                                self.metrics.tree_regrafts += 1;
                            }
                            self.metrics.tree_lost_nodes += rep.lost_nodes;
                            telem.tree_repair(rep.rebuilt);
                            if sink.enabled() {
                                sink.record(&TraceEvent {
                                    cycle,
                                    packet: NETWORK_EVENT_PACKET,
                                    node: plan.root,
                                    kind: TraceEventKind::TreeRepair {
                                        regrafted: rep.regrafted_subtrees,
                                        reattached: rep.reattached_nodes,
                                        lost: rep.lost_nodes,
                                        rebuilt: rep.rebuilt,
                                    },
                                });
                            }
                        }
                        self.metrics.collective_ops += 1;
                        self.op_tracker.begin(&plan, cycle);
                        for pkt in plan.packets {
                            self.metrics.injected_total += 1;
                            self.metrics.collective_injected += 1;
                            telem.inject();
                            self.windows[widx].injected += 1;
                            if sink.enabled() {
                                sink.record(&TraceEvent {
                                    cycle,
                                    packet: pkt.id,
                                    node: pkt.src,
                                    kind: TraceEventKind::Inject {
                                        dst: pkt.route.dest(),
                                        planned_hops: pkt.route.hops() as u64,
                                    },
                                });
                            }
                            self.in_flight += 1;
                            let vu = pkt.src.0 as usize;
                            let slot = self.store.alloc(pkt.id, cycle, pkt.route);
                            if self.queues.is_empty(vu) {
                                self.class_occupied[vu & cmask] += 1;
                            }
                            self.class_queued[vu & cmask] += 1;
                            self.queues.push_back(&mut self.store, vu, slot);
                        }
                    }
                    None => self.metrics.collective_skipped += 1,
                }
            }
        }

        if cycle < sim.config.inject_cycles {
            for v in 0..n_nodes {
                let src = NodeId(v);
                if self.links.node_faulty(v) || !self.traffic.fires() {
                    continue;
                }
                if let Some(cap) = self.capacity {
                    if self.queues.len(v as usize) >= cap {
                        // Backpressure: the source buffer is full.
                        if measuring {
                            self.metrics.blocked_injections += 1;
                        }
                        continue;
                    }
                }
                let Some(dst) = self.traffic.pick_dest(&sim.gc, &self.view, src) else {
                    // The offered load just shrank by one packet —
                    // count it instead of silently skewing throughput
                    // comparisons (permutation partner faulty/self, or
                    // no healthy destination at all).
                    self.metrics.suppressed_injections_total += 1;
                    if measuring {
                        self.metrics.suppressed_injections += 1;
                    }
                    continue;
                };
                // Packet ids are assigned per injection *attempt*: a
                // failed route consumes the id too, so ids are a pure
                // function of the traffic stream — what lets the
                // sharded engine preassign them before planning.
                let id = self.next_id;
                self.next_id += 1;
                if prof.enabled() {
                    cycle_injected += 1;
                }
                match sim.algorithm.plan_route(&sim.gc, &self.view, src, dst) {
                    Ok(planned) => {
                        let tree = planned.tree;
                        let planned_hops = planned.route.hops() as u64;
                        self.metrics.injected_total += 1;
                        telem.inject();
                        if measuring {
                            self.metrics.injected += 1;
                        }
                        self.windows[widx].injected += 1;
                        if sink.enabled() {
                            sink.record(&TraceEvent {
                                cycle,
                                packet: id,
                                node: src,
                                kind: TraceEventKind::Inject { dst, planned_hops },
                            });
                        }
                        if let Some(tc) = tree {
                            account_tree_choice(
                                &mut self.metrics,
                                &mut self.windows[widx],
                                &mut *telem,
                                tc,
                            );
                            if sink.enabled() && (tc.switches > 0 || tc.exhausted) {
                                sink.record(&TraceEvent {
                                    cycle,
                                    packet: id,
                                    node: src,
                                    kind: TraceEventKind::TreeSwitch {
                                        tree: tc.tree,
                                        switches: tc.switches,
                                        exhausted: tc.exhausted,
                                    },
                                });
                            }
                        }
                        if planned_hops == 0 {
                            // src == dst cannot happen (pick_dest), but a
                            // zero-hop route would sink immediately —
                            // without ever touching the arena.
                            self.metrics.delivered_total += 1;
                            telem.deliver();
                            if measuring {
                                self.metrics.delivered += 1;
                                self.metrics.latency_hist.record(0);
                                self.metrics.hops_hist.record(0);
                            }
                            self.windows[widx].delivered += 1;
                            if sink.enabled() {
                                sink.record(&TraceEvent {
                                    cycle,
                                    packet: id,
                                    node: src,
                                    kind: TraceEventKind::Deliver {
                                        latency: 0,
                                        hops: 0,
                                    },
                                });
                            }
                        } else {
                            self.in_flight += 1;
                            let vu = v as usize;
                            let slot = self.store.alloc(id, cycle, planned.route);
                            if self.queues.is_empty(vu) {
                                self.class_occupied[vu & cmask] += 1;
                            }
                            self.class_queued[vu & cmask] += 1;
                            self.queues.push_back(&mut self.store, vu, slot);
                        }
                    }
                    Err(_) => {
                        self.metrics.route_failures_total += 1;
                        if measuring {
                            self.metrics.route_failures += 1;
                        }
                    }
                }
            }
        }

        if let Some(t) = phase_started {
            let nanos = t.elapsed().as_nanos() as u64;
            telem.phase_time(Phase::Planning, nanos);
            prof.phase_time(Phase::Planning, nanos);
        }

        // 2. Forwarding phase: each node may forward its queue head.
        //    One packet per directed link per cycle holds by
        //    construction — a link's sending endpoint serves at most
        //    one packet per cycle. Rotate the service order for
        //    fairness.
        let phase_started = profiling.then(Instant::now);
        let offset = (cycle % n_nodes) as usize;
        // Word-scan the occupancy bitset in rotated service order: the
        // cost is O(words + occupied nodes), not O(nodes). The snapshot
        // is exact — the scan pops only at the node being visited and
        // every push is buffered in `moves` until the drain below.
        self.queues.collect_occupied_rotated(offset, &mut self.scan);
        for &vq in &self.scan {
            let v = vq as usize;
            let Some(head) = self.queues.front(v) else {
                continue;
            };
            let from = self.store.current(head);
            let Some(to) = self.store.next_hop(head) else {
                // A recovery replan can find the packet already at its
                // destination (the original route passed through it on
                // the way elsewhere): sink it instead of forwarding.
                let slot = self.queues.pop_front(&mut self.store, v);
                let pkt = self.store.remove(slot);
                self.class_queued[v & cmask] -= 1;
                if self.queues.is_empty(v) {
                    self.class_occupied[v & cmask] -= 1;
                }
                self.in_flight -= 1;
                self.metrics.delivered_total += 1;
                telem.deliver();
                self.windows[widx].delivered += 1;
                if is_collective(pkt.id) {
                    self.metrics.collective_delivered += 1;
                    self.windows[widx].collective_delivered += 1;
                    telem.collective_deliver();
                    self.op_tracker.deliver(pkt.id, cycle);
                } else if measuring && pkt.injected_at >= self.warmup {
                    self.metrics.delivered += 1;
                    self.metrics.total_latency += cycle - pkt.injected_at;
                    self.metrics.latency_hist.record(cycle - pkt.injected_at);
                    self.metrics.hops_hist.record(pkt.hops_taken);
                    self.metrics.rerouted_hops += pkt.detour_hops();
                    if pkt.reroutes > 0 {
                        self.metrics.rerouted_packets += 1;
                    }
                }
                if sink.enabled() {
                    sink.record(&TraceEvent {
                        cycle,
                        packet: pkt.id,
                        node: pkt.current(),
                        kind: TraceEventKind::Deliver {
                            latency: cycle - pkt.injected_at,
                            hops: pkt.hops_taken,
                        },
                    });
                }
                continue;
            };
            let dim = (from.0 ^ to.0).trailing_zeros();
            if self.dynamic && !self.links.link_usable(from, to, dim) {
                // The planned hop is dead: the holder observes the
                // failure and the engine recovers or drops. Either
                // way this packet spends the cycle here.
                let cause = sim.recover(
                    &mut self.store,
                    &mut self.queues,
                    v,
                    &mut self.view,
                    &self.links,
                    LinkId::new(from, dim),
                    to,
                    cycle,
                    &mut self.metrics,
                    &mut self.windows[widx],
                    sink,
                    telem,
                );
                if let Some((pkt, cause)) = cause {
                    self.class_queued[v & cmask] -= 1;
                    if self.queues.is_empty(v) {
                        self.class_occupied[v & cmask] -= 1;
                    }
                    self.in_flight -= 1;
                    count_drop(
                        &mut self.metrics,
                        &mut self.windows[widx],
                        &mut self.op_tracker,
                        &pkt,
                        cause,
                        measuring,
                        self.warmup,
                        cycle,
                        pkt.current(),
                        sink,
                        telem,
                    );
                }
                continue;
            }
            // The TTL applies to static runs too: a packet out of hop
            // budget dies here whether or not faults are in play.
            if u64::from(self.store.hops_taken[head as usize]) >= self.ttl {
                let slot = self.queues.pop_front(&mut self.store, v);
                let pkt = self.store.remove(slot);
                self.class_queued[v & cmask] -= 1;
                if self.queues.is_empty(v) {
                    self.class_occupied[v & cmask] -= 1;
                }
                self.in_flight -= 1;
                count_drop(
                    &mut self.metrics,
                    &mut self.windows[widx],
                    &mut self.op_tracker,
                    &pkt,
                    DropCause::TtlExpired,
                    measuring,
                    self.warmup,
                    cycle,
                    pkt.current(),
                    sink,
                    telem,
                );
                continue;
            }
            let sinks = self.store.hop_idx[head as usize] as usize + 2
                == self.store.route(head).nodes().len();
            if let Some(cap) = self.capacity {
                // A packet sinking at its destination always fits
                // (eager readership at the consumer); otherwise the
                // target buffer must have room. Arrivals granted this
                // cycle count against the room; departures free their
                // slot next cycle — conservative store-and-forward.
                if !sinks
                    && self.queues.len(to.0 as usize) + self.arriving[to.0 as usize] as usize >= cap
                {
                    continue; // backpressure: wait for room
                }
                if !sinks {
                    if self.arriving[to.0 as usize] == 0 {
                        self.arrival_nodes.push(to.0 as usize);
                    }
                    self.arriving[to.0 as usize] += 1;
                }
            }
            // Unconditional whole-run hop ledger: the telemetry
            // per-dimension counters must reconcile with it exactly.
            self.metrics.forwarded_hops_total += 1;
            telem.hop(dim);
            let slot = self.queues.pop_front(&mut self.store, v);
            self.class_queued[v & cmask] -= 1;
            if self.queues.is_empty(v) {
                self.class_occupied[v & cmask] -= 1;
            }
            self.store.advance(slot);
            self.moves.push(slot);
        }
        for &slot in &self.moves {
            let injected_at = self.store.injected_at[slot as usize];
            let measured_pkt = measuring && injected_at >= self.warmup;
            if measured_pkt {
                self.metrics.total_hops += 1;
            }
            let cur = self.store.current(slot);
            if sink.enabled() {
                // hop_idx was already advanced: the previous node is
                // one step back on the current trajectory.
                sink.record(&TraceEvent {
                    cycle,
                    packet: self.store.id[slot as usize],
                    node: cur,
                    kind: TraceEventKind::Hop {
                        from: self.store.route(slot).nodes()
                            [self.store.hop_idx[slot as usize] as usize - 1],
                    },
                });
            }
            if self.store.arrived(slot) {
                self.in_flight -= 1;
                self.metrics.delivered_total += 1;
                telem.deliver();
                self.windows[widx].delivered += 1;
                let hops = u64::from(self.store.hops_taken[slot as usize]);
                if is_collective(self.store.id[slot as usize]) {
                    self.metrics.collective_delivered += 1;
                    self.windows[widx].collective_delivered += 1;
                    telem.collective_deliver();
                    self.op_tracker.deliver(self.store.id[slot as usize], cycle);
                } else if measured_pkt {
                    self.metrics.delivered += 1;
                    self.metrics.total_latency += cycle + 1 - injected_at;
                    self.metrics.latency_hist.record(cycle + 1 - injected_at);
                    self.metrics.hops_hist.record(hops);
                    self.metrics.rerouted_hops += self.store.detour_hops(slot);
                    if self.store.reroutes[slot as usize] > 0 {
                        self.metrics.rerouted_packets += 1;
                    }
                }
                if sink.enabled() {
                    sink.record(&TraceEvent {
                        cycle,
                        packet: self.store.id[slot as usize],
                        node: cur,
                        kind: TraceEventKind::Deliver {
                            latency: cycle + 1 - injected_at,
                            hops,
                        },
                    });
                }
                self.store.discard(slot);
            } else {
                // Keep FIFO order at the receiving node; the packet can
                // move again no earlier than next cycle.
                let cu = cur.0 as usize;
                if self.queues.is_empty(cu) {
                    self.class_occupied[cu & cmask] += 1;
                }
                self.class_queued[cu & cmask] += 1;
                self.queues.push_back(&mut self.store, cu, slot);
            }
        }
        // Captured before the clear: one entry per forwarded hop, the
        // profiler's deterministic "moved" counter.
        let cycle_moved = self.moves.len() as u64;
        self.moves.clear();
        for &t in &self.arrival_nodes {
            self.arriving[t] = 0;
        }
        self.arrival_nodes.clear();
        if let Some(t) = phase_started {
            let nanos = t.elapsed().as_nanos() as u64;
            telem.phase_time(Phase::Forwarding, nanos);
            prof.phase_time(Phase::Forwarding, nanos);
        }

        // 3. Telemetry sampling (guarded so the telemetry-off engine
        //    pays nothing). Cache statistics take a lock, so they are
        //    fetched only at window boundaries.
        if telem.enabled() {
            let sample_started = Instant::now();
            let cache = if telem.wants_sample(cycle) {
                sim.algorithm.cache_stats()
            } else {
                None
            };
            telem.end_cycle(CycleView {
                cycle,
                class_queued: &self.class_queued,
                class_occupied: &self.class_occupied,
                in_flight: self.in_flight,
                health: self.monitor.state(),
                live_faults: self.truth.len() as u64,
                cache,
            });
            telem.phase_time(Phase::Telemetry, sample_started.elapsed().as_nanos() as u64);
        }

        // 4. Profiler sampling: same guard discipline as telemetry —
        //    the deterministic counters mirror the sharded Round-D
        //    reduction exactly (end-of-cycle class snapshots, cache
        //    stats fetched only when asked for, at a quiescent point).
        if prof.enabled() {
            let sample_started = Instant::now();
            let cache = if prof.wants_cache(cycle) {
                sim.algorithm.cache_stats()
            } else {
                None
            };
            prof.cycle_sample(&ProfSample {
                cycle,
                injected: cycle_injected,
                moved: cycle_moved,
                in_flight: self.in_flight,
                class_queued: &self.class_queued,
                class_occupied: &self.class_occupied,
                cache,
            });
            prof.phase_time(Phase::Telemetry, sample_started.elapsed().as_nanos() as u64);
        }

        self.cycle += 1;
        if cycle >= sim.config.inject_cycles && self.in_flight == 0 {
            self.ended_at = cycle + 1;
            self.done = true;
        } else if self.cycle >= self.total_cycles {
            self.done = true;
        }
        self.done
    }

    /// Close out the run and build its report. Call once, after
    /// [`EngineCore::step`] returned `true`; the core's accumulators are
    /// drained into the report.
    pub(crate) fn finish<T: TelemetrySink, P: ProfilerSink>(
        &mut self,
        sim: &Simulator,
        telem: &mut T,
        prof: &mut P,
    ) -> ChurnReport {
        if telem.enabled() {
            telem.finish(CycleView {
                cycle: self.ended_at,
                class_queued: &self.class_queued,
                class_occupied: &self.class_occupied,
                in_flight: self.in_flight,
                health: self.monitor.state(),
                live_faults: self.truth.len() as u64,
                cache: sim.algorithm.cache_stats(),
            });
        }
        if prof.enabled() {
            prof.finish_run(self.ended_at, 1);
        }

        let mut metrics = self.metrics;
        metrics.cycles = self.ended_at - self.warmup;
        metrics.in_flight_at_end = self.in_flight;
        let mut windows = mem::take(&mut self.windows);
        windows.truncate((self.ended_at as usize).div_ceil(self.window as usize));
        if let Some(last) = windows.last_mut() {
            last.end = last.end.min(self.ended_at);
        }
        ChurnReport {
            metrics,
            windows,
            trace: self.injector.trace().to_vec(),
            budget: fault_budget(&sim.gc, &self.truth),
            tree_health: sim.algorithm.tree_health(&sim.gc, &self.truth),
            collectives: mem::take(&mut self.op_tracker).into_ops(),
        }
    }
}

/// Account one dropped packet in the aggregate and window counters, and
/// narrate it into the trace.
///
/// A packet that ever re-routed counts towards `rerouted_packets` here
/// — at its final resolution — so packets rerouted more than once,
/// rerouted while queued behind another packet, or dropped after
/// rerouting are all counted exactly once. The per-cause counters
/// (`dropped_stranded`, `dropped_unrecoverable`, `ttl_expired`) partition
/// `dropped` exactly.
#[allow(clippy::too_many_arguments)]
fn count_drop<S: TraceSink, T: TelemetrySink>(
    metrics: &mut Metrics,
    window: &mut WindowStat,
    tracker: &mut OpTracker,
    pkt: &Packet,
    cause: DropCause,
    measuring: bool,
    warmup: u64,
    cycle: u64,
    node: NodeId,
    sink: &mut S,
    telem: &mut T,
) {
    window.dropped += 1;
    metrics.dropped_total += 1;
    telem.drop_packet();
    if is_collective(pkt.id) {
        // Collective packets keep the whole-run and window ledgers but
        // stay out of the measured unicast drop taxonomy.
        metrics.collective_dropped += 1;
        tracker.dropped(pkt.id);
    } else if measuring && pkt.injected_at >= warmup {
        metrics.dropped += 1;
        match cause {
            DropCause::TtlExpired => metrics.ttl_expired += 1,
            DropCause::Stranded => metrics.dropped_stranded += 1,
            DropCause::Unrecoverable => metrics.dropped_unrecoverable += 1,
        }
        if pkt.reroutes > 0 {
            metrics.rerouted_packets += 1;
        }
    }
    if sink.enabled() {
        sink.record(&TraceEvent {
            cycle,
            packet: pkt.id,
            node,
            kind: TraceEventKind::Drop { cause },
        });
    }
}

/// Account one planned route's tree choice (multitree strategies only):
/// whole-run per-tree counters, the switch/exhaustion ledgers, the window
/// series, and the telemetry hook. Unconditional like the `*_total`
/// ledger counters, so telemetry totals reconcile exactly.
fn account_tree_choice<T: TelemetrySink>(
    metrics: &mut Metrics,
    window: &mut WindowStat,
    telem: &mut T,
    tc: TreeChoice,
) {
    if tc.exhausted {
        metrics.tree_exhausted += 1;
    } else {
        metrics.tree_routes[tc.tree as usize % MAX_TREES] += 1;
    }
    metrics.tree_switches += u64::from(tc.switches);
    window.tree_switches += u64::from(tc.switches);
    telem.tree_activity(u64::from(tc.switches), tc.exhausted);
}

/// Re-synchronise the routing view onto the ground truth, skipping the
/// copy when neither set changed since the last sync (their generation
/// stamps still match the recorded pair).
pub(crate) fn sync_view(view: &mut FaultSet, truth: &FaultSet, synced: &mut (u64, u64)) {
    if *synced != (truth.generation(), view.generation()) {
        view.sync_from(truth);
        *synced = (truth.generation(), view.generation());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injection::{FaultKind, FaultTarget, TimedFault};
    use crate::strategy::{FaultFreeGcr, FaultTolerantGcr};

    fn small_config() -> SimConfig {
        SimConfig::new(6, 2)
            .with_cycles(200, 2_000, 20)
            .with_rate(0.02)
    }

    #[test]
    fn conservation_packets_in_equals_out() {
        let sim = Simulator::new(small_config(), &FaultFreeGcr);
        let m = sim.session().run().metrics;
        assert!(m.injected > 0, "workload must inject packets");
        assert_eq!(m.route_failures, 0);
        // Every measured packet is either delivered or still in flight.
        assert_eq!(m.in_flight_at_end, 0, "drain period must empty the network");
        assert_eq!(m.delivered, m.injected);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Simulator::new(small_config(), &FaultFreeGcr)
            .session()
            .run()
            .metrics;
        let b = Simulator::new(small_config(), &FaultFreeGcr)
            .session()
            .run()
            .metrics;
        assert_eq!(a, b);
        let c = Simulator::new(small_config().with_seed(777), &FaultFreeGcr)
            .session()
            .run()
            .metrics;
        assert_ne!(a, c);
    }

    #[test]
    fn static_runs_report_no_churn_counters() {
        let r = Simulator::new(small_config(), &FaultFreeGcr)
            .session()
            .run();
        let m = r.metrics;
        assert_eq!(
            (
                m.dropped,
                m.ttl_expired,
                m.rerouted_packets,
                m.rerouted_hops
            ),
            (0, 0, 0, 0)
        );
        assert_eq!(
            (m.fault_events, m.stale_cycles, m.reconvergences),
            (0, 0, 0)
        );
        assert!(r.trace.is_empty());
        assert!(!r.windows.is_empty());
        let resolved: u64 = r.windows.iter().map(|w| w.delivered).sum();
        assert!(resolved >= m.delivered, "windows count warm-up packets too");
    }

    #[test]
    fn latency_at_least_route_length() {
        // Latency per packet ≥ hops; with low load close to hops.
        let sim = Simulator::new(small_config().with_rate(0.001), &FaultFreeGcr);
        let m = sim.session().run().metrics;
        assert!(m.avg_latency() >= m.avg_hops());
        // Uncongested: latency within 1.5x of hop count.
        assert!(m.avg_latency() <= 1.5 * m.avg_hops() + 1.0);
    }

    #[test]
    fn faulty_network_still_delivers_with_ftgcr() {
        let cfg = small_config().with_faults(1);
        let sim = Simulator::new(cfg, &FaultTolerantGcr);
        assert_eq!(sim.faults().faulty_nodes().count(), 1);
        let m = sim.session().run().metrics;
        assert_eq!(m.delivered, m.injected, "FTGCR must deliver all packets");
        assert_eq!(m.route_failures, 0);
    }

    #[test]
    fn fault_raises_latency_on_average() {
        // The Figure 7 effect, in miniature: faults force detours, so mean
        // latency (averaged over seeds — a single seed is noisy because the
        // faulty node also stops injecting) must not drop.
        let mean = |faults: usize| -> f64 {
            let mut total = 0.0;
            for seed in 0..6u64 {
                let cfg = small_config().with_seed(1000 + seed).with_faults(faults);
                total += Simulator::new(cfg, &FaultTolerantGcr)
                    .session()
                    .run()
                    .metrics
                    .avg_latency();
            }
            total / 6.0
        };
        let base = mean(0);
        let faulty = mean(2);
        assert!(
            faulty >= base * 0.98,
            "mean latency should not drop with faults: base={base:.3} faulty={faulty:.3}"
        );
    }

    #[test]
    fn permutation_traffic_runs_and_drains() {
        use crate::traffic::TrafficPattern;
        for pat in [
            TrafficPattern::BitComplement,
            TrafficPattern::BitReversal,
            TrafficPattern::Transpose,
        ] {
            let cfg = small_config().with_pattern(pat);
            let m = Simulator::new(cfg, &FaultFreeGcr).session().run().metrics;
            assert!(m.injected > 0, "{pat:?} must inject");
            assert_eq!(m.delivered, m.injected, "{pat:?} must drain fully");
        }
    }

    #[test]
    fn bit_complement_has_longest_latency() {
        use crate::traffic::TrafficPattern;
        // Complement partners are at maximal distance: latency must exceed
        // the uniform workload's at equal rate.
        let uni = Simulator::new(small_config(), &FaultFreeGcr)
            .session()
            .run()
            .metrics;
        let comp = Simulator::new(
            small_config().with_pattern(TrafficPattern::BitComplement),
            &FaultFreeGcr,
        )
        .session()
        .run()
        .metrics;
        assert!(
            comp.avg_hops() > uni.avg_hops(),
            "complement hops {} must exceed uniform {}",
            comp.avg_hops(),
            uni.avg_hops()
        );
    }

    #[test]
    fn finite_buffers_apply_backpressure_and_can_deadlock() {
        // This test documents WHY the paper assumes eager readership
        // (assumption 2 of §6): with tight finite buffers and no consumption
        // guarantee, store-and-forward traffic deadlocks — head packets
        // point at each other's full queues and nothing ever moves again.
        // (warmup = 0 so the conservation ledger covers every packet.)
        let cfg = SimConfig::new(6, 2)
            .with_cycles(200, 2_000, 0)
            .with_rate(0.2)
            .with_buffer_capacity(2);
        let m = Simulator::new(cfg, &FaultFreeGcr).session().run().metrics;
        assert!(
            m.blocked_injections > 0,
            "tight buffers must block injections"
        );
        assert_eq!(m.delivered + m.in_flight_at_end, m.injected, "conservation");
        assert!(
            m.in_flight_at_end > 0,
            "expected a buffer deadlock at this load; delivered={} injected={}",
            m.delivered,
            m.injected
        );
        // Unbounded buffers (the paper's model): same load, no blocking,
        // full drain.
        let m2 = Simulator::new(
            SimConfig::new(6, 2)
                .with_cycles(200, 2_000, 0)
                .with_rate(0.2),
            &FaultFreeGcr,
        )
        .session()
        .run()
        .metrics;
        assert_eq!(m2.blocked_injections, 0);
        assert_eq!(m2.in_flight_at_end, 0);
        assert_eq!(m2.delivered, m2.injected);
    }

    #[test]
    fn backpressure_conserves_packets_at_gentle_load() {
        // At loads where no deadlock forms, finite buffers still deliver
        // everything they accepted.
        for cap in [4usize, 8] {
            let cfg = SimConfig::new(6, 2)
                .with_cycles(200, 4_000, 0)
                .with_rate(0.005)
                .with_buffer_capacity(cap);
            let m = Simulator::new(cfg, &FaultFreeGcr).session().run().metrics;
            assert_eq!(m.delivered + m.in_flight_at_end, m.injected, "cap {cap}");
            assert_eq!(m.in_flight_at_end, 0, "cap {cap}: gentle load must drain");
        }
    }

    #[test]
    fn higher_load_does_not_lower_throughput() {
        let low = Simulator::new(small_config().with_rate(0.002), &FaultFreeGcr)
            .session()
            .run()
            .metrics;
        let high = Simulator::new(small_config().with_rate(0.02), &FaultFreeGcr)
            .session()
            .run()
            .metrics;
        assert!(high.throughput() > low.throughput());
    }

    // --- dynamic fault tests -------------------------------------------

    /// A scripted mid-run permanent node fault with a stale view: packets
    /// already in flight (or planned before the view converges) must be
    /// re-routed around it, and traffic keeps being delivered afterwards.
    #[test]
    fn midrun_node_fault_triggers_online_recovery() {
        use crate::injection::FaultSchedule;
        let victim = NodeId(9);
        let cfg = SimConfig::new(6, 2)
            .with_cycles(600, 4_000, 0)
            .with_rate(0.05)
            .with_knowledge(KnowledgeModel::PaperDelay)
            .with_schedule(FaultSchedule::Scripted(vec![TimedFault {
                cycle: 300,
                target: FaultTarget::Node(victim),
                kind: FaultKind::Permanent,
            }]));
        let r = Simulator::new(cfg, &FaultTolerantGcr).session().run();
        let m = r.metrics;
        assert_eq!(r.trace.len(), 1, "exactly one event must apply");
        assert_eq!(m.fault_events, 1);
        assert!(m.stale_cycles > 0, "PaperDelay must expose a stale window");
        assert_eq!(m.reconvergences, 1);
        assert!(
            m.rerouted_packets > 0 || m.dropped > 0,
            "in-flight traffic must hit the dead node and recover or drop"
        );
        assert!(
            m.delivered + m.dropped + m.in_flight_at_end == m.injected,
            "conservation with drops: {} + {} + {} != {}",
            m.delivered,
            m.dropped,
            m.in_flight_at_end,
            m.injected
        );
        assert!(
            m.delivery_ratio() > 0.9,
            "one dead node must not collapse delivery: {}",
            m.delivery_ratio()
        );
        // After reconvergence the network routes around the fault: the
        // final window must be fully delivered again.
        let last = r.windows.last().unwrap();
        assert!(
            last.delivery_ratio() > 0.99,
            "delivery must recover after reconvergence: {:?}",
            last
        );
    }

    /// ISSUE acceptance: a transient link fault causes a delivery dip in
    /// its windows and full recovery after its repair.
    #[test]
    fn transient_fault_dips_then_recovers() {
        use crate::injection::FaultSchedule;
        let victim = NodeId(9);
        let cfg = SimConfig::new(6, 2)
            .with_cycles(900, 4_000, 0)
            .with_rate(0.05)
            .with_window(300)
            .with_reroute_budget(0) // no recovery: staleness shows as drops
            .with_knowledge(KnowledgeModel::PaperDelay)
            .with_schedule(FaultSchedule::Scripted(vec![TimedFault {
                cycle: 300,
                target: FaultTarget::Node(victim),
                kind: FaultKind::Transient { repair_after: 150 },
            }]));
        let r = Simulator::new(cfg, &FaultTolerantGcr).session().run();
        assert_eq!(r.trace.len(), 2, "failure and repair must both apply");
        let dip = &r.windows[1]; // cycles 300..600: the fault is live
        assert!(
            dip.dropped > 0 && dip.delivery_ratio() < 1.0,
            "the faulty window must show a dip: {dip:?}"
        );
        // All post-repair windows are clean again.
        for w in &r.windows[2..] {
            assert!(
                w.delivery_ratio() > 0.995,
                "delivery must fully recover after repair: {w:?}"
            );
        }
        assert_eq!(r.metrics.in_flight_at_end, 0);
    }

    /// Same seed and schedule ⇒ identical event trace, metrics, and
    /// windows, bit for bit (ISSUE acceptance).
    #[test]
    fn churn_runs_are_deterministic() {
        use crate::injection::{CategoryMix, FaultSchedule};
        let cfg = || {
            SimConfig::new(6, 2)
                .with_cycles(400, 4_000, 0)
                .with_rate(0.03)
                .with_knowledge(KnowledgeModel::Measured)
                .with_schedule(FaultSchedule::Bernoulli {
                    rate: 0.01,
                    kind: FaultKind::Transient { repair_after: 80 },
                    mix: CategoryMix::default(),
                    node_fraction: 0.5,
                })
        };
        let a = Simulator::new(cfg(), &FaultTolerantGcr).session().run();
        let b = Simulator::new(cfg(), &FaultTolerantGcr).session().run();
        assert!(!a.trace.is_empty(), "the Bernoulli schedule must fire");
        assert_eq!(a, b, "same seed + schedule must reproduce bit for bit");
        let c = Simulator::new(cfg().with_seed(99), &FaultTolerantGcr)
            .session()
            .run();
        assert_ne!(
            a.trace, c.trace,
            "a different seed must change the event trace"
        );
    }

    /// Empty schedule + oracle view must reproduce the static engine
    /// exactly — the dynamic loop is a strict superset, not a fork.
    #[test]
    fn empty_schedule_matches_static_run() {
        let static_cfg = small_config().with_faults(1);
        let m1 = Simulator::new(static_cfg.clone(), &FaultTolerantGcr)
            .session()
            .run()
            .metrics;
        let m2 = Simulator::new(
            static_cfg.with_knowledge(KnowledgeModel::Oracle),
            &FaultTolerantGcr,
        )
        .session()
        .run()
        .metrics;
        assert_eq!(m1, m2);
    }

    /// The TTL genuinely bounds packet lifetimes: with a hostile tiny TTL
    /// packets die instead of wandering forever.
    #[test]
    fn ttl_bounds_packet_lifetimes() {
        use crate::injection::FaultSchedule;
        let cfg = SimConfig::new(6, 2)
            .with_cycles(400, 2_000, 0)
            .with_rate(0.05)
            .with_ttl(2) // shorter than most routes
            .with_schedule(FaultSchedule::Scripted(vec![TimedFault {
                cycle: 0,
                target: FaultTarget::Node(NodeId(9)),
                kind: FaultKind::Permanent,
            }]))
            .with_knowledge(KnowledgeModel::PaperDelay);
        let r = Simulator::new(cfg, &FaultTolerantGcr).session().run();
        assert!(r.metrics.ttl_expired > 0, "a 2-hop TTL must expire packets");
        assert_eq!(
            r.metrics.delivered + r.metrics.dropped + r.metrics.in_flight_at_end,
            r.metrics.injected,
            "conservation with TTL drops"
        );
        assert_eq!(
            r.metrics.in_flight_at_end, 0,
            "expired packets must not linger"
        );
    }

    /// The TTL applies to *static* runs too: a hop budget shorter than the
    /// routes must expire packets even with no fault schedule (previously
    /// the check only ran in dynamic mode, silently ignoring the setting).
    #[test]
    fn static_ttl_is_enforced() {
        let cfg = SimConfig::new(6, 2)
            .with_cycles(200, 2_000, 0)
            .with_rate(0.05)
            .with_ttl(2);
        let r = Simulator::new(cfg, &FaultFreeGcr).session().run();
        let m = r.metrics;
        assert!(
            m.ttl_expired > 0,
            "a 2-hop TTL must expire packets in a static run"
        );
        assert_eq!(m.dropped, m.ttl_expired, "TTL is the only drop cause here");
        assert_eq!(
            m.delivered + m.dropped + m.in_flight_at_end,
            m.injected,
            "conservation with static TTL drops"
        );
        // Short routes still make it through.
        assert!(m.delivered > 0, "routes within the TTL must still deliver");
    }

    /// The cached strategies are drop-in replacements: same seed and
    /// config must reproduce the uncached engine output bit for bit, both
    /// fault-free and under churn.
    #[test]
    fn cached_strategies_match_uncached_in_engine() {
        use crate::injection::FaultSchedule;
        use crate::strategy::{CachedFfgcr, CachedFtgcr};

        let a = Simulator::new(small_config(), &FaultFreeGcr)
            .session()
            .run();
        let b = Simulator::new(small_config(), &CachedFfgcr::new())
            .session()
            .run();
        assert_eq!(a, b, "cached FFGCR must match uncached in the engine");

        let churn_cfg = || {
            SimConfig::new(6, 2)
                .with_cycles(600, 4_000, 0)
                .with_rate(0.05)
                .with_knowledge(KnowledgeModel::PaperDelay)
                .with_schedule(FaultSchedule::Scripted(vec![TimedFault {
                    cycle: 300,
                    target: FaultTarget::Node(NodeId(9)),
                    kind: FaultKind::Permanent,
                }]))
        };
        let c = Simulator::new(churn_cfg(), &FaultTolerantGcr)
            .session()
            .run();
        let cached = CachedFtgcr::new();
        let d = Simulator::new(churn_cfg(), &cached).session().run();
        assert_eq!(c, d, "cached FTGCR must match uncached under churn");
        let stats = cached.stats().expect("cache was used");
        assert!(stats.hits > 0, "repeat pairs must hit the cache");
    }

    /// The whole-run ledger balances exactly, warm-up included, and the
    /// window time series sums to the same totals.
    #[test]
    fn whole_run_ledger_balances() {
        use crate::injection::FaultSchedule;
        let cfg = SimConfig::new(6, 2)
            .with_cycles(600, 4_000, 100)
            .with_rate(0.05)
            .with_knowledge(KnowledgeModel::PaperDelay)
            .with_schedule(FaultSchedule::Scripted(vec![TimedFault {
                cycle: 300,
                target: FaultTarget::Node(NodeId(9)),
                kind: FaultKind::Permanent,
            }]));
        let r = Simulator::new(cfg, &FaultTolerantGcr).session().run();
        let m = r.metrics;
        assert!(
            m.injected_total > m.injected,
            "warm-up packets must appear in the total but not the measured count"
        );
        assert_eq!(
            m.injected_total,
            m.delivered_total + m.dropped_total + m.in_flight_at_end,
            "whole-run conservation"
        );
        assert_eq!(
            r.windows.iter().map(|w| w.injected).sum::<u64>(),
            m.injected_total
        );
        assert_eq!(
            r.windows.iter().map(|w| w.delivered).sum::<u64>(),
            m.delivered_total
        );
        assert_eq!(
            r.windows.iter().map(|w| w.dropped).sum::<u64>(),
            m.dropped_total
        );
    }

    /// `rerouted_packets` counts each re-routed packet exactly once at its
    /// final resolution, so it can never exceed the resolved-packet count
    /// and never misses a packet that recovered while queued.
    #[test]
    fn rerouted_packets_counted_per_packet() {
        use crate::injection::FaultSchedule;
        // High rate so recovery often happens behind another queued packet
        // (the case the old queue-head heuristic missed).
        let cfg = SimConfig::new(6, 2)
            .with_cycles(600, 4_000, 0)
            .with_rate(0.2)
            .with_knowledge(KnowledgeModel::PaperDelay)
            .with_schedule(FaultSchedule::Scripted(vec![TimedFault {
                cycle: 300,
                target: FaultTarget::Node(NodeId(9)),
                kind: FaultKind::Permanent,
            }]));
        let m = Simulator::new(cfg, &FaultTolerantGcr)
            .session()
            .run()
            .metrics;
        assert!(m.rerouted_packets > 0, "the dead node must force re-routes");
        assert!(
            m.rerouted_packets <= m.delivered + m.dropped,
            "a packet resolves once: rerouted {} > resolved {}",
            m.rerouted_packets,
            m.delivered + m.dropped
        );
        // Every re-routed packet took at least one detour hop, so the hop
        // total must cover the packet count.
        assert!(m.rerouted_hops >= m.rerouted_packets);
    }

    /// A permutation source whose partner is faulty stays silent — that
    /// used to vanish without a trace; now it is counted.
    #[test]
    fn suppressed_injections_are_counted() {
        use crate::traffic::TrafficPattern;
        // Under BitComplement on GC(6,2), every node with a faulty
        // complement is silenced; four static faults guarantee silenced
        // sources that still fire at rate 1.
        let cfg = small_config()
            .with_rate(1.0)
            .with_pattern(TrafficPattern::BitComplement)
            .with_faults(4);
        let m = Simulator::new(cfg, &FaultTolerantGcr)
            .session()
            .run()
            .metrics;
        assert!(
            m.suppressed_injections_total > 0,
            "faulty complements must suppress injections"
        );
        assert!(m.suppressed_injections > 0, "some must land post-warm-up");
        assert!(m.suppressed_injections <= m.suppressed_injections_total);
        // Fault-free uniform traffic never suppresses.
        let clean = Simulator::new(small_config(), &FaultFreeGcr)
            .session()
            .run()
            .metrics;
        assert_eq!(clean.suppressed_injections_total, 0);
    }
}
